// Lane-tiled execution of a CompiledProgram over arranged global memory.
//
// Where the interpreted executor sweeps the whole worker chunk once per step
// (streaming the full register file through cache every time), the compiled
// backend walks lane tiles: for each tile of ~T lanes it scatters the tile's
// inputs (a cache-blocked transpose instead of the per-lane strided writes of
// Layout::scatter), zeroes a register tile small enough to stay L1-resident
// (reg_count × T words), and then runs *every* fused op of every segment over
// that tile before moving on.  Dispatch cost is amortised by superinstruction
// fusion; memory traffic per tile touches each arranged word once per
// load/store that names it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "exec/compiled_program.hpp"

namespace obx::exec {

/// Which lockstep engine HostBulkExecutor uses.  kAuto prefers the
/// copy-and-patch JIT (zero per-superinstruction dispatch; see
/// exec/jit/jit_program.hpp), degrading to the compiled switch backend when
/// emission is unavailable (non-x86-64/non-Linux, OBX_JIT=0, arena failure)
/// and to the interpreter when the program exceeds the compile budget.
/// kJit and kCompiled ride the same ladder from their own rung — both fall
/// back (with the fallback recorded in the run result) rather than failing.
/// kJit is last so the numeric values of the pre-JIT backends — which plan
/// fingerprints fold in — are unchanged.
enum class Backend : std::uint8_t { kAuto, kInterpreted, kCompiled, kJit };

std::string to_string(Backend backend);

/// Picks a lane-tile size: `requested` if nonzero, else the largest power of
/// two in [32, 1024] keeping the register tile within ~16 KB (a third of a
/// typical 48 KB L1d, leaving room for the memory streams).  A nonzero
/// `requested` that is at least `vector_width` lanes is rounded down to a
/// multiple of it so only the final tile of a chunk has a scalar tail;
/// smaller requests are honoured as-is.  For blocked layouts the tile is
/// shrunk to a divisor of the block so a tile never crosses a block boundary
/// (tile addressing relies on a single stride), preferring a divisor that is
/// also a vector-width multiple when one exists.  Always returns >= 1, even
/// for degenerate inputs (p < vector_width, reg_count == 0, blocked layouts
/// whose block is not a vector-width multiple): the worst case is a valid
/// scalar tile, never 0.
std::size_t resolve_tile_lanes(std::size_t requested, std::size_t reg_count,
                               const bulk::Layout& layout,
                               std::size_t vector_width = 1);

/// Executes `compiled` over lanes [lane_begin, lane_end), tile by tile,
/// scattering each tile's inputs in place.  `memory` must be pre-zeroed;
/// inputs are lane-major flat (lane j at inputs[j * input_words ...]).
/// For blocked layouts `tile_lanes` must divide the block and lane_begin
/// must be a tile_lanes multiple (see resolve_tile_lanes) — tile addressing
/// splits lane_begin into a block index and an in-block offset, so any
/// tile-aligned range works, including ranges starting mid-block (how the
/// CorePool submits one task per tile).  Thread-safe across disjoint lane
/// ranges; keeps a grow-only thread_local register scratch.  `isa`
/// selects the lane-vectorized kernel set (lanes are packed
/// `simd_width_words(isa)` per vector, ragged tails handled scalar); tiers
/// this binary lacks degrade to the widest one it has.  Any tier is
/// bit-identical to kScalar.
void run_compiled_chunk(const CompiledProgram& compiled, const bulk::Layout& layout,
                        std::span<const Word> inputs, std::size_t input_words,
                        std::span<Word> memory, Lane lane_begin, Lane lane_end,
                        std::size_t tile_lanes, SimdIsa isa = active_simd_isa());

}  // namespace obx::exec

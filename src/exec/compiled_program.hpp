// Compiled form of an oblivious program: the coroutine step stream drained
// once into packed, read-only, fused-op segments shared by every chunk,
// worker thread, and repeated run.
//
// Segments are bounded (kDefaultSegmentSteps input steps each) so huge
// programs are refused by budget instead of materialised; a compile that
// would exceed its step budget returns nullptr and callers fall back to the
// interpreter.  get_or_compile() memoises through trace::Program::exec_cache,
// so the stream is generated at most once per (program, process) — the
// compile runs under the slot mutex, which is what makes that guarantee hold
// across concurrent executors.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "opt/fusion.hpp"
#include "trace/program.hpp"

namespace obx::exec {

inline constexpr std::size_t kDefaultCompileBudget = std::size_t{1} << 22;
inline constexpr std::size_t kDefaultSegmentSteps = std::size_t{1} << 16;

class CompiledProgram {
 public:
  struct Options {
    /// Refuse to compile programs longer than this many steps.
    std::size_t max_steps = kDefaultCompileBudget;
    /// Input steps per segment (fusion never crosses a segment boundary).
    std::size_t segment_steps = kDefaultSegmentSteps;
  };

  /// One bounded slice of the fused program.
  struct Segment {
    std::vector<opt::FusedOp> ops;
    std::vector<trace::Step> run_steps;
  };

  /// Drains program.stream() and fuses it.  Returns nullptr if the stream
  /// exceeds options.max_steps (the partial compile is discarded).
  static std::shared_ptr<const CompiledProgram> compile(const trace::Program& program,
                                                        const Options& options);
  static std::shared_ptr<const CompiledProgram> compile(const trace::Program& program);

  /// compile(), memoised process-wide via program.exec_cache.  Thread-safe;
  /// concurrent callers block until the single compile finishes.  A failed
  /// (over-budget) compile is remembered so the stream is not re-drained for
  /// budgets <= the one that failed.
  static std::shared_ptr<const CompiledProgram> get_or_compile(
      const trace::Program& program, const Options& options);
  static std::shared_ptr<const CompiledProgram> get_or_compile(
      const trace::Program& program);

  const std::vector<Segment>& segments() const { return segments_; }
  const trace::StepCounts& counts() const { return counts_; }
  std::size_t total_steps() const { return total_steps_; }
  std::size_t fused_ops() const { return fused_ops_; }
  /// Register file size the kernels address: max(program.register_count,
  /// 1 + highest register referenced) — defensive against under-declared
  /// register counts, which the interpreter would silently overrun.
  std::size_t register_count() const { return register_count_; }
  std::size_t memory_words() const { return memory_words_; }

 private:
  CompiledProgram() = default;

  std::vector<Segment> segments_;
  trace::StepCounts counts_;
  std::size_t total_steps_ = 0;
  std::size_t fused_ops_ = 0;
  std::size_t register_count_ = 0;
  std::size_t memory_words_ = 0;
};

inline std::shared_ptr<const CompiledProgram> CompiledProgram::compile(
    const trace::Program& program) {
  return compile(program, Options{});
}

inline std::shared_ptr<const CompiledProgram> CompiledProgram::get_or_compile(
    const trace::Program& program) {
  return get_or_compile(program, Options{});
}

}  // namespace obx::exec

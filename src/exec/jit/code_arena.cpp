#include "exec/jit/code_arena.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace obx::exec::jit {

#if defined(__linux__)

bool CodeArena::allocate(std::size_t bytes, const void* near) {
  if (base_ != nullptr || bytes == 0) return false;
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t rounded = (bytes + page - 1) / page * page;
  void* mem = MAP_FAILED;
  // Ask for a range a little below `near` (binary text for the JIT): close
  // enough that rel32 calls back into pre-compiled code reach, far enough
  // that the gap absorbs the text/data mappings right around the hint.  The
  // probe walks a window of candidate addresses so every arena in the
  // process lands in reach (a plain advisory hint would satisfy only the
  // first: once its page is taken the kernel ignores the hint and the next
  // arena lands in the default far area, flipping its calls to imm64 — and
  // making identically-built plans describe different code sizes).  A
  // candidate is accepted only at exactly the requested address: on kernels
  // with MAP_FIXED_NOREPLACE a taken range fails cleanly, on older ones the
  // address comparison discards the fallback placement.  If the whole
  // window is taken the arena degrades to "anywhere" and the emitter to
  // imm64 calls — slower thunks, same semantics.
  if (near != nullptr) {
    const auto addr = reinterpret_cast<std::uintptr_t>(near);
    constexpr std::uintptr_t kBackOff = std::uintptr_t{256} << 20;  // 256 MiB
    const std::uintptr_t stride = rounded;
#if defined(MAP_FIXED_NOREPLACE)
    constexpr int extra_flags = MAP_FIXED_NOREPLACE;
#else
    constexpr int extra_flags = 0;
#endif
    for (int k = 0; k < 64 && addr > kBackOff * 2; ++k) {
      const std::uintptr_t want =
          (addr - kBackOff) / page * page + static_cast<std::uintptr_t>(k) * stride;
      if (want + rounded > addr) break;  // ran into the hinted object itself
      void* const hint = reinterpret_cast<void*>(want);
      void* const got = ::mmap(hint, rounded, PROT_READ | PROT_WRITE,
                               MAP_PRIVATE | MAP_ANONYMOUS | extra_flags, -1, 0);
      if (got == MAP_FAILED) continue;
      if (got == hint) {
        mem = got;
        break;
      }
      ::munmap(got, rounded);
    }
  }
  if (mem == MAP_FAILED) {
    mem = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  }
  if (mem == MAP_FAILED) return false;
  base_ = static_cast<std::uint8_t*>(mem);
  size_ = rounded;
  return true;
}

bool CodeArena::seal() {
  if (base_ == nullptr || sealed_) return false;
  if (::mprotect(base_, size_, PROT_READ | PROT_EXEC) != 0) return false;
  // A no-op on x86-64 (coherent I-cache) but required on architectures that
  // are not — and free either way.
  __builtin___clear_cache(reinterpret_cast<char*>(base_),
                          reinterpret_cast<char*>(base_ + size_));
  sealed_ = true;
  return true;
}

CodeArena::~CodeArena() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

#else  // !__linux__: no executable mappings; emission reports failure.

bool CodeArena::allocate(std::size_t, const void*) { return false; }
bool CodeArena::seal() { return false; }
CodeArena::~CodeArena() = default;

#endif

}  // namespace obx::exec::jit

#include "exec/jit/kernel_table.hpp"

namespace obx::exec::jit {

KernelFn KernelTable::select(const opt::FusedOp& f) const {
  const auto op = static_cast<std::size_t>(f.op);
  if (op >= kOpCount) return nullptr;
  switch (f.kind) {
    case opt::FusedKind::kLoad: return load;
    case opt::FusedKind::kStore: return store;
    case opt::FusedKind::kImm: return imm;
    case opt::FusedKind::kAlu: return alu[op];
    case opt::FusedKind::kImmAlu: return imm_alu[op];
    case opt::FusedKind::kLoadAlu: return load_alu[op];
    case opt::FusedKind::kAluStore: return alu_store[op];
    case opt::FusedKind::kLoadAluStore: return load_alu_store[op];
    case opt::FusedKind::kRegRun: return reg_run;
    case opt::FusedKind::kTripleRun: return triple_run[op];
  }
  return nullptr;
}

const KernelTable* kernel_table_for(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return kernel_table_w1();
    case SimdIsa::kSse2:
    case SimdIsa::kNeon:
      return kernel_table_w2();
    case SimdIsa::kAvx2:
#if defined(OBX_SIMD_HAVE_AVX2)
      return kernel_table_avx2();
#else
      return kernel_table_w2();
#endif
    case SimdIsa::kAvx512:
#if defined(OBX_SIMD_HAVE_AVX512)
      return kernel_table_avx512();
#elif defined(OBX_SIMD_HAVE_AVX2)
      return kernel_table_avx2();
#else
      return kernel_table_w2();
#endif
  }
  return kernel_table_w1();
}

}  // namespace obx::exec::jit

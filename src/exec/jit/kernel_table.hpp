// Per-ISA tables of opcode-specialized kernel entry points for the
// copy-and-patch JIT.
//
// The JIT does not generate kernel bodies: the pre-compiled, width-specialized
// kernels of backend_kernels.hpp *are* the templates, compiled per-ISA exactly
// as the switch backend's TUs are (w1/w2/avx2/avx512, each under its own
// target flags).  What the emitter needs is a stable native entry point per
// (fused kind, opcode) so a segment can become a straight-line sequence of
// patched calls with zero dispatch — and that is this table: every kernel
// re-exported under one uniform C-compatible signature with the opcode bound
// at compile time.
//
// Each per-ISA accessor is defined in that ISA's translation unit
// (backend_w1/w2/avx2/avx512.cpp), so the entries carry that TU's target
// flags and — like the segment bodies — no wide-vector code can be
// linker-folded into a baseline caller.
#pragma once

#include <cstddef>

#include "common/simd_isa.hpp"
#include "opt/fusion.hpp"
#include "trace/step.hpp"

namespace obx::exec::detail {
struct Tile;
}

namespace obx::exec::jit {

/// The one calling convention every JIT kernel entry shares.  Emitted code
/// materialises all three arguments for every call; entries that need fewer
/// ignore the rest.  The third argument is the op's run-step body
/// (run_steps.data() + run_begin) — meaningful for kRegRun / kTripleRun only.
using KernelFn = void (*)(const detail::Tile*, const opt::FusedOp*,
                          const trace::Step*);

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(trace::Op::kMov) + 1;

struct KernelTable {
  KernelFn load = nullptr;
  KernelFn store = nullptr;
  KernelFn imm = nullptr;
  KernelFn reg_run = nullptr;
  KernelFn alu[kOpCount] = {};
  KernelFn imm_alu[kOpCount] = {};
  KernelFn load_alu[kOpCount] = {};
  KernelFn alu_store[kOpCount] = {};
  KernelFn load_alu_store[kOpCount] = {};
  KernelFn triple_run[kOpCount] = {};

  /// The entry the emitter patches in for one fused op; null only for an
  /// out-of-range opcode, which a well-formed CompiledProgram never holds
  /// (the emitter treats null as an emission failure, not a crash).
  KernelFn select(const opt::FusedOp& f) const;
};

// Defined one per ISA translation unit; each builds its table lazily on
// first use (function-local static, thread-safe).
const KernelTable* kernel_table_w1();
const KernelTable* kernel_table_w2();
#if defined(OBX_SIMD_HAVE_AVX2)
const KernelTable* kernel_table_avx2();
#endif
#if defined(OBX_SIMD_HAVE_AVX512)
const KernelTable* kernel_table_avx512();
#endif

/// Maps a SIMD tier to its kernel table, degrading to the widest set this
/// binary contains — the same ladder as the switch backend's segment_fn_for,
/// so JIT and switch always agree on which kernel bodies run for a tier.
const KernelTable* kernel_table_for(SimdIsa isa);

}  // namespace obx::exec::jit

// W^X executable-code arena for the copy-and-patch JIT.
//
// One arena per emitted JitProgram: mmap(2)ed read-write while the emitter
// copies and patches code into it, then flipped read+execute with mprotect(2)
// — the span is never writable and executable at the same time — and the
// instruction cache flushed before the first call.  The mapping lives as long
// as the arena (and so as long as the JitProgram that owns the entry points
// into it); unmapped on destruction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace obx::exec::jit {

class CodeArena {
 public:
  CodeArena() = default;
  ~CodeArena();
  CodeArena(const CodeArena&) = delete;
  CodeArena& operator=(const CodeArena&) = delete;

  /// Maps at least `bytes` of read-write anonymous memory (page-rounded).
  /// False on platforms without mmap or when the mapping fails; an arena can
  /// be allocated at most once.  `near` is an optional placement hint: the
  /// arena asks the kernel for an address in that neighbourhood (without
  /// MAP_FIXED, so a taken range degrades to "anywhere" rather than failing
  /// or clobbering).  The emitter hints with a kernel's own address so the
  /// pre-compiled kernels land within rel32 `call` reach of the emitted
  /// code whenever the address space allows it.
  bool allocate(std::size_t bytes, const void* near = nullptr);

  /// Flips the mapping to read+execute and flushes the instruction cache.
  /// After sealing the code is immutable for the arena's lifetime.
  bool seal();

  std::uint8_t* data() { return base_; }
  const std::uint8_t* data() const { return base_; }
  std::size_t size() const { return size_; }
  bool sealed() const { return sealed_; }

 private:
  std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  bool sealed_ = false;
};

}  // namespace obx::exec::jit

#include "exec/jit/jit_program.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "exec/backend_detail.hpp"
#include "exec/jit/kernel_table.hpp"

namespace obx::exec {

bool jit_platform_supported() {
#if defined(__x86_64__) && defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool jit_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("OBX_JIT");
    if (env == nullptr) return true;
    const std::string_view v(env);
    return !(v == "0" || v == "off" || v == "false");
  }();
  return enabled;
}

bool jit_available() { return jit_platform_supported() && jit_enabled(); }

#if defined(__x86_64__) && defined(__linux__)

namespace {

// Byte budget of the emitted template (see the header comment for the
// instruction sequence).  kPerOpBytes is the worst case — the imm64
// kernel-call form; when the arena lands within rel32 reach of the kernels
// (the hinted mmap makes this the common case) each op is 7 bytes shorter.
// SysV stack discipline checks out: entry rsp is 8 mod 16, `push rbx` makes
// it 0 mod 16, so every patched `call` hands the kernel a correctly aligned
// frame.
constexpr std::size_t kPrologueBytes = 4;  // push rbx; mov rbx, rdi
constexpr std::size_t kPerOpBytes = 35;    // 3 movabs + mov + call rax
constexpr std::size_t kEpilogueBytes = 2;  // pop rbx; ret

std::uint8_t* put(std::uint8_t* c, std::initializer_list<std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) *c++ = b;
  return c;
}

std::uint8_t* put_imm64(std::uint8_t* c, std::uint64_t v) {
  std::memcpy(c, &v, sizeof(v));
  return c + sizeof(v);
}

template <class T>
std::uint64_t addr_of(const T* p) {
  return reinterpret_cast<std::uint64_t>(p);
}

// call <kernel>: a direct rel32 call (statically predicted, 5 bytes) when
// the target is within ±2 GiB of the call site, else the indirect imm64
// form (12 bytes).  The displacement is measured from the end of the rel32
// instruction, i.e. c + 5.
std::uint8_t* put_call(std::uint8_t* c, jit::KernelFn fn) {
  const auto target = reinterpret_cast<std::int64_t>(fn);
  const auto next_ip = static_cast<std::int64_t>(addr_of(c)) + 5;
  const std::int64_t rel = target - next_ip;
  if (rel >= INT32_MIN && rel <= INT32_MAX) {
    c = put(c, {0xE8});  // call rel32
    const auto rel32 = static_cast<std::int32_t>(rel);
    std::memcpy(c, &rel32, sizeof(rel32));
    return c + sizeof(rel32);
  }
  c = put(c, {0x48, 0xB8});  // movabs rax, <kernel>
  c = put_imm64(c, static_cast<std::uint64_t>(target));
  return put(c, {0xFF, 0xD0});  // call rax
}

}  // namespace

std::shared_ptr<const JitProgram> JitProgram::emit(
    std::shared_ptr<const CompiledProgram> compiled, SimdIsa isa) {
  if (compiled == nullptr || !jit_available()) return nullptr;
  const jit::KernelTable* table = jit::kernel_table_for(isa);
  if (table == nullptr) return nullptr;

  std::size_t total = 0;
  for (const CompiledProgram::Segment& seg : compiled->segments()) {
    total += kPrologueBytes + seg.ops.size() * kPerOpBytes + kEpilogueBytes;
  }

  auto jp = std::shared_ptr<JitProgram>(new JitProgram());
  jp->compiled_ = std::move(compiled);
  jp->isa_ = isa;
  if (total == 0) return jp;  // empty program: nothing to emit, nothing to run
  // Hint the arena next to the kernel text so rel32 calls usually reach.
  const auto near_hint =
      reinterpret_cast<const void*>(reinterpret_cast<std::uintptr_t>(table->load));
  if (!jp->arena_.allocate(total, near_hint)) return nullptr;

  std::uint8_t* c = jp->arena_.data();
  for (const CompiledProgram::Segment& seg : jp->compiled_->segments()) {
    jp->entries_.push_back(reinterpret_cast<SegmentEntry>(c));
    c = put(c, {0x53});              // push rbx
    c = put(c, {0x48, 0x89, 0xFB});  // mov rbx, rdi   (rbx = Tile*)
    const trace::Step* runs = seg.run_steps.data();
    for (const opt::FusedOp& f : seg.ops) {
      const jit::KernelFn fn = table->select(f);
      if (fn == nullptr) return nullptr;
      c = put(c, {0x48, 0x89, 0xDF});  // mov rdi, rbx
      c = put(c, {0x48, 0xBE});        // movabs rsi, <FusedOp*>
      c = put_imm64(c, addr_of(&f));
      c = put(c, {0x48, 0xBA});        // movabs rdx, <run Step*>
      c = put_imm64(c, addr_of(runs + f.run_begin));
      c = put_call(c, fn);             // call <kernel> (rel32 or imm64 form)
      jp->patch_count_ += 3;
    }
    c = put(c, {0x5B});  // pop rbx
    c = put(c, {0xC3});  // ret
  }
  jp->code_bytes_ = static_cast<std::size_t>(c - jp->arena_.data());
  OBX_CHECK(jp->code_bytes_ <= total, "JIT emitter overran its size estimate");
  if (!jp->arena_.seal()) return nullptr;
  return jp;
}

#else  // non-x86-64 / non-Linux: emission always reports failure.

std::shared_ptr<const JitProgram> JitProgram::emit(
    std::shared_ptr<const CompiledProgram>, SimdIsa) {
  return nullptr;
}

#endif

std::shared_ptr<const JitProgram> JitProgram::get_or_emit(
    const trace::Program& program, std::shared_ptr<const CompiledProgram> compiled,
    SimdIsa isa) {
  if (compiled == nullptr || !jit_available()) return nullptr;
  const std::shared_ptr<trace::ExecCacheSlot> slot = program.exec_cache;
  const auto idx = static_cast<std::size_t>(isa);
  if (slot == nullptr || idx >= trace::ExecCacheSlot::kJitTiers) {
    return emit(std::move(compiled), isa);
  }
  std::lock_guard lock(slot->mutex);
  if (slot->jit_attempted[idx]) {
    return std::static_pointer_cast<const JitProgram>(slot->jit_artifact[idx]);
  }
  slot->jit_attempted[idx] = true;
  std::shared_ptr<const JitProgram> jp = emit(std::move(compiled), isa);
  slot->jit_artifact[idx] = jp;
  return jp;
}

void run_jit_chunk(const JitProgram& jit, const bulk::Layout& layout,
                   std::span<const Word> inputs, std::size_t input_words,
                   std::span<Word> memory, Lane lane_begin, Lane lane_end,
                   std::size_t tile_lanes) {
  OBX_CHECK(tile_lanes > 0, "tile size must be positive");
  const CompiledProgram& compiled = jit.compiled();
  OBX_CHECK(compiled.memory_words() == layout.words_per_input(),
            "jitted program sized for a different layout");
  const std::size_t reg_count = std::max<std::size_t>(compiled.register_count(), 1);
  // Grow-only thread-local register scratch, exactly as run_compiled_chunk:
  // one pool task per tile means this entry point is the per-tile hot path.
  thread_local aligned_vector<Word> regs;
  const std::size_t regs_needed = reg_count * tile_lanes;
  if (regs.size() < regs_needed) regs.resize(regs_needed);

  detail::Tile t;
  t.regs = regs.data();
  t.cap = tile_lanes;
  t.mem = memory.data();
  t.p = layout.lanes();
  t.n = layout.words_per_input();
  t.block = layout.block();
  t.arr = layout.arrangement();

  for (std::size_t base = lane_begin; base < lane_end; base += tile_lanes) {
    t.base = base;
    t.len = std::min(tile_lanes, lane_end - base);
    detail::scatter_tile(t, inputs, input_words);
    std::fill_n(regs.data(), regs_needed, Word{0});
    for (const JitProgram::SegmentEntry entry : jit.entries()) entry(&t);
  }
}

}  // namespace obx::exec

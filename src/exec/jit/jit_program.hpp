// Copy-and-patch JIT over fused segments: the zero-dispatch execution engine.
//
// The compiled backend (exec/backend.cpp) still pays two switches per fused
// op per tile: the segment loop's FusedKind switch and dispatch_op's opcode
// switch inside the op-dispatching kernels.  The JIT removes both.  For each
// CompiledProgram segment it emits straight-line x86-64 code — one patched
// call per fused op — into a W^X CodeArena:
//
//   push rbx              ; prologue: rbx carries the Tile* across calls
//   mov  rbx, rdi
//   ...per fused op...
//   mov    rdi, rbx       ; arg0 = Tile*
//   movabs rsi, <FusedOp*>; arg1 = this op (patched immediate)
//   movabs rdx, <Step*>   ; arg2 = its run-step body (patched immediate)
//   call   <kernel>       ; opcode-specialized entry (patched rel32 when the
//   ...                   ; arena landed within ±2 GiB of the kernel text —
//   pop  rbx              ; the hinted mmap makes that the common case —
//   ret                   ; else patched imm64: movabs rax + call rax)
//
// The kernel bodies are not generated: they are the pre-compiled,
// width-specialized kernels of backend_kernels.hpp (the per-ISA w1/w2/avx2/
// avx512 TUs), reached through jit::KernelTable with the opcode bound at
// C++-compile time — copy-and-patch at call-thunk granularity.  The patched
// FusedOp/Step pointers stay valid because a JitProgram keeps its
// CompiledProgram (immutable, shared) alive.
//
// Emission is memoised per (program, ISA) through the same
// trace::ExecCacheSlot that memoises the compile, so executors and plans
// share one emitted artifact per process.  Any failure — unsupported
// platform, OBX_JIT=0, mmap/mprotect refusal, an op the table lacks —
// returns null and callers fall back to the compiled-switch backend (then
// the interpreter), which is why every current platform stays green.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "exec/compiled_program.hpp"
#include "exec/jit/code_arena.hpp"

namespace obx::exec {

namespace detail {
struct Tile;
}

/// True when this build/OS can emit and execute native code (x86-64 Linux).
bool jit_platform_supported();

/// False when the OBX_JIT environment variable is "0"/"off"/"false" — the
/// kill switch.  Latched on first call, like OBX_SIMD, so one process never
/// mixes engines behind a cached plan's back.
bool jit_enabled();

/// jit_platform_supported() && jit_enabled(): whether emission may succeed.
bool jit_available();

class JitProgram {
 public:
  /// One emitted segment body: runs every fused op of that segment over the
  /// tile, straight-line, zero dispatch.
  using SegmentEntry = void (*)(const detail::Tile*);

  /// Emits native code for every segment of `compiled` against the kernel
  /// table of `isa` (degraded to the widest set this binary has, mirroring
  /// the switch backend).  Null on any failure; never throws.
  static std::shared_ptr<const JitProgram> emit(
      std::shared_ptr<const CompiledProgram> compiled, SimdIsa isa);

  /// emit(), memoised per (program, ISA) through program.exec_cache — the
  /// same slot that memoises the compile, so every executor and plan shares
  /// one emitted artifact per process.  A failed emission is remembered and
  /// not retried.  `compiled` should be the slot's own memoised artifact
  /// (CompiledProgram::get_or_compile); callers holding a privately-compiled
  /// program should use emit() directly.
  static std::shared_ptr<const JitProgram> get_or_emit(
      const trace::Program& program,
      std::shared_ptr<const CompiledProgram> compiled, SimdIsa isa);

  const std::vector<SegmentEntry>& entries() const { return entries_; }
  const CompiledProgram& compiled() const { return *compiled_; }
  std::size_t code_bytes() const { return code_bytes_; }
  /// Operands filled in during emission — three per fused op: the FusedOp*
  /// and its run-step body (imm64), and the kernel entry (rel32 or imm64).
  std::size_t patch_count() const { return patch_count_; }
  SimdIsa isa() const { return isa_; }

 private:
  JitProgram() = default;

  std::shared_ptr<const CompiledProgram> compiled_;
  std::vector<SegmentEntry> entries_;
  std::size_t code_bytes_ = 0;
  std::size_t patch_count_ = 0;
  SimdIsa isa_ = SimdIsa::kScalar;
  jit::CodeArena arena_;
};

/// Executes emitted code over lanes [lane_begin, lane_end), tile by tile —
/// the JIT twin of run_compiled_chunk, with the same tiling, scatter and
/// register-scratch behaviour (and the same thread-safety contract).  The
/// SIMD tier is baked into the emitted code, so there is no isa parameter.
void run_jit_chunk(const JitProgram& jit, const bulk::Layout& layout,
                   std::span<const Word> inputs, std::size_t input_words,
                   std::span<Word> memory, Lane lane_begin, Lane lane_end,
                   std::size_t tile_lanes);

}  // namespace obx::exec

// W-templated bodies of every compiled-backend kernel.
//
// Each kernel walks its tile W lanes at a time (Vec<W> main loop) and
// finishes the ragged tail scalar (the same body instantiated at V = 1), so
// any tile length is legal at any width.  Per-lane semantics are exactly the
// scalar engine's: every element goes through trace::apply_one, and a lane's
// result never depends on another lane's (obliviousness means no cross-lane
// data flow inside a fused op — the only carried state, the triple-run
// accumulator, is carried per lane in the vector register).
//
// This header is included by the per-ISA translation units only
// (backend_w1/w2/avx2/avx512.cpp).  Everything here is `static` so each TU
// compiles its own copy under its own target flags: a symbol with external
// or inline linkage could be linker-folded across TUs, handing a baseline
// CPU an AVX-512 body.  Each TU instantiates exactly one width W.
#pragma once

#include <cstddef>
#include <utility>

#include "exec/backend_detail.hpp"
#include "exec/jit/kernel_table.hpp"
#include "exec/simd.hpp"
#include "opt/fusion.hpp"
#include "trace/alu_ops.hpp"

namespace obx::exec::detail {

namespace kernels {

using opt::FusedKind;
using opt::FusedOp;
using trace::Op;
using trace::Step;
using trace::StepKind;

/// Arranged-memory access at tile lane j: UNIT is the stride-1 fast path
/// (column-wise / blocked), the strided path serves row-wise and
/// conflict-free layouts (see lane_word_stride).
template <std::size_t V, bool UNIT>
static OBX_ALWAYS_INLINE Vec<V> vload(const MemRef& m, std::size_t j) {
  if constexpr (UNIT) return Vec<V>::load(m.ptr + j);
  else return Vec<V>::load(m.ptr + j * m.stride, m.stride);
}

template <std::size_t V, bool UNIT>
static OBX_ALWAYS_INLINE void vstore(const MemRef& m, std::size_t j, Vec<V> x) {
  if constexpr (UNIT) x.store(m.ptr + j);
  else x.store(m.ptr + j * m.stride, m.stride);
}

/// Lockstep ALU over register columns with the opcode already resolved: the
/// shared inner loop of kAlu and the ALU steps of kRegRun, and the body the
/// JIT's op-specialized entries bind directly (no dispatch_op at run time).
template <Op OP, std::size_t W>
static OBX_ALWAYS_INLINE void alu_sweep_op(Word* d, const Word* a, const Word* b,
                                           const Word* c, std::size_t len) {
  std::size_t j = 0;
  for (; j + W <= len; j += W) {
    vapply<OP, W>(Vec<W>::load(a + j), Vec<W>::load(b + j), Vec<W>::load(c + j),
                  Vec<W>::load(d + j))
        .store(d + j);
  }
  for (; j < len; ++j) d[j] = trace::apply_one<OP>(a[j], b[j], c[j], d[j]);
}

template <std::size_t W>
static OBX_ALWAYS_INLINE void alu_sweep(Op op, Word* d, const Word* a, const Word* b,
                                        const Word* c, std::size_t len) {
  dispatch_op(op, [&](auto opc) {
    alu_sweep_op<decltype(opc)::value, W>(d, a, b, c, len);
  });
}

// ---------------------------------------------------------------------------
// Singleton kernels.

template <std::size_t W>
static void k_load(const Tile& t, const FusedOp& f) {
  if ((f.flags & opt::kElideAuxCommit) != 0) return;  // dead value: skip entirely
  const MemRef m = mem_ref(t, f.addr);
  Word* d = reg(t, f.aux);
  auto body = [&](auto unit) {
    constexpr bool UNIT = decltype(unit)::value;
    std::size_t j = 0;
    for (; j + W <= t.len; j += W) vload<W, UNIT>(m, j).store(d + j);
    for (; j < t.len; ++j) vload<1, UNIT>(m, j).store(d + j);
  };
  if (m.stride == 1) body(std::true_type{});
  else body(std::false_type{});
}

template <std::size_t W>
static void k_store(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr2);
  const Word* s = reg(t, f.aux);
  auto body = [&](auto unit) {
    constexpr bool UNIT = decltype(unit)::value;
    std::size_t j = 0;
    for (; j + W <= t.len; j += W) vstore<W, UNIT>(m, j, Vec<W>::load(s + j));
    for (; j < t.len; ++j) vstore<1, UNIT>(m, j, Vec<1>::load(s + j));
  };
  if (m.stride == 1) body(std::true_type{});
  else body(std::false_type{});
}

template <std::size_t W>
static void k_imm(const Tile& t, const FusedOp& f) {
  if ((f.flags & opt::kElideAuxCommit) != 0) return;
  Word* d = reg(t, f.aux);
  const Vec<W> iv = Vec<W>::splat(f.imm);
  std::size_t j = 0;
  for (; j + W <= t.len; j += W) iv.store(d + j);
  for (; j < t.len; ++j) d[j] = f.imm;
}

template <Op OP, std::size_t W>
static void k_alu_op(const Tile& t, const FusedOp& f) {
  alu_sweep_op<OP, W>(reg(t, f.dst), reg(t, f.src0), reg(t, f.src1), reg(t, f.src2),
                      t.len);
}

template <std::size_t W>
static void k_alu(const Tile& t, const FusedOp& f) {
  dispatch_op(f.op, [&](auto opc) { k_alu_op<decltype(opc)::value, W>(t, f); });
}

// ---------------------------------------------------------------------------
// Pair / triple kernels.  In-group consumers of the produced value (the
// loaded word, the immediate, the ALU result) are fed by value forwarding,
// so an elided register commit never changes what the group computes.  The
// forwarding selectors are uniform across the tile, so a vector group just
// selects between whole Vec values.

template <Op OP, std::size_t V>
static OBX_ALWAYS_INLINE void imm_alu_step(Word* ir, Word* d, const Word* a,
                                           const Word* b, const Word* c, Vec<V> iv,
                                           bool commit, bool s0f, bool s1f, bool s2f,
                                           bool ddf, std::size_t j) {
  if (commit) iv.store(ir + j);
  const Vec<V> av = s0f ? iv : Vec<V>::load(a + j);
  const Vec<V> bv = s1f ? iv : Vec<V>::load(b + j);
  const Vec<V> cv = s2f ? iv : Vec<V>::load(c + j);
  const Vec<V> dv = ddf ? iv : Vec<V>::load(d + j);
  vapply<OP, V>(av, bv, cv, dv).store(d + j);
}

template <Op OP, std::size_t W>
static void k_imm_alu_op(const Tile& t, const FusedOp& f) {
  Word* ir = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  const Vec<W> ivw = Vec<W>::splat(f.imm);
  const Vec<1> iv1 = Vec<1>::splat(f.imm);
  std::size_t j = 0;
  for (; j + W <= t.len; j += W)
    imm_alu_step<OP, W>(ir, d, a, b, c, ivw, commit, s0f, s1f, s2f, ddf, j);
  for (; j < t.len; ++j)
    imm_alu_step<OP, 1>(ir, d, a, b, c, iv1, commit, s0f, s1f, s2f, ddf, j);
}

template <std::size_t W>
static void k_imm_alu(const Tile& t, const FusedOp& f) {
  dispatch_op(f.op, [&](auto opc) { k_imm_alu_op<decltype(opc)::value, W>(t, f); });
}

template <Op OP, bool UNIT, std::size_t V>
static OBX_ALWAYS_INLINE void load_alu_step(const MemRef& m, Word* lr, Word* d,
                                            const Word* a, const Word* b, const Word* c,
                                            bool commit, bool s0f, bool s1f, bool s2f,
                                            bool ddf, std::size_t j) {
  const Vec<V> tt = vload<V, UNIT>(m, j);
  if (commit) tt.store(lr + j);
  const Vec<V> av = s0f ? tt : Vec<V>::load(a + j);
  const Vec<V> bv = s1f ? tt : Vec<V>::load(b + j);
  const Vec<V> cv = s2f ? tt : Vec<V>::load(c + j);
  const Vec<V> dv = ddf ? tt : Vec<V>::load(d + j);
  vapply<OP, V>(av, bv, cv, dv).store(d + j);
}

template <Op OP, bool UNIT, std::size_t W>
static void k_load_alu_body(const Tile& t, const FusedOp& f, const MemRef m) {
  Word* lr = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  std::size_t j = 0;
  for (; j + W <= t.len; j += W)
    load_alu_step<OP, UNIT, W>(m, lr, d, a, b, c, commit, s0f, s1f, s2f, ddf, j);
  for (; j < t.len; ++j)
    load_alu_step<OP, UNIT, 1>(m, lr, d, a, b, c, commit, s0f, s1f, s2f, ddf, j);
}

template <Op OP, std::size_t W>
static void k_load_alu_op(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr);
  if (m.stride == 1) k_load_alu_body<OP, true, W>(t, f, m);
  else k_load_alu_body<OP, false, W>(t, f, m);
}

template <std::size_t W>
static void k_load_alu(const Tile& t, const FusedOp& f) {
  dispatch_op(f.op, [&](auto opc) { k_load_alu_op<decltype(opc)::value, W>(t, f); });
}

template <Op OP, bool UNIT, std::size_t V>
static OBX_ALWAYS_INLINE void alu_store_step(const MemRef& m, Word* d, const Word* a,
                                             const Word* b, const Word* c, const Word* s,
                                             bool sfwd, std::size_t j) {
  const Vec<V> v = vapply<OP, V>(Vec<V>::load(a + j), Vec<V>::load(b + j),
                                 Vec<V>::load(c + j), Vec<V>::load(d + j));
  v.store(d + j);
  const Vec<V> sv = sfwd ? v : Vec<V>::load(s + j);
  vstore<V, UNIT>(m, j, sv);
}

template <Op OP, bool UNIT, std::size_t W>
static void k_alu_store_body(const Tile& t, const FusedOp& f, const MemRef m) {
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const Word* s = reg(t, f.aux);
  const bool sfwd = f.aux == f.dst;
  std::size_t j = 0;
  for (; j + W <= t.len; j += W) alu_store_step<OP, UNIT, W>(m, d, a, b, c, s, sfwd, j);
  for (; j < t.len; ++j) alu_store_step<OP, UNIT, 1>(m, d, a, b, c, s, sfwd, j);
}

template <Op OP, std::size_t W>
static void k_alu_store_op(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr2);
  if (m.stride == 1) k_alu_store_body<OP, true, W>(t, f, m);
  else k_alu_store_body<OP, false, W>(t, f, m);
}

template <std::size_t W>
static void k_alu_store(const Tile& t, const FusedOp& f) {
  dispatch_op(f.op, [&](auto opc) { k_alu_store_op<decltype(opc)::value, W>(t, f); });
}

template <Op OP, bool UNIT, std::size_t V>
static OBX_ALWAYS_INLINE void load_alu_store_step(const MemRef& in, const MemRef& out,
                                                  Word* lr, Word* d, const Word* a,
                                                  const Word* b, const Word* c,
                                                  const Word* s, bool commit, bool s0f,
                                                  bool s1f, bool s2f, bool ddf, bool st_v,
                                                  bool st_t, std::size_t j) {
  const Vec<V> tt = vload<V, UNIT>(in, j);
  if (commit) tt.store(lr + j);
  const Vec<V> av = s0f ? tt : Vec<V>::load(a + j);
  const Vec<V> bv = s1f ? tt : Vec<V>::load(b + j);
  const Vec<V> cv = s2f ? tt : Vec<V>::load(c + j);
  const Vec<V> dv = ddf ? tt : Vec<V>::load(d + j);
  const Vec<V> v = vapply<OP, V>(av, bv, cv, dv);
  v.store(d + j);
  const Vec<V> sv = st_v ? v : (st_t ? tt : Vec<V>::load(s + j));
  vstore<V, UNIT>(out, j, sv);
}

template <Op OP, bool UNIT, std::size_t W>
static void k_load_alu_store_body(const Tile& t, const FusedOp& f, const MemRef in,
                                  const MemRef out) {
  Word* lr = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const Word* s = reg(t, f.aux2);
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  const bool st_v = f.aux2 == f.dst;  // store sees the ALU result
  const bool st_t = f.aux2 == f.aux;  // store sees the loaded word
  std::size_t j = 0;
  for (; j + W <= t.len; j += W) {
    load_alu_store_step<OP, UNIT, W>(in, out, lr, d, a, b, c, s, commit, s0f, s1f, s2f,
                                     ddf, st_v, st_t, j);
  }
  for (; j < t.len; ++j) {
    load_alu_store_step<OP, UNIT, 1>(in, out, lr, d, a, b, c, s, commit, s0f, s1f, s2f,
                                     ddf, st_v, st_t, j);
  }
}

template <Op OP, std::size_t W>
static void k_load_alu_store_op(const Tile& t, const FusedOp& f) {
  const MemRef in = mem_ref(t, f.addr);
  const MemRef out = mem_ref(t, f.addr2);
  if (in.stride == 1) k_load_alu_store_body<OP, true, W>(t, f, in, out);
  else k_load_alu_store_body<OP, false, W>(t, f, in, out);
}

template <std::size_t W>
static void k_load_alu_store(const Tile& t, const FusedOp& f) {
  dispatch_op(f.op,
              [&](auto opc) { k_load_alu_store_op<decltype(opc)::value, W>(t, f); });
}

// ---------------------------------------------------------------------------
// Run kernels.

/// A run of register-only steps, executed step-outer over the L1-resident
/// register tile (the tile is the whole point: every sweep hits L1).
template <std::size_t W>
static void k_reg_run(const Tile& t, const FusedOp& f, const Step* body) {
  for (std::uint32_t k = 0; k < f.run_len; ++k) {
    const Step& s = body[k];
    if (s.kind == StepKind::kImm) {
      Word* d = reg(t, s.dst);
      const Vec<W> iv = Vec<W>::splat(s.imm);
      std::size_t j = 0;
      for (; j + W <= t.len; j += W) iv.store(d + j);
      for (; j < t.len; ++j) d[j] = s.imm;
    } else {
      alu_sweep<W>(s.op, reg(t, s.dst), reg(t, s.src0), reg(t, s.src1), reg(t, s.src2),
                   t.len);
    }
  }
}

/// GW consecutive triples of a kTripleRun for V lanes: the V accumulators are
/// read from and written back to their register column once per GW triples
/// and carried in a vector register in between — the scan/reduction fast
/// path.  COMMIT (last group of a run with a live loaded register) also
/// commits the final loaded words; a template parameter so the hot
/// non-committing loop has no conditional store.
template <Op OP, bool UNIT, int GW, bool COMMIT, std::size_t V>
static OBX_ALWAYS_INLINE void triple_group_step(std::size_t stride, Word* acc, Word* ldr,
                                                Word* const* in, Word* const* out,
                                                bool s0l, bool s1l, std::size_t j) {
  Vec<V> v = Vec<V>::load(acc + j);
  Vec<V> tt = Vec<V>::splat(0);
  for (int w = 0; w < GW; ++w) {
    tt = UNIT ? Vec<V>::load(in[w] + j) : Vec<V>::load(in[w] + j * stride, stride);
    const Vec<V> a = s0l ? tt : v;
    const Vec<V> b = s1l ? tt : v;
    v = vapply<OP, V>(a, b, Vec<V>::splat(0), v);
    if (UNIT) v.store(out[w] + j);
    else v.store(out[w] + j * stride, stride);
  }
  v.store(acc + j);
  if constexpr (COMMIT) tt.store(ldr + j);
  else (void)ldr;
}

template <Op OP, bool UNIT, int GW, bool COMMIT, std::size_t W>
static void k_triple_group(const Tile& t, Word* acc, Word* ldr, Word* const* in,
                           Word* const* out, bool s0l, bool s1l) {
  const std::size_t stride = UNIT ? 1 : lane_word_stride(t);
  std::size_t j = 0;
  for (; j + W <= t.len; j += W) {
    triple_group_step<OP, UNIT, GW, COMMIT, W>(stride, acc, ldr, in, out, s0l, s1l, j);
  }
  for (; j < t.len; ++j) {
    triple_group_step<OP, UNIT, GW, COMMIT, 1>(stride, acc, ldr, in, out, s0l, s1l, j);
  }
}

template <Op OP, std::size_t W>
static void k_triple_run_op(const Tile& t, const FusedOp& f, const Step* body) {
  constexpr int kGw = 8;
  Word* acc = reg(t, f.dst);
  Word* ldr = reg(t, f.aux);
  const bool s0l = (f.flags & opt::kTripleS0Loaded) != 0;
  const bool s1l = (f.flags & opt::kTripleS1Loaded) != 0;
  const bool want_ld = (f.flags & opt::kElideAuxCommit) == 0;
  const bool unit = lane_word_stride(t) == 1;
  const std::size_t runs = f.run_len;
  Word* in[kGw];
  Word* out[kGw];
  std::size_t k = 0;
  for (; k + kGw <= runs; k += kGw) {
    for (int w = 0; w < kGw; ++w) {
      const std::size_t base = (k + static_cast<std::size_t>(w)) * 3;
      in[w] = mem_ref(t, body[base].addr).ptr;
      out[w] = mem_ref(t, body[base + 2].addr).ptr;
    }
    const bool commit = want_ld && k + kGw == runs;
    if (unit) {
      if (commit) k_triple_group<OP, true, kGw, true, W>(t, acc, ldr, in, out, s0l, s1l);
      else k_triple_group<OP, true, kGw, false, W>(t, acc, ldr, in, out, s0l, s1l);
    } else {
      if (commit) k_triple_group<OP, false, kGw, true, W>(t, acc, ldr, in, out, s0l, s1l);
      else k_triple_group<OP, false, kGw, false, W>(t, acc, ldr, in, out, s0l, s1l);
    }
  }
  for (; k < runs; ++k) {
    in[0] = mem_ref(t, body[k * 3].addr).ptr;
    out[0] = mem_ref(t, body[k * 3 + 2].addr).ptr;
    const bool commit = want_ld && k + 1 == runs;
    if (unit) {
      if (commit) k_triple_group<OP, true, 1, true, W>(t, acc, ldr, in, out, s0l, s1l);
      else k_triple_group<OP, true, 1, false, W>(t, acc, ldr, in, out, s0l, s1l);
    } else {
      if (commit) k_triple_group<OP, false, 1, true, W>(t, acc, ldr, in, out, s0l, s1l);
      else k_triple_group<OP, false, 1, false, W>(t, acc, ldr, in, out, s0l, s1l);
    }
  }
}

template <std::size_t W>
static void k_triple_run(const Tile& t, const FusedOp& f, const Step* body) {
  dispatch_op(f.op,
              [&](auto opc) { k_triple_run_op<decltype(opc)::value, W>(t, f, body); });
}

// ---------------------------------------------------------------------------

template <std::size_t W>
static void exec_segment_w(const Tile& t, const CompiledProgram::Segment& seg) {
  const Step* runs = seg.run_steps.data();
  for (const FusedOp& f : seg.ops) {
    switch (f.kind) {
      case FusedKind::kLoad: k_load<W>(t, f); break;
      case FusedKind::kStore: k_store<W>(t, f); break;
      case FusedKind::kImm: k_imm<W>(t, f); break;
      case FusedKind::kAlu: k_alu<W>(t, f); break;
      case FusedKind::kImmAlu: k_imm_alu<W>(t, f); break;
      case FusedKind::kLoadAlu: k_load_alu<W>(t, f); break;
      case FusedKind::kAluStore: k_alu_store<W>(t, f); break;
      case FusedKind::kLoadAluStore: k_load_alu_store<W>(t, f); break;
      case FusedKind::kRegRun: k_reg_run<W>(t, f, runs + f.run_begin); break;
      case FusedKind::kTripleRun: k_triple_run<W>(t, f, runs + f.run_begin); break;
    }
  }
}

// ---------------------------------------------------------------------------
// JIT entry points: every kernel above re-exported under the one uniform
// signature emitted code calls (jit::KernelFn), with the opcode already bound
// as a template argument — so a patched call site carries no dispatch at all,
// neither the segment switch nor dispatch_op's opcode switch.  Unused
// parameters (the run-step pointer for non-run kernels) are simply ignored;
// the emitter always materialises all three arguments.

template <std::size_t W>
static void j_load(const Tile* t, const FusedOp* f, const Step*) {
  k_load<W>(*t, *f);
}
template <std::size_t W>
static void j_store(const Tile* t, const FusedOp* f, const Step*) {
  k_store<W>(*t, *f);
}
template <std::size_t W>
static void j_imm(const Tile* t, const FusedOp* f, const Step*) {
  k_imm<W>(*t, *f);
}
template <std::size_t W>
static void j_reg_run(const Tile* t, const FusedOp* f, const Step* body) {
  k_reg_run<W>(*t, *f, body);
}
template <std::size_t W, Op OP>
static void j_alu(const Tile* t, const FusedOp* f, const Step*) {
  k_alu_op<OP, W>(*t, *f);
}
template <std::size_t W, Op OP>
static void j_imm_alu(const Tile* t, const FusedOp* f, const Step*) {
  k_imm_alu_op<OP, W>(*t, *f);
}
template <std::size_t W, Op OP>
static void j_load_alu(const Tile* t, const FusedOp* f, const Step*) {
  k_load_alu_op<OP, W>(*t, *f);
}
template <std::size_t W, Op OP>
static void j_alu_store(const Tile* t, const FusedOp* f, const Step*) {
  k_alu_store_op<OP, W>(*t, *f);
}
template <std::size_t W, Op OP>
static void j_load_alu_store(const Tile* t, const FusedOp* f, const Step*) {
  k_load_alu_store_op<OP, W>(*t, *f);
}
template <std::size_t W, Op OP>
static void j_triple_run(const Tile* t, const FusedOp* f, const Step* body) {
  k_triple_run_op<OP, W>(*t, *f, body);
}

/// Builds this TU's kernel table: one opcode-specialized entry per (fused
/// kind, op) at this TU's width and target flags.  `static`, like everything
/// here, so no other TU's table can alias these symbols.
template <std::size_t W, std::size_t... I>
static jit::KernelTable make_kernel_table(std::index_sequence<I...>) {
  jit::KernelTable tb;
  tb.load = &j_load<W>;
  tb.store = &j_store<W>;
  tb.imm = &j_imm<W>;
  tb.reg_run = &j_reg_run<W>;
  ((tb.alu[I] = &j_alu<W, static_cast<Op>(I)>), ...);
  ((tb.imm_alu[I] = &j_imm_alu<W, static_cast<Op>(I)>), ...);
  ((tb.load_alu[I] = &j_load_alu<W, static_cast<Op>(I)>), ...);
  ((tb.alu_store[I] = &j_alu_store<W, static_cast<Op>(I)>), ...);
  ((tb.load_alu_store[I] = &j_load_alu_store<W, static_cast<Op>(I)>), ...);
  ((tb.triple_run[I] = &j_triple_run<W, static_cast<Op>(I)>), ...);
  return tb;
}

template <std::size_t W>
static jit::KernelTable make_kernel_table() {
  return make_kernel_table<W>(std::make_index_sequence<jit::kOpCount>{});
}

}  // namespace kernels

}  // namespace obx::exec::detail

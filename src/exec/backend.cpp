#include "exec/backend.hpp"

#include <algorithm>
#include <bit>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "exec/backend_detail.hpp"

namespace obx::exec {

namespace detail {

using bulk::Arrangement;

/// Scatters this tile's inputs into arranged memory.  Column-wise/blocked is
/// a cache-blocked transpose (sub-tiles of lanes keep the source lines
/// L1-resident); row-wise input rows are contiguous copies.
void scatter_tile(const Tile& t, std::span<const Word> inputs, std::size_t iw) {
  if (iw == 0) return;
  const Word* src_base = inputs.data();
  switch (t.arr) {
    case Arrangement::kRowWise: {
      for (std::size_t j = 0; j < t.len; ++j) {
        const Word* src = src_base + (t.base + j) * iw;
        Word* dst = t.mem + (t.base + j) * t.n;
        std::copy(src, src + iw, dst);
      }
      break;
    }
    case Arrangement::kColumnWise:
    case Arrangement::kBlocked: {
      // Two-level tiled transpose.  Lane sub-blocks of 256 keep the block's
      // input pages resident in the L2 TLB and its source lines in L1;
      // 8-word (one cacheline) address tiles turn the inner loop into one
      // full source line scattered onto 8 contiguous write streams.
      constexpr std::size_t kSub = 256;
      constexpr std::size_t kLine = 8;
      for (std::size_t jb = 0; jb < t.len; jb += kSub) {
        const std::size_t je = std::min(jb + kSub, t.len);
        std::size_t i0 = 0;
        for (; i0 + kLine <= iw; i0 += kLine) {
          Word* dst[kLine];
          for (std::size_t k = 0; k < kLine; ++k) {
            dst[k] = mem_ref(t, static_cast<Addr>(i0 + k)).ptr;
          }
          for (std::size_t j = jb; j < je; ++j) {
            const Word* src = src_base + (t.base + j) * iw + i0;
            for (std::size_t k = 0; k < kLine; ++k) dst[k][j] = src[k];
          }
        }
        for (; i0 < iw; ++i0) {
          const MemRef m = mem_ref(t, static_cast<Addr>(i0));
          for (std::size_t j = jb; j < je; ++j) {
            m.ptr[j] = src_base[(t.base + j) * iw + i0];
          }
        }
      }
      break;
    }
    case Arrangement::kConflictFree: {
      // Same two-level transpose, but destinations are `stride` words apart
      // (the pad stride of the conflict-free layout).
      constexpr std::size_t kSub = 256;
      constexpr std::size_t kLine = 8;
      const std::size_t stride = t.block;
      for (std::size_t jb = 0; jb < t.len; jb += kSub) {
        const std::size_t je = std::min(jb + kSub, t.len);
        std::size_t i0 = 0;
        for (; i0 + kLine <= iw; i0 += kLine) {
          Word* dst[kLine];
          for (std::size_t k = 0; k < kLine; ++k) {
            dst[k] = mem_ref(t, static_cast<Addr>(i0 + k)).ptr;
          }
          for (std::size_t j = jb; j < je; ++j) {
            const Word* src = src_base + (t.base + j) * iw + i0;
            for (std::size_t k = 0; k < kLine; ++k) dst[k][j * stride] = src[k];
          }
        }
        for (; i0 < iw; ++i0) {
          const MemRef m = mem_ref(t, static_cast<Addr>(i0));
          for (std::size_t j = jb; j < je; ++j) {
            m.ptr[j * stride] = src_base[(t.base + j) * iw + i0];
          }
        }
      }
      break;
    }
  }
}

}  // namespace detail

namespace {

using bulk::Arrangement;
using detail::Tile;

using SegmentFn = void (*)(const Tile&, const CompiledProgram::Segment&);

/// Maps the requested SIMD tier to its segment body, degrading to the widest
/// engine this binary actually contains (an AVX2-less toolchain build asked
/// for kAvx2 still runs, on the baseline 128-bit engine).
SegmentFn segment_fn_for(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return detail::exec_segment_w1;
    case SimdIsa::kSse2:
    case SimdIsa::kNeon:
      return detail::exec_segment_w2;
    case SimdIsa::kAvx2:
#if defined(OBX_SIMD_HAVE_AVX2)
      return detail::exec_segment_avx2;
#else
      return detail::exec_segment_w2;
#endif
    case SimdIsa::kAvx512:
#if defined(OBX_SIMD_HAVE_AVX512)
      return detail::exec_segment_avx512;
#elif defined(OBX_SIMD_HAVE_AVX2)
      return detail::exec_segment_avx2;
#else
      return detail::exec_segment_w2;
#endif
  }
  return detail::exec_segment_w1;
}

}  // namespace

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kInterpreted: return "interpreted";
    case Backend::kCompiled: return "compiled";
    case Backend::kJit: return "jit";
  }
  return "?";
}

std::size_t resolve_tile_lanes(std::size_t requested, std::size_t reg_count,
                               const bulk::Layout& layout, std::size_t vector_width) {
  const std::size_t w = std::max<std::size_t>(vector_width, 1);
  std::size_t tile = requested;
  if (tile == 0) {
    constexpr std::size_t kRegTileBytes = 16 * 1024;
    tile = kRegTileBytes / (sizeof(Word) * std::max<std::size_t>(reg_count, 1));
    // Power of two in [32, 1024]: already a multiple of every vector width.
    tile = std::clamp<std::size_t>(std::bit_floor(tile), 32, 1024);
  }
  tile = std::max<std::size_t>(std::min(tile, layout.lanes()), 1);
  if (layout.arrangement() == Arrangement::kBlocked) {
    // A tile must divide the block (tile addressing relies on one stride).
    // Prefer the largest such divisor that is also a vector-width multiple;
    // fall back to the largest plain divisor of the request (a
    // scalar-tail-only tile) when none exists.
    tile = std::min(tile, layout.block());
    std::size_t vec = 0;
    for (std::size_t d = tile - tile % w; d >= w; d -= w) {
      if (layout.block() % d == 0) {
        vec = d;
        break;
      }
    }
    if (vec != 0) {
      tile = vec;
    } else {
      while (layout.block() % tile != 0) --tile;
    }
  } else if (tile >= w) {
    tile -= tile % w;  // round down to a vector-width multiple
  }
  // Degenerate inputs (p < vector width, reg_count == 0, a blocked layout
  // whose block shares no divisor with the request) must still yield a
  // runnable scalar tile: run_compiled_chunk refuses tile_lanes == 0.
  return std::max<std::size_t>(tile, 1);
}

void run_compiled_chunk(const CompiledProgram& compiled, const bulk::Layout& layout,
                        std::span<const Word> inputs, std::size_t input_words,
                        std::span<Word> memory, Lane lane_begin, Lane lane_end,
                        std::size_t tile_lanes, SimdIsa isa) {
  OBX_CHECK(tile_lanes > 0, "tile size must be positive");
  OBX_CHECK(compiled.memory_words() == layout.words_per_input(),
            "compiled program sized for a different layout");
  const std::size_t reg_count = std::max<std::size_t>(compiled.register_count(), 1);
  // Grow-only thread-local register scratch: with the CorePool submitting
  // one task per tile, this entry point runs once per tile on whichever
  // thread stole it — a heap allocation here would dominate small tiles.
  // Only the first reg_count * tile_lanes words are used (and re-zeroed per
  // tile below), so a large earlier program cannot leak state into this one.
  thread_local aligned_vector<Word> regs;
  const std::size_t regs_needed = reg_count * tile_lanes;
  if (regs.size() < regs_needed) regs.resize(regs_needed);
  const SegmentFn segment_fn = segment_fn_for(isa);

  Tile t;
  t.regs = regs.data();
  t.cap = tile_lanes;
  t.mem = memory.data();
  t.p = layout.lanes();
  t.n = layout.words_per_input();
  t.block = layout.block();
  t.arr = layout.arrangement();

  for (std::size_t base = lane_begin; base < lane_end; base += tile_lanes) {
    t.base = base;
    t.len = std::min(tile_lanes, lane_end - base);
    detail::scatter_tile(t, inputs, input_words);
    std::fill_n(regs.data(), regs_needed, Word{0});
    for (const CompiledProgram::Segment& seg : compiled.segments()) {
      segment_fn(t, seg);
    }
  }
}

}  // namespace obx::exec

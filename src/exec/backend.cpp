#include "exec/backend.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "trace/value.hpp"

namespace obx::exec {

namespace {

using bulk::Arrangement;
using opt::FusedKind;
using opt::FusedOp;
using trace::Op;
using trace::Step;
using trace::StepKind;
using trace::as_f64;
using trace::as_i64;
using trace::from_bool;
using trace::from_f64;
using trace::from_i64;

/// One lane tile: a window of `len` consecutive lanes starting at `base`,
/// with an L1-resident lane-major register tile (register r of tile lane j at
/// regs[r * cap + j]).
struct Tile {
  Word* regs = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;
  Word* mem = nullptr;
  std::size_t p = 0;
  std::size_t n = 0;
  std::size_t block = 0;
  Arrangement arr = Arrangement::kColumnWise;
  std::size_t base = 0;
};

Word* reg(const Tile& t, std::uint8_t r) { return t.regs + std::size_t{r} * t.cap; }

/// Tile-lane j of canonical address a lives at ptr[j * stride].  Valid because
/// a tile never spans a blocked layout's block boundary.
struct MemRef {
  Word* ptr = nullptr;
  std::size_t stride = 1;
};

MemRef mem_ref(const Tile& t, Addr a) {
  switch (t.arr) {
    case Arrangement::kColumnWise:
      return {t.mem + std::size_t{a} * t.p + t.base, 1};
    case Arrangement::kRowWise:
      return {t.mem + t.base * t.n + a, t.n};
    case Arrangement::kBlocked:
      return {t.mem + (t.base / t.block) * (t.n * t.block) + std::size_t{a} * t.block +
                  t.base % t.block,
              1};
  }
  return {};
}

/// apply_alu with the op resolved at compile time, so fused kernels inline
/// the operation into their lane loops.
template <Op OP>
inline Word apply1(Word x, Word y, Word z, Word d) {
  (void)x; (void)y; (void)z; (void)d;
  if constexpr (OP == Op::kNop) return d;
  else if constexpr (OP == Op::kAddF) return from_f64(as_f64(x) + as_f64(y));
  else if constexpr (OP == Op::kSubF) return from_f64(as_f64(x) - as_f64(y));
  else if constexpr (OP == Op::kMulF) return from_f64(as_f64(x) * as_f64(y));
  else if constexpr (OP == Op::kDivF) return from_f64(as_f64(x) / as_f64(y));
  else if constexpr (OP == Op::kMinF) return from_f64(as_f64(x) < as_f64(y) ? as_f64(x) : as_f64(y));
  else if constexpr (OP == Op::kMaxF) return from_f64(as_f64(x) > as_f64(y) ? as_f64(x) : as_f64(y));
  else if constexpr (OP == Op::kNegF) return from_f64(-as_f64(x));
  else if constexpr (OP == Op::kAddI) return x + y;  // wrap via unsigned arithmetic
  else if constexpr (OP == Op::kSubI) return x - y;
  else if constexpr (OP == Op::kMulI) return x * y;
  else if constexpr (OP == Op::kMinI) return from_i64(as_i64(x) < as_i64(y) ? as_i64(x) : as_i64(y));
  else if constexpr (OP == Op::kMaxI) return from_i64(as_i64(x) > as_i64(y) ? as_i64(x) : as_i64(y));
  else if constexpr (OP == Op::kAnd) return x & y;
  else if constexpr (OP == Op::kOr) return x | y;
  else if constexpr (OP == Op::kXor) return x ^ y;
  else if constexpr (OP == Op::kShl) return x << (y & 63);
  else if constexpr (OP == Op::kShr) return x >> (y & 63);
  else if constexpr (OP == Op::kNotU) return ~x;
  else if constexpr (OP == Op::kLtF) return from_bool(as_f64(x) < as_f64(y));
  else if constexpr (OP == Op::kLeF) return from_bool(as_f64(x) <= as_f64(y));
  else if constexpr (OP == Op::kEqF) return from_bool(as_f64(x) == as_f64(y));
  else if constexpr (OP == Op::kLtI) return from_bool(as_i64(x) < as_i64(y));
  else if constexpr (OP == Op::kLeI) return from_bool(as_i64(x) <= as_i64(y));
  else if constexpr (OP == Op::kEqI) return from_bool(x == y);
  else if constexpr (OP == Op::kNeI) return from_bool(x != y);
  else if constexpr (OP == Op::kLtU) return from_bool(x < y);
  else if constexpr (OP == Op::kSelect) return x != 0 ? y : z;
  else if constexpr (OP == Op::kCmovLtF) return as_f64(x) < as_f64(y) ? z : d;
  else if constexpr (OP == Op::kCmovLtI) return as_i64(x) < as_i64(y) ? z : d;
  else if constexpr (OP == Op::kMov) return x;
}

template <class F>
inline void dispatch_op(Op op, F&& f) {
#define OBX_EXEC_OP(O)                                        \
  case Op::O:                                                 \
    f(std::integral_constant<Op, Op::O>{});                   \
    return;
  switch (op) {
    OBX_EXEC_OP(kNop)
    OBX_EXEC_OP(kAddF)
    OBX_EXEC_OP(kSubF)
    OBX_EXEC_OP(kMulF)
    OBX_EXEC_OP(kDivF)
    OBX_EXEC_OP(kMinF)
    OBX_EXEC_OP(kMaxF)
    OBX_EXEC_OP(kNegF)
    OBX_EXEC_OP(kAddI)
    OBX_EXEC_OP(kSubI)
    OBX_EXEC_OP(kMulI)
    OBX_EXEC_OP(kMinI)
    OBX_EXEC_OP(kMaxI)
    OBX_EXEC_OP(kAnd)
    OBX_EXEC_OP(kOr)
    OBX_EXEC_OP(kXor)
    OBX_EXEC_OP(kShl)
    OBX_EXEC_OP(kShr)
    OBX_EXEC_OP(kNotU)
    OBX_EXEC_OP(kLtF)
    OBX_EXEC_OP(kLeF)
    OBX_EXEC_OP(kEqF)
    OBX_EXEC_OP(kLtI)
    OBX_EXEC_OP(kLeI)
    OBX_EXEC_OP(kEqI)
    OBX_EXEC_OP(kNeI)
    OBX_EXEC_OP(kLtU)
    OBX_EXEC_OP(kSelect)
    OBX_EXEC_OP(kCmovLtF)
    OBX_EXEC_OP(kCmovLtI)
    OBX_EXEC_OP(kMov)
  }
#undef OBX_EXEC_OP
  OBX_CHECK(false, "unknown ALU op");
}

// ---------------------------------------------------------------------------
// Singleton kernels.

void k_load(const Tile& t, const FusedOp& f) {
  if ((f.flags & opt::kElideAuxCommit) != 0) return;  // dead value: skip entirely
  const MemRef m = mem_ref(t, f.addr);
  Word* d = reg(t, f.aux);
  if (m.stride == 1) {
    for (std::size_t j = 0; j < t.len; ++j) d[j] = m.ptr[j];
  } else {
    for (std::size_t j = 0; j < t.len; ++j) d[j] = m.ptr[j * m.stride];
  }
}

void k_store(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr2);
  const Word* s = reg(t, f.aux);
  if (m.stride == 1) {
    for (std::size_t j = 0; j < t.len; ++j) m.ptr[j] = s[j];
  } else {
    for (std::size_t j = 0; j < t.len; ++j) m.ptr[j * m.stride] = s[j];
  }
}

void k_imm(const Tile& t, const FusedOp& f) {
  if ((f.flags & opt::kElideAuxCommit) != 0) return;
  Word* d = reg(t, f.aux);
  for (std::size_t j = 0; j < t.len; ++j) d[j] = f.imm;
}

void k_alu(const Tile& t, const FusedOp& f) {
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    for (std::size_t j = 0; j < t.len; ++j) d[j] = apply1<OP>(a[j], b[j], c[j], d[j]);
  });
}

// ---------------------------------------------------------------------------
// Pair / triple kernels.  In-group consumers of the produced value (the
// loaded word, the immediate, the ALU result) are fed by value forwarding,
// so an elided register commit never changes what the group computes.

void k_imm_alu(const Tile& t, const FusedOp& f) {
  Word* ir = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const Word iv = f.imm;
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    for (std::size_t j = 0; j < t.len; ++j) {
      if (commit) ir[j] = iv;
      const Word av = s0f ? iv : a[j];
      const Word bv = s1f ? iv : b[j];
      const Word cv = s2f ? iv : c[j];
      const Word dv = ddf ? iv : d[j];
      d[j] = apply1<OP>(av, bv, cv, dv);
    }
  });
}

template <Op OP, bool UNIT>
void k_load_alu_body(const Tile& t, const FusedOp& f, const MemRef m) {
  Word* lr = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  for (std::size_t j = 0; j < t.len; ++j) {
    const Word tt = UNIT ? m.ptr[j] : m.ptr[j * m.stride];
    if (commit) lr[j] = tt;
    const Word av = s0f ? tt : a[j];
    const Word bv = s1f ? tt : b[j];
    const Word cv = s2f ? tt : c[j];
    const Word dv = ddf ? tt : d[j];
    d[j] = apply1<OP>(av, bv, cv, dv);
  }
}

void k_load_alu(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr);
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    if (m.stride == 1) k_load_alu_body<OP, true>(t, f, m);
    else k_load_alu_body<OP, false>(t, f, m);
  });
}

template <Op OP, bool UNIT>
void k_alu_store_body(const Tile& t, const FusedOp& f, const MemRef m) {
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const Word* s = reg(t, f.aux);
  const bool sfwd = f.aux == f.dst;
  for (std::size_t j = 0; j < t.len; ++j) {
    const Word v = apply1<OP>(a[j], b[j], c[j], d[j]);
    d[j] = v;
    const Word sv = sfwd ? v : s[j];
    if (UNIT) m.ptr[j] = sv;
    else m.ptr[j * m.stride] = sv;
  }
}

void k_alu_store(const Tile& t, const FusedOp& f) {
  const MemRef m = mem_ref(t, f.addr2);
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    if (m.stride == 1) k_alu_store_body<OP, true>(t, f, m);
    else k_alu_store_body<OP, false>(t, f, m);
  });
}

template <Op OP, bool UNIT>
void k_load_alu_store_body(const Tile& t, const FusedOp& f, const MemRef in,
                           const MemRef out) {
  Word* lr = reg(t, f.aux);
  Word* d = reg(t, f.dst);
  const Word* a = reg(t, f.src0);
  const Word* b = reg(t, f.src1);
  const Word* c = reg(t, f.src2);
  const Word* s = reg(t, f.aux2);
  const bool commit = (f.flags & opt::kElideAuxCommit) == 0;
  const bool s0f = f.src0 == f.aux;
  const bool s1f = f.src1 == f.aux;
  const bool s2f = f.src2 == f.aux;
  const bool ddf = f.dst == f.aux;
  const bool st_v = f.aux2 == f.dst;  // store sees the ALU result
  const bool st_t = f.aux2 == f.aux;  // store sees the loaded word
  for (std::size_t j = 0; j < t.len; ++j) {
    const Word tt = UNIT ? in.ptr[j] : in.ptr[j * in.stride];
    if (commit) lr[j] = tt;
    const Word av = s0f ? tt : a[j];
    const Word bv = s1f ? tt : b[j];
    const Word cv = s2f ? tt : c[j];
    const Word dv = ddf ? tt : d[j];
    const Word v = apply1<OP>(av, bv, cv, dv);
    d[j] = v;
    const Word sv = st_v ? v : (st_t ? tt : s[j]);
    if (UNIT) out.ptr[j] = sv;
    else out.ptr[j * out.stride] = sv;
  }
}

void k_load_alu_store(const Tile& t, const FusedOp& f) {
  const MemRef in = mem_ref(t, f.addr);
  const MemRef out = mem_ref(t, f.addr2);
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    if (in.stride == 1) k_load_alu_store_body<OP, true>(t, f, in, out);
    else k_load_alu_store_body<OP, false>(t, f, in, out);
  });
}

// ---------------------------------------------------------------------------
// Run kernels.

/// A run of register-only steps, executed step-outer over the L1-resident
/// register tile (the tile is the whole point: every sweep hits L1).
void k_reg_run(const Tile& t, const FusedOp& f, const Step* body) {
  for (std::uint32_t k = 0; k < f.run_len; ++k) {
    const Step& s = body[k];
    if (s.kind == StepKind::kImm) {
      Word* d = reg(t, s.dst);
      for (std::size_t j = 0; j < t.len; ++j) d[j] = s.imm;
    } else {
      trace::bulk_alu(s.op, reg(t, s.dst), reg(t, s.src0), reg(t, s.src1),
                      reg(t, s.src2), t.len);
    }
  }
}

/// W consecutive triples of a kTripleRun for one tile: the accumulator is
/// read from and written back to its register column once per W triples and
/// carried in a machine register in between — the scan/reduction fast path.
/// COMMIT (last group of a run with a live loaded register) also commits the
/// final loaded word; a template parameter so the hot non-committing loop
/// has no conditional store.
template <Op OP, bool UNIT, int W, bool COMMIT>
void k_triple_group(const Tile& t, Word* acc, Word* ldr, Word* const* in,
                    Word* const* out, bool s0l, bool s1l) {
  const std::size_t stride = UNIT ? 1 : t.n;
  for (std::size_t j = 0; j < t.len; ++j) {
    Word v = acc[j];
    Word tt = 0;
    for (int w = 0; w < W; ++w) {
      tt = UNIT ? in[w][j] : in[w][j * stride];
      const Word a = s0l ? tt : v;
      const Word b = s1l ? tt : v;
      v = apply1<OP>(a, b, Word{0}, v);
      if (UNIT) out[w][j] = v;
      else out[w][j * stride] = v;
    }
    acc[j] = v;
    if constexpr (COMMIT) ldr[j] = tt;
    else (void)ldr;
  }
}

void k_triple_run(const Tile& t, const FusedOp& f, const Step* body) {
  constexpr int kW = 8;
  Word* acc = reg(t, f.dst);
  Word* ldr = reg(t, f.aux);
  const bool s0l = (f.flags & opt::kTripleS0Loaded) != 0;
  const bool s1l = (f.flags & opt::kTripleS1Loaded) != 0;
  const bool want_ld = (f.flags & opt::kElideAuxCommit) == 0;
  const bool unit = t.arr != Arrangement::kRowWise;
  const std::size_t runs = f.run_len;
  dispatch_op(f.op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    Word* in[kW];
    Word* out[kW];
    std::size_t k = 0;
    for (; k + kW <= runs; k += kW) {
      for (int w = 0; w < kW; ++w) {
        const std::size_t base = (k + static_cast<std::size_t>(w)) * 3;
        in[w] = mem_ref(t, body[base].addr).ptr;
        out[w] = mem_ref(t, body[base + 2].addr).ptr;
      }
      const bool commit = want_ld && k + kW == runs;
      if (unit) {
        if (commit) k_triple_group<OP, true, kW, true>(t, acc, ldr, in, out, s0l, s1l);
        else k_triple_group<OP, true, kW, false>(t, acc, ldr, in, out, s0l, s1l);
      } else {
        if (commit) k_triple_group<OP, false, kW, true>(t, acc, ldr, in, out, s0l, s1l);
        else k_triple_group<OP, false, kW, false>(t, acc, ldr, in, out, s0l, s1l);
      }
    }
    for (; k < runs; ++k) {
      in[0] = mem_ref(t, body[k * 3].addr).ptr;
      out[0] = mem_ref(t, body[k * 3 + 2].addr).ptr;
      const bool commit = want_ld && k + 1 == runs;
      if (unit) {
        if (commit) k_triple_group<OP, true, 1, true>(t, acc, ldr, in, out, s0l, s1l);
        else k_triple_group<OP, true, 1, false>(t, acc, ldr, in, out, s0l, s1l);
      } else {
        if (commit) k_triple_group<OP, false, 1, true>(t, acc, ldr, in, out, s0l, s1l);
        else k_triple_group<OP, false, 1, false>(t, acc, ldr, in, out, s0l, s1l);
      }
    }
  });
}

// ---------------------------------------------------------------------------

void exec_segment(const Tile& t, const CompiledProgram::Segment& seg) {
  const Step* runs = seg.run_steps.data();
  for (const FusedOp& f : seg.ops) {
    switch (f.kind) {
      case FusedKind::kLoad: k_load(t, f); break;
      case FusedKind::kStore: k_store(t, f); break;
      case FusedKind::kImm: k_imm(t, f); break;
      case FusedKind::kAlu: k_alu(t, f); break;
      case FusedKind::kImmAlu: k_imm_alu(t, f); break;
      case FusedKind::kLoadAlu: k_load_alu(t, f); break;
      case FusedKind::kAluStore: k_alu_store(t, f); break;
      case FusedKind::kLoadAluStore: k_load_alu_store(t, f); break;
      case FusedKind::kRegRun: k_reg_run(t, f, runs + f.run_begin); break;
      case FusedKind::kTripleRun: k_triple_run(t, f, runs + f.run_begin); break;
    }
  }
}

/// Scatters this tile's inputs into arranged memory.  Column-wise/blocked is
/// a cache-blocked transpose (sub-tiles of lanes keep the source lines
/// L1-resident); row-wise input rows are contiguous copies.
void scatter_tile(const Tile& t, std::span<const Word> inputs, std::size_t iw) {
  if (iw == 0) return;
  const Word* src_base = inputs.data();
  switch (t.arr) {
    case Arrangement::kRowWise: {
      for (std::size_t j = 0; j < t.len; ++j) {
        const Word* src = src_base + (t.base + j) * iw;
        Word* dst = t.mem + (t.base + j) * t.n;
        std::copy(src, src + iw, dst);
      }
      break;
    }
    case Arrangement::kColumnWise:
    case Arrangement::kBlocked: {
      // Two-level tiled transpose.  Lane sub-blocks of 256 keep the block's
      // input pages resident in the L2 TLB and its source lines in L1;
      // 8-word (one cacheline) address tiles turn the inner loop into one
      // full source line scattered onto 8 contiguous write streams.
      constexpr std::size_t kSub = 256;
      constexpr std::size_t kLine = 8;
      for (std::size_t jb = 0; jb < t.len; jb += kSub) {
        const std::size_t je = std::min(jb + kSub, t.len);
        std::size_t i0 = 0;
        for (; i0 + kLine <= iw; i0 += kLine) {
          Word* dst[kLine];
          for (std::size_t k = 0; k < kLine; ++k) {
            dst[k] = mem_ref(t, static_cast<Addr>(i0 + k)).ptr;
          }
          for (std::size_t j = jb; j < je; ++j) {
            const Word* src = src_base + (t.base + j) * iw + i0;
            for (std::size_t k = 0; k < kLine; ++k) dst[k][j] = src[k];
          }
        }
        for (; i0 < iw; ++i0) {
          const MemRef m = mem_ref(t, static_cast<Addr>(i0));
          for (std::size_t j = jb; j < je; ++j) {
            m.ptr[j] = src_base[(t.base + j) * iw + i0];
          }
        }
      }
      break;
    }
  }
}

}  // namespace

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kInterpreted: return "interpreted";
    case Backend::kCompiled: return "compiled";
  }
  return "?";
}

std::size_t resolve_tile_lanes(std::size_t requested, std::size_t reg_count,
                               const bulk::Layout& layout) {
  std::size_t tile = requested;
  if (tile == 0) {
    constexpr std::size_t kRegTileBytes = 16 * 1024;
    tile = kRegTileBytes / (sizeof(Word) * std::max<std::size_t>(reg_count, 1));
    tile = std::clamp<std::size_t>(std::bit_floor(tile), 32, 1024);
  }
  tile = std::max<std::size_t>(std::min(tile, layout.lanes()), 1);
  if (layout.arrangement() == Arrangement::kBlocked) {
    tile = std::min(tile, layout.block());
    while (layout.block() % tile != 0) --tile;
  }
  return tile;
}

void run_compiled_chunk(const CompiledProgram& compiled, const bulk::Layout& layout,
                        std::span<const Word> inputs, std::size_t input_words,
                        std::span<Word> memory, Lane lane_begin, Lane lane_end,
                        std::size_t tile_lanes) {
  OBX_CHECK(tile_lanes > 0, "tile size must be positive");
  OBX_CHECK(compiled.memory_words() == layout.words_per_input(),
            "compiled program sized for a different layout");
  const std::size_t reg_count = std::max<std::size_t>(compiled.register_count(), 1);
  std::vector<Word> regs(reg_count * tile_lanes);

  Tile t;
  t.regs = regs.data();
  t.cap = tile_lanes;
  t.mem = memory.data();
  t.p = layout.lanes();
  t.n = layout.words_per_input();
  t.block = layout.block();
  t.arr = layout.arrangement();

  for (std::size_t base = lane_begin; base < lane_end; base += tile_lanes) {
    t.base = base;
    t.len = std::min(tile_lanes, lane_end - base);
    scatter_tile(t, inputs, input_words);
    std::fill(regs.begin(), regs.end(), Word{0});
    for (const CompiledProgram::Segment& seg : compiled.segments()) {
      exec_segment(t, seg);
    }
  }
}

}  // namespace obx::exec

// AVX2 compiled-backend kernels (W = 4 words per 256-bit vector).  Only in
// the build when the compiler accepts -mavx2 (see src/exec/CMakeLists.txt);
// only called when the CPU reports AVX2 (see run_compiled_chunk).
#include "exec/backend_detail.hpp"
#include "exec/backend_kernels.hpp"

namespace obx::exec::detail {

void exec_segment_avx2(const Tile& t, const CompiledProgram::Segment& seg) {
  kernels::exec_segment_w<4>(t, seg);
}

}  // namespace obx::exec::detail

namespace obx::exec::jit {

const KernelTable* kernel_table_avx2() {
  static const KernelTable table = detail::kernels::make_kernel_table<4>();
  return &table;
}

}  // namespace obx::exec::jit

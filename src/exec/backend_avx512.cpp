// AVX-512 compiled-backend kernels (W = 8 words per 512-bit vector).  Only
// in the build when the compiler accepts -mavx512f (see
// src/exec/CMakeLists.txt); only called when the CPU reports
// AVX512F/DQ/BW/VL (see run_compiled_chunk).
#include "exec/backend_detail.hpp"
#include "exec/backend_kernels.hpp"

namespace obx::exec::detail {

void exec_segment_avx512(const Tile& t, const CompiledProgram::Segment& seg) {
  kernels::exec_segment_w<8>(t, seg);
}

}  // namespace obx::exec::detail

namespace obx::exec::jit {

const KernelTable* kernel_table_avx512() {
  static const KernelTable table = detail::kernels::make_kernel_table<8>();
  return &table;
}

}  // namespace obx::exec::jit

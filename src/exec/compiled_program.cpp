#include "exec/compiled_program.hpp"

#include <algorithm>
#include <mutex>

#include "common/check.hpp"

namespace obx::exec {

namespace {

std::size_t max_register(const trace::Step& s) {
  std::size_t m = s.dst;
  if (s.kind == trace::StepKind::kAlu) {
    m = std::max<std::size_t>(m, s.src0);
    m = std::max<std::size_t>(m, s.src1);
    m = std::max<std::size_t>(m, s.src2);
  } else if (s.kind == trace::StepKind::kStore) {
    m = s.src0;
  }
  return m;
}

}  // namespace

std::shared_ptr<const CompiledProgram> CompiledProgram::compile(
    const trace::Program& program, const Options& options) {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(options.segment_steps > 0, "segment size must be positive");

  auto compiled = std::shared_ptr<CompiledProgram>(new CompiledProgram());
  compiled->memory_words_ = program.memory_words;
  std::size_t max_reg = 0;

  std::vector<trace::Step> buffer;
  buffer.reserve(std::min(options.segment_steps, options.max_steps));
  auto flush = [&] {
    opt::FusionResult fused = opt::fuse(buffer);
    compiled->counts_.loads += fused.counts.loads;
    compiled->counts_.stores += fused.counts.stores;
    compiled->counts_.alu += fused.counts.alu;
    compiled->counts_.imm += fused.counts.imm;
    compiled->fused_ops_ += fused.ops.size();
    compiled->segments_.push_back(
        Segment{std::move(fused.ops), std::move(fused.run_steps)});
    buffer.clear();
  };

  std::size_t total = 0;
  auto gen = program.stream();
  trace::Step s;
  while (gen.next(s)) {
    if (++total > options.max_steps) return nullptr;  // over budget: fall back
    if (s.is_memory()) {
      OBX_CHECK(s.addr < program.memory_words, "step address beyond program memory");
    }
    max_reg = std::max(max_reg, max_register(s));
    buffer.push_back(s);
    if (buffer.size() >= options.segment_steps) flush();
  }
  if (!buffer.empty()) flush();

  compiled->total_steps_ = total;
  compiled->register_count_ = std::max(program.register_count, max_reg + 1);
  return compiled;
}

std::shared_ptr<const CompiledProgram> CompiledProgram::get_or_compile(
    const trace::Program& program, const Options& options) {
  const std::shared_ptr<trace::ExecCacheSlot> slot = program.exec_cache;
  if (slot == nullptr) return compile(program, options);  // uncached fallback

  std::lock_guard<std::mutex> lock(slot->mutex);
  if (slot->artifact != nullptr) {
    return std::static_pointer_cast<const CompiledProgram>(slot->artifact);
  }
  if (slot->attempted_budget >= options.max_steps) return nullptr;
  // Compile under the lock: concurrent callers wait instead of draining the
  // stream a second time — that is the at-most-once guarantee.
  auto compiled = compile(program, options);
  slot->attempted_budget = std::max(slot->attempted_budget, options.max_steps);
  if (compiled != nullptr) slot->artifact = compiled;
  return compiled;
}

}  // namespace obx::exec

// Baseline 128-bit compiled-backend kernels (W = 2 words): SSE2 on x86-64,
// AdvSIMD/NEON on AArch64 — both guaranteed by the base ABI, so this TU is
// built with the project's default flags and needs no runtime gate beyond
// active_simd_isa() choosing it.
#include "exec/backend_detail.hpp"
#include "exec/backend_kernels.hpp"

namespace obx::exec::detail {

void exec_segment_w2(const Tile& t, const CompiledProgram::Segment& seg) {
  kernels::exec_segment_w<2>(t, seg);
}

}  // namespace obx::exec::detail

namespace obx::exec::jit {

const KernelTable* kernel_table_w2() {
  static const KernelTable table = detail::kernels::make_kernel_table<2>();
  return &table;
}

}  // namespace obx::exec::jit

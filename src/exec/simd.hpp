// Portable fixed-width vector layer for the lane-vectorized backend.
//
// Vec<W> is W lockstep lanes' worth of one register: a plain Word array with
// always-inlined per-element load/store/splat and a vapply that maps
// trace::apply_one across the elements.  There are deliberately no
// intrinsics here — every translation unit that instantiates a width is
// compiled with the matching target flags (see src/exec/CMakeLists.txt), and
// GCC/Clang fully unroll and SLP-vectorize these fixed-trip-count loops into
// the natural vector instructions for that ISA.  Keeping the body portable
// C++ means one source of truth for all ISAs *and* bit-exact semantics: each
// element is computed by the same apply_one the scalar engines use (lane-wise
// IEEE doubles, unsigned two's-complement wrap), so vector and scalar runs
// are bit-identical by construction.
//
// Obliviousness is what makes this trivially correct: every lane executes the
// same Step sequence with the same addresses, so there are no divergence
// masks, no gathers from data-dependent addresses — just contiguous or
// constant-strided register columns (column-wise arrangement makes the
// operand of lane j+1 adjacent to lane j's, stride 1).
//
// ODR note: everything here is force-inlined.  These templates are
// instantiated under different -m flags per TU; an out-of-line copy picked
// arbitrarily by the linker could carry instructions the running CPU lacks.
#pragma once

#include <cstddef>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "trace/alu_ops.hpp"

namespace obx::exec {

/// W lanes of one register, held in machine registers across a fused group.
template <std::size_t W>
struct Vec {
  Word v[W];

  static OBX_ALWAYS_INLINE Vec load(const Word* p) {
    Vec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  /// Strided load: element i from p[i * stride] (row-wise arrangement).
  static OBX_ALWAYS_INLINE Vec load(const Word* p, std::size_t stride) {
    Vec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = p[i * stride];
    return r;
  }
  static OBX_ALWAYS_INLINE Vec splat(Word x) {
    Vec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  OBX_ALWAYS_INLINE void store(Word* p) const {
    for (std::size_t i = 0; i < W; ++i) p[i] = v[i];
  }
  OBX_ALWAYS_INLINE void store(Word* p, std::size_t stride) const {
    for (std::size_t i = 0; i < W; ++i) p[i * stride] = v[i];
  }
};

/// Element-wise apply_one: the full Op set (float ops lane-wise IEEE, integer
/// ops unsigned-wrap, cmov/select element-wise on the d operand).
template <trace::Op OP, std::size_t W>
OBX_ALWAYS_INLINE Vec<W> vapply(Vec<W> x, Vec<W> y, Vec<W> z, Vec<W> d) {
  Vec<W> r;
  for (std::size_t i = 0; i < W; ++i) {
    r.v[i] = trace::apply_one<OP>(x.v[i], y.v[i], z.v[i], d.v[i]);
  }
  return r;
}

}  // namespace obx::exec

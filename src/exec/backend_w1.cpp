// Scalar (W = 1) compiled-backend kernels: the reference engine every SIMD
// tier must match bit-for-bit, and the OBX_SIMD=scalar escape hatch.  Built
// with the project's default flags.
#include "exec/backend_detail.hpp"
#include "exec/backend_kernels.hpp"

namespace obx::exec::detail {

void exec_segment_w1(const Tile& t, const CompiledProgram::Segment& seg) {
  kernels::exec_segment_w<1>(t, seg);
}

}  // namespace obx::exec::detail

namespace obx::exec::jit {

const KernelTable* kernel_table_w1() {
  static const KernelTable table = detail::kernels::make_kernel_table<1>();
  return &table;
}

}  // namespace obx::exec::jit

// Shared tile plumbing for the compiled backend's translation units.
//
// backend.cpp (scatter, tiling, dispatch) and the per-ISA kernel TUs
// (backend_w1/w2/avx2/avx512.cpp) all address the same lane-major register
// tile and arranged memory image; the structs and address math live here so
// they agree by construction.  reg/mem_ref are force-inlined for the same
// ODR reason as simd.hpp: they are compiled under different target flags per
// TU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "bulk/layout.hpp"
#include "common/types.hpp"
#include "exec/compiled_program.hpp"
#include "trace/alu_ops.hpp"

namespace obx::exec::detail {

/// One lane tile: a window of `len` consecutive lanes starting at `base`,
/// with an L1-resident lane-major register tile (register r of tile lane j at
/// regs[r * cap + j]).
struct Tile {
  Word* regs = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;
  Word* mem = nullptr;
  std::size_t p = 0;
  std::size_t n = 0;
  std::size_t block = 0;
  bulk::Arrangement arr = bulk::Arrangement::kColumnWise;
  std::size_t base = 0;
};

OBX_ALWAYS_INLINE Word* reg(const Tile& t, std::uint8_t r) {
  return t.regs + std::size_t{r} * t.cap;
}

/// Tile-lane j of canonical address a lives at ptr[j * stride].  Valid because
/// a tile never spans a blocked layout's block boundary.
struct MemRef {
  Word* ptr = nullptr;
  std::size_t stride = 1;
};

OBX_ALWAYS_INLINE MemRef mem_ref(const Tile& t, Addr a) {
  switch (t.arr) {
    case bulk::Arrangement::kColumnWise:
      return {t.mem + std::size_t{a} * t.p + t.base, 1};
    case bulk::Arrangement::kRowWise:
      return {t.mem + t.base * t.n + a, t.n};
    case bulk::Arrangement::kBlocked:
      return {t.mem + (t.base / t.block) * (t.n * t.block) + std::size_t{a} * t.block +
                  t.base % t.block,
              1};
    case bulk::Arrangement::kConflictFree:
      // Padded column layout: t.block carries the pad stride.
      return {t.mem + (std::size_t{a} * t.p + t.base) * t.block, t.block};
  }
  return {};
}

/// Lane-to-lane word distance of the tile's arrangement — the stride every
/// MemRef of this tile shares (1 for column-wise/blocked, n for row-wise,
/// the pad stride for conflict-free).
OBX_ALWAYS_INLINE std::size_t lane_word_stride(const Tile& t) {
  switch (t.arr) {
    case bulk::Arrangement::kRowWise:
      return t.n;
    case bulk::Arrangement::kConflictFree:
      return t.block;
    default:
      return 1;
  }
}

/// Scatters this tile's inputs into arranged memory (cache-blocked transpose
/// for column-family layouts; contiguous row copies for row-wise).  Defined
/// in backend.cpp; shared by run_compiled_chunk and the JIT's run_jit_chunk.
void scatter_tile(const Tile& t, std::span<const Word> inputs, std::size_t input_words);

// Per-ISA segment bodies.  Each is defined in exactly one translation unit,
// compiled with that ISA's target flags, and instantiates exactly one vector
// width W — so no wide-vector code can be linker-folded into a baseline
// caller.  w1 is the scalar engine (no lane grouping); w2 is the baseline
// 128-bit engine (SSE2 on x86-64, AdvSIMD on AArch64, both on by default).
void exec_segment_w1(const Tile& t, const CompiledProgram::Segment& seg);
void exec_segment_w2(const Tile& t, const CompiledProgram::Segment& seg);
#if defined(OBX_SIMD_HAVE_AVX2)
void exec_segment_avx2(const Tile& t, const CompiledProgram::Segment& seg);
#endif
#if defined(OBX_SIMD_HAVE_AVX512)
void exec_segment_avx512(const Tile& t, const CompiledProgram::Segment& seg);
#endif

}  // namespace obx::exec::detail

// Facade combining functional memory and time-unit accounting: a runnable
// UMM (or DMM) on which bulk steps can be both *executed* and *timed*.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "umm/machine_config.hpp"
#include "umm/memory_image.hpp"
#include "umm/timers.hpp"

namespace obx::umm {

class Machine {
 public:
  Machine(Model model, MachineConfig config, std::size_t memory_words);

  /// One bulk read step: thread i reads addrs[i] into out[i] (inactive lanes
  /// marked kInvalidAddr are left untouched).  Returns the step's time units.
  TimeUnits step_read(std::span<const Addr> addrs, std::span<Word> out);

  /// One bulk write step: thread i writes values[i] to addrs[i].
  TimeUnits step_write(std::span<const Addr> addrs, std::span<const Word> values);

  /// One register-only step across all threads.
  TimeUnits step_compute() { return timer_.charge_compute(); }

  MemoryImage& memory() { return memory_; }
  const MemoryImage& memory() const { return memory_; }
  TimeUnits time_units() const { return timer_.time_units(); }
  const TimerStats& stats() const { return timer_.stats(); }
  const MachineConfig& config() const { return timer_.config(); }
  Model model() const { return timer_.model(); }

 private:
  MemoryImage memory_;
  AccessTimer timer_;
};

}  // namespace obx::umm

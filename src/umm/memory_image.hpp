// Functional storage of a memory machine: a flat, bounds-checked word array.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace obx::umm {

class MemoryImage {
 public:
  explicit MemoryImage(std::size_t words);

  Word load(Addr a) const {
    OBX_DCHECK(a < cells_.size(), "load out of bounds");
    return cells_[a];
  }
  void store(Addr a, Word v) {
    OBX_DCHECK(a < cells_.size(), "store out of bounds");
    cells_[a] = v;
  }

  std::size_t size() const { return cells_.size(); }
  std::span<Word> span() { return cells_; }
  std::span<const Word> span() const { return cells_; }

  /// Copies `data` into [offset, offset + data.size()).
  void fill(Addr offset, std::span<const Word> data);
  /// Copies [offset, offset + out.size()) into `out`.
  void extract(Addr offset, std::span<Word> out) const;

 private:
  std::vector<Word> cells_;
};

}  // namespace obx::umm

// Per-warp access cost of the UMM and DMM.
//
// A warp of w threads issues at most one memory request per thread.  The cost
// of a warp's combined request, in pipeline stages, is
//   UMM: the number of distinct address groups among the requested addresses
//        (one broadcast address per stage), and
//   DMM: the maximum number of requests destined for any single bank (bank
//        conflicts are serialised).
// Threads may sit out a step: inactive lanes are marked with kInvalidAddr and
// contribute nothing; a fully inactive warp is not dispatched at all.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "umm/machine_config.hpp"

namespace obx::umm {

/// Stages occupied by one warp request on the UMM: distinct address groups
/// (of `group_words` words each) among the active addresses.  The paper's
/// pure UMM has group_words = width; the transaction-granularity extension
/// allows smaller groups.
std::uint64_t umm_warp_stages(std::span<const Addr> addrs, std::uint32_t group_words);

/// Stages occupied by one warp request on the DMM: maximum bank multiplicity
/// among the active addresses (`banks` = machine width).
std::uint64_t dmm_warp_stages(std::span<const Addr> addrs, std::uint32_t banks);

/// Dispatches on the model enum; `width` serves as both the group size (UMM)
/// and the bank count (DMM) — the paper's models.
std::uint64_t warp_stages(Model model, std::span<const Addr> addrs, std::uint32_t width);

/// Config-aware dispatch honouring the transaction-granularity extension.
std::uint64_t warp_stages(Model model, std::span<const Addr> addrs,
                          const MachineConfig& config);

}  // namespace obx::umm

#include "umm/dmm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace obx::umm {

namespace {

constexpr std::size_t kStackBanks = 128;

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

void SharedTier::validate() const {
  if (!enabled()) return;
  OBX_CHECK(bank_words > 0, "shared tier bank_words must be positive");
  OBX_CHECK(latency > 0, "shared tier latency must be positive");
}

std::uint64_t shared_warp_rounds(std::span<const Addr> addrs, const SharedTier& tier) {
  OBX_DCHECK(tier.enabled(), "shared tier is disabled");
  std::uint64_t counts_stack[kStackBanks] = {};
  std::vector<std::uint64_t> heap;
  std::uint64_t* counts = counts_stack;
  if (tier.banks > kStackBanks) {
    heap.assign(tier.banks, 0);
    counts = heap.data();
  }
  std::uint64_t max_count = 0;
  for (Addr a : addrs) {
    if (a == kInvalidAddr) continue;
    const std::uint64_t c = ++counts[shared_bank_of(a, tier)];
    max_count = std::max(max_count, c);
  }
  return max_count;
}

std::uint64_t conflict_free_stride(const SharedTier& tier) {
  // Never 0: an enabled-but-degenerate tier (bank_words == 0 escapes
  // validate() on read-only paths) must not hand the planner a zero pad
  // stride — Layout would reject it, and a silent 0 upstream of make_layout
  // would degenerate the scatter.  Both the disabled and the degenerate
  // tier fall back to stride 1 (plain column-wise).
  return tier.enabled() && tier.bank_words > 0 ? tier.bank_words : 1;
}

BankedStepCost::BankedStepCost(SharedTier tier, std::uint32_t width, std::uint64_t p,
                               std::uint64_t stride)
    : tier_(tier),
      width_(width),
      p_(p),
      stride_(stride),
      full_warps_(p / width),
      tail_lanes_(p % width),
      modulus_(tier.modulus()),
      delta_((width * stride) % tier.modulus()),
      period_(modulus_ / gcd_u64(delta_ == 0 ? modulus_ : delta_, modulus_)),
      full_warp_rounds_(modulus_, 0),
      tail_warp_rounds_(modulus_, 0) {
  tier_.validate();
  OBX_CHECK(tier_.enabled(), "BankedStepCost needs an enabled shared tier");
  OBX_CHECK(width > 0, "warp width must be positive");
  OBX_CHECK(p > 0, "at least one lane");
}

std::uint64_t BankedStepCost::count_for_residue(std::uint64_t residue,
                                                std::uint64_t lanes) const {
  std::vector<Addr> addrs(lanes);
  for (std::uint64_t j = 0; j < lanes; ++j) addrs[j] = residue + j * stride_;
  return shared_warp_rounds(addrs, tier_);
}

std::uint64_t BankedStepCost::memoised_full(std::uint64_t residue) const {
  std::uint64_t& memo = full_warp_rounds_[residue];
  if (memo == 0) memo = count_for_residue(residue, width_);
  return memo;
}

SharedStepRounds BankedStepCost::rounds(Addr base) const {
  const std::uint64_t r0 = base % modulus_;
  SharedStepRounds out;
  if (full_warps_ > 0) {
    if (delta_ == 0) {
      out.rounds += full_warps_ * memoised_full(r0);
    } else {
      // Residues cycle with period modulus/gcd(delta, modulus): sum one
      // period, multiply, add the remainder prefix.
      const std::uint64_t reps = full_warps_ / period_;
      const std::uint64_t rem = full_warps_ % period_;
      std::uint64_t cycle_sum = 0;
      std::uint64_t rem_sum = 0;
      std::uint64_t r = r0;
      for (std::uint64_t m = 0; m < period_; ++m) {
        const std::uint64_t k = memoised_full(r);
        cycle_sum += k;
        if (m < rem) rem_sum += k;
        r = (r + delta_) % modulus_;
      }
      out.rounds += reps * cycle_sum + rem_sum;
    }
    out.warps += full_warps_;
  }
  if (tail_lanes_ > 0) {
    const std::uint64_t r_tail = (r0 + full_warps_ * delta_) % modulus_;
    std::uint64_t& memo = tail_warp_rounds_[r_tail];
    if (memo == 0) memo = count_for_residue(r_tail, tail_lanes_);
    out.rounds += memo;
    out.warps += 1;
  }
  return out;
}

TimeUnits BankedStepCost::step_time(Addr base) const {
  const SharedStepRounds r = rounds(base);
  if (r.rounds == 0) return 0;
  return r.rounds + tier_.latency - 1;
}

}  // namespace obx::umm

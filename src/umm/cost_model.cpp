#include "umm/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "umm/address.hpp"
#include "umm/warp.hpp"

namespace obx::umm {

namespace {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

StridedStepCost::StridedStepCost(Model model, MachineConfig config, std::uint64_t p,
                                 std::uint64_t stride)
    : model_(model),
      config_(config),
      p_(p),
      stride_(stride),
      full_warps_(p / config.width),
      tail_lanes_(p % config.width),
      modulus_(model == Model::kUmm ? config.effective_group() : config.width),
      delta_((config.width * stride) % modulus_),
      period_(modulus_ / gcd_u64(delta_ == 0 ? modulus_ : delta_, modulus_)),
      full_warp_count_(modulus_, 0),
      tail_warp_count_(modulus_, 0) {
  config_.validate();
  OBX_CHECK(p > 0, "at least one lane");
}

std::uint64_t StridedStepCost::count_for_residue(std::uint64_t residue,
                                                 std::uint64_t lanes) const {
  // Direct evaluation via the generic warp-cost function on synthetic
  // addresses residue, residue+stride, ..., residue+(lanes-1)*stride.
  std::vector<Addr> addrs(lanes);
  for (std::uint64_t j = 0; j < lanes; ++j) addrs[j] = residue + j * stride_;
  return warp_stages(model_, addrs, config_);
}

std::uint64_t StridedStepCost::memoised_full(std::uint64_t residue) const {
  std::uint64_t& memo = full_warp_count_[residue];
  if (memo == 0) memo = count_for_residue(residue, config_.width);
  return memo;
}

StepStages StridedStepCost::stages(Addr base) const {
  const std::uint64_t r0 = base % modulus_;
  StepStages out;
  if (full_warps_ > 0) {
    if (delta_ == 0) {
      // The paper's models: every warp shares the base residue.
      out.stages += full_warps_ * memoised_full(r0);
    } else {
      // Transaction extension: warp m's residue is (r0 + m*delta) mod g,
      // cycling with period g / gcd(delta, g).  Sum one period, multiply.
      const std::uint64_t reps = full_warps_ / period_;
      const std::uint64_t rem = full_warps_ % period_;
      std::uint64_t cycle_sum = 0;
      std::uint64_t rem_sum = 0;
      std::uint64_t r = r0;
      for (std::uint64_t m = 0; m < period_; ++m) {
        const std::uint64_t k = memoised_full(r);
        cycle_sum += k;
        if (m < rem) rem_sum += k;
        r = (r + delta_) % modulus_;
      }
      out.stages += reps * cycle_sum + rem_sum;
    }
    out.warps += full_warps_;
  }
  if (tail_lanes_ > 0) {
    const std::uint64_t r_tail = (r0 + full_warps_ * delta_) % modulus_;
    std::uint64_t& memo = tail_warp_count_[r_tail];
    if (memo == 0) memo = count_for_residue(r_tail, tail_lanes_);
    out.stages += memo;
    out.warps += 1;
  }
  return out;
}

TimeUnits StridedStepCost::step_time(Addr base) const {
  const StepStages s = stages(base);
  if (s.stages == 0) return 0;
  return s.stages + config_.latency - 1;
}

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

}  // namespace

TimeUnits lemma1_row_wise(std::uint64_t n, std::uint64_t p, const MachineConfig& cfg) {
  // Each of the 2n steps touches p addresses spaced n apart: with n >= w they
  // fall in p distinct address groups (p stages); with n < w several lanes
  // share a group, leaving ceil(p*n/w) coalesced stages.
  const std::uint64_t stages =
      n >= cfg.width ? p : std::max<std::uint64_t>(ceil_div(p * n, cfg.width), 1);
  return 2 * n * (stages + cfg.latency - 1);
}

TimeUnits lemma1_column_wise(std::uint64_t n, std::uint64_t p, const MachineConfig& cfg) {
  return 2 * n * (ceil_div(p, cfg.width) + cfg.latency - 1);
}

TimeUnits theorem2_row_wise(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg) {
  return t * (p + cfg.latency - 1);
}

TimeUnits theorem2_column_wise(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg) {
  return t * (ceil_div(p, cfg.width) + cfg.latency - 1);
}

TimeUnits theorem3_lower_bound(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg) {
  return std::max<TimeUnits>(ceil_div(p * t, cfg.width),
                             static_cast<TimeUnits>(cfg.latency) * t);
}

std::uint64_t dmm_strided_warp_stages(std::uint64_t stride, std::uint32_t width) {
  OBX_CHECK(width > 0, "width must be positive");
  // gcd(0, w) = w covers the broadcast / stride-multiple-of-w case.
  return gcd_u64(stride % width, width);
}

}  // namespace obx::umm

// Time-unit accounting for bulk steps on the UMM / DMM.
//
// One *step* of a bulk execution is the same instruction executed by all p
// threads; an access step produces up to p memory requests (thread i's
// request at index i, inactive threads marked kInvalidAddr).  The timer
// splits the request vector into warps of w, computes each warp's stage
// count under the selected model, and charges the pipelined batch time
// (total stages + l - 1).  Consecutive steps of the same thread serialise on
// the memory latency, which is what the stateful AccessPipeline models.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "umm/machine_config.hpp"
#include "umm/pipeline.hpp"

namespace obx::umm {

struct TimerStats {
  std::uint64_t access_steps = 0;   ///< steps that touched memory
  std::uint64_t compute_steps = 0;  ///< register-only steps
  std::uint64_t warps_dispatched = 0;
  std::uint64_t stages_total = 0;   ///< Σ per-warp stage counts
  /// Σ per-warp bank-conflict rounds on the shared (DMM) tier; stays zero
  /// when config.shared is disabled.
  std::uint64_t shared_rounds_total = 0;
};

class AccessTimer {
 public:
  AccessTimer(Model model, MachineConfig config);

  /// Charges one access step: `addrs[i]` is thread i's global address, or
  /// kInvalidAddr when thread i sits this step out.  Returns the time units
  /// consumed by the step.
  TimeUnits charge_step(std::span<const Addr> addrs);

  /// Charges one access step whose per-warp stage counts were computed
  /// elsewhere (the closed-form fast path of cost_model.hpp / dmm.hpp).
  /// shared_rounds is the step's total bank-conflict rounds on the shared
  /// tier (0 when the tier is disabled); it adds a serialized
  /// rounds + l_s - 1 term on top of the global charge.
  TimeUnits charge_precomputed(std::uint64_t total_stages, std::uint64_t warps,
                               std::uint64_t shared_rounds = 0);

  /// Charges a register-only step (zero unless config.count_compute is set).
  TimeUnits charge_compute();

  /// Total machine time.  Serialized policy (the paper's model): the sum of
  /// per-step batch times.  Overlap policy: max(total stages + l - 1,
  /// l * access steps) — the pipeline never drains between steps, bounded
  /// below by each thread's dependency chain.  Compute charges add on top in
  /// both policies, as do shared-tier conflict rounds (replays never
  /// overlap: each is a dependent re-issue of the same warp).
  TimeUnits time_units() const;

  const TimerStats& stats() const { return stats_; }
  const MachineConfig& config() const { return config_; }
  Model model() const { return model_; }

 private:
  Model model_;
  MachineConfig config_;
  AccessPipeline pipeline_;
  TimerStats stats_;
  TimeUnits compute_units_ = 0;
  TimeUnits shared_units_ = 0;  ///< Σ per-step (rounds + l_s - 1)
};

}  // namespace obx::umm

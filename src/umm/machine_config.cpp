#include "umm/machine_config.hpp"

#include "common/check.hpp"

namespace obx::umm {

void MachineConfig::validate() const {
  OBX_CHECK(width > 0, "machine width w must be positive");
  OBX_CHECK(latency > 0, "memory latency l must be positive");
  shared.validate();
}

MachineConfig gtx_titan_like() {
  // Width 32 matches the CUDA warp.  Latency 200 is chosen so that the fixed
  // l·t term of the simulated prefix-sums matches the order of the paper's
  // measured 14-37 us intercepts at the Titan clock (see EXPERIMENTS.md).
  return MachineConfig{.width = 32, .latency = 200, .count_compute = false};
}

MachineConfig figure_example() {
  return MachineConfig{.width = 4, .latency = 5, .count_compute = false};
}

MachineConfig conflict_heavy_example() {
  // group_words = 128 models 32-byte-per-word transactions on a 32-lane warp
  // (one wide transaction covers several warps of stride-4 addresses), so the
  // global tier barely distinguishes stride 1 from stride 4.  bank_words = 4
  // models 4-word elements on 1-word bank rows: the stride-1 column layout
  // replays every shared access 4×, the stride-4 conflict-free layout not at
  // all.  Net effect: kConflictFree wins by ~2× per access step.
  MachineConfig cfg{.width = 32, .latency = 8, .count_compute = false,
                    .group_words = 128};
  cfg.shared = SharedTier{.banks = 32, .bank_words = 4, .latency = 2};
  return cfg;
}

}  // namespace obx::umm

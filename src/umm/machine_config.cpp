#include "umm/machine_config.hpp"

#include "common/check.hpp"

namespace obx::umm {

void MachineConfig::validate() const {
  OBX_CHECK(width > 0, "machine width w must be positive");
  OBX_CHECK(latency > 0, "memory latency l must be positive");
}

MachineConfig gtx_titan_like() {
  // Width 32 matches the CUDA warp.  Latency 200 is chosen so that the fixed
  // l·t term of the simulated prefix-sums matches the order of the paper's
  // measured 14-37 us intercepts at the Titan clock (see EXPERIMENTS.md).
  return MachineConfig{.width = 32, .latency = 200, .count_compute = false};
}

MachineConfig figure_example() {
  return MachineConfig{.width = 4, .latency = 5, .count_compute = false};
}

}  // namespace obx::umm

// Address arithmetic of the memory machine models.
//
// The flat address space is carved two ways (paper Fig. 2):
//   bank          B[j] = { j, j+w, j+2w, ... }        — DMM conflict domain
//   address group A[j] = { j*w, j*w+1, ..., (j+1)w-1 } — UMM coalescing domain
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace obx::umm {

/// Index of the memory bank holding address a (a mod w).
constexpr std::uint64_t bank_of(Addr a, std::uint32_t width) { return a % width; }

/// Index of the address group containing address a (a div w).
constexpr std::uint64_t address_group_of(Addr a, std::uint32_t width) { return a / width; }

/// True when the w addresses [first, first+w) form exactly one address group,
/// i.e. the access is perfectly coalesced.
constexpr bool is_group_aligned(Addr first, std::uint32_t width) { return first % width == 0; }

/// Number of address groups spanned by the contiguous range [first, first+count).
std::uint64_t groups_spanned(Addr first, std::uint64_t count, std::uint32_t width);

}  // namespace obx::umm

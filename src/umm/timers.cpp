#include "umm/timers.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "umm/dmm.hpp"
#include "umm/warp.hpp"

namespace obx::umm {

AccessTimer::AccessTimer(Model model, MachineConfig config)
    : model_(model), config_(config), pipeline_(config) {
  config_.validate();
}

TimeUnits AccessTimer::charge_step(std::span<const Addr> addrs) {
  const std::uint32_t w = config_.width;
  std::uint64_t total_stages = 0;
  std::uint64_t warps = 0;
  std::uint64_t shared_rounds = 0;
  for (std::size_t base = 0; base < addrs.size(); base += w) {
    const std::size_t count = std::min<std::size_t>(w, addrs.size() - base);
    const std::span<const Addr> warp = addrs.subspan(base, count);
    const std::uint64_t k = warp_stages(model_, warp, config_);
    if (k > 0) {
      total_stages += k;
      ++warps;
      if (config_.shared.enabled()) {
        shared_rounds += shared_warp_rounds(warp, config_.shared);
      }
    }
  }
  return charge_precomputed(total_stages, warps, shared_rounds);
}

TimeUnits AccessTimer::charge_precomputed(std::uint64_t total_stages, std::uint64_t warps,
                                          std::uint64_t shared_rounds) {
  if (total_stages == 0) return 0;
  ++stats_.access_steps;
  stats_.warps_dispatched += warps;
  stats_.stages_total += total_stages;
  TimeUnits t = total_stages + config_.latency - 1;
  if (shared_rounds > 0) {
    stats_.shared_rounds_total += shared_rounds;
    const TimeUnits shared_t = shared_rounds + config_.shared.latency - 1;
    shared_units_ += shared_t;
    t += shared_t;
  }
  pipeline_.advance(t);
  return t;
}

TimeUnits AccessTimer::charge_compute() {
  ++stats_.compute_steps;
  if (!config_.count_compute) return 0;
  pipeline_.advance(1);
  ++compute_units_;
  return 1;
}

TimeUnits AccessTimer::time_units() const {
  if (!config_.overlap_latency) return pipeline_.now();
  const TimeUnits bandwidth =
      stats_.stages_total == 0 ? 0 : stats_.stages_total + config_.latency - 1;
  const TimeUnits chain =
      static_cast<TimeUnits>(config_.latency) * stats_.access_steps;
  return std::max(bandwidth, chain) + compute_units_ + shared_units_;
}

}  // namespace obx::umm

// Parameters of the memory machine models (UMM / DMM).
//
// Both models (Nakano, "Simple memory machine models for GPUs", and the paper
// reproduced here) are parameterised by
//   w — the memory width: number of memory banks, which equals the number of
//       threads per warp, and
//   l — the memory access latency: an access traverses an l-stage pipeline.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "umm/dmm.hpp"

namespace obx::umm {

/// Which of the two sibling machine models is being simulated.
enum class Model : std::uint8_t {
  kUmm,  ///< Unified Memory Machine: one address bus; a warp request spanning
         ///< k address groups occupies k pipeline stages.
  kDmm,  ///< Discrete Memory Machine: per-bank address buses; a warp request
         ///< with at most c accesses to one bank occupies c stages.
};

struct MachineConfig {
  std::uint32_t width = 32;   ///< w: banks per machine = threads per warp.
  std::uint32_t latency = 1;  ///< l: pipeline depth of the memory subsystem.

  /// When true, register-only (non-memory) steps are charged one time unit
  /// each.  The paper's analysis charges local computation zero time; flip
  /// this on to study compute-bound oblivious programs (e.g. ciphers).
  bool count_compute = false;

  /// Transaction-granularity extension: size of an address group in words.
  /// 0 (the default) means "= width", the paper's pure UMM.  Real GPUs
  /// coalesce at a fixed transaction size (32 bytes ≈ 8 fp32 words on the
  /// GTX Titan) that is smaller than the 32-lane warp, which is why the
  /// paper *measures* a row/column ratio near the transaction ratio (~6-8)
  /// rather than the UMM-predicted w = 32.  Setting group_words = 8
  /// reproduces the measured ratio (see bench/ablation_transaction).
  std::uint32_t group_words = 0;

  /// Latency-overlap extension: when true, the memory pipeline stays full
  /// across *consecutive* steps (warps of other threads hide each other's
  /// latency — memory-level parallelism), so a program of t access steps
  /// with total stage count S completes in max(S + l - 1, l·t) time units
  /// instead of Σ(S_i + l - 1).  The overlap machine meets Theorem 3's
  /// Ω(pt/w + lt) lower bound to within a factor of ~2.
  bool overlap_latency = false;

  /// Shared-memory (DMM) tier extension: when shared.banks > 0 every access
  /// step is additionally staged through a banked on-chip memory and charged
  /// its serialized bank-conflict rounds (+ l_s - 1 pipeline fill).  The
  /// default (banks = 0) disables the tier — the paper's pure UMM.
  SharedTier shared{};

  /// Effective address-group size: group_words, or width when unset.
  std::uint32_t effective_group() const { return group_words == 0 ? width : group_words; }

  /// Throws std::logic_error if width or latency is zero (or the shared tier
  /// is enabled with zero bank_words / latency).
  void validate() const;
};

/// Returns a config resembling the paper's GeForce GTX Titan runs: global
/// memory warp width 32, a few hundred cycles of DRAM latency.
MachineConfig gtx_titan_like();

/// The textbook illustration config of the paper's Figures 1-4: w=4, l=5.
MachineConfig figure_example();

/// A conflict-heavy machine where the shared tier dominates: wide global
/// transactions (group_words = 128 > width) make coalescing cheap, while
/// 4-word bank rows make every stride-1 warp replay 4×.  Under this config
/// the conflict-free arrangement strictly beats column-wise — the showcase
/// for the Planner's arrangement search (see plan_tuner_test).
MachineConfig conflict_heavy_example();

}  // namespace obx::umm

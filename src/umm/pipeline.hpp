// The l-stage memory pipeline of the machine models (paper Fig. 4).
//
// Warps are dispatched in round-robin order; a warp whose request spans k
// address groups (UMM) or has k-way bank conflicts (DMM) occupies k pipeline
// stages.  A batch of warp requests occupying S stages in total completes
// S + l - 1 time units after the first stage enters the pipeline.  The
// paper's worked example — W(0) spanning 3 groups followed by W(1) spanning
// 1 group at l = 5 — completes at 3 + 1 + 5 - 1 = 8 time units.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "umm/machine_config.hpp"

namespace obx::umm {

/// Completion time of one batch of warp requests entering an idle pipeline.
/// `stage_counts[i]` is the stages occupied by the i-th dispatched warp;
/// zero-stage entries (inactive warps) are skipped.  Returns 0 for an empty
/// batch.
TimeUnits batch_completion_time(std::span<const std::uint64_t> stage_counts,
                                std::uint32_t latency);

/// A stateful pipeline that tracks the machine clock across batches.
///
/// Within a batch warps stream through back-to-back; *between* batches the
/// issuing threads are dependent on their previous access (a thread may hold
/// only one outstanding request), so the pipeline drains fully — exactly the
/// serialisation that produces the l·t term of Theorems 2 and 3.
class AccessPipeline {
 public:
  explicit AccessPipeline(MachineConfig config);

  /// Advances the clock by one batch of warp requests and returns the batch's
  /// completion time (time units consumed by this batch).
  TimeUnits submit_batch(std::span<const std::uint64_t> stage_counts);

  /// Advances the clock by `units` without memory traffic (compute steps).
  void advance(TimeUnits units) { now_ += units; }

  TimeUnits now() const { return now_; }
  std::uint64_t batches_submitted() const { return batches_; }
  std::uint64_t stages_total() const { return stages_total_; }

 private:
  MachineConfig config_;
  TimeUnits now_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t stages_total_ = 0;
};

}  // namespace obx::umm

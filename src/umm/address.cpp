#include "umm/address.hpp"

#include "common/check.hpp"

namespace obx::umm {

std::uint64_t groups_spanned(Addr first, std::uint64_t count, std::uint32_t width) {
  OBX_CHECK(width > 0, "width must be positive");
  if (count == 0) return 0;
  const std::uint64_t lo = address_group_of(first, width);
  const std::uint64_t hi = address_group_of(first + count - 1, width);
  return hi - lo + 1;
}

}  // namespace obx::umm

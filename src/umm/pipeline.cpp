#include "umm/pipeline.hpp"

#include "common/check.hpp"

namespace obx::umm {

TimeUnits batch_completion_time(std::span<const std::uint64_t> stage_counts,
                                std::uint32_t latency) {
  OBX_CHECK(latency > 0, "latency must be positive");
  std::uint64_t stages = 0;
  for (std::uint64_t k : stage_counts) stages += k;
  if (stages == 0) return 0;  // no warp was dispatched
  return stages + latency - 1;
}

AccessPipeline::AccessPipeline(MachineConfig config) : config_(config) {
  config_.validate();
}

TimeUnits AccessPipeline::submit_batch(std::span<const std::uint64_t> stage_counts) {
  const TimeUnits t = batch_completion_time(stage_counts, config_.latency);
  if (t > 0) {
    ++batches_;
    for (std::uint64_t k : stage_counts) stages_total_ += k;
  }
  now_ += t;
  return t;
}

}  // namespace obx::umm

#include "umm/memory_image.hpp"

#include <algorithm>

namespace obx::umm {

MemoryImage::MemoryImage(std::size_t words) : cells_(words, Word{0}) {}

void MemoryImage::fill(Addr offset, std::span<const Word> data) {
  OBX_CHECK(offset + data.size() <= cells_.size(), "fill out of bounds");
  std::copy(data.begin(), data.end(), cells_.begin() + static_cast<std::ptrdiff_t>(offset));
}

void MemoryImage::extract(Addr offset, std::span<Word> out) const {
  OBX_CHECK(offset + out.size() <= cells_.size(), "extract out of bounds");
  std::copy_n(cells_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(), out.begin());
}

}  // namespace obx::umm

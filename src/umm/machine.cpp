#include "umm/machine.hpp"

#include "common/check.hpp"

namespace obx::umm {

Machine::Machine(Model model, MachineConfig config, std::size_t memory_words)
    : memory_(memory_words), timer_(model, config) {}

TimeUnits Machine::step_read(std::span<const Addr> addrs, std::span<Word> out) {
  OBX_CHECK(addrs.size() == out.size(), "one destination per thread");
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] == kInvalidAddr) continue;
    out[i] = memory_.load(addrs[i]);
  }
  return timer_.charge_step(addrs);
}

TimeUnits Machine::step_write(std::span<const Addr> addrs, std::span<const Word> values) {
  OBX_CHECK(addrs.size() == values.size(), "one value per thread");
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] == kInvalidAddr) continue;
    memory_.store(addrs[i], values[i]);
  }
  return timer_.charge_step(addrs);
}

}  // namespace obx::umm

#include "umm/warp.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "umm/address.hpp"

namespace obx::umm {
namespace {

constexpr std::size_t kStackWidth = 128;

}  // namespace

std::uint64_t umm_warp_stages(std::span<const Addr> addrs, std::uint32_t width) {
  OBX_DCHECK(addrs.size() <= kStackWidth || width > kStackWidth,
             "warp wider than the machine width");
  // Collect the address groups of active lanes, sort, count distinct runs.
  std::uint64_t groups[kStackWidth];
  std::vector<std::uint64_t> heap;
  std::uint64_t* buf = groups;
  if (addrs.size() > kStackWidth) {
    heap.resize(addrs.size());
    buf = heap.data();
  }
  std::size_t active = 0;
  for (Addr a : addrs) {
    if (a == kInvalidAddr) continue;
    buf[active++] = address_group_of(a, width);
  }
  if (active == 0) return 0;
  std::sort(buf, buf + active);
  std::uint64_t distinct = 1;
  for (std::size_t i = 1; i < active; ++i) {
    if (buf[i] != buf[i - 1]) ++distinct;
  }
  return distinct;
}

std::uint64_t dmm_warp_stages(std::span<const Addr> addrs, std::uint32_t width) {
  // Count requests per bank; the warp is replayed once per conflicting round,
  // so its stage count is the maximum multiplicity.
  std::uint64_t counts_stack[kStackWidth] = {};
  std::vector<std::uint64_t> heap;
  std::uint64_t* counts = counts_stack;
  if (width > kStackWidth) {
    heap.assign(width, 0);
    counts = heap.data();
  }
  std::uint64_t max_count = 0;
  for (Addr a : addrs) {
    if (a == kInvalidAddr) continue;
    const std::uint64_t c = ++counts[bank_of(a, width)];
    max_count = std::max(max_count, c);
  }
  return max_count;
}

std::uint64_t warp_stages(Model model, std::span<const Addr> addrs, std::uint32_t width) {
  return model == Model::kUmm ? umm_warp_stages(addrs, width)
                              : dmm_warp_stages(addrs, width);
}

std::uint64_t warp_stages(Model model, std::span<const Addr> addrs,
                          const MachineConfig& config) {
  return model == Model::kUmm ? umm_warp_stages(addrs, config.effective_group())
                              : dmm_warp_stages(addrs, config.width);
}

}  // namespace obx::umm

// The on-chip shared-memory tier: a Discrete Memory Machine below the UMM.
//
// The paper's UMM charges global-memory coalescing and latency only.  Real
// GPUs put a banked shared memory (a DMM in Nakano's taxonomy) next to each
// core: a warp access that lands b requests on one bank is replayed b times
// ("bank-conflict rounds"), and the replays — not the latency — dominate the
// on-chip cost.  The Sitchinava line of work ("Bank Conflict Free
// Comparison-based Sorting On GPUs", "Sorting and Permuting without Bank
// Conflicts on GPUs") shows padded/strided layouts remove the replays
// entirely, which is what bulk::Arrangement::kConflictFree implements.
//
// SharedTier parameterises that memory: `banks` buses of `bank_words`-word
// rows, pipeline depth `latency`.  Word a lives in bank (a / bank_words) mod
// banks — bank_words > 1 models element types wider than a physical bank row
// (e.g. 64-bit words on 32-bit banks), the configuration where the naive
// stride-1 layout conflicts and the conflict-free stride pays off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace obx::umm {

/// Banked shared-memory (DMM) tier parameters.  banks == 0 disables the tier
/// entirely: no charges, conflict_free_stride() == 1, and the machine is the
/// paper's pure UMM.
struct SharedTier {
  std::uint32_t banks = 0;       ///< bank count; 0 = tier disabled
  std::uint32_t bank_words = 1;  ///< words per bank row (conflict granule)
  std::uint32_t latency = 1;     ///< l_s: shared-memory pipeline depth

  bool enabled() const { return banks > 0; }

  /// Bank-residue modulus: a warp's conflict pattern depends only on its
  /// base address modulo banks * bank_words.
  std::uint64_t modulus() const {
    return static_cast<std::uint64_t>(banks) * bank_words;
  }

  /// Throws std::logic_error when enabled with zero bank_words or latency.
  void validate() const;

  friend bool operator==(const SharedTier&, const SharedTier&) = default;
};

/// Bank holding address `a` under the tier.  Requires tier.enabled().
inline std::uint64_t shared_bank_of(Addr a, const SharedTier& tier) {
  return (a / tier.bank_words) % tier.banks;
}

/// Conflict rounds of one warp request on the shared tier: the maximum
/// number of active lanes landing on a single bank (0 when all lanes are
/// inactive, i.e. the warp is not dispatched).  The brute-force oracle the
/// closed-form BankedStepCost is tested against.
std::uint64_t shared_warp_rounds(std::span<const Addr> addrs, const SharedTier& tier);

/// Lane-to-lane stride of the conflict-free arrangement: bank_words, so
/// consecutive lanes hit consecutive banks regardless of the bank row size.
/// 1 when the tier is disabled (the layout degenerates to column-wise).
std::uint64_t conflict_free_stride(const SharedTier& tier);

/// Round/warp totals of one bulk access step on the shared tier.
struct SharedStepRounds {
  std::uint64_t rounds = 0;  ///< Σ per-warp conflict rounds
  std::uint64_t warps = 0;   ///< warps dispatched
};

/// Closed-form per-step shared-tier cost for arithmetic-progression layouts
/// (row-/column-/conflict-free-wise): lane j of the step accesses
/// base + j*stride.  Mirrors StridedStepCost: a warp's rounds depend only on
/// its base modulo tier.modulus(), and warp-to-warp bases advance by a fixed
/// delta = (width*stride) mod modulus, so residues cycle with a short period
/// and the per-step cost is O(period) with memoised per-residue counts.
class BankedStepCost {
 public:
  /// Requires tier.enabled().  p: lanes; width: warp width; stride:
  /// lane-to-lane address distance.
  BankedStepCost(SharedTier tier, std::uint32_t width, std::uint64_t p,
                 std::uint64_t stride);

  /// Rounds/warps of the step whose lane-0 address is `base`.
  SharedStepRounds rounds(Addr base) const;

  /// Time units of the step on the shared tier alone: rounds + l_s - 1
  /// (0 when no lane is active).
  TimeUnits step_time(Addr base) const;

  const SharedTier& tier() const { return tier_; }

 private:
  std::uint64_t count_for_residue(std::uint64_t residue, std::uint64_t lanes) const;
  std::uint64_t memoised_full(std::uint64_t residue) const;

  SharedTier tier_;
  std::uint32_t width_;
  std::uint64_t p_;
  std::uint64_t stride_;
  std::uint64_t full_warps_;
  std::uint64_t tail_lanes_;
  std::uint64_t modulus_;
  std::uint64_t delta_;
  std::uint64_t period_;
  // Memoised per-warp rounds, indexed by base mod modulus_; 0 = not yet
  // known (a dispatched warp always costs >= 1 round).
  mutable std::vector<std::uint64_t> full_warp_rounds_;
  mutable std::vector<std::uint64_t> tail_warp_rounds_;
};

}  // namespace obx::umm

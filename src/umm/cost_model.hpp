// Closed-form cost model of bulk oblivious execution on the UMM / DMM.
//
// Two layers:
//  1. StridedStepCost — the exact per-step cost for the layouts used by bulk
//     execution.  In both the row-wise and the column-wise arrangement, the
//     global addresses of one step form an arithmetic progression over lanes:
//       global(j) = base + j * stride        (j = lane index)
//     with stride = n (row-wise) or stride = 1 (column-wise).  Because
//     w*stride ≡ 0 (mod w), every full warp of such a step has the same
//     address residue, so its stage count depends only on base mod w.  The
//     class memoises the w possible counts, making the per-step cost O(1)
//     after an O(w²) warm-up — this is what lets figure-scale sweeps run to
//     p = 4M without materialising p·n words.
//  2. The paper's asymptotic bounds (Lemma 1, Theorem 2, Theorem 3) as
//     directly evaluable formulas, used by tests and the theory-vs-simulation
//     ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "umm/machine_config.hpp"

namespace obx::umm {

/// Exact stage/warp counts of one bulk access step whose lane j accesses
/// global address base + j*stride, for lanes 0..p-1.
struct StepStages {
  std::uint64_t stages = 0;  ///< Σ per-warp stage counts
  std::uint64_t warps = 0;   ///< warps dispatched
};

class StridedStepCost {
 public:
  /// p: number of lanes (threads); stride: lane-to-lane address distance.
  StridedStepCost(Model model, MachineConfig config, std::uint64_t p, std::uint64_t stride);

  /// Stage/warp counts of the step with the given base address.  O(1) after
  /// the residue class of base has been seen once.
  StepStages stages(Addr base) const;

  /// Time units of the step: stages + l - 1 (0 if no lane is active).
  TimeUnits step_time(Addr base) const;

  std::uint64_t lanes() const { return p_; }
  std::uint64_t stride() const { return stride_; }

 private:
  std::uint64_t count_for_residue(std::uint64_t residue, std::uint64_t lanes) const;
  std::uint64_t memoised_full(std::uint64_t residue) const;

  Model model_;
  MachineConfig config_;
  std::uint64_t p_;
  std::uint64_t stride_;
  std::uint64_t full_warps_;
  std::uint64_t tail_lanes_;
  // Residue modulus: the group size on the UMM (transaction extension), the
  // bank count on the DMM.  A warp's stage count depends only on its base
  // address modulo this value.
  std::uint64_t modulus_;
  // Warp-to-warp base advance modulo the modulus.  0 for the paper's models
  // (w * stride ≡ 0 mod w); can be nonzero with the transaction extension,
  // in which case residues cycle with period modulus_/gcd(delta, modulus_).
  std::uint64_t delta_;
  std::uint64_t period_;
  // Memoised per-warp stage counts, indexed by base mod modulus_; 0 = not
  // yet known (a dispatched warp always occupies >= 1 stage).
  mutable std::vector<std::uint64_t> full_warp_count_;
  mutable std::vector<std::uint64_t> tail_warp_count_;
};

// ---------------------------------------------------------------------------
// Paper formulas.  All return time units on a machine with width w, latency l.
// ---------------------------------------------------------------------------

/// Lemma 1, row-wise: prefix-sums of p arrays of size n, arranged p×n.
/// 2n access steps (one read + one write per element), each p + l - 1 units.
TimeUnits lemma1_row_wise(std::uint64_t n, std::uint64_t p, const MachineConfig& cfg);

/// Lemma 1, column-wise: 2n access steps of ceil(p/w) + l - 1 units each.
TimeUnits lemma1_column_wise(std::uint64_t n, std::uint64_t p, const MachineConfig& cfg);

/// Theorem 2, row-wise: any oblivious algorithm with t memory steps.
TimeUnits theorem2_row_wise(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg);

/// Theorem 2, column-wise (the coalesced, time-optimal arrangement).
TimeUnits theorem2_column_wise(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg);

/// Theorem 3: Ω(pt/w + lt) lower bound for any bulk execution of an
/// oblivious algorithm with t memory steps; returned as max(⌈pt/w⌉, lt).
TimeUnits theorem3_lower_bound(std::uint64_t t, std::uint64_t p, const MachineConfig& cfg);

/// DMM closed form: a full warp of w lanes accessing addresses base + j·s
/// hits w/gcd(s,w) distinct banks, gcd(s,w) lanes each — so its stage count
/// is exactly gcd(s, w), independent of base.  (Row-wise bulk execution on
/// the DMM therefore conflicts precisely when the input size shares a
/// factor with the bank count; stride 0, the broadcast, degenerates to w.)
std::uint64_t dmm_strided_warp_stages(std::uint64_t stride, std::uint32_t width);

}  // namespace obx::umm

#include "analysis/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace obx::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OBX_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  OBX_CHECK(cells.size() == headers_.size(), "row width must match the header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  OBX_CHECK(file.is_open(), "cannot open CSV output file: " + path);
  write_csv(file);
}

}  // namespace obx::analysis

// Least-squares fit of T(p) = a + b·p.
//
// The paper characterises every measured curve this way ("the row-wise
// prefix-sums for n = 32 and p can be computed in approximately
// 37 µs + (8.09)p ns"); the benches print the same decomposition for the
// simulated curves.
#pragma once

#include <span>
#include <string>

namespace obx::analysis {

struct LinearFit {
  double intercept = 0.0;  ///< a: the latency floor (the paper's l·t term)
  double slope = 0.0;      ///< b: per-input cost (the paper's pt/w term)
  double r2 = 0.0;         ///< coefficient of determination

  /// Predicted value at x.
  double at(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares over the given points (sizes must match, >= 2).
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fits only the upper half of the x range, where the linear term dominates —
/// this is how the paper extracts asymptotic slopes from log-scale sweeps.
LinearFit fit_linear_tail(std::span<const double> x, std::span<const double> y);

/// "37.043 us + 8.090 ns * p" — seconds-valued fit rendered like the paper.
std::string describe_fit_seconds(const LinearFit& fit, const std::string& var = "p");

/// Same for time-unit-valued fits: "12.4 Kcycles + 2.00 cycles * p".
std::string describe_fit_units(const LinearFit& fit, const std::string& var = "p");

}  // namespace obx::analysis

#include "analysis/series.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace obx::analysis {

std::vector<double> speedup(std::span<const double> baseline,
                            std::span<const double> series) {
  OBX_CHECK(baseline.size() == series.size(), "series size mismatch");
  std::vector<double> out(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    out[i] = series[i] == 0.0 ? 0.0 : baseline[i] / series[i];
  }
  return out;
}

std::optional<std::size_t> crossover_index(std::span<const double> a,
                                           std::span<const double> b) {
  OBX_CHECK(a.size() == b.size(), "series size mismatch");
  std::optional<std::size_t> candidate;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      if (!candidate) candidate = i;
    } else {
      candidate.reset();
    }
  }
  return candidate;
}

double max_value(std::span<const double> v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, x);
  return best;
}

double relative_error(double a, double b) {
  const double scale = std::max(std::fabs(b), 1e-300);
  return std::fabs(a - b) / scale;
}

}  // namespace obx::analysis

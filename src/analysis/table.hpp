// ASCII table and CSV rendering for the benchmark harness.
//
// Every figure bench prints a human-readable table (the rows of the paper's
// plots) and can dump the same data as CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace obx::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated dump (header + rows); cells containing commas are quoted.
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path`, creating/truncating the file.
  void save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace obx::analysis

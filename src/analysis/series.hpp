// Series utilities for the figure benches: speedups and crossovers.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace obx::analysis {

/// Element-wise baseline/series (the paper's "speedup factor of the GPU over
/// the CPU").  Sizes must match; zero series entries yield 0.
std::vector<double> speedup(std::span<const double> baseline,
                            std::span<const double> series);

/// First index where `a` becomes strictly smaller than `b` and stays smaller
/// through the end; nullopt when it never does.
std::optional<std::size_t> crossover_index(std::span<const double> a,
                                           std::span<const double> b);

/// Max element (0 for an empty span).
double max_value(std::span<const double> v);

/// Relative error |a-b| / max(|b|, eps).
double relative_error(double a, double b);

}  // namespace obx::analysis

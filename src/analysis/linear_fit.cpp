#include "analysis/linear_fit.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/format.hpp"

namespace obx::analysis {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  OBX_CHECK(x.size() == y.size(), "x/y size mismatch");
  OBX_CHECK(x.size() >= 2, "need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  // R².
  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit.at(x[i]);
    ss_res += e * e;
    const double d = y[i] - mean_y;
    ss_tot += d * d;
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

LinearFit fit_linear_tail(std::span<const double> x, std::span<const double> y) {
  OBX_CHECK(x.size() == y.size(), "x/y size mismatch");
  OBX_CHECK(x.size() >= 2, "need at least two points");
  const std::size_t start = x.size() / 2;
  const std::size_t count = x.size() - start;
  if (count < 2) return fit_linear(x, y);
  return fit_linear(x.subspan(start), y.subspan(start));
}

std::string describe_fit_seconds(const LinearFit& fit, const std::string& var) {
  // Slopes are tiny (ns per input); render with an auto unit.
  return format_seconds(fit.intercept) + " + " + format_seconds(fit.slope) + " * " + var;
}

std::string describe_fit_units(const LinearFit& fit, const std::string& var) {
  return format_units(fit.intercept) + " + " + format_fixed(fit.slope, 3) + " cycles * " +
         var;
}

}  // namespace obx::analysis

// Seeded random generation of valid oblivious trace programs.
//
// The fuzzer's grammar produces programs that are structurally oblivious by
// construction (addresses are literals, never derived from data) but
// otherwise adversarial: every ALU op in the ISA including the wrap/IEEE
// edge ops, immediates drawn from a pool of edge bit patterns (NaN, ±inf,
// -0.0, denormals, INT64_MIN, shift counts at the &63 mask boundary), and
// the idioms the compiled backend's fusion pass keys on — scan runs
// (load → alu → store with a carried accumulator), load/alu/store jams,
// register-only runs — so superinstruction formation and dead-commit elision
// are exercised on purpose, not by luck.  The multicore-oblivious workload
// idioms are part of the grammar too: min/max compare-exchange runs (merge
// and sorting networks), keyed conditional swaps routing payloads through
// kSelect (partition), and segmented-scan links that carry a sum across
// equal keys (aggregate).
//
// Determinism contract: generate_program(rng) with an Rng seeded identically
// produces an identical step stream on every platform (Rng is xoshiro256**,
// portable by design), which is what makes `obx_cli fuzz --seed S`
// replayable and shrunken reproducers stable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::check {

struct GenOptions {
  /// Canonical memory words (input == memory == output: the whole final
  /// memory image is the observable output, so any divergence anywhere in
  /// memory is caught, not just in a declared output window).
  std::size_t min_memory_words = 1;
  std::size_t max_memory_words = 48;

  std::size_t min_registers = 1;
  std::size_t max_registers = 12;

  /// Step-count range.  The default straddles the fusion segment boundary
  /// only when callers raise it (see obx_cli fuzz --max-steps); unit tests
  /// keep it small so a full matrix sweep stays fast under sanitizers.
  std::size_t min_steps = 4;
  std::size_t max_steps = 360;
};

/// Generates one random valid oblivious program.  Consumes a deterministic
/// amount of `rng` state for a given outcome sequence, so a fixed seed yields
/// a fixed program.
trace::Program generate_program(Rng& rng, const GenOptions& options = {});

/// Deterministic adversarial inputs for `p` lanes of `input_words` words:
/// a seeded mix of raw 64-bit patterns, small integers, doubles, and the
/// same edge bit patterns the generator uses for immediates.
std::vector<Word> generate_inputs(std::uint64_t seed, std::size_t p,
                                  std::size_t input_words);

/// The edge-case immediate pool (exposed for tests).
const std::vector<Word>& edge_words();

}  // namespace obx::check

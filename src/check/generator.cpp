#include "check/generator.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::check {

namespace {

using trace::Op;
using trace::Step;

/// Every ALU op in the ISA.  The fuzzer must cover all of them: the compiled
/// kernels re-implement each one per vector width, and the sign/wrap/IEEE
/// corners (kMulI overflow, kShl by 63, NaN through kMinF/kMaxF/kCmovLtF)
/// are exactly where an engine would silently drift from the interpreter.
constexpr Op kAllOps[] = {
    Op::kNop,  Op::kAddF, Op::kSubF, Op::kMulF,   Op::kDivF,    Op::kMinF,
    Op::kMaxF, Op::kNegF, Op::kAddI, Op::kSubI,   Op::kMulI,    Op::kMinI,
    Op::kMaxI, Op::kAnd,  Op::kOr,   Op::kXor,    Op::kShl,     Op::kShr,
    Op::kNotU, Op::kLtF,  Op::kLeF,  Op::kEqF,    Op::kLtI,     Op::kLeI,
    Op::kEqI,  Op::kNeI,  Op::kLtU,  Op::kSelect, Op::kCmovLtF, Op::kCmovLtI,
    Op::kMov};

/// Ops that make interesting scan accumulators (associative-ish, but the
/// harness never relies on associativity — only on determinism).
constexpr Op kScanOps[] = {Op::kAddF, Op::kAddI, Op::kMinI, Op::kMaxI,
                           Op::kXor,  Op::kAnd,  Op::kOr,   Op::kMinF,
                           Op::kMaxF, Op::kMulI};

std::vector<Word> make_edge_words() {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  return {
      Word{0},
      Word{1},
      Word{2},
      Word{63},
      Word{64},
      Word{65},
      ~Word{0},                          // -1 as i64, NaN-adjacent as f64
      Word{1} << 63,                     // INT64_MIN / -0.0
      (Word{1} << 63) - 1,               // INT64_MAX
      std::bit_cast<Word>(qnan),
      std::bit_cast<Word>(-qnan),
      std::bit_cast<Word>(inf),
      std::bit_cast<Word>(-inf),
      std::bit_cast<Word>(denorm),
      std::bit_cast<Word>(-denorm),
      std::bit_cast<Word>(0.0),
      std::bit_cast<Word>(-0.0),
      std::bit_cast<Word>(1.0),
      std::bit_cast<Word>(-1.0),
      std::bit_cast<Word>(0.5),
      std::bit_cast<Word>(1e308),
      std::bit_cast<Word>(-1e308),
      std::bit_cast<Word>(1e-308),       // subnormal territory under division
      Word{0xdeadbeefcafebabeULL},
      Word{0x0101010101010101ULL},
      Word{0x8000000080000000ULL},
  };
}

struct Ctx {
  Rng& rng;
  std::size_t n;     // memory words
  std::size_t regs;  // register count

  std::uint8_t reg() { return static_cast<std::uint8_t>(rng.next_below(regs)); }
  Addr addr() { return static_cast<Addr>(rng.next_below(n)); }
  Op any_op() { return kAllOps[rng.next_below(std::size(kAllOps))]; }
  Word imm() {
    // Half edge patterns, half raw randomness.
    if (rng.next_below(2) == 0) {
      const auto& pool = edge_words();
      return pool[rng.next_below(pool.size())];
    }
    switch (rng.next_below(3)) {
      case 0: return rng.next_u64();
      case 1: return rng.next_below(256);  // small integers
      default: return std::bit_cast<Word>(rng.next_double(-1e6, 1e6));
    }
  }
};

/// One unconstrained random step.
void emit_random(Ctx& c, std::vector<Step>& body) {
  switch (c.rng.next_below(4)) {
    case 0: body.push_back(Step::load(c.reg(), c.addr())); break;
    case 1: body.push_back(Step::store(c.addr(), c.reg())); break;
    case 2: body.push_back(Step::alu(c.any_op(), c.reg(), c.reg(), c.reg(), c.reg())); break;
    default: body.push_back(Step::immediate(c.reg(), c.imm())); break;
  }
}

/// Scan idiom: acc = op(acc, mem[a]); mem[a] = acc — a run of >= 2
/// load→alu→store triples with one carried accumulator, the shape
/// opt::fuse recognises as kTripleRun (in-register accumulator for the
/// whole run, the prefix-sums fast path).
void emit_scan_run(Ctx& c, std::vector<Step>& body, std::size_t budget) {
  const std::uint8_t acc = c.reg();
  std::uint8_t tmp = c.reg();
  if (tmp == acc) tmp = static_cast<std::uint8_t>((tmp + 1) % c.regs);
  if (tmp == acc) return;  // single-register program: no scan possible
  const Op op = kScanOps[c.rng.next_below(std::size(kScanOps))];
  const std::size_t len = std::min<std::size_t>(2 + c.rng.next_below(6), budget / 3);
  const bool acc_first = c.rng.next_below(2) == 0;
  body.push_back(Step::immediate(acc, c.imm()));
  for (std::size_t k = 0; k < len; ++k) {
    const Addr a = c.addr();
    body.push_back(Step::load(tmp, a));
    body.push_back(acc_first ? Step::alu(op, acc, acc, tmp)
                             : Step::alu(op, acc, tmp, acc));
    body.push_back(Step::store(a, acc));
  }
}

/// Fusion bait: the load/alu, imm/alu, alu/store and load/alu/store jams the
/// fusion pass recognises, plus register-only runs (kRegRun) and a
/// load-then-overwrite pattern that arms dead-commit elision.
void emit_fusion_bait(Ctx& c, std::vector<Step>& body) {
  switch (c.rng.next_below(5)) {
    case 0: {  // load → alu
      const std::uint8_t r = c.reg();
      body.push_back(Step::load(r, c.addr()));
      body.push_back(Step::alu(c.any_op(), c.reg(), r, c.reg(), c.reg()));
      break;
    }
    case 1: {  // imm → alu
      const std::uint8_t r = c.reg();
      body.push_back(Step::immediate(r, c.imm()));
      body.push_back(Step::alu(c.any_op(), c.reg(), c.reg(), r, c.reg()));
      break;
    }
    case 2: {  // alu → store
      const std::uint8_t r = c.reg();
      body.push_back(Step::alu(c.any_op(), r, c.reg(), c.reg(), c.reg()));
      body.push_back(Step::store(c.addr(), r));
      break;
    }
    case 3: {  // load → alu → store triple
      const std::uint8_t r = c.reg();
      const std::uint8_t d = c.reg();
      body.push_back(Step::load(r, c.addr()));
      body.push_back(Step::alu(c.any_op(), d, r, c.reg(), c.reg()));
      body.push_back(Step::store(c.addr(), d));
      break;
    }
    default: {  // register-only run, ending in an overwrite (elision bait)
      const std::size_t len = 2 + c.rng.next_below(5);
      for (std::size_t k = 0; k < len; ++k) {
        if (c.rng.next_below(3) == 0) {
          body.push_back(Step::immediate(c.reg(), c.imm()));
        } else {
          body.push_back(Step::alu(c.any_op(), c.reg(), c.reg(), c.reg(), c.reg()));
        }
      }
      const std::uint8_t r = c.reg();
      body.push_back(Step::load(r, c.addr()));
      body.push_back(Step::immediate(r, c.imm()));  // dead commit of the load
      break;
    }
  }
}

/// Shift-count edges: shl/shr where the count register holds 62..66 —
/// straddles the architectural &63 mask.
void emit_shift_edge(Ctx& c, std::vector<Step>& body) {
  const std::uint8_t cnt = c.reg();
  body.push_back(Step::immediate(cnt, 62 + c.rng.next_below(5)));
  body.push_back(Step::alu(c.rng.next_below(2) == 0 ? Op::kShl : Op::kShr, c.reg(),
                           c.reg(), cnt));
}

/// Merge idiom: a short run of min/max compare-exchanges between address
/// pairs — the building block of the bitonic merge/sort networks
/// (oblivious-merge, bitonic-sort).  Float and integer flavours.
void emit_compare_exchange(Ctx& c, std::vector<Step>& body, std::size_t budget) {
  if (c.regs < 4 || c.n < 2) return emit_random(c, body);
  const bool floats = c.rng.next_below(2) == 0;
  const Op lo = floats ? Op::kMinF : Op::kMinI;
  const Op hi = floats ? Op::kMaxF : Op::kMaxI;
  const std::size_t len = std::min<std::size_t>(1 + c.rng.next_below(4), budget / 6);
  for (std::size_t k = 0; k < len; ++k) {
    const Addr a = c.addr();
    Addr b = c.addr();
    if (b == a) b = (b + 1) % c.n;
    body.push_back(Step::load(0, a));
    body.push_back(Step::load(1, b));
    body.push_back(Step::alu(lo, 2, 0, 1));
    body.push_back(Step::alu(hi, 3, 0, 1));
    body.push_back(Step::store(a, 2));
    body.push_back(Step::store(b, 3));
  }
}

/// Partition idiom: a keyed conditional swap — integer keys compare-exchange
/// while the payload words ride along through branch-free kSelects (the
/// oblivious-partition / oblivious-aggregate sort stage).
void emit_keyed_swap(Ctx& c, std::vector<Step>& body) {
  if (c.regs < 9 || c.n < 4) return emit_random(c, body);
  const Addr ka = c.addr();
  const Addr kb = (ka + 1) % c.n;
  const Addr va = (ka + 2) % c.n;
  const Addr vb = (ka + 3) % c.n;
  body.push_back(Step::load(0, ka));
  body.push_back(Step::load(1, kb));
  body.push_back(Step::load(2, va));
  body.push_back(Step::load(3, vb));
  body.push_back(Step::alu(Op::kMinI, 4, 0, 1));
  body.push_back(Step::alu(Op::kMaxI, 5, 0, 1));
  body.push_back(Step::alu(Op::kLtI, 6, 1, 0));
  body.push_back(Step::alu(Op::kSelect, 7, 6, 3, 2));
  body.push_back(Step::alu(Op::kSelect, 8, 6, 2, 3));
  body.push_back(Step::store(ka, 4));
  body.push_back(Step::store(kb, 5));
  body.push_back(Step::store(va, 7));
  body.push_back(Step::store(vb, 8));
}

/// Aggregate idiom: an oblivious segmented-scan link — compare adjacent
/// keys, carry the running sum across equal keys and reset it at group
/// boundaries via kSelect (the oblivious-aggregate scan/mask stages).
void emit_segmented_scan(Ctx& c, std::vector<Step>& body, std::size_t budget) {
  if (c.regs < 8 || c.n < 4) return emit_random(c, body);
  const std::size_t len = std::min<std::size_t>(1 + c.rng.next_below(4), budget / 8);
  body.push_back(Step::immediate(5, c.rng.next_below(2) == 0 ? Word{0} : c.imm()));
  for (std::size_t k = 0; k < len; ++k) {
    const Addr key = c.addr();
    const Addr next = (key + 1) % c.n;
    const Addr val = c.addr();
    Addr prev = c.addr();
    if (prev == val) prev = (prev + 1) % c.n;
    body.push_back(Step::load(0, key));
    body.push_back(Step::load(1, next));
    body.push_back(Step::load(2, prev));
    body.push_back(Step::load(3, val));
    body.push_back(Step::alu(Op::kEqI, 4, 0, 1));
    body.push_back(Step::alu(Op::kSelect, 6, 4, 2, 5));
    body.push_back(Step::alu(Op::kAddF, 7, 3, 6));
    body.push_back(Step::store(val, 7));
  }
}

}  // namespace

const std::vector<Word>& edge_words() {
  static const std::vector<Word> pool = make_edge_words();
  return pool;
}

trace::Program generate_program(Rng& rng, const GenOptions& options) {
  OBX_CHECK(options.min_memory_words >= 1 &&
                options.max_memory_words >= options.min_memory_words,
            "invalid memory-word range");
  OBX_CHECK(options.min_registers >= 1 &&
                options.max_registers >= options.min_registers &&
                options.max_registers <= 256,
            "invalid register range");
  OBX_CHECK(options.min_steps >= 1 && options.max_steps >= options.min_steps,
            "invalid step range");

  const std::size_t n =
      options.min_memory_words +
      rng.next_below(options.max_memory_words - options.min_memory_words + 1);
  const std::size_t regs =
      options.min_registers +
      rng.next_below(options.max_registers - options.min_registers + 1);
  const std::size_t target =
      options.min_steps + rng.next_below(options.max_steps - options.min_steps + 1);

  Ctx c{rng, n, regs};
  std::vector<Step> body;
  body.reserve(target + 24);
  while (body.size() < target) {
    const std::size_t budget = target - body.size() + 24;
    switch (rng.next_below(11)) {
      case 0: emit_scan_run(c, body, budget); break;
      case 1:
      case 2: emit_fusion_bait(c, body); break;
      case 3: emit_shift_edge(c, body); break;
      case 4: emit_compare_exchange(c, body, budget); break;
      case 5: emit_keyed_swap(c, body); break;
      case 6: emit_segmented_scan(c, body, budget); break;
      default: emit_random(c, body); break;
    }
  }

  return trace::make_replay_program("fuzz-" + std::to_string(rng.next_u64() & 0xffff),
                                    n, n, 0, n, regs, std::move(body));
}

std::vector<Word> generate_inputs(std::uint64_t seed, std::size_t p,
                                  std::size_t input_words) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
  const auto& pool = edge_words();
  std::vector<Word> inputs(p * input_words);
  for (Word& w : inputs) {
    switch (rng.next_below(4)) {
      case 0: w = pool[rng.next_below(pool.size())]; break;
      case 1: w = rng.next_u64(); break;
      case 2: w = rng.next_below(1024); break;
      default: w = std::bit_cast<Word>(rng.next_double(-1e3, 1e3)); break;
    }
  }
  return inputs;
}

}  // namespace obx::check

// Differential execution of one oblivious program through every engine
// configuration available on the host, with trace::interpret as the oracle.
//
// The paper's Theorem 2 rests on the trace being data-independent: every
// execution path — interpreted or compiled, any arrangement, any SIMD tier,
// any lane-tile split — must produce bit-identical memory images.  This
// header enumerates that path matrix and checks a program against all of it.
//
// Matrix axes:
//   backend      interpreted, compiled (plus compile-budget straddles: a
//                fresh-cache compile at budget == steps-1 must fall back to
//                the interpreter, at budget == steps must compile)
//   arrangement  row-wise, column-wise, blocked(B) for divisors B of p
//                (including B that are not vector-width multiples — the
//                ragged-tile case)
//   SIMD tier    every tier simd_isa_supported() on this host/build
//   tile_lanes   auto, 1 (scalar-tail-only), and a deliberately odd size
//   workers      1 and 2 (chunk-boundary seams)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "exec/backend.hpp"
#include "trace/program.hpp"

namespace obx::check {

/// One point of the execution matrix.
struct ExecConfig {
  exec::Backend backend = exec::Backend::kInterpreted;
  bulk::Arrangement arrangement = bulk::Arrangement::kColumnWise;
  /// Arrangement parameter: block size (kBlocked; a non-divisor of p pads
  /// the last block) or pad stride (kConflictFree).
  std::size_t block = 0;
  SimdIsa simd = SimdIsa::kScalar;
  std::size_t tile_lanes = 0;  ///< 0 = auto
  /// Compile budget.  0 = default.  Nonzero budgets run against a fresh
  /// exec-cache slot so the budget is actually exercised rather than
  /// memoised away.
  std::size_t compile_budget_steps = 0;
  /// When set, the run's HostRunResult::backend must equal this (used by the
  /// budget-straddle configs to prove the fallback actually happened).
  std::optional<exec::Backend> expect_backend;
  unsigned workers = 1;
  /// Route the run through plan::Planner (arrangement search) instead of a
  /// directly-constructed executor; `tune` additionally turns the measuring
  /// auto-tuner on.  Whatever arrangement the search picks must still be
  /// bit-identical to the oracle.
  bool via_planner = false;
  bool tune = false;

  std::string name() const;
};

/// A bit-level disagreement between one config and the interpreter oracle.
struct Divergence {
  std::string config;  ///< ExecConfig::name() of the failing path
  std::size_t lane = 0;
  std::size_t word = 0;  ///< canonical memory index within the lane
  Word expected = 0;
  Word got = 0;
  std::string detail;  ///< non-value mismatch (backend fallback, size, throw)

  std::string to_string() const;
};

/// Every config the host can run for a program of `program_steps` steps at
/// occupancy `p`.  Deterministic for fixed inputs (the SIMD tier list depends
/// only on the build + CPU, which is the point: the matrix is "everything
/// this host can execute").
std::vector<ExecConfig> config_matrix(std::size_t p, std::size_t program_steps);

/// Oracle: interprets the program once per lane; returns the p·n lane-major
/// final memory images.
std::vector<Word> oracle_memory(const trace::Program& program,
                                std::span<const Word> inputs, std::size_t p);

/// Runs one config and compares against the oracle's lane-major memory.
std::optional<Divergence> run_config(const trace::Program& program,
                                     std::span<const Word> inputs, std::size_t p,
                                     std::span<const Word> oracle,
                                     const ExecConfig& config);

/// Full-matrix check; returns the first divergence, or nullopt when every
/// path is bit-identical.  `configs_run`, when non-null, is incremented per
/// config executed.
std::optional<Divergence> check_program(const trace::Program& program,
                                        std::span<const Word> inputs, std::size_t p,
                                        std::size_t* configs_run = nullptr);

/// Occupancies that straddle the vector-width, tile and block boundaries.
std::vector<std::size_t> boundary_lane_counts();

}  // namespace obx::check

#include "check/fault.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/program.hpp"
#include "trace/step.hpp"

namespace obx::check {

namespace {

/// The tiny program every campaign serves: out[0] = in[0] + in[1],
/// out[1] = in[0] ^ in[1].  Small enough that batches are cheap and faults
/// dominate the schedule.
trace::Program probe_program() {
  using trace::Op;
  using trace::Step;
  std::vector<Step> steps = {
      Step::load(0, 0),
      Step::load(1, 1),
      Step::alu(Op::kAddI, 2, 0, 1),
      Step::store(2, 2),
      Step::alu(Op::kXor, 3, 0, 1),
      Step::store(3, 3),
  };
  return trace::make_replay_program("fault-probe", 4, 2, 2, 2, 4,
                                    std::move(steps));
}

}  // namespace

std::function<void(const serve::Batch&)> FaultPlan::hook() const {
  if (fail_every_batches == 0 && alloc_fail_every_batches == 0) return {};
  const FaultPlan plan = *this;
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  return [plan, counter](const serve::Batch& batch) {
    const std::size_t k = counter->fetch_add(1, std::memory_order_relaxed) + 1;
    if (plan.alloc_fail_every_batches != 0 &&
        k % plan.alloc_fail_every_batches == 0) {
      throw std::bad_alloc();
    }
    if (plan.fail_every_batches != 0 && k % plan.fail_every_batches == 0) {
      throw std::runtime_error("injected executor fault on batch " +
                               std::to_string(k) + " (" + batch.program_id + ")");
    }
  };
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << "fault-campaign: submitted=" << submitted << " completed=" << completed
     << " rejected=" << rejected << " shed=" << shed << " failed=" << failed
     << " unresolved=" << unresolved
     << (exactly_once() ? " [exactly-once OK]" : " [EXACTLY-ONCE VIOLATED]");
  return os.str();
}

CampaignReport run_fault_campaign(const CampaignOptions& options) {
  serve::ServiceOptions service = options.service;
  service.before_execute = options.plan.hook();

  CampaignReport report;
  const std::size_t total = options.producers * options.jobs_per_producer;
  std::vector<std::future<serve::JobResult>> futures(total);

  {
    serve::BulkService svc(service);
    svc.register_program("probe", probe_program());

    std::vector<std::thread> producers;
    producers.reserve(options.producers);
    for (std::size_t t = 0; t < options.producers; ++t) {
      producers.emplace_back([&, t] {
        for (std::size_t j = 0; j < options.jobs_per_producer; ++j) {
          std::vector<Word> input = {Word{t}, Word{j}};
          std::optional<serve::Clock::duration> deadline;
          if (options.with_deadlines && j % 3 == 0) {
            deadline = std::chrono::microseconds(50 + 25 * (j % 5));
          }
          futures[t * options.jobs_per_producer + j] =
              svc.submit("probe", std::move(input), deadline);
        }
      });
    }
    std::thread closer;
    if (options.close_mid_stream) {
      closer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        svc.stop();
      });
    }
    for (std::thread& p : producers) p.join();
    if (closer.joinable()) closer.join();
    svc.stop();
    report.metrics = svc.snapshot();
  }

  // Audit from the producer side.  stop() has drained everything, so every
  // future must already be ready; the wait_for is a bounded safety net that
  // turns a hang into a countable violation instead of a stuck test.
  for (std::future<serve::JobResult>& f : futures) {
    if (!f.valid()) {
      ++report.unresolved;  // submit never yielded a future: a dropped job
      continue;
    }
    ++report.submitted;
    if (f.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
      ++report.unresolved;
      continue;
    }
    try {
      const serve::JobResult r = f.get();
      switch (r.status) {
        case serve::JobStatus::kCompleted: ++report.completed; break;
        case serve::JobStatus::kRejected: ++report.rejected; break;
        case serve::JobStatus::kShed: ++report.shed; break;
        case serve::JobStatus::kFailed: ++report.failed; break;
      }
    } catch (const std::future_error&) {
      ++report.unresolved;  // broken_promise: the Job died unresolved
    } catch (...) {
      ++report.failed;  // injected (or real) execution failure — resolved
    }
  }
  return report;
}

}  // namespace obx::check

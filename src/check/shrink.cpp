#include "check/shrink.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::check {

namespace {

using trace::Op;
using trace::Step;
using trace::StepKind;

/// Rebuilds a replayable program around `steps`, shrinking the declared
/// memory/register regions to what the steps actually reference.  The whole
/// memory stays both input and output so observability never shrinks.
trace::Program rebuild(const trace::Program& base, std::vector<Step> steps) {
  std::size_t max_addr = 0;
  std::size_t max_reg = 0;
  for (const Step& s : steps) {
    if (s.is_memory()) max_addr = std::max<std::size_t>(max_addr, s.addr);
    max_reg = std::max<std::size_t>(max_reg, s.dst);
    if (s.kind == StepKind::kAlu) {
      max_reg = std::max<std::size_t>(max_reg, s.src0);
      max_reg = std::max<std::size_t>(max_reg, s.src1);
      max_reg = std::max<std::size_t>(max_reg, s.src2);
    } else if (s.kind == StepKind::kStore) {
      max_reg = std::max<std::size_t>(max_reg, s.src0);
    }
  }
  const std::size_t n = std::min(base.memory_words, max_addr + 1);
  const std::size_t regs = std::min<std::size_t>(
      std::max<std::size_t>(base.register_count, 1), max_reg + 1);
  return trace::make_replay_program(base.name + "-shrunk", n, n, 0, n,
                                    std::max<std::size_t>(regs, 1), std::move(steps));
}

struct Search {
  const trace::Program& base;
  const Predicate& pred;
  const ShrinkOptions& options;
  std::size_t calls = 0;

  bool out_of_budget() const { return calls >= options.max_predicate_calls; }

  bool still_fails(const std::vector<Step>& steps) {
    if (out_of_budget()) return false;
    ++calls;
    return pred(rebuild(base, std::vector<Step>(steps)));
  }
};

/// Window-removal pass: repeatedly delete the largest removable windows.
/// Returns true if anything was removed.
bool remove_chunks(Search& search, std::vector<Step>& steps) {
  bool removed_any = false;
  for (std::size_t chunk = std::max<std::size_t>(steps.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    bool removed = true;
    while (removed && steps.size() > 1 && !search.out_of_budget()) {
      removed = false;
      for (std::size_t begin = 0; begin + chunk <= steps.size();) {
        std::vector<Step> candidate;
        candidate.reserve(steps.size() - chunk);
        candidate.insert(candidate.end(), steps.begin(),
                         steps.begin() + static_cast<std::ptrdiff_t>(begin));
        candidate.insert(candidate.end(),
                         steps.begin() + static_cast<std::ptrdiff_t>(begin + chunk),
                         steps.end());
        if (!candidate.empty() && search.still_fails(candidate)) {
          steps = std::move(candidate);
          removed = true;
          removed_any = true;
          // keep begin: the window now holds the next steps
        } else {
          ++begin;
        }
        if (search.out_of_budget()) break;
      }
    }
    if (chunk == 1) break;
  }
  return removed_any;
}

/// Per-step simplification: try cheaper variants of each surviving step.
bool simplify_steps(Search& search, std::vector<Step>& steps) {
  bool changed_any = false;
  for (std::size_t i = 0; i < steps.size() && !search.out_of_budget(); ++i) {
    std::vector<Step> variants;
    const Step& s = steps[i];
    switch (s.kind) {
      case StepKind::kAlu:
        if (s.op != Op::kMov) variants.push_back(Step::alu(Op::kMov, s.dst, s.src0));
        if (s.op != Op::kNop) variants.push_back(Step::alu(Op::kNop, s.dst, 0));
        break;
      case StepKind::kImm:
        if (s.imm != 0) variants.push_back(Step::immediate(s.dst, 0));
        if (s.imm != 1) variants.push_back(Step::immediate(s.dst, 1));
        break;
      case StepKind::kLoad:
        if (s.addr != 0) variants.push_back(Step::load(s.dst, 0));
        break;
      case StepKind::kStore:
        if (s.addr != 0) variants.push_back(Step::store(0, s.src0));
        break;
    }
    for (const Step& v : variants) {
      std::vector<Step> candidate = steps;
      candidate[i] = v;
      if (search.still_fails(candidate)) {
        steps = std::move(candidate);
        changed_any = true;
        break;
      }
    }
  }
  return changed_any;
}

}  // namespace

ShrinkResult shrink_program(const trace::Program& failing, const Predicate& pred,
                            const ShrinkOptions& options) {
  const trace::TracedProgram traced = trace::TracedProgram::capture(failing);
  std::vector<Step> steps = traced.steps();
  OBX_CHECK(!steps.empty(), "cannot shrink an empty program");

  Search search{failing, pred, options};
  OBX_CHECK(search.still_fails(steps), "shrink_program: predicate does not fail "
                                       "on the input program");

  ShrinkResult result;
  result.steps_before = steps.size();

  // Alternate removal and simplification to a fixed point: a simplified step
  // often unlocks further removals (a kMov chain collapses, say).
  bool progress = true;
  while (progress && !search.out_of_budget()) {
    progress = remove_chunks(search, steps);
    progress = simplify_steps(search, steps) || progress;
  }

  result.program = rebuild(failing, std::move(steps));
  result.steps_after = trace::TracedProgram::capture(result.program).steps().size();
  result.predicate_calls = search.calls;
  result.budget_exhausted = search.out_of_budget();
  return result;
}

}  // namespace obx::check

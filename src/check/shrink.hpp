// Test-case shrinking: minimise a failing oblivious program to the smallest
// step sequence that still diverges.
//
// Classic delta debugging specialised to the trace ISA.  The caller supplies
// a predicate ("does this program still fail?"); the shrinker owns the
// search:
//
//   1. chunk removal — try deleting windows of steps, halving the window
//      size down to single steps, re-scanning after every successful delete;
//   2. step simplification — per surviving step, try cheaper variants
//      (ALU op → kMov, immediate → 0, address → 0) that keep the failure;
//   3. region shrink — drop memory words and registers above the highest
//      ones referenced, renumbering nothing (addresses are literals).
//
// Every candidate is a fresh trace::Program with a fresh exec-cache slot, so
// predicates that compile are re-exercised, not memoised away.  The
// predicate must be deterministic; the shrinker is then deterministic too,
// which is what makes emitted reproducers stable across hosts.
#pragma once

#include <cstddef>
#include <functional>

#include "trace/program.hpp"

namespace obx::check {

/// True when the candidate program still exhibits the failure being chased.
using Predicate = std::function<bool(const trace::Program&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one may run the full config
  /// matrix, so this caps shrink cost, not just iteration count).
  std::size_t max_predicate_calls = 4000;
};

struct ShrinkResult {
  trace::Program program;          ///< smallest failing program found
  std::size_t steps_before = 0;
  std::size_t steps_after = 0;
  std::size_t predicate_calls = 0;
  bool budget_exhausted = false;   ///< stopped on max_predicate_calls
};

/// Minimises `failing` under `pred`.  `pred(failing)` must be true on entry
/// (checked).  The result's program still satisfies `pred`.
ShrinkResult shrink_program(const trace::Program& failing, const Predicate& pred,
                            const ShrinkOptions& options = {});

}  // namespace obx::check

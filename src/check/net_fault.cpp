#include "check/net_fault.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "trace/program.hpp"
#include "trace/step.hpp"

namespace obx::check {

namespace {

using namespace obx::net;

// ---------------------------------------------------------------------------
// Frame fuzz
// ---------------------------------------------------------------------------

std::string random_string(Rng& rng, std::size_t max_len) {
  // Deliberately hostile alphabet: quotes, backslashes, newlines, NULs.
  static const char alphabet[] =
      "abcXYZ019-_./\\\"\n\t\x01\x7f"
      "{}";
  const std::size_t len = rng.next_below(max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
  }
  return s;
}

std::vector<Word> random_words(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.next_below(max_len + 1);
  std::vector<Word> words;
  words.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    words.push_back(static_cast<Word>(rng.next_u64()));
  }
  return words;
}

Frame random_frame(Rng& rng) {
  switch (rng.next_below(5)) {
    case 0: {
      SubmitFrame f;
      f.request_id = static_cast<std::uint32_t>(rng.next_u64());
      f.program_id = random_string(rng, 32);
      f.tenant = random_string(rng, 32);
      f.priority = static_cast<serve::Priority>(
          rng.next_below(serve::kPriorityCount));
      f.deadline_us = rng.next_below(2) == 0
                          ? -1
                          : static_cast<std::int64_t>(rng.next_below(1 << 20));
      f.input = random_words(rng, 64);
      return f;
    }
    case 1: {
      ResponseFrame f;
      f.request_id = static_cast<std::uint32_t>(rng.next_u64());
      f.status = static_cast<serve::JobStatus>(rng.next_below(4));
      f.deadline_missed = rng.next_below(2) == 1;
      f.batch_lanes = static_cast<std::uint32_t>(rng.next_below(1 << 16));
      f.queue_delay_us = rng.next_below(1 << 30);
      f.latency_us = rng.next_below(1 << 30);
      f.output = random_words(rng, 64);
      return f;
    }
    case 2: {
      ErrorFrame f;
      f.request_id = static_cast<std::uint32_t>(rng.next_u64());
      f.code = static_cast<ErrorCode>(1 + rng.next_below(6));
      f.message = random_string(rng, 64);
      return f;
    }
    case 3: {
      StatsRequestFrame f;
      f.request_id = static_cast<std::uint32_t>(rng.next_u64());
      return f;
    }
    default: {
      StatsResponseFrame f;
      f.request_id = static_cast<std::uint32_t>(rng.next_u64());
      f.text = random_string(rng, 256);
      return f;
    }
  }
}

bool frames_equal(const Frame& a, const Frame& b) {
  if (a.index() != b.index()) return false;
  if (const auto* x = std::get_if<SubmitFrame>(&a)) {
    const auto& y = std::get<SubmitFrame>(b);
    return x->request_id == y.request_id && x->program_id == y.program_id &&
           x->tenant == y.tenant && x->priority == y.priority &&
           x->deadline_us == y.deadline_us && x->input == y.input;
  }
  if (const auto* x = std::get_if<ResponseFrame>(&a)) {
    const auto& y = std::get<ResponseFrame>(b);
    return x->request_id == y.request_id && x->status == y.status &&
           x->deadline_missed == y.deadline_missed &&
           x->batch_lanes == y.batch_lanes &&
           x->queue_delay_us == y.queue_delay_us &&
           x->latency_us == y.latency_us && x->output == y.output;
  }
  if (const auto* x = std::get_if<ErrorFrame>(&a)) {
    const auto& y = std::get<ErrorFrame>(b);
    return x->request_id == y.request_id && x->code == y.code &&
           x->message == y.message;
  }
  if (const auto* x = std::get_if<StatsRequestFrame>(&a)) {
    return x->request_id == std::get<StatsRequestFrame>(b).request_id;
  }
  const auto& x = std::get<StatsResponseFrame>(a);
  const auto& y = std::get<StatsResponseFrame>(b);
  return x.request_id == y.request_id && x.text == y.text;
}

/// Feeds `bytes` to a fresh reader in random-sized chunks and pops at most
/// one frame; returns the reader's verdict.
FrameReader::Status chunked_decode(Rng& rng,
                                   const std::vector<std::uint8_t>& bytes,
                                   Frame& out) {
  FrameReader reader;
  std::size_t fed = 0;
  FrameReader::Status status = FrameReader::Status::kNeedMore;
  while (fed < bytes.size()) {
    const std::size_t chunk =
        1 + rng.next_below(std::min<std::size_t>(bytes.size() - fed, 37));
    reader.feed(bytes.data() + fed, chunk);
    fed += chunk;
    status = reader.next(out);
    if (status != FrameReader::Status::kNeedMore) return status;
  }
  return status;
}

}  // namespace

std::string FrameFuzzReport::summary() const {
  std::ostringstream os;
  os << "frame-fuzz: roundtrips=" << roundtrips << " mutations=" << mutations
     << " (decoded=" << mutations_decoded
     << " rejected=" << mutations_rejected << ")"
     << " violations=" << violations.size()
     << (ok() ? " [OK]" : " [FAILED]");
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

FrameFuzzReport run_frame_fuzz(const FrameFuzzOptions& options) {
  Rng rng(options.seed);
  FrameFuzzReport report;

  // Leg 1: encode/decode round trips under arbitrary chunking.
  for (std::size_t i = 0; i < options.roundtrips; ++i) {
    const Frame original = random_frame(rng);
    const std::vector<std::uint8_t> bytes = encode(original);
    Frame decoded;
    const FrameReader::Status status = chunked_decode(rng, bytes, decoded);
    ++report.roundtrips;
    if (status != FrameReader::Status::kFrame) {
      report.violations.push_back(
          "roundtrip " + std::to_string(i) + ": valid frame did not decode");
      continue;
    }
    if (!frames_equal(original, decoded)) {
      report.violations.push_back(
          "roundtrip " + std::to_string(i) + ": decode != original");
    }
  }

  // Leg 2: directed malformations.  Each must be rejected (or, for byte
  // flips that happen to land harmlessly, still decode) without crashing.
  for (std::size_t i = 0; i < options.mutations; ++i) {
    std::vector<std::uint8_t> bytes = encode(random_frame(rng));
    const std::size_t mutation = rng.next_below(7);
    bool must_reject = false;
    bool truncated = false;
    switch (mutation) {
      case 0:  // truncated header
        bytes.resize(rng.next_below(kFrameHeaderBytes));
        truncated = true;
        break;
      case 1:  // torn payload: header promises more than arrives
        if (bytes.size() > kFrameHeaderBytes) {
          bytes.resize(kFrameHeaderBytes +
                       rng.next_below(bytes.size() - kFrameHeaderBytes));
        }
        truncated = true;
        break;
      case 2: {  // oversized length field
        const std::uint32_t huge =
            static_cast<std::uint32_t>(kMaxFramePayloadBytes) + 1 +
            static_cast<std::uint32_t>(rng.next_below(1 << 16));
        bytes[8] = static_cast<std::uint8_t>(huge & 0xff);
        bytes[9] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
        bytes[10] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
        bytes[11] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
        must_reject = true;
        break;
      }
      case 3:  // bad magic
        bytes[rng.next_below(4)] ^= 0xff;
        must_reject = true;
        break;
      case 4:  // bad version
        bytes[4] = static_cast<std::uint8_t>(2 + rng.next_below(250));
        must_reject = true;
        break;
      case 5:  // bad type
        bytes[5] = static_cast<std::uint8_t>(6 + rng.next_below(200));
        must_reject = true;
        break;
      default:  // random byte flip anywhere (may stay valid)
        if (!bytes.empty()) {
          bytes[rng.next_below(bytes.size())] ^=
              static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        break;
    }
    ++report.mutations;
    Frame decoded;
    const FrameReader::Status status = chunked_decode(rng, bytes, decoded);
    if (status == FrameReader::Status::kFrame) ++report.mutations_decoded;
    if (status == FrameReader::Status::kError) ++report.mutations_rejected;
    if (must_reject && status != FrameReader::Status::kError) {
      report.violations.push_back("mutation " + std::to_string(i) + " (kind " +
                                  std::to_string(mutation) +
                                  "): malformed frame was not rejected");
    }
    if (truncated && status == FrameReader::Status::kError) {
      // A pure truncation of a valid frame must read as "need more", not a
      // protocol error — it is indistinguishable from a slow sender.
      report.violations.push_back("mutation " + std::to_string(i) +
                                  ": truncation misreported as error");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Network fault campaign
// ---------------------------------------------------------------------------

namespace {

/// Same probe the in-process campaign serves: out[0] = in[0] + in[1],
/// out[1] = in[0] ^ in[1] — cheap, and trivially verifiable client-side.
trace::Program net_probe_program() {
  using trace::Op;
  using trace::Step;
  std::vector<Step> steps = {
      Step::load(0, 0),
      Step::load(1, 1),
      Step::alu(Op::kAddI, 2, 0, 1),
      Step::store(2, 2),
      Step::alu(Op::kXor, 3, 0, 1),
      Step::store(3, 3),
  };
  return trace::make_replay_program("net-probe", 4, 2, 2, 2, 4,
                                    std::move(steps));
}

/// A well-behaved tenant client: submits, waits, verifies outputs.
void good_client(const std::string& host, std::uint16_t port,
                 const std::string& tenant, serve::Priority priority,
                 std::size_t jobs, std::uint64_t seed,
                 NetCampaignReport& report, std::mutex& report_mutex) {
  Rng rng(seed);
  Client client(host, port);
  std::size_t submits = 0, completed = 0, rejected = 0, shed = 0, failed = 0,
              transport = 0, mismatches = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const Word a = static_cast<Word>(rng.next_u64());
    const Word b = static_cast<Word>(rng.next_u64());
    ++submits;
    const Client::Result r =
        client.submit("net-probe", {a, b}, tenant, priority);
    if (!r.transport_error.empty()) {
      ++transport;
      continue;
    }
    if (r.error_code) {
      ++failed;
      continue;
    }
    switch (r.status) {
      case serve::JobStatus::kCompleted:
        ++completed;
        if (r.output != std::vector<Word>{a + b, a ^ b}) ++mismatches;
        break;
      case serve::JobStatus::kRejected: ++rejected; break;
      case serve::JobStatus::kShed: ++shed; break;
      case serve::JobStatus::kFailed: ++failed; break;
    }
  }
  std::lock_guard<std::mutex> lock(report_mutex);
  report.client_submits += submits;
  report.client_completed += completed;
  report.client_rejected += rejected;
  report.client_shed += shed;
  report.client_failed += failed;
  report.client_transport_errors += transport;
  report.output_mismatches += mismatches;
}

/// Submits a burst of work and vanishes without reading a single response:
/// every admitted job must surface as responses_dropped (or sent into the
/// doomed socket), never as a leak.
void dropper(const std::string& host, std::uint16_t port, std::uint64_t seed) {
  Rng rng(seed);
  Client client(host, port);
  for (std::size_t i = 0; i < 8; ++i) {
    client.submit_async("net-probe",
                        {static_cast<Word>(rng.next_u64()),
                         static_cast<Word>(rng.next_u64())},
                        "dropper");
  }
  client.close();  // mid-request: responses are in flight
}

/// Writes a torn frame (valid header, missing payload) or plain garbage,
/// then closes.  The server must count a protocol error or just an EOF —
/// and admit nothing.
void tearer(const std::string& host, std::uint16_t port, std::uint64_t seed) {
  Rng rng(seed);
  std::string error;
  // Connection 1: a valid submit torn three bytes into the payload, then an
  // abrupt close.  Not a decode error — the server just reaps the socket.
  {
    Socket s = Socket::connect(host, port, &error);
    if (s.valid()) {
      SubmitFrame submit;
      submit.request_id = 7;
      submit.program_id = "net-probe";
      submit.input = {1, 2};
      std::vector<std::uint8_t> bytes = encode(Frame{std::move(submit)});
      const std::size_t cut = kFrameHeaderBytes + 3;
      std::size_t sent = 0;
      while (sent < cut) {
        const IoResult r = s.write_some(bytes.data() + sent, cut - sent);
        if (r.kind != IoResult::Kind::kOk) break;
        sent += r.bytes;
      }
    }
  }
  // Connection 2: random garbage — a bad magic the decoder must poison.
  {
    Socket s = Socket::connect(host, port, &error);
    if (s.valid()) {
      std::vector<std::uint8_t> garbage(64);
      for (std::uint8_t& b : garbage) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      std::size_t sent = 0;
      while (sent < garbage.size()) {
        const IoResult r =
            s.write_some(garbage.data() + sent, garbage.size() - sent);
        if (r.kind != IoResult::Kind::kOk) break;
        sent += r.bytes;
      }
    }
  }
}

/// Trickles a few header bytes and then goes silent, never completing a
/// 16-byte header (a full header of repeated magic bytes would trip the
/// protocol-error path instead).  The server must cut the connection on the
/// idle timeout.
void slow_loris(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds hold) {
  std::string error;
  Socket s = Socket::connect(host, port, &error);
  if (!s.valid()) return;
  const std::uint8_t magic0 = 0x46;  // first byte of a valid magic
  const auto deadline = std::chrono::steady_clock::now() + hold;
  std::size_t sent = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (sent + 1 < kFrameHeaderBytes) {
      (void)s.write_some(&magic0, 1);
      ++sent;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

std::string NetCampaignReport::summary() const {
  std::ostringstream os;
  os << "net-fault-campaign: submits=" << client_submits
     << " completed=" << client_completed << " rejected=" << client_rejected
     << " shed=" << client_shed << " failed=" << client_failed
     << " transport=" << client_transport_errors
     << " mismatches=" << output_mismatches
     << "\n  server: admitted=" << server.submits_admitted
     << " sent=" << server.responses_sent
     << " dropped=" << server.responses_dropped
     << " protocol-errors=" << server.protocol_errors
     << " idle-timeouts=" << server.idle_timeouts
     << (ok() ? "\n  [OK]" : "\n  [FAILED]");
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

NetCampaignReport run_net_fault_campaign(const NetCampaignOptions& options) {
  NetCampaignReport report;
  std::mutex report_mutex;

  serve::ServiceOptions service_options;
  service_options.queue_capacity = options.queue_capacity;
  service_options.policy = options.policy;
  service_options.batcher.max_batch_lanes = 16;
  service_options.batcher.max_batch_delay = std::chrono::microseconds(200);
  service_options.executors = 2;
  service_options.before_execute = options.plan.hook();
  // The storm tenant gets a bucket it will overrun immediately.
  service_options.tenant_quotas["storm"] =
      serve::TenantQuota{/*rate_hz=*/5.0, /*burst=*/2};

  serve::BulkService service(service_options);
  service.register_program("net-probe", net_probe_program());

  ServerOptions server_options;
  server_options.idle_timeout = std::chrono::milliseconds(300);
  server_options.write_stall_timeout = std::chrono::milliseconds(2000);
  server_options.drain_timeout = std::chrono::milliseconds(10000);
  net::Server server(service, server_options);
  const std::string host = server.host();
  const std::uint16_t port = server.port();

  {
    std::vector<std::thread> threads;
    static const serve::Priority kPriorities[] = {
        serve::Priority::kHigh, serve::Priority::kNormal,
        serve::Priority::kLow};
    for (std::size_t t = 0; t < options.tenants; ++t) {
      threads.emplace_back([&, t] {
        good_client(host, port, "tenant-" + std::to_string(t),
                    kPriorities[t % 3], options.jobs_per_client,
                    options.seed * 101 + t, report, report_mutex);
      });
    }
    // The quota storm is a well-behaved client too — its rejections must be
    // clean kRejected responses, never hangs or drops.
    threads.emplace_back([&] {
      good_client(host, port, "storm", serve::Priority::kNormal,
                  options.storm_jobs, options.seed * 977, report,
                  report_mutex);
    });
    for (std::size_t a = 0; a < options.abusers; ++a) {
      threads.emplace_back(
          [&, a] { dropper(host, port, options.seed * 313 + a); });
      threads.emplace_back(
          [&, a] { tearer(host, port, options.seed * 419 + a); });
    }
    threads.emplace_back([&] {
      slow_loris(host, port, std::chrono::milliseconds(700));
    });
    for (std::thread& t : threads) t.join();
  }

  server.stop();   // drains in-flight responses (service still running)
  service.stop();  // resolves everything still queued
  report.server = server.stats();
  report.metrics = service.snapshot();

  // --- audits ---------------------------------------------------------------
  if (!report.server.exactly_once()) {
    report.violations.push_back(
        "server ledger: admitted=" +
        std::to_string(report.server.submits_admitted) +
        " != sent+dropped=" +
        std::to_string(report.server.responses_sent +
                       report.server.responses_dropped));
  }
  const std::size_t client_resolved =
      report.client_completed + report.client_rejected + report.client_shed +
      report.client_failed + report.client_transport_errors;
  if (client_resolved != report.client_submits) {
    report.violations.push_back(
        "client ledger: " + std::to_string(report.client_submits) +
        " submits, " + std::to_string(client_resolved) + " results");
  }
  if (report.output_mismatches != 0) {
    report.violations.push_back(std::to_string(report.output_mismatches) +
                                " completed outputs diverged from the probe");
  }
  const auto& m = report.metrics;
  if (m.submitted != m.completed + m.rejected + m.shed + m.failed) {
    report.violations.push_back("service ledger: submitted=" +
                                std::to_string(m.submitted) +
                                " != terminal outcomes");
  }
  if (report.server.idle_timeouts == 0) {
    report.violations.push_back(
        "slow-loris connection was never idle-timed-out");
  }
  if (options.storm_jobs > 10) {
    bool storm_throttled = false;
    for (const serve::TenantSnapshot& t : m.tenants) {
      if (t.tenant == "storm" && t.throttled > 0) storm_throttled = true;
    }
    if (!storm_throttled) {
      report.violations.push_back(
          "quota storm tenant was never throttled (token bucket inert)");
    }
  }
  return report;
}

}  // namespace obx::check

#include "check/differential.hpp"

#include <sstream>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "exec/jit/jit_program.hpp"
#include "plan/planner.hpp"
#include "trace/interpreter.hpp"

namespace obx::check {

namespace {

using bulk::Arrangement;

/// SIMD tiers this host/build can actually execute, narrowest first.
std::vector<SimdIsa> supported_tiers() {
  std::vector<SimdIsa> tiers;
  for (const SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse2, SimdIsa::kNeon,
                            SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    if (simd_isa_supported(isa)) tiers.push_back(isa);
  }
  return tiers;
}

/// Up to two interesting blocked arrangements for occupancy p: the smallest
/// nontrivial divisor (usually not a vector-width multiple — the ragged-tile
/// case) and the largest proper divisor.  p prime yields block = 1, which is
/// still a valid blocked layout (degenerates to row-wise addressing but runs
/// the blocked code paths).
std::vector<std::size_t> blocked_blocks(std::size_t p) {
  std::vector<std::size_t> blocks;
  if (p < 2) return blocks;
  std::size_t smallest = 0;
  for (std::size_t d = 2; d * d <= p; ++d) {
    if (p % d == 0) {
      smallest = d;
      break;
    }
  }
  if (smallest == 0) {
    blocks.push_back(1);  // p prime
    return blocks;
  }
  blocks.push_back(smallest);
  const std::size_t largest = p / smallest;
  if (largest != smallest) blocks.push_back(largest);
  return blocks;
}

bulk::Layout layout_for(const trace::Program& program, std::size_t p,
                        const ExecConfig& config) {
  return bulk::make_layout(program, p, config.arrangement, config.block);
}

}  // namespace

std::string ExecConfig::name() const {
  std::ostringstream os;
  if (via_planner) {
    os << "planner" << (tune ? "/tuned" : "/searched");
    if (workers != 1) os << "/workers=" << workers;
    return os.str();
  }
  os << to_string(backend) << "/";
  if (arrangement == Arrangement::kBlocked) {
    os << "blocked(" << block << ")";
  } else if (arrangement == Arrangement::kConflictFree) {
    os << "cf(" << block << ")";
  } else {
    os << (arrangement == Arrangement::kRowWise ? "row" : "col");
  }
  if (backend != exec::Backend::kInterpreted) {
    os << "/" << obx::to_string(simd) << "/tile=" << tile_lanes;
    if (compile_budget_steps != 0) os << "/budget=" << compile_budget_steps;
  }
  if (workers != 1) os << "/workers=" << workers;
  return os.str();
}

std::string Divergence::to_string() const {
  std::ostringstream os;
  os << "divergence[" << config << "]";
  if (!detail.empty()) {
    os << " " << detail;
  } else {
    os << " lane=" << lane << " word=" << word << " expected=0x" << std::hex
       << expected << " got=0x" << got;
  }
  return os.str();
}

std::vector<ExecConfig> config_matrix(std::size_t p, std::size_t program_steps) {
  std::vector<ExecConfig> configs;
  const std::vector<SimdIsa> tiers = supported_tiers();

  struct Arr {
    Arrangement arrangement;
    std::size_t block;
  };
  std::vector<Arr> arrangements{{Arrangement::kRowWise, 0},
                                {Arrangement::kColumnWise, 0},
                                {Arrangement::kConflictFree, 2},
                                {Arrangement::kConflictFree, 4}};
  for (const std::size_t b : blocked_blocks(p)) {
    arrangements.push_back({Arrangement::kBlocked, b});
  }
  // Ragged blocked: a block that does not divide p pads the last block.
  if (p >= 3) arrangements.push_back({Arrangement::kBlocked, p - 1});

  for (const Arr& arr : arrangements) {
    ExecConfig interp;
    interp.backend = exec::Backend::kInterpreted;
    interp.arrangement = arr.arrangement;
    interp.block = arr.block;
    configs.push_back(interp);

    for (const SimdIsa isa : tiers) {
      for (const std::size_t tile : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
        ExecConfig c;
        c.backend = exec::Backend::kCompiled;
        c.arrangement = arr.arrangement;
        c.block = arr.block;
        c.simd = isa;
        c.tile_lanes = tile;
        configs.push_back(c);
      }
      // The copy-and-patch JIT leg: every arrangement × tier, auto and
      // ragged tiles, against the same oracle.  Where emission is available
      // the run must actually be the JIT (expect_backend pins it); elsewhere
      // the config still runs, via the compiled-switch fallback.
      for (const std::size_t tile : {std::size_t{0}, std::size_t{3}}) {
        ExecConfig j;
        j.backend = exec::Backend::kJit;
        j.arrangement = arr.arrangement;
        j.block = arr.block;
        j.simd = isa;
        j.tile_lanes = tile;
        if (exec::jit_available()) j.expect_backend = exec::Backend::kJit;
        configs.push_back(j);
      }
    }
  }

  // Chunk-boundary seams: the widest tier, column-wise, two workers — plus
  // the interpreted engine with two workers.
  if (p >= 2) {
    ExecConfig c;
    c.backend = exec::Backend::kCompiled;
    c.simd = tiers.back();
    c.workers = 2;
    configs.push_back(c);
    ExecConfig i;
    i.backend = exec::Backend::kInterpreted;
    i.workers = 2;
    configs.push_back(i);
  }

  // Steal-scheduler stress: oversubscribe the CorePool (8-way) with one-lane
  // tiles so nearly every task crosses the work-stealing deques, plus the
  // interpreted engine at the same width.  Any ordering- or
  // ownership-sensitivity in the steal loop shows up as a memory-image
  // divergence from the oracle.
  if (p >= 4) {
    ExecConfig steal;
    steal.backend = exec::Backend::kCompiled;
    steal.simd = tiers.back();
    steal.workers = 8;
    steal.tile_lanes = 1;
    configs.push_back(steal);
    ExecConfig jsteal = steal;
    jsteal.backend = exec::Backend::kJit;
    if (exec::jit_available()) jsteal.expect_backend = exec::Backend::kJit;
    configs.push_back(jsteal);
    ExecConfig isteal;
    isteal.backend = exec::Backend::kInterpreted;
    isteal.workers = 8;
    configs.push_back(isteal);
  }

  // The full planning path: the arrangement search (and, in the second
  // config, the measuring auto-tuner) picks the layout; whatever it picks
  // must still match the oracle bit for bit.
  {
    ExecConfig searched;
    searched.via_planner = true;
    configs.push_back(searched);
    ExecConfig tuned;
    tuned.via_planner = true;
    tuned.tune = true;
    configs.push_back(tuned);
  }

  // Compile-budget straddles (fresh cache slots, see run_config): one step
  // under budget must fall back to the interpreter bit-identically; exactly
  // at budget must compile.
  if (program_steps >= 2) {
    ExecConfig under;
    under.backend = exec::Backend::kCompiled;
    under.simd = tiers.back();
    under.compile_budget_steps = program_steps - 1;
    under.expect_backend = exec::Backend::kInterpreted;
    configs.push_back(under);

    ExecConfig exact;
    exact.backend = exec::Backend::kCompiled;
    exact.simd = tiers.back();
    exact.compile_budget_steps = program_steps;
    exact.expect_backend = exec::Backend::kCompiled;
    configs.push_back(exact);

    // Same straddle through the JIT rung: one step under budget must fall
    // all the way down to the interpreter; exactly at budget must compile
    // AND emit (where emission is available).
    ExecConfig junder = under;
    junder.backend = exec::Backend::kJit;
    configs.push_back(junder);
    ExecConfig jexact = exact;
    jexact.backend = exec::Backend::kJit;
    jexact.expect_backend =
        exec::jit_available() ? exec::Backend::kJit : exec::Backend::kCompiled;
    configs.push_back(jexact);
  }
  return configs;
}

std::vector<Word> oracle_memory(const trace::Program& program,
                                std::span<const Word> inputs, std::size_t p) {
  const std::size_t n = program.memory_words;
  std::vector<Word> memory(p * n);
  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const Word> input =
        inputs.subspan(j * program.input_words, program.input_words);
    const trace::InterpreterResult ref = trace::interpret(program, input);
    std::copy(ref.memory.begin(), ref.memory.end(), memory.begin() + j * n);
  }
  return memory;
}

std::optional<Divergence> run_config(const trace::Program& program,
                                     std::span<const Word> inputs, std::size_t p,
                                     std::span<const Word> oracle,
                                     const ExecConfig& config) {
  auto fail = [&](std::string detail) {
    Divergence d;
    d.config = config.name();
    d.detail = std::move(detail);
    return d;
  };

  if (config.via_planner) {
    plan::PlanOptions po;
    po.reference_lanes = p;
    po.workers = config.workers;
    po.tune.measure = config.tune;
    po.tune.trials = 1;
    // The oracle is the unoptimised program's full memory image; keep the
    // optimiser out so scratch words stay comparable.
    po.optimise = false;
    std::shared_ptr<const plan::ExecutionPlan> plan;
    bulk::HostRunResult run;
    try {
      plan = plan::Planner(po).build(program);
      run = bulk::HostBulkExecutor(plan->layout(p), plan->host_options())
                .run(plan->program(), inputs);
    } catch (const std::exception& e) {
      return fail(std::string("threw: ") + e.what());
    }
    const bulk::Layout layout = plan->layout(p);
    const std::size_t n = program.memory_words;
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const Word got = run.memory[layout.global(static_cast<Addr>(i), j)];
        const Word expected = oracle[j * n + i];
        if (got != expected) {
          Divergence d;
          d.config = config.name();
          d.lane = j;
          d.word = i;
          d.expected = expected;
          d.got = got;
          return d;
        }
      }
    }
    return std::nullopt;
  }

  // Budget-variant configs run against a private exec-cache slot: the
  // process-wide slot memoises the first successful compile, which would
  // otherwise hand a cached artifact to a config whose budget should refuse
  // to build one.
  trace::Program subject = program;
  if (config.compile_budget_steps != 0) {
    subject.exec_cache = std::make_shared<trace::ExecCacheSlot>();
  }

  bulk::HostBulkExecutor::Options options;
  options.workers = config.workers;
  options.backend = config.backend;
  options.tile_lanes = config.tile_lanes;
  if (config.compile_budget_steps != 0) {
    options.compile_budget_steps = config.compile_budget_steps;
  }
  if (config.backend != exec::Backend::kInterpreted) options.simd = config.simd;

  const bulk::Layout layout = layout_for(subject, p, config);
  const bulk::HostBulkExecutor executor(layout, options);

  bulk::HostRunResult run;
  try {
    run = executor.run(subject, inputs);
  } catch (const std::exception& e) {
    return fail(std::string("threw: ") + e.what());
  }

  if (config.expect_backend.has_value() && run.backend != *config.expect_backend) {
    return fail("expected backend " + exec::to_string(*config.expect_backend) +
                ", ran " + exec::to_string(run.backend));
  }

  // Compare the full final memory image lane by lane — not just the declared
  // output window — so a wrong scratch word is a failure too.
  const std::size_t n = subject.memory_words;
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const Word got = run.memory[layout.global(static_cast<Addr>(i), j)];
      const Word expected = oracle[j * n + i];
      if (got != expected) {
        Divergence d;
        d.config = config.name();
        d.lane = j;
        d.word = i;
        d.expected = expected;
        d.got = got;
        return d;
      }
    }
  }
  return std::nullopt;
}

std::optional<Divergence> check_program(const trace::Program& program,
                                        std::span<const Word> inputs, std::size_t p,
                                        std::size_t* configs_run) {
  OBX_CHECK(inputs.size() == p * program.input_words,
            "inputs must be lane-major flat: p * input_words");
  const std::vector<Word> oracle = oracle_memory(program, inputs, p);
  const std::size_t steps = trace::TracedProgram::capture(program).steps().size();
  for (const ExecConfig& config : config_matrix(p, steps)) {
    if (configs_run != nullptr) ++*configs_run;
    if (auto d = run_config(program, inputs, p, oracle, config)) return d;
  }
  return std::nullopt;
}

std::vector<std::size_t> boundary_lane_counts() {
  // Straddle every vector width (2/4/8), the default blocked splits, and the
  // two-worker chunk seam.
  return {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65};
}

}  // namespace obx::check

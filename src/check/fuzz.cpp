#include "check/fuzz.hpp"

#include <sstream>

#include "common/check.hpp"
#include "trace/serialize.hpp"
#include "trace/step.hpp"

namespace obx::check {

namespace {

/// Per-iteration seed: decorrelates iterations while staying a pure function
/// of (campaign seed, iteration index).
std::uint64_t iteration_seed(std::uint64_t seed, std::uint64_t iter) {
  std::uint64_t x = seed ^ (iter * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x | 1;  // Rng(0) is fine, but keep seeds visibly nonzero
}

std::size_t pick_lanes(Rng& rng) {
  const std::vector<std::size_t> boundaries = boundary_lane_counts();
  if (rng.next_below(2) == 0) {
    return boundaries[rng.next_below(boundaries.size())];
  }
  return 1 + rng.next_below(70);
}

}  // namespace

std::string write_reproducer(const Reproducer& repro) {
  std::ostringstream os;
  os << "# obx-fuzz reproducer v1\n";
  os << "# input-seed=" << repro.input_seed << " p=" << repro.p << "\n";
  if (!repro.note.empty()) os << "# note=" << repro.note << "\n";
  os << trace::serialize_program(repro.program);
  return os.str();
}

Reproducer parse_reproducer(const std::string& text) {
  Reproducer repro;
  std::istringstream is(text);
  std::string line;
  std::ostringstream body;
  bool seen_seed = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      std::istringstream fields(line.substr(1));
      std::string field;
      while (fields >> field) {
        if (field.rfind("input-seed=", 0) == 0) {
          repro.input_seed = std::stoull(field.substr(11));
          seen_seed = true;
        } else if (field.rfind("p=", 0) == 0) {
          repro.p = std::stoull(field.substr(2));
        } else if (field.rfind("note=", 0) == 0) {
          repro.note = line.substr(line.find("note=") + 5);
        }
      }
      continue;
    }
    body << line << "\n";
  }
  OBX_CHECK(seen_seed, "reproducer missing '# input-seed=... p=...' header");
  OBX_CHECK(repro.p >= 1, "reproducer needs p >= 1");
  repro.program = trace::parse_program(body.str());
  return repro;
}

std::optional<Divergence> replay_reproducer(const Reproducer& repro) {
  const std::vector<Word> inputs =
      generate_inputs(repro.input_seed, repro.p, repro.program.input_words);
  return check_program(repro.program, inputs, repro.p);
}

std::string regression_test_source(const Reproducer& repro,
                                   const std::string& test_name) {
  std::ostringstream os;
  os << "TEST(FuzzRegression, " << test_name << ") {\n";
  if (!repro.note.empty()) os << "  // found as: " << repro.note << "\n";
  os << "  const trace::Program program = trace::parse_program(R\"obx(\n"
     << trace::serialize_program(repro.program) << ")obx\");\n";
  os << "  const auto inputs = check::generate_inputs(" << repro.input_seed
     << "ULL, " << repro.p << ", program.input_words);\n";
  os << "  const auto divergence = check::check_program(program, inputs, " << repro.p
     << ");\n";
  os << "  EXPECT_FALSE(divergence.has_value())\n"
     << "      << (divergence ? divergence->to_string() : \"\");\n";
  os << "}\n";
  return os.str();
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzz: " << programs << " programs x full matrix (" << configs
     << " config runs), " << failures.size() << " divergence"
     << (failures.size() == 1 ? "" : "s");
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  for (std::uint64_t iter = 0; iter < options.iters; ++iter) {
    const std::uint64_t iter_seed = iteration_seed(options.seed, iter);
    Rng rng(iter_seed);
    const trace::Program program = generate_program(rng, options.gen);
    const std::size_t p = pick_lanes(rng);
    const std::vector<Word> inputs =
        generate_inputs(iter_seed, p, program.input_words);

    ++report.programs;
    auto divergence = check_program(program, inputs, p, &report.configs);
    if (!divergence.has_value()) continue;

    FuzzFailure failure;
    failure.iteration = iter;
    failure.divergence = *divergence;
    failure.reproducer.input_seed = iter_seed;
    failure.reproducer.p = p;
    failure.reproducer.note =
        divergence->config + " (campaign seed " + std::to_string(options.seed) +
        " iter " + std::to_string(iter) + ")";
    if (options.shrink) {
      const Predicate pred = [&](const trace::Program& candidate) {
        const std::vector<Word> candidate_inputs =
            generate_inputs(iter_seed, p, candidate.input_words);
        return check_program(candidate, candidate_inputs, p).has_value();
      };
      failure.shrink = shrink_program(program, pred, options.shrink_options);
      failure.reproducer.program = failure.shrink.program;
    } else {
      failure.reproducer.program = program;
    }
    report.failures.push_back(std::move(failure));
    if (report.failures.size() >= options.max_failures) break;
  }
  return report;
}

}  // namespace obx::check

// The fuzz campaign driver: generate → execute matrix → shrink → reproduce.
//
// run_fuzz() is the engine behind `obx_cli fuzz` and the bounded check_fuzz
// ctest leg: for each iteration it generates a random oblivious program
// (check/generator.hpp), runs it through the full execution matrix
// (check/differential.hpp) with trace::interpret as oracle, and — when a
// path diverges — shrinks the program to a minimal failing step sequence
// (check/shrink.hpp) and packages it as a Reproducer: a self-contained text
// artifact (committed under tests/regressions/) that replays the exact
// failure from a .obx program dump plus a deterministic input seed.
//
// Everything is a pure function of FuzzOptions::seed: same seed, same
// programs, same inputs, same verdict, on every host (modulo the host's
// available SIMD tiers, which only *adds* matrix columns).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/shrink.hpp"
#include "trace/program.hpp"

namespace obx::check {

/// A replayable failing (or sentinel) test case: program text + input seed +
/// occupancy.  Serialised as '#'-prefixed key=value header lines followed by
/// the .obx program dump.
struct Reproducer {
  trace::Program program;
  std::uint64_t input_seed = 1;
  std::size_t p = 8;
  std::string note;  ///< e.g. the config that diverged when it was found
};

std::string write_reproducer(const Reproducer& repro);
/// Throws std::logic_error on malformed text.
Reproducer parse_reproducer(const std::string& text);

/// Replays a reproducer through the full matrix; nullopt = all paths agree.
std::optional<Divergence> replay_reproducer(const Reproducer& repro);

/// A ready-to-paste GoogleTest regression test body for a reproducer.
std::string regression_test_source(const Reproducer& repro,
                                   const std::string& test_name);

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  GenOptions gen;
  /// Stop generating after this many distinct failing programs.
  std::size_t max_failures = 4;
  bool shrink = true;
  ShrinkOptions shrink_options;
};

struct FuzzFailure {
  std::uint64_t iteration = 0;
  Divergence divergence;   ///< first divergence of the unshrunk program
  ShrinkResult shrink;     ///< populated when FuzzOptions::shrink
  Reproducer reproducer;   ///< minimal (or original) failing case
};

struct FuzzReport {
  std::size_t programs = 0;
  std::size_t configs = 0;  ///< total (program, config) executions
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace obx::check

// Wire-level checking for the network front end.
//
// Two harnesses, both deterministic functions of their seeds:
//
// run_frame_fuzz(): the protocol codec under attack.  Round-trips randomly
// generated frames (hostile strings included) through encode → chunked
// FrameReader feeds and demands bit-identical decodes; then mutates valid
// encodings — truncated headers, torn payloads, oversized length fields,
// bad magic/version/type/flags, random byte flips — and demands the reader
// either produces a (still-)valid frame or fails cleanly, never crashes,
// never over-allocates.
//
// run_net_fault_campaign(): the serving path under network abuse.  Spins up
// a real BulkService + net::Server on a loopback ephemeral port and throws
// scenarios at it concurrently: well-behaved multi-tenant clients (checked
// for exactly-one-result-per-submit and bit-identical outputs), clients
// that vanish mid-request, writers that send torn frames or garbage,
// slow-loris connections that trickle header bytes, and a quota-storm
// tenant hammering a tiny token bucket — optionally with executor faults
// injected through check::FaultPlan so engine failures surface as error
// frames.  The audit is the wire image of the lifecycle guarantee:
//
//   submits_admitted == responses_sent + responses_dropped   (server ledger)
//   every client submit resolves exactly once                (client ledger)
//   service: submitted == completed + rejected + shed + failed
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fault.hpp"
#include "net/server.hpp"
#include "serve/metrics.hpp"

namespace obx::check {

struct FrameFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t roundtrips = 200;  ///< random frames round-tripped
  std::size_t mutations = 400;   ///< mutated encodings fed to the reader
};

struct FrameFuzzReport {
  std::size_t roundtrips = 0;
  std::size_t mutations = 0;
  /// Mutations the reader still decoded (expected: byte flips can land in
  /// payload bytes without changing validity).
  std::size_t mutations_decoded = 0;
  std::size_t mutations_rejected = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

FrameFuzzReport run_frame_fuzz(const FrameFuzzOptions& options);

struct NetCampaignOptions {
  std::uint64_t seed = 1;
  /// Well-behaved clients: one per tenant below.
  std::size_t jobs_per_client = 64;
  std::size_t tenants = 4;
  /// Abusive connections per scenario (droppers, tearers, slow-loris).
  std::size_t abusers = 3;
  /// Jobs hammered through the quota-storm tenant (bucket: 5/s, burst 2).
  std::size_t storm_jobs = 32;
  /// Inject executor faults (kFailed → error frames) through this plan.
  FaultPlan plan;
  /// Queue capacity for the service (small = overflow paths exercised).
  std::size_t queue_capacity = 64;
  serve::OverflowPolicy policy = serve::OverflowPolicy::kReject;
};

struct NetCampaignReport {
  std::size_t client_submits = 0;
  std::size_t client_completed = 0;
  std::size_t client_rejected = 0;
  std::size_t client_shed = 0;
  std::size_t client_failed = 0;           ///< error frames (injected faults)
  std::size_t client_transport_errors = 0;
  std::size_t output_mismatches = 0;
  net::ServerStatsSnapshot server;
  serve::MetricsSnapshot metrics;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

NetCampaignReport run_net_fault_campaign(const NetCampaignOptions& options);

}  // namespace obx::check

// Fault injection for the serving layer: force the failure paths and prove
// the lifecycle guarantee holds on every one of them.
//
// A FaultPlan is injected into BulkService the same way the batcher takes
// its clock — as a parameter (ServiceOptions::before_execute), not a global
// — so campaigns are deterministic functions of their options.  The plan
// throws on chosen batches (generic executor fault, allocation failure);
// run_fault_campaign() then hammers a service from concurrent producers,
// optionally closing it mid-stream, and audits the one invariant everything
// else rests on:
//
//   every submitted job's future resolves exactly once —
//   submitted == completed + rejected + shed + failed, zero unresolved.
//
// "Unresolved" covers both a future that never becomes ready and one that
// throws std::future_error(broken_promise) — i.e. a Job whose promise was
// destroyed without a value.  Either is a silent job drop.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "serve/service.hpp"

namespace obx::check {

/// Deterministic batch-granular fault schedule.  Counters, not randomness:
/// "fail every 3rd batch" replays identically under any thread interleaving
/// of which batch is third.
struct FaultPlan {
  /// Throw std::runtime_error from before_execute on every k-th batch
  /// (1 = every batch).  0 disables.
  std::size_t fail_every_batches = 0;
  /// Throw std::bad_alloc on every k-th batch (takes precedence over
  /// fail_every_batches when both fire).  0 disables.
  std::size_t alloc_fail_every_batches = 0;

  /// The ServiceOptions::before_execute hook implementing this plan.
  /// Returns an empty function when the plan injects nothing.  The returned
  /// hook owns its batch counter, so each hook() call starts a fresh
  /// schedule.
  std::function<void(const serve::Batch&)> hook() const;
};

struct CampaignOptions {
  serve::ServiceOptions service;  ///< base options; before_execute is overwritten
  FaultPlan plan;
  std::size_t producers = 4;
  std::size_t jobs_per_producer = 64;
  /// Give every third job a (tight but positive) deadline, exercising the
  /// deadline flush path under faults.
  bool with_deadlines = true;
  /// Race a stop() against the producers, so some submissions land on a
  /// closed queue and in-flight batches drain through shutdown.
  bool close_mid_stream = false;
};

struct CampaignReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;      ///< future resolved with an exception
  std::size_t unresolved = 0;  ///< never ready, or broken_promise
  serve::MetricsSnapshot metrics;

  /// The lifecycle guarantee, checked from the *caller's* side of every
  /// future (the service's own counters are reported but not trusted here).
  bool exactly_once() const {
    return unresolved == 0 &&
           submitted == completed + rejected + shed + failed;
  }
  std::string summary() const;
};

/// Runs one campaign: spin up a BulkService with the plan's hook, submit
/// producers × jobs_per_producer single-lane jobs from concurrent threads,
/// stop, and account for every future.
CampaignReport run_fault_campaign(const CampaignOptions& options);

}  // namespace obx::check

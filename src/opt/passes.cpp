#include "opt/passes.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace obx::opt {

using trace::Op;
using trace::Step;
using trace::StepKind;

std::vector<Step> forward_loads(std::vector<Step> steps, std::size_t register_count) {
  OBX_CHECK(register_count >= 1 && register_count <= 256, "bad register count");
  // reg_addr[r]: the address whose current value register r is known to
  // hold; addr_reg[a]: one register currently holding address a's value.
  constexpr Addr kNone = kInvalidAddr;
  std::vector<Addr> reg_addr(register_count, kNone);
  std::unordered_map<Addr, std::uint8_t> addr_reg;

  auto unbind_reg = [&](std::uint8_t r) {
    if (reg_addr[r] != kNone) {
      auto it = addr_reg.find(reg_addr[r]);
      if (it != addr_reg.end() && it->second == r) addr_reg.erase(it);
      reg_addr[r] = kNone;
    }
  };
  auto unbind_addr = [&](Addr a) {
    auto it = addr_reg.find(a);
    if (it != addr_reg.end()) addr_reg.erase(it);
    for (std::size_t r = 0; r < register_count; ++r) {
      if (reg_addr[r] == a) reg_addr[r] = kNone;
    }
  };
  auto bind = [&](std::uint8_t r, Addr a) {
    unbind_reg(r);
    reg_addr[r] = a;
    addr_reg[a] = r;
  };

  std::vector<Step> out;
  out.reserve(steps.size());
  for (const Step& s : steps) {
    switch (s.kind) {
      case StepKind::kLoad: {
        OBX_CHECK(s.dst < register_count, "register out of range");
        const auto it = addr_reg.find(s.addr);
        if (it != addr_reg.end()) {
          const std::uint8_t holder = it->second;
          if (holder == s.dst) {
            // Redundant load: destination already holds the value.
            break;
          }
          // Store-to-load / load-to-load forwarding: copy register-register.
          out.push_back(Step::alu(Op::kMov, s.dst, holder));
          unbind_reg(s.dst);
          reg_addr[s.dst] = s.addr;  // secondary holder; addr_reg keeps `holder`
          break;
        }
        bind(s.dst, s.addr);
        out.push_back(s);
        break;
      }
      case StepKind::kStore: {
        OBX_CHECK(s.src0 < register_count, "register out of range");
        // The stored register now holds the address's current value; every
        // other binding to this address is stale.
        unbind_addr(s.addr);
        bind(s.src0, s.addr);
        out.push_back(s);
        break;
      }
      case StepKind::kAlu:
        OBX_CHECK(s.dst < register_count, "register out of range");
        unbind_reg(s.dst);
        out.push_back(s);
        break;
      case StepKind::kImm:
        OBX_CHECK(s.dst < register_count, "register out of range");
        unbind_reg(s.dst);
        out.push_back(s);
        break;
    }
  }
  return out;
}

std::vector<Step> eliminate_dead_stores(std::vector<Step> steps, Addr output_offset,
                                        std::size_t output_words) {
  // Backward liveness over memory addresses.  The declared output region is
  // live at program end; a store to a dead address is unobservable.
  std::unordered_set<Addr> live;
  for (std::size_t i = 0; i < output_words; ++i) live.insert(output_offset + i);

  std::vector<bool> keep(steps.size(), true);
  for (std::size_t idx = steps.size(); idx-- > 0;) {
    const Step& s = steps[idx];
    if (s.kind == StepKind::kStore) {
      if (live.erase(s.addr) == 0) keep[idx] = false;  // never read again
    } else if (s.kind == StepKind::kLoad) {
      live.insert(s.addr);
    }
  }
  std::vector<Step> out;
  out.reserve(steps.size());
  for (std::size_t idx = 0; idx < steps.size(); ++idx) {
    if (keep[idx]) out.push_back(steps[idx]);
  }
  return out;
}

std::vector<Step> dedup_immediates(std::vector<Step> steps, std::size_t register_count) {
  OBX_CHECK(register_count >= 1 && register_count <= 256, "bad register count");
  std::vector<std::optional<Word>> known(register_count);
  std::vector<Step> out;
  out.reserve(steps.size());
  for (const Step& s : steps) {
    switch (s.kind) {
      case StepKind::kImm:
        OBX_CHECK(s.dst < register_count, "register out of range");
        if (known[s.dst] == s.imm) break;  // already holds this constant
        known[s.dst] = s.imm;
        out.push_back(s);
        break;
      case StepKind::kLoad:
      case StepKind::kAlu:
        OBX_CHECK(s.dst < register_count, "register out of range");
        known[s.dst].reset();
        out.push_back(s);
        break;
      case StepKind::kStore:
        out.push_back(s);
        break;
    }
  }
  return out;
}

std::vector<Step> remove_nops(std::vector<Step> steps) {
  std::vector<Step> out;
  out.reserve(steps.size());
  for (const Step& s : steps) {
    if (s.kind == StepKind::kAlu) {
      if (s.op == Op::kNop) continue;
      if (s.op == Op::kMov && s.dst == s.src0) continue;
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace obx::opt

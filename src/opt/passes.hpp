// Peephole optimisation passes over oblivious step streams.
//
// Every pass is a pure function vector<Step> → vector<Step> preserving the
// program's observable semantics: the final contents of the declared output
// region (and of every address that survives liveness) are bit-identical on
// all inputs.  Because the transforms are themselves data-independent, an
// oblivious input program yields an oblivious output program — typically
// with *fewer memory steps*, i.e. a smaller t in Theorems 2/3 and a
// proportionally faster bulk execution.
//
// Passes assume the single-basic-block, literal-address IR of trace::Step
// (exactly what Recorder and the algorithm generators emit).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "trace/step.hpp"

namespace obx::opt {

/// Forwards memory through registers: a load from an address whose current
/// value is known to live in a register becomes a Mov (store-to-load
/// forwarding), or disappears entirely when the destination already holds
/// it (redundant-load elimination).
std::vector<trace::Step> forward_loads(std::vector<trace::Step> steps,
                                       std::size_t register_count);

/// Removes stores whose value can never be observed: overwritten before any
/// load, and outside the declared output region [output_offset,
/// output_offset + output_words).
std::vector<trace::Step> eliminate_dead_stores(std::vector<trace::Step> steps,
                                               Addr output_offset,
                                               std::size_t output_words);

/// Drops immediates that re-load a constant the register already holds.
std::vector<trace::Step> dedup_immediates(std::vector<trace::Step> steps,
                                          std::size_t register_count);

/// Drops no-ops: kNop ALU steps and self-moves (Mov r, r).
std::vector<trace::Step> remove_nops(std::vector<trace::Step> steps);

}  // namespace obx::opt

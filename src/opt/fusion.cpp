#include "opt/fusion.hpp"

#include <cstddef>

#include "common/check.hpp"

namespace obx::opt {

namespace {

using trace::Op;
using trace::Step;
using trace::StepKind;

bool reg_only(const Step& s) {
  return s.kind == StepKind::kAlu || s.kind == StepKind::kImm;
}

/// Ops whose result depends on the old destination value.
bool reads_old_dst(Op op) {
  return op == Op::kNop || op == Op::kCmovLtF || op == Op::kCmovLtI;
}

/// One Load->ALU->Store triple in accumulator shape: the loaded register and
/// the ALU destination are distinct, and the ALU reads only those two.
struct TripleShape {
  Op op = Op::kNop;
  std::uint8_t load_reg = 0;
  std::uint8_t acc = 0;
  bool s0_loaded = false;
  bool s1_loaded = false;
  Addr load_addr = 0;
  Addr store_addr = 0;
};

bool match_triple(const std::vector<Step>& steps, std::size_t i, TripleShape* out) {
  if (i + 3 > steps.size()) return false;
  const Step& ld = steps[i];
  const Step& al = steps[i + 1];
  const Step& st = steps[i + 2];
  if (ld.kind != StepKind::kLoad || al.kind != StepKind::kAlu ||
      st.kind != StepKind::kStore) {
    return false;
  }
  if (!triple_fusable_op(al.op)) return false;
  if (al.dst == ld.dst) return false;
  if (st.src0 != al.dst) return false;
  const bool s0l = al.src0 == ld.dst;
  const bool s1l = al.src1 == ld.dst;
  if (!s0l && al.src0 != al.dst) return false;
  if (!s1l && al.src1 != al.dst) return false;
  out->op = al.op;
  out->load_reg = ld.dst;
  out->acc = al.dst;
  out->s0_loaded = s0l;
  out->s1_loaded = s1l;
  out->load_addr = ld.addr;
  out->store_addr = st.addr;
  return true;
}

bool same_shape(const TripleShape& a, const TripleShape& b) {
  return a.op == b.op && a.load_reg == b.load_reg && a.acc == b.acc &&
         a.s0_loaded == b.s0_loaded && a.s1_loaded == b.s1_loaded;
}

/// A fused op plus the input-step range it covers (for the liveness pass).
struct Group {
  FusedOp op;
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

bool triple_fusable_op(Op op) {
  return op != Op::kNop && op != Op::kSelect && op != Op::kCmovLtF &&
         op != Op::kCmovLtI;
}

FusionResult fuse(const std::vector<Step>& steps) {
  FusionResult result;
  result.steps_in = steps.size();
  for (const Step& s : steps) {
    switch (s.kind) {
      case StepKind::kLoad: ++result.counts.loads; break;
      case StepKind::kStore: ++result.counts.stores; break;
      case StepKind::kAlu: ++result.counts.alu; break;
      case StepKind::kImm: ++result.counts.imm; break;
    }
  }

  std::vector<Group> groups;
  std::size_t i = 0;
  while (i < steps.size()) {
    const Step& s = steps[i];
    Group g;
    g.begin = i;
    if (s.kind == StepKind::kLoad) {
      TripleShape shape;
      if (match_triple(steps, i, &shape)) {
        // Extend into a run of same-shape triples (addresses are free).
        std::size_t count = 1;
        TripleShape next_shape;
        while (match_triple(steps, i + count * 3, &next_shape) &&
               same_shape(shape, next_shape)) {
          ++count;
        }
        if (count >= 2) {
          g.op.kind = FusedKind::kTripleRun;
          g.op.op = shape.op;
          g.op.dst = shape.acc;
          g.op.aux = shape.load_reg;
          if (shape.s0_loaded) g.op.flags |= kTripleS0Loaded;
          if (shape.s1_loaded) g.op.flags |= kTripleS1Loaded;
          g.op.run_begin = static_cast<std::uint32_t>(result.run_steps.size());
          g.op.run_len = static_cast<std::uint32_t>(count);
          result.run_steps.insert(result.run_steps.end(), steps.begin() + static_cast<std::ptrdiff_t>(i),
                                  steps.begin() + static_cast<std::ptrdiff_t>(i + count * 3));
          i += count * 3;
          g.end = i;
          groups.push_back(g);
          continue;
        }
      }
      if (i + 3 <= steps.size() && steps[i + 1].kind == StepKind::kAlu &&
          steps[i + 2].kind == StepKind::kStore) {
        const Step& al = steps[i + 1];
        const Step& st = steps[i + 2];
        g.op.kind = FusedKind::kLoadAluStore;
        g.op.op = al.op;
        g.op.dst = al.dst;
        g.op.src0 = al.src0;
        g.op.src1 = al.src1;
        g.op.src2 = al.src2;
        g.op.aux = s.dst;
        g.op.aux2 = st.src0;
        g.op.addr = s.addr;
        g.op.addr2 = st.addr;
        i += 3;
      } else if (i + 2 <= steps.size() && steps[i + 1].kind == StepKind::kAlu) {
        const Step& al = steps[i + 1];
        g.op.kind = FusedKind::kLoadAlu;
        g.op.op = al.op;
        g.op.dst = al.dst;
        g.op.src0 = al.src0;
        g.op.src1 = al.src1;
        g.op.src2 = al.src2;
        g.op.aux = s.dst;
        g.op.addr = s.addr;
        i += 2;
      } else {
        g.op.kind = FusedKind::kLoad;
        g.op.aux = s.dst;
        g.op.addr = s.addr;
        i += 1;
      }
    } else if (s.kind == StepKind::kStore) {
      g.op.kind = FusedKind::kStore;
      g.op.aux = s.src0;
      g.op.addr2 = s.addr;
      i += 1;
    } else {
      // Register-only run [i, j).
      std::size_t j = i;
      while (j < steps.size() && reg_only(steps[j])) ++j;
      const std::size_t len = j - i;
      if (len == 1 && s.kind == StepKind::kAlu && j < steps.size() &&
          steps[j].kind == StepKind::kStore) {
        const Step& st = steps[j];
        g.op.kind = FusedKind::kAluStore;
        g.op.op = s.op;
        g.op.dst = s.dst;
        g.op.src0 = s.src0;
        g.op.src1 = s.src1;
        g.op.src2 = s.src2;
        g.op.aux = st.src0;
        g.op.addr2 = st.addr;
        i += 2;
      } else if (len == 1) {
        if (s.kind == StepKind::kImm) {
          g.op.kind = FusedKind::kImm;
          g.op.aux = s.dst;
          g.op.imm = s.imm;
        } else {
          g.op.kind = FusedKind::kAlu;
          g.op.op = s.op;
          g.op.dst = s.dst;
          g.op.src0 = s.src0;
          g.op.src1 = s.src1;
          g.op.src2 = s.src2;
        }
        i += 1;
      } else if (len == 2 && s.kind == StepKind::kImm &&
                 steps[i + 1].kind == StepKind::kAlu) {
        const Step& al = steps[i + 1];
        g.op.kind = FusedKind::kImmAlu;
        g.op.op = al.op;
        g.op.dst = al.dst;
        g.op.src0 = al.src0;
        g.op.src1 = al.src1;
        g.op.src2 = al.src2;
        g.op.aux = s.dst;
        g.op.imm = s.imm;
        i += 2;
      } else {
        g.op.kind = FusedKind::kRegRun;
        g.op.run_begin = static_cast<std::uint32_t>(result.run_steps.size());
        g.op.run_len = static_cast<std::uint32_t>(len);
        result.run_steps.insert(result.run_steps.end(), steps.begin() + static_cast<std::ptrdiff_t>(i),
                                steps.begin() + static_cast<std::ptrdiff_t>(j));
        i = j;
      }
    }
    g.end = i;
    groups.push_back(g);
  }

  // Backward liveness: elide load/imm register commits whose next access (in
  // this sequence) is a write.  kNone (nothing follows) is treated as live.
  enum class Next : std::uint8_t { kNone, kRead, kWrite };
  Next next[256] = {};
  for (std::size_t gi = groups.size(); gi-- > 0;) {
    Group& g = groups[gi];
    FusedOp& op = g.op;
    const auto dead_after = [&](std::uint8_t r) { return next[r] == Next::kWrite; };
    switch (op.kind) {
      case FusedKind::kLoad:
      case FusedKind::kImm:
        if (dead_after(op.aux)) op.flags |= kElideAuxCommit;
        break;
      case FusedKind::kLoadAlu:
      case FusedKind::kImmAlu:
      case FusedKind::kLoadAluStore:
        // In-group reads of aux are forwarded; a same-group ALU overwrite of
        // aux makes the commit dead regardless of what follows.
        if (op.dst == op.aux || dead_after(op.aux)) op.flags |= kElideAuxCommit;
        break;
      case FusedKind::kTripleRun:
        if (dead_after(op.aux)) op.flags |= kElideAuxCommit;
        break;
      default:
        break;
    }
    // Fold the group's own accesses into the backward state, last step first.
    for (std::size_t k = g.end; k-- > g.begin;) {
      const Step& s = steps[k];
      switch (s.kind) {
        case StepKind::kLoad:
          next[s.dst] = Next::kWrite;
          break;
        case StepKind::kImm:
          next[s.dst] = Next::kWrite;
          break;
        case StepKind::kStore:
          next[s.src0] = Next::kRead;
          break;
        case StepKind::kAlu:
          next[s.dst] = reads_old_dst(s.op) ? Next::kRead : Next::kWrite;
          next[s.src0] = Next::kRead;
          next[s.src1] = Next::kRead;
          next[s.src2] = Next::kRead;
          break;
      }
    }
  }

  result.ops.reserve(groups.size());
  for (const Group& g : groups) result.ops.push_back(g.op);
  return result;
}

}  // namespace obx::opt

// The pass pipeline: capture a program, run the peephole passes to a fixed
// point, and rebuild a replayable Program with the same declared regions.
//
// Semantics contract: for every input, the optimised program leaves the
// declared output region bit-identical to the original (scratch memory may
// differ — dead stores are gone).  Obliviousness is preserved: the pipeline
// is a deterministic function of the step stream alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/program.hpp"

namespace obx::opt {

struct PassReport {
  std::string pass;
  std::size_t removed = 0;  ///< net steps removed by this application
};

struct OptimizeResult {
  trace::Program program;  ///< the optimised, replayable program
  trace::StepCounts before;
  trace::StepCounts after;
  std::vector<PassReport> reports;

  /// Relative reduction of the paper's t (memory steps): 0 = no change.
  double memory_step_reduction() const {
    if (before.memory() == 0) return 0.0;
    return 1.0 - static_cast<double>(after.memory()) /
                     static_cast<double>(before.memory());
  }
};

struct OptimizeOptions {
  bool forward_loads = true;
  bool eliminate_dead_stores = true;
  bool dedup_immediates = true;
  bool remove_nops = true;
  /// Passes repeat until no pass removes a step, up to this many rounds.
  int max_rounds = 4;
  /// Refuse to capture programs longer than this many steps.
  std::size_t max_steps = 1u << 24;
};

/// Optimises `program` (which must be capturable: at most max_steps steps).
OptimizeResult optimize(const trace::Program& program, const OptimizeOptions& options);

inline OptimizeResult optimize(const trace::Program& program) {
  return optimize(program, OptimizeOptions{});
}

}  // namespace obx::opt

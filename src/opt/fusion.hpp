// Superinstruction fusion for compiled bulk execution.
//
// The step stream of an oblivious program is fixed, so adjacent steps can be
// grouped ("jammed") into superinstructions once, ahead of time, and executed
// by dedicated lane-loop kernels.  Because lanes are independent and each
// group preserves per-lane step order, every fusion here is semantics
// preserving by construction — the compiled backend is bit-identical to the
// interpreter.
//
// Recognised shapes, in scan priority order:
//
//   kTripleRun       a run of >= 2 consecutive Load->ALU->Store triples with
//                    one accumulator register carried across the run (the
//                    prefix-sums / scan idiom of Fig. 11): the accumulator
//                    stays in a machine register for the whole run.
//   kLoadAluStore    one Load->ALU->Store triple.
//   kLoadAlu         Load immediately consumed by an ALU step.
//   kImmAlu          Imm immediately consumed by an ALU step.
//   kRegRun          a maximal run of register-only steps (ALU/Imm) executed
//                    back-to-back over one L1-resident lane tile.
//   kAluStore        ALU whose destination is immediately stored.
//   kLoad/kStore/kImm/kAlu  singletons (no fusion applied).
//
// A backward liveness pass marks load/imm register commits whose value is
// overwritten before being read again; kernels may then keep the value in a
// local and skip the register-file write (kElideAuxCommit).  Elision only
// affects the register-file array between groups — in-group consumers are fed
// by value forwarding — so over-committing is always safe.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/program.hpp"
#include "trace/step.hpp"

namespace obx::opt {

enum class FusedKind : std::uint8_t {
  kLoad,
  kStore,
  kImm,
  kAlu,
  kImmAlu,
  kLoadAlu,
  kAluStore,
  kLoadAluStore,
  kRegRun,
  kTripleRun,
};

/// Flag bits for FusedOp::flags.
inline constexpr std::uint8_t kElideAuxCommit = 1u << 0;  ///< skip aux reg commit
inline constexpr std::uint8_t kTripleS0Loaded = 1u << 1;  ///< triple ALU src0 is the loaded reg
inline constexpr std::uint8_t kTripleS1Loaded = 1u << 2;  ///< triple ALU src1 is the loaded reg

struct FusedOp {
  FusedKind kind = FusedKind::kAlu;
  trace::Op op = trace::Op::kNop;
  std::uint8_t dst = 0;   ///< ALU destination (accumulator for kTripleRun)
  std::uint8_t src0 = 0;  ///< ALU operands
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::uint8_t aux = 0;   ///< load/imm destination, or store source for kStore/kAluStore
  std::uint8_t aux2 = 0;  ///< store source register for kLoadAluStore
  std::uint8_t flags = 0;
  Addr addr = 0;   ///< load address (kLoad*, first triple of kTripleRun)
  Addr addr2 = 0;  ///< store address (kStore, kAluStore, kLoadAluStore)
  Word imm = 0;    ///< kImm / kImmAlu immediate
  /// kRegRun / kTripleRun: the original steps live at
  /// FusionResult::run_steps[run_begin .. run_begin + run_len).
  std::uint32_t run_begin = 0;
  std::uint32_t run_len = 0;  ///< steps for kRegRun, triples for kTripleRun
};

struct FusionResult {
  std::vector<FusedOp> ops;
  std::vector<trace::Step> run_steps;  ///< bodies of kRegRun / kTripleRun ops
  trace::StepCounts counts;            ///< step counts of the input sequence
  std::size_t steps_in = 0;            ///< input steps consumed
};

/// Fuses a step sequence (typically one bounded segment of a program's
/// stream).  Liveness is resolved within the sequence only; registers are
/// conservatively treated as live at the end, so fusing a stream segment by
/// segment stays correct.
FusionResult fuse(const std::vector<trace::Step>& steps);

/// True if `op` never reads src2 or the old destination value (the cmov /
/// select family does) — a requirement for the kTripleRun kernel, which only
/// forwards the accumulator and the loaded value.
bool triple_fusable_op(trace::Op op);

}  // namespace obx::opt

#include "opt/optimizer.hpp"

#include <utility>

#include "common/check.hpp"
#include "opt/passes.hpp"

namespace obx::opt {

using trace::Step;

namespace {

trace::StepCounts count(const std::vector<Step>& steps) {
  trace::StepCounts c;
  for (const Step& s : steps) {
    switch (s.kind) {
      case trace::StepKind::kLoad:
        ++c.loads;
        break;
      case trace::StepKind::kStore:
        ++c.stores;
        break;
      case trace::StepKind::kAlu:
        ++c.alu;
        break;
      case trace::StepKind::kImm:
        ++c.imm;
        break;
    }
  }
  return c;
}

}  // namespace

OptimizeResult optimize(const trace::Program& program, const OptimizeOptions& options) {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(options.max_rounds >= 1, "need at least one round");

  // Capture the stream once.
  std::vector<Step> steps;
  {
    auto gen = program.stream();
    for (const Step& s : gen) {
      OBX_CHECK(steps.size() < options.max_steps, "program too long to optimise");
      steps.push_back(s);
    }
  }

  OptimizeResult result;
  result.before = count(steps);

  for (int round = 0; round < options.max_rounds; ++round) {
    const std::size_t round_start = steps.size();
    auto apply = [&](const char* name, auto&& pass) {
      const std::size_t before = steps.size();
      steps = pass(std::move(steps));
      if (before != steps.size()) {
        result.reports.push_back({name, before - steps.size()});
      }
    };
    if (options.remove_nops) {
      apply("remove-nops", [](std::vector<Step> s) { return remove_nops(std::move(s)); });
    }
    if (options.dedup_immediates) {
      apply("dedup-immediates", [&](std::vector<Step> s) {
        return dedup_immediates(std::move(s), program.register_count);
      });
    }
    if (options.forward_loads) {
      apply("forward-loads", [&](std::vector<Step> s) {
        return forward_loads(std::move(s), program.register_count);
      });
    }
    if (options.eliminate_dead_stores) {
      apply("eliminate-dead-stores", [&](std::vector<Step> s) {
        return eliminate_dead_stores(std::move(s), program.output_offset,
                                     program.output_words);
      });
    }
    if (steps.size() == round_start) break;  // fixed point
  }

  result.after = count(steps);
  result.program = trace::make_replay_program(
      program.name + "+opt", program.memory_words, program.input_words,
      program.output_offset, program.output_words, program.register_count,
      std::move(steps));
  return result;
}

}  // namespace obx::opt

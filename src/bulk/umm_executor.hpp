// Cycle-accurate bulk execution on the UMM / DMM simulator.
//
// Functionally identical to HostBulkExecutor, but every memory step is routed
// through umm::Machine, which charges the exact pipelined batch time of the
// model (per-warp address-group or bank-conflict stage counts, latency l).
// This is the executor behind the reproduction's "GPU" series: its time-unit
// output is the quantity Lemma 1 / Theorems 2-3 bound.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "trace/program.hpp"
#include "umm/machine.hpp"

namespace obx::bulk {

struct UmmRunResult {
  TimeUnits time_units = 0;   ///< simulated machine time
  umm::TimerStats stats;      ///< warps, stages, step mix
  std::vector<Word> memory;   ///< final arranged global memory
};

class UmmBulkExecutor {
 public:
  UmmBulkExecutor(umm::Model model, umm::MachineConfig config, Layout layout);

  /// Runs `program` on p lane-major flat inputs.  O(p) work per step — use
  /// TimingEstimator for figure-scale p when only time is needed.
  UmmRunResult run(const trace::Program& program, std::span<const Word> inputs) const;

  std::vector<Word> gather_outputs(const trace::Program& program,
                                   std::span<const Word> memory) const;

  const Layout& layout() const { return layout_; }
  const umm::MachineConfig& config() const { return config_; }
  umm::Model model() const { return model_; }

 private:
  umm::Model model_;
  umm::MachineConfig config_;
  Layout layout_;
};

}  // namespace obx::bulk

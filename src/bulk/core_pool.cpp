#include "bulk/core_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"
#include "bulk/thread_pool.hpp"

namespace obx::bulk {

namespace {

struct Region;

/// One lane-tile of one region.  Tasks live in the region's tiles vector
/// (stable addresses — the vector is sized before any task is published),
/// so deques only move pointers.
struct TileTask {
  Region* region = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Chase–Lev work-stealing deque of TileTask pointers (the weak-memory
/// formulation of Lê/Pop/Cohen/Nardelli).  push/pop are owner-only; steal
/// is any-thread.  Cells are atomic pointers: after the owner wraps bottom
/// past a slot a lagging thief may still read it, and the subsequent top
/// CAS tells it the value was stale — a torn non-atomic read there would be
/// UB, an atomic relaxed read is merely discarded.
class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity = 512) : array_(new Array(capacity)) {}
  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;
  ~WsDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  /// Owner only.
  void push(TileTask* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) a = grow(a, t, b);
    a->put(b, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only; nullptr when empty (or lost the last-element race).
  TileTask* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    TileTask* task = a->get(b);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread; nullptr when empty or on CAS contention (caller retries
  /// elsewhere).
  TileTask* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    TileTask* task = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  bool looks_empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  struct Array {
    explicit Array(std::size_t c)
        : capacity(c), mask(c - 1), cells(new std::atomic<TileTask*>[c]) {}
    ~Array() { delete[] cells; }
    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<TileTask*>* const cells;

    TileTask* get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, TileTask* task) {
      cells[static_cast<std::size_t>(i) & mask].store(task, std::memory_order_relaxed);
    }
  };

  Array* grow(Array* a, std::int64_t t, std::int64_t b) {
    Array* bigger = new Array(a->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    // The old array stays readable until the deque dies: a thief that loaded
    // it pre-grow may still index it, and every live index maps to the same
    // task in the new array (or to a stale cell its top CAS will reject).
    retired_.push_back(a);
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only (mutated under push)
};

/// One fork-join submission, living on the submitter's stack for its whole
/// region (parallel_for does not return until finished() is true, so tasks
/// and body stay valid for every thief).
///
/// Destruction protocol: unfinished hitting 0 is NOT the destruction
/// barrier — the thread that performs the final decrement still has to
/// notify the condvar, i.e. it keeps touching the region after the count
/// reaches zero.  Its very last access is the release store to finished_,
/// and the submitter must observe finished() before returning (and thereby
/// destroying the stack-allocated mutex/condvar).
struct Region {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::vector<TileTask> tiles;
  std::atomic<std::size_t> unfinished{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> failed{false};
  std::atomic<bool> finished_{false};
  std::mutex mutex;  // guards error; also the done-signal rendezvous
  std::condition_variable done;
  std::exception_ptr error;

  bool completed() const { return unfinished.load(std::memory_order_acquire) == 0; }
  /// True once the final completer is done with its last access; only after
  /// this may the submitter destroy the region.
  bool finished() const { return finished_.load(std::memory_order_acquire); }
};

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// xorshift64* — cheap per-thread victim selection.
inline std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

bool env_flag_disabled(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0 || std::strcmp(v, "no") == 0;
}

}  // namespace

// ---------------------------------------------------------------------------

struct CorePool::Impl {
  /// Victim table entry.  Worker slots hold their deque for the pool's
  /// lifetime; external-submitter slots hold a stack-allocated deque only
  /// while its region runs, protected by a pin count so a thief never
  /// dereferences a deque whose frame unwound (unregister spins until
  /// pins == 0 *after* nulling the pointer; seq_cst on both sides orders
  /// the thief's pin before its pointer load).
  struct Slot {
    std::atomic<WsDeque*> deque{nullptr};
    std::atomic<std::uint32_t> pins{0};
  };

  struct Worker {
    WsDeque deque;
    std::atomic<std::uint64_t> busy_ns{0};
    std::thread thread;
    unsigned index = 0;
    Impl* pool = nullptr;
  };

  /// The worker this thread is (and whose pool), when it is one: routes
  /// nested submissions to the worker's own deque and keeps nested waits
  /// from parking the worker.
  static thread_local Impl* tls_pool;
  static thread_local Worker* tls_worker;

  Config config;
  unsigned worker_count = 1;
  bool pin = false;

  std::vector<std::unique_ptr<Worker>> workers;

  /// Slots [0, worker_count) are the workers' deques; the rest are claimed
  /// by concurrent external submitters.  slot_high_ is the scan horizon.
  static constexpr std::size_t kExternalSlots = 64;
  std::vector<Slot> slots;
  std::atomic<std::size_t> slot_high{0};

  // Parking (epoch / eventcount): a worker records the epoch under the
  // mutex, re-checks for work, then waits for the epoch to move.  Wakers
  // bump the epoch under the mutex after publishing tasks, so the re-check
  // and the bump cannot interleave into a lost wakeup.
  std::mutex park_mutex;
  std::condition_variable park_cv;
  std::uint64_t park_epoch = 0;  // guarded by park_mutex
  std::atomic<unsigned> sleepers{0};

  // Lifecycle.
  std::once_flag start_once;
  std::atomic<bool> started{false};
  std::atomic<bool> shutdown{false};
  std::mutex region_mutex;
  std::condition_variable regions_done;
  std::size_t active_regions = 0;  // guarded by region_mutex
  bool draining = false;           // guarded by region_mutex

  // Pool-lifetime counters.
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> unparks{0};

  // -- submission-side helpers ---------------------------------------------

  void ensure_started() {
    std::call_once(start_once, [this] {
      for (unsigned i = 0; i < worker_count; ++i) {
        auto w = std::make_unique<Worker>();
        w->index = i;
        w->pool = this;
        slots[i].deque.store(&w->deque, std::memory_order_release);
        workers.push_back(std::move(w));
      }
      std::size_t high = worker_count;
      slot_high.store(high, std::memory_order_release);
      for (auto& w : workers) {
        Worker* raw = w.get();
        raw->thread = std::thread([this, raw] { worker_main(*raw); });
      }
      started.store(true, std::memory_order_release);
    });
  }

  Slot* register_external(WsDeque* deque) {
    for (;;) {
      const std::size_t limit = worker_count + kExternalSlots;
      for (std::size_t i = worker_count; i < limit; ++i) {
        WsDeque* expected = nullptr;
        if (slots[i].deque.load(std::memory_order_relaxed) == nullptr &&
            slots[i].deque.compare_exchange_strong(expected, deque,
                                                   std::memory_order_seq_cst)) {
          // Extend the scan horizon to cover this slot.
          std::size_t high = slot_high.load(std::memory_order_relaxed);
          while (high < i + 1 &&
                 !slot_high.compare_exchange_weak(high, i + 1,
                                                  std::memory_order_release)) {
          }
          return &slots[i];
        }
      }
      // More concurrent external submitters than slots: rare and harmless —
      // wait for one to finish.
      std::this_thread::yield();
    }
  }

  void unregister_external(Slot* slot) {
    slot->deque.store(nullptr, std::memory_order_seq_cst);
    while (slot->pins.load(std::memory_order_seq_cst) != 0) cpu_relax();
  }

  // -- stealing -------------------------------------------------------------

  TileTask* steal_from(Slot& slot, const WsDeque* self) {
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    WsDeque* d = slot.deque.load(std::memory_order_seq_cst);
    TileTask* task = (d != nullptr && d != self) ? d->steal() : nullptr;
    slot.pins.fetch_sub(1, std::memory_order_seq_cst);
    return task;
  }

  TileTask* try_steal(const WsDeque* self, std::uint64_t& rng) {
    const std::size_t high = slot_high.load(std::memory_order_acquire);
    if (high == 0) return nullptr;
    const std::size_t start = static_cast<std::size_t>(next_rand(rng)) % high;
    for (std::size_t k = 0; k < high; ++k) {
      if (TileTask* t = steal_from(slots[(start + k) % high], self)) return t;
    }
    return nullptr;
  }

  bool any_work() {
    const std::size_t high = slot_high.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < high; ++i) {
      Slot& s = slots[i];
      s.pins.fetch_add(1, std::memory_order_seq_cst);
      WsDeque* d = s.deque.load(std::memory_order_seq_cst);
      const bool nonempty = d != nullptr && !d->looks_empty();
      s.pins.fetch_sub(1, std::memory_order_seq_cst);
      if (nonempty) return true;
    }
    return false;
  }

  // -- execution ------------------------------------------------------------

  void run_task(TileTask* task, Worker* self, bool stolen) {
    Region* r = task->region;
    if (stolen) {
      steals.fetch_add(1, std::memory_order_relaxed);
      r->steals.fetch_add(1, std::memory_order_relaxed);
    }
    if (!r->failed.load(std::memory_order_acquire)) {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (*r->body)(task->begin, task->end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(r->mutex);
        if (!r->failed.load(std::memory_order_relaxed)) {
          r->error = std::current_exception();
          r->failed.store(true, std::memory_order_release);
        }
      }
      if (self != nullptr) {
        const auto t1 = std::chrono::steady_clock::now();
        self->busy_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()),
            std::memory_order_relaxed);
      }
    }
    tasks_executed.fetch_add(1, std::memory_order_relaxed);
    if (r->unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last tile: rendezvous through the mutex so a submitter that checked
      // completed() and decided to sleep cannot miss this notify.  The
      // submitter does not return until finished() is true, so the region
      // (mutex + condvar) stays alive through the notify; the finished_
      // store is our very last access and releases it for destruction.
      {
        std::lock_guard<std::mutex> lock(r->mutex);
        r->done.notify_all();
      }
      r->finished_.store(true, std::memory_order_release);
    }
  }

  // -- worker loop ----------------------------------------------------------

  void pin_worker(unsigned index) {
#if defined(__linux__)
    cpu_set_t available;
    CPU_ZERO(&available);
    if (sched_getaffinity(0, sizeof(available), &available) != 0) return;
    std::vector<std::size_t> cpus;
    for (std::size_t cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &available)) cpus.push_back(cpu);
    }
    if (cpus.empty()) return;
    cpu_set_t target;
    CPU_ZERO(&target);
    CPU_SET(cpus[index % cpus.size()], &target);
    // Best effort: a failure (restrictive cgroup, exotic libc) just leaves
    // the worker floating.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(target), &target);
#else
    (void)index;
#endif
  }

  void worker_main(Worker& w) {
    tls_pool = this;
    tls_worker = &w;
    if (pin) pin_worker(w.index);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ (w.index + 1);
    while (!shutdown.load(std::memory_order_acquire)) {
      TileTask* task = w.deque.pop();
      bool stolen = false;
      if (task == nullptr) {
        task = try_steal(&w.deque, rng);
        stolen = task != nullptr;
      }
      if (task != nullptr) {
        run_task(task, &w, stolen);
        continue;
      }
      // Idle: bounded spin with periodic steal probes, then park.
      bool found = false;
      for (std::size_t i = 0; i < config.spin_iterations; ++i) {
        cpu_relax();
        if ((i & 63u) == 63u) {
          if ((task = try_steal(&w.deque, rng)) != nullptr) {
            found = true;
            break;
          }
          if (shutdown.load(std::memory_order_acquire)) break;
        }
      }
      if (found) {
        run_task(task, &w, /*stolen=*/true);
        continue;
      }
      park();
    }
  }

  void park() {
    std::unique_lock<std::mutex> lock(park_mutex);
    const std::uint64_t epoch = park_epoch;
    lock.unlock();
    sleepers.fetch_add(1, std::memory_order_seq_cst);
    // Pairs with the fence in wake_workers(): orders the sleepers increment
    // before the any_work() scan in the seq_cst total order.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Re-check after announcing ourselves: a submitter that pushed before
    // seeing sleepers > 0 left its tasks visible here.
    if (any_work() || shutdown.load(std::memory_order_seq_cst)) {
      sleepers.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    parks.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    park_cv.wait(lock, [&] {
      return park_epoch != epoch || shutdown.load(std::memory_order_relaxed);
    });
    lock.unlock();
    sleepers.fetch_sub(1, std::memory_order_relaxed);
  }

  void wake_workers(unsigned want) {
    if (want == 0) return;
    // Dekker handshake with park(): the task pushes above us are relaxed
    // bottom_ stores behind a release fence, which the parker's acquire
    // loads in any_work() can miss while we simultaneously miss its
    // sleepers increment (store-buffer litmus).  This fence pairs with the
    // seq_cst fetch_add in park() so one side must see the other: either
    // we observe sleepers > 0, or the parker observes our tasks.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) == 0) return;
    {
      std::lock_guard<std::mutex> lock(park_mutex);
      ++park_epoch;
    }
    unparks.fetch_add(want, std::memory_order_relaxed);
    if (want >= worker_count) {
      park_cv.notify_all();
    } else {
      for (unsigned i = 0; i < want; ++i) park_cv.notify_one();
    }
  }
};

// ---------------------------------------------------------------------------

thread_local CorePool::Impl* CorePool::Impl::tls_pool = nullptr;
thread_local CorePool::Impl::Worker* CorePool::Impl::tls_worker = nullptr;

CorePool::CorePool(Config config) : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  impl_->worker_count =
      config.workers == 0 ? default_worker_count() : std::max(1u, config.workers);
  impl_->pin = config.pin < 0 ? pinning_enabled() : config.pin != 0;
  impl_->slots =
      std::vector<Impl::Slot>(impl_->worker_count + Impl::kExternalSlots);
}

CorePool::~CorePool() {
  {
    // Refuse new regions, then wait for in-flight ones: their tasks point
    // into stacks we are about to stop servicing.
    std::unique_lock<std::mutex> lock(impl_->region_mutex);
    impl_->draining = true;
    impl_->regions_done.wait(lock, [&] { return impl_->active_regions == 0; });
  }
  impl_->shutdown.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(impl_->park_mutex);
    ++impl_->park_epoch;
  }
  impl_->park_cv.notify_all();
  for (auto& w : impl_->workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

unsigned CorePool::worker_count() const { return impl_->worker_count; }

bool CorePool::pinning() const { return impl_->pin; }

SchedulerStats CorePool::parallel_for(
    std::size_t count, std::size_t align, std::size_t grain, unsigned max_workers,
    const std::function<void(std::size_t, std::size_t)>& body) {
  OBX_CHECK(align > 0, "alignment must be positive");
  SchedulerStats stats;
  if (count == 0) return stats;

  // Tile grain: a positive align-multiple, clamped to the region.
  std::size_t g = std::max(grain, align);
  g -= g % align;
  g = std::min(g, count);
  const std::size_t tiles = (count + g - 1) / g;

  const unsigned used = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, max_workers), tiles));
  if (used == 1) {
    body(0, count);
    stats.tasks = 1;
    return stats;
  }

  Impl& impl = *impl_;
  impl.ensure_started();
  {
    std::lock_guard<std::mutex> lock(impl.region_mutex);
    OBX_CHECK(!impl.draining, "CorePool is shutting down");
    ++impl.active_regions;
  }

  Region region;
  region.body = &body;
  region.tiles.reserve(tiles);
  for (std::size_t base = 0; base < count; base += g) {
    region.tiles.push_back(TileTask{&region, base, std::min(base + g, count)});
  }
  region.unfinished.store(region.tiles.size(), std::memory_order_relaxed);

  // Home deque: a worker submits into its own; an external thread registers
  // a stack-local deque as a steal victim for the duration of the region.
  const bool nested = Impl::tls_pool == &impl && Impl::tls_worker != nullptr;
  Impl::Worker* self = nested ? Impl::tls_worker : nullptr;
  WsDeque* home = nullptr;
  WsDeque local;
  Impl::Slot* slot = nullptr;
  if (nested) {
    home = &self->deque;
  } else {
    home = &local;
    slot = impl.register_external(&local);
  }
  for (TileTask& t : region.tiles) home->push(&t);
  impl.wake_workers(std::min(used - 1, impl.worker_count));

  // Participate: drain our own deque.  Tiles that were stolen finish on the
  // thief; we spin briefly for them, then (external submitters only) park on
  // the region condvar.  A worker submitter never parks — its condvar wait
  // could deadlock the pool — it yields until the thief finishes.  The exit
  // condition is finished(), not completed(): the final completer still
  // locks and notifies the condvar after the count hits zero, so returning
  // on completed() alone could destroy the stack-allocated mutex under it.
  std::size_t spins = 0;
  while (!region.finished()) {
    if (TileTask* t = home->pop()) {
      impl.run_task(t, self, /*stolen=*/false);
      spins = 0;
      continue;
    }
    if (region.finished()) break;
    if (++spins < impl.config.spin_iterations) {
      cpu_relax();
      continue;
    }
    if (nested) {
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(region.mutex);
      if (!region.completed()) {
        ++stats.parks;
        // Predicate stays completed(): finished_ is set only after the
        // notify, so waiting on it could sleep through the one wakeup.
        region.done.wait(lock, [&] { return region.completed(); });
      }
    }
    // completed() precedes finished() by a few completer instructions
    // (notify + unlock + store); wait them out before the region unwinds.
    while (!region.finished()) cpu_relax();
    break;
  }

  if (slot != nullptr) impl.unregister_external(slot);
  {
    std::lock_guard<std::mutex> lock(impl.region_mutex);
    if (--impl.active_regions == 0) impl.regions_done.notify_all();
  }

  stats.tasks = region.tiles.size();
  stats.steals = region.steals.load(std::memory_order_relaxed);
  if (region.error != nullptr) std::rethrow_exception(region.error);
  return stats;
}

CorePool::CountersSnapshot CorePool::counters() const {
  const Impl& impl = *impl_;
  CountersSnapshot snap;
  snap.tasks = impl.tasks_executed.load(std::memory_order_relaxed);
  snap.steals = impl.steals.load(std::memory_order_relaxed);
  snap.parks = impl.parks.load(std::memory_order_relaxed);
  snap.unparks = impl.unparks.load(std::memory_order_relaxed);
  snap.pinned = impl.pin;
  if (impl.started.load(std::memory_order_acquire)) {
    snap.worker_busy_ns.reserve(impl.workers.size());
    for (const auto& w : impl.workers) {
      snap.worker_busy_ns.push_back(w->busy_ns.load(std::memory_order_relaxed));
    }
  } else {
    snap.worker_busy_ns.assign(impl.worker_count, 0);
  }
  return snap;
}

CorePool& CorePool::instance() {
  // Function-local static: destroyed at exit after main's executors, joining
  // the workers so LeakSanitizer sees a clean shutdown.
  static CorePool pool;
  return pool;
}

bool CorePool::pinning_enabled() {
#if defined(__linux__)
  static const bool enabled = !env_flag_disabled("OBX_PIN");
  return enabled;
#else
  return false;
#endif
}

unsigned default_worker_count() {
  // Latched once: the shared pool sizes itself from this, so a mid-process
  // env change must not make plans and pool topology disagree.
  static const unsigned count = [] {
    if (const char* env = std::getenv("OBX_WORKERS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) {
        return static_cast<unsigned>(std::min<long>(v, 1024));
      }
    }
    unsigned n = 0;
#if defined(__linux__)
    // The CPUs this process may actually run on (taskset / cgroup cpusets),
    // not the machine total: oversubscribing a container quota just adds
    // context switches.
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      n = static_cast<unsigned>(CPU_COUNT(&set));
    }
#endif
    if (n == 0) n = std::thread::hardware_concurrency();
    return std::max(1u, n);
  }();
  return count;
}

std::size_t chunk_grain(std::size_t count, std::size_t align, unsigned workers) {
  const std::size_t blocks = std::max<std::size_t>(count / std::max<std::size_t>(align, 1), 1);
  const std::size_t per = std::max<std::size_t>(
      blocks / (std::size_t{std::max(1u, workers)} * 4), 1);
  return per * std::max<std::size_t>(align, 1);
}

}  // namespace obx::bulk

#include "bulk/streaming_executor.hpp"

#include <chrono>
#include <vector>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"

namespace obx::bulk {

StreamingExecutor::StreamingExecutor(Options options) : options_(options) {
  OBX_CHECK(options_.max_resident_lanes > 0, "need at least one resident lane");
}

StreamingExecutor::Stats StreamingExecutor::run(
    const trace::Program& program, std::size_t p,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(fill_input != nullptr && consume_output != nullptr, "callbacks required");

  Stats stats;
  stats.lanes = p;
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<Word> inputs;
  for (Lane base = 0; base < p; base += options_.max_resident_lanes) {
    const std::size_t batch = std::min<std::size_t>(options_.max_resident_lanes, p - base);
    inputs.assign(batch * program.input_words, Word{0});
    for (std::size_t j = 0; j < batch; ++j) {
      fill_input(base + j,
                 std::span<Word>(inputs.data() + j * program.input_words,
                                 program.input_words));
    }

    const HostBulkExecutor exec(make_layout(program, batch, options_.arrangement),
                                HostBulkExecutor::Options{.workers = options_.workers});
    const HostRunResult run = exec.run(program, inputs);
    const std::vector<Word> outputs = exec.gather_outputs(program, run.memory);
    for (std::size_t j = 0; j < batch; ++j) {
      consume_output(base + j,
                     std::span<const Word>(outputs.data() + j * program.output_words,
                                           program.output_words));
    }
    ++stats.batches;
  }

  const auto t1 = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

}  // namespace obx::bulk

#include "bulk/streaming_executor.hpp"

#include <chrono>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"

namespace obx::bulk {

StreamingExecutor::StreamingExecutor(Options options) : options_(options) {
  OBX_CHECK(options_.max_resident_lanes > 0, "need at least one resident lane");
}

StreamingExecutor::Stats StreamingExecutor::run(
    const trace::Program& program, std::size_t p,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(fill_input != nullptr && consume_output != nullptr, "callbacks required");

  Stats stats;
  stats.lanes = p;
  using Clock = std::chrono::steady_clock;
  const auto elapsed = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  const HostBulkExecutor::Options exec_options{
      .workers = options_.workers,
      .backend = options_.backend,
      .tile_lanes = options_.tile_lanes,
      .compile_budget_steps = options_.compile_budget_steps,
      .simd = options_.simd};
  // All full batches share one layout/executor; only a trailing partial
  // batch (batch size changes at most once) forces a rebuild.
  std::optional<HostBulkExecutor> exec;
  std::size_t exec_batch = 0;
  std::vector<Word> inputs;
  std::vector<Word> outputs;
  for (Lane base = 0; base < p; base += options_.max_resident_lanes) {
    const std::size_t batch = std::min<std::size_t>(options_.max_resident_lanes, p - base);
    inputs.assign(batch * program.input_words, Word{0});
    const auto fill_start = Clock::now();
    for (std::size_t j = 0; j < batch; ++j) {
      fill_input(base + j,
                 std::span<Word>(inputs.data() + j * program.input_words,
                                 program.input_words));
    }

    const auto exec_start = Clock::now();
    if (!exec.has_value() || exec_batch != batch) {
      exec.emplace(make_layout(program, batch, options_.arrangement,
                               options_.arrangement_param),
                   exec_options);
      exec_batch = batch;
    }
    const HostRunResult run = exec->run(program, inputs);
    stats.sched += run.sched;
    exec->gather_outputs(program, run.memory, outputs);
    const auto consume_start = Clock::now();
    for (std::size_t j = 0; j < batch; ++j) {
      consume_output(base + j,
                     std::span<const Word>(outputs.data() + j * program.output_words,
                                           program.output_words));
    }
    const auto batch_end = Clock::now();
    stats.callback_seconds +=
        elapsed(fill_start, exec_start) + elapsed(consume_start, batch_end);
    stats.execute_seconds += elapsed(exec_start, consume_start);
    ++stats.batches;
  }
  return stats;
}

}  // namespace obx::bulk

// Fork-join helper for partitioning lanes across host threads — now a thin
// shim over the process-wide bulk::CorePool (see core_pool.hpp).
//
// Bulk lanes are fully independent (one input per lane), so the parallel
// decomposition is embarrassing: split [0, p) into contiguous chunks, run
// the whole program per chunk.  Historically each call spawned and joined
// fresh std::threads; chunks now become lane-tile tasks on the persistent
// work-stealing pool, so per-batch scheduling cost is one deque push per
// tile instead of a thread spawn per worker.  Semantics are unchanged:
// workers <= 1 runs inline on the caller, and the first exception thrown by
// any chunk is rethrown on the caller after the region completes.
#pragma once

#include <cstddef>
#include <functional>

namespace obx::bulk {

/// Worker count the pool (and `workers = 0` knobs) default to: the CPUs in
/// this process's affinity mask (cgroup/taskset aware; falls back to
/// hardware_concurrency), overridable with OBX_WORKERS.  Latched once per
/// process; always >= 1.
unsigned default_worker_count();

/// Invokes body(chunk_begin, chunk_end) across up to `workers` threads over
/// [0, count), chunk boundaries aligned to `align` (the layout block size,
/// so chunks never split a block).  Runs inline when workers <= 1.  The
/// first exception from any chunk is rethrown on the caller.
void parallel_for_chunks(std::size_t count, unsigned workers, std::size_t align,
                         const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace obx::bulk

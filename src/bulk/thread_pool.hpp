// A small fork-join helper for partitioning lanes across host threads.
//
// Bulk lanes are fully independent (one input per lane), so the parallel
// decomposition is embarrassing: split [0, p) into contiguous chunks, run the
// whole program per chunk.  On a single-core host this degrades to a plain
// loop; the figures of the reproduction rely on simulated UMM time, not on
// host parallelism (see DESIGN.md).
#pragma once

#include <cstddef>
#include <functional>

namespace obx::bulk {

/// Largest sensible worker count on this host (hardware_concurrency, >= 1).
unsigned default_worker_count();

/// Invokes body(chunk_begin, chunk_end) on `workers` threads over [0, count),
/// chunk boundaries aligned down to `align` (the layout block size, so chunks
/// never split a block).  Runs inline when workers <= 1.  Exceptions from
/// workers are rethrown on the caller.
void parallel_for_chunks(std::size_t count, unsigned workers, std::size_t align,
                         const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace obx::bulk

#include "bulk/umm_executor.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::bulk {

UmmBulkExecutor::UmmBulkExecutor(umm::Model model, umm::MachineConfig config, Layout layout)
    : model_(model), config_(config), layout_(layout) {
  config_.validate();
}

UmmRunResult UmmBulkExecutor::run(const trace::Program& program,
                                  std::span<const Word> inputs) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(program.memory_words == layout_.words_per_input(),
            "layout sized for a different program");
  OBX_CHECK(inputs.size() == layout_.lanes() * program.input_words,
            "inputs must be lane-major flat: p * input_words words");

  const std::size_t p = layout_.lanes();
  umm::Machine machine(model_, config_, layout_.total_words());
  for (Lane j = 0; j < p; ++j) {
    layout_.scatter(inputs.subspan(j * program.input_words, program.input_words), j,
                    machine.memory().span());
  }

  const std::size_t reg_count = std::max<std::size_t>(program.register_count, 1);
  std::vector<Word> regs(reg_count * p, Word{0});
  auto reg = [&](std::uint8_t r) { return regs.data() + std::size_t{r} * p; };

  std::vector<Addr> addrs(p);
  auto fill_addrs = [&](Addr canonical) {
    for (Lane j = 0; j < p; ++j) addrs[j] = layout_.global(canonical, j);
  };

  auto gen = program.stream();
  for (const trace::Step& s : gen) {
    switch (s.kind) {
      case trace::StepKind::kLoad: {
        OBX_CHECK(s.addr < program.memory_words, "load beyond program memory");
        fill_addrs(s.addr);
        machine.step_read(addrs, std::span<Word>(reg(s.dst), p));
        break;
      }
      case trace::StepKind::kStore: {
        OBX_CHECK(s.addr < program.memory_words, "store beyond program memory");
        fill_addrs(s.addr);
        machine.step_write(addrs, std::span<const Word>(reg(s.src0), p));
        break;
      }
      case trace::StepKind::kAlu:
        trace::bulk_alu(s.op, reg(s.dst), reg(s.src0), reg(s.src1), reg(s.src2), p);
        machine.step_compute();
        break;
      case trace::StepKind::kImm: {
        Word* dst = reg(s.dst);
        for (Lane j = 0; j < p; ++j) dst[j] = s.imm;
        machine.step_compute();
        break;
      }
    }
  }

  UmmRunResult result;
  result.time_units = machine.time_units();
  result.stats = machine.stats();
  result.memory.assign(machine.memory().span().begin(), machine.memory().span().end());
  return result;
}

std::vector<Word> UmmBulkExecutor::gather_outputs(const trace::Program& program,
                                                  std::span<const Word> memory) const {
  const std::size_t p = layout_.lanes();
  std::vector<Word> out(p * program.output_words);
  for (Lane j = 0; j < p; ++j) {
    layout_.gather(memory, j, program.output_offset,
                   std::span<Word>(out).subspan(j * program.output_words,
                                                program.output_words));
  }
  return out;
}

}  // namespace obx::bulk

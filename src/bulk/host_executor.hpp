// Lockstep host execution of a bulk oblivious program.
//
// This is the functional analogue of the paper's CUDA kernels: every step of
// the oblivious program is applied across all p lanes before the next step
// begins (per worker chunk), with a register file stored lane-major
// (structure-of-arrays) so ALU steps and column-wise memory steps run over
// contiguous memory and vectorise.  Results are bit-identical to running the
// scalar interpreter p times.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/layout.hpp"
#include "exec/backend.hpp"
#include "trace/program.hpp"

namespace obx::plan {
class ExecutionPlan;
}

namespace obx::bulk {

struct HostRunResult {
  /// Final arranged global memory (p·n words), 64-byte aligned for the
  /// vectorized kernels.  Compares equal to a plain std::vector<Word> with
  /// the same contents (see common/aligned.hpp).
  aligned_vector<Word> memory;
  trace::StepCounts counts;   ///< steps in one program stream (per input)
  /// Wall-clock of the lockstep loop.  The interpreted backend scatters
  /// before the clock starts; the compiled backend scatters tile-by-tile
  /// inside it, so its seconds include scatter.
  double seconds = 0.0;
  /// Engine that actually ran: kJit when emitted zero-dispatch code executed,
  /// kCompiled when the switch backend did (requested, or JIT emission
  /// unavailable), kInterpreted when the program exceeded the compile budget.
  exec::Backend backend = exec::Backend::kInterpreted;
  /// SIMD tier the lockstep loop ran at (Options::simd if set — compiled
  /// backend only — else the process-wide active_simd_isa()).
  SimdIsa simd = SimdIsa::kScalar;
  /// What the CorePool scheduler did for this run (scatter + lockstep
  /// regions): tile tasks, cross-thread steals, submitter parks.  For
  /// workers <= 1 runs each region executes inline on the caller and counts
  /// as one task (so tasks is the region count), while steals and parks
  /// stay zero — the pool's worker threads are never touched.
  SchedulerStats sched;
};

class HostBulkExecutor {
 public:
  /// Compatibility shim over the planning layer: an Options struct carries
  /// exactly the decisions plan::ExecutionPlan::host_options() emits for a
  /// one-off plan.  New code should plan once (plan::Planner / PlanCache)
  /// and use the plan-driven constructor below.
  struct Options {
    /// Parallelism target per bulk run: lane tiles are executed by up to
    /// this many threads of the shared bulk::CorePool (the caller counts as
    /// one).  1 = run inline on the caller; 0 = auto (default_worker_count).
    unsigned workers = 1;
    /// Lockstep engine.  kAuto / kJit / kCompiled compile the step stream
    /// once per (program, process) and run fused lane-tiled kernels — kAuto
    /// and kJit additionally emit per-segment native code (copy-and-patch,
    /// zero dispatch) when the platform and OBX_JIT allow it.  Every rung
    /// falls back down the ladder: jit -> compiled switch -> interpreter.
    exec::Backend backend = exec::Backend::kAuto;
    std::size_t tile_lanes = 0;  ///< compiled lane-tile size; 0 = auto (fit L1)
    std::size_t compile_budget_steps = exec::kDefaultCompileBudget;
    /// SIMD tier for the compiled backend's lane-vectorized kernels.
    /// Unset = the process-wide active_simd_isa() (OBX_SIMD-overridable).
    /// Setting it pins this executor's runs to one tier regardless of the
    /// environment — every tier is bit-identical, so this is pure tuning
    /// (and how tests compare scalar against vector in one process).  The
    /// interpreted backend ignores it: its ALU sweeps go through
    /// trace::bulk_alu, whose tier is latched process-wide.
    std::optional<SimdIsa> simd{};
  };

  explicit HostBulkExecutor(Layout layout);
  HostBulkExecutor(Layout layout, Options options);

  /// Plan-driven construction: arrangement, backend, tile size, compile
  /// budget and worker count all come from the plan, sized for `lanes`
  /// lanes.  run() must be given plan.program() (the plan's optimised
  /// program) — or use plan::run(), which cannot get the pairing wrong.
  /// Defined in src/plan/executor_shim.cpp: link obx_plan (or obx::obx).
  HostBulkExecutor(const plan::ExecutionPlan& plan, std::size_t lanes);

  /// Runs `program` on p inputs given lane-major flat: input j occupies
  /// inputs[j*program.input_words ... ).  Requires program.memory_words ==
  /// layout.words_per_input() and inputs.size() == p * program.input_words.
  /// The program's stream factory must be safe to invoke concurrently.
  HostRunResult run(const trace::Program& program, std::span<const Word> inputs) const;

  /// Extracts each lane's declared output region from a run's final memory,
  /// returned lane-major flat (p * output_words).
  std::vector<Word> gather_outputs(const trace::Program& program,
                                   std::span<const Word> memory) const;

  /// As above, writing into `out` (resized to p * output_words) so repeated
  /// runs — e.g. StreamingExecutor batches — reuse one allocation.
  void gather_outputs(const trace::Program& program, std::span<const Word> memory,
                      std::vector<Word>& out) const;

  const Layout& layout() const { return layout_; }

 private:
  void run_chunk(const trace::Program& program, std::span<Word> memory, Lane lane_begin,
                 Lane lane_end, trace::StepCounts* counts) const;

  Layout layout_;
  Options options_;
};

}  // namespace obx::bulk

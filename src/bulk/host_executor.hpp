// Lockstep host execution of a bulk oblivious program.
//
// This is the functional analogue of the paper's CUDA kernels: every step of
// the oblivious program is applied across all p lanes before the next step
// begins (per worker chunk), with a register file stored lane-major
// (structure-of-arrays) so ALU steps and column-wise memory steps run over
// contiguous memory and vectorise.  Results are bit-identical to running the
// scalar interpreter p times.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "trace/program.hpp"

namespace obx::bulk {

struct HostRunResult {
  std::vector<Word> memory;   ///< final arranged global memory (p·n words)
  trace::StepCounts counts;   ///< steps in one program stream (per input)
  double seconds = 0.0;       ///< wall-clock of the lockstep loop (excludes scatter)
};

class HostBulkExecutor {
 public:
  struct Options {
    unsigned workers = 1;  ///< host threads; lanes are chunked across them
  };

  explicit HostBulkExecutor(Layout layout);
  HostBulkExecutor(Layout layout, Options options);

  /// Runs `program` on p inputs given lane-major flat: input j occupies
  /// inputs[j*program.input_words ... ).  Requires program.memory_words ==
  /// layout.words_per_input() and inputs.size() == p * program.input_words.
  /// The program's stream factory must be safe to invoke concurrently.
  HostRunResult run(const trace::Program& program, std::span<const Word> inputs) const;

  /// Extracts each lane's declared output region from a run's final memory,
  /// returned lane-major flat (p * output_words).
  std::vector<Word> gather_outputs(const trace::Program& program,
                                   std::span<const Word> memory) const;

  const Layout& layout() const { return layout_; }

 private:
  void run_chunk(const trace::Program& program, std::span<Word> memory, Lane lane_begin,
                 Lane lane_end, trace::StepCounts* counts) const;

  Layout layout_;
  Options options_;
};

}  // namespace obx::bulk

// Memory-bounded bulk execution: process p lanes in resident batches.
//
// Figure-scale lane counts (p = 4M at n = 32K) cannot be materialised as one
// p·n array.  Lanes are independent, so the executor streams them through in
// batches of at most max_resident_lanes: inputs are pulled from a caller
// callback, each batch runs on the lockstep host executor, outputs are
// pushed to a consumer callback, and peak memory is O(batch · n) regardless
// of p.  Results are bit-identical to a single monolithic run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/layout.hpp"
#include "exec/backend.hpp"
#include "trace/program.hpp"

namespace obx::plan {
class ExecutionPlan;
}

namespace obx::bulk {

class StreamingExecutor {
 public:
  /// Compatibility shim over the planning layer (see
  /// HostBulkExecutor::Options); plan::ExecutionPlan::streaming_options()
  /// emits one from a plan.
  struct Options {
    std::size_t max_resident_lanes = 4096;  ///< peak memory = this · n words
    unsigned workers = 1;                   ///< host threads per batch
    Arrangement arrangement = Arrangement::kColumnWise;
    /// Arrangement parameter: block size (kBlocked) or pad stride
    /// (kConflictFree); 0 = auto (see bulk::make_layout).
    std::size_t arrangement_param = 0;
    /// Lockstep engine for each batch (see HostBulkExecutor::Options).
    exec::Backend backend = exec::Backend::kAuto;
    std::size_t tile_lanes = 0;
    std::size_t compile_budget_steps = exec::kDefaultCompileBudget;
    /// SIMD tier for each batch's compiled kernels; unset = process-wide
    /// active_simd_isa() (see HostBulkExecutor::Options::simd).
    std::optional<SimdIsa> simd{};
  };

  struct Stats {
    std::size_t batches = 0;
    std::size_t lanes = 0;
    double execute_seconds = 0.0;   ///< engine time: layout, lockstep run, gather
    double callback_seconds = 0.0;  ///< time spent inside fill_input/consume_output
    SchedulerStats sched;           ///< CorePool work summed over the batches
    double seconds() const { return execute_seconds + callback_seconds; }
  };

  StreamingExecutor() : StreamingExecutor(Options()) {}
  explicit StreamingExecutor(Options options);

  /// Plan-driven construction: every engine decision comes from the plan;
  /// only the resident-batch bound stays caller-chosen (it is a memory
  /// budget, not a program property — see
  /// plan::ExecutionPlan::resident_lanes_for_budget).  run() must be given
  /// plan.program() — or use plan::run_streaming().  Defined in
  /// src/plan/executor_shim.cpp: link obx_plan (or obx::obx).
  StreamingExecutor(const plan::ExecutionPlan& plan, std::size_t max_resident_lanes);

  /// Runs `program` for p lanes.  fill_input(j, dst) must write lane j's
  /// input_words into dst; consume_output(j, out) receives lane j's output
  /// region.  Callbacks are invoked from the calling thread, in lane order.
  Stats run(const trace::Program& program, std::size_t p,
            const std::function<void(Lane, std::span<Word>)>& fill_input,
            const std::function<void(Lane, std::span<const Word>)>& consume_output) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace obx::bulk

#include "bulk/timing_estimator.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "bulk/umm_executor.hpp"
#include "trace/step.hpp"

namespace obx::bulk {

TimingEstimator::TimingEstimator(umm::Model model, umm::MachineConfig config, Layout layout)
    : config_(config),
      layout_(layout),
      step_cost_(model, config, layout.lanes(), layout.lane_stride()) {
  config_.validate();
  OBX_CHECK(layout_.uniform_residue(config_.width),
            "layout does not have uniform warp residues at this width "
            "(blocked layouts need width | block)");
  OBX_CHECK(layout_.arrangement() != Arrangement::kBlocked ||
                config_.effective_group() == config_.width,
            "the strided fast path supports blocked layouts only at the "
            "paper's group size (group_words == width); use UmmBulkExecutor");
  if (config_.shared.enabled()) {
    // Blocked layouts are not one arithmetic progression: block-to-block
    // jumps break the residue cycle modulo the bank-row modulus.
    OBX_CHECK(layout_.arrangement() != Arrangement::kBlocked,
              "the shared-tier fast path does not support blocked layouts; "
              "use UmmBulkExecutor");
    shared_cost_.emplace(config_.shared, config_.width, layout_.lanes(),
                         layout_.lane_stride());
  }
}

bool TimingEstimator::supports(const umm::MachineConfig& config, const Layout& layout) {
  if (!layout.uniform_residue(config.width)) return false;
  if (layout.arrangement() == Arrangement::kBlocked &&
      (config.effective_group() != config.width || config.shared.enabled())) {
    return false;
  }
  return true;
}

TimeUnits TimingEstimator::step_time(Addr canonical) const {
  const Addr base = layout_.stride_base(canonical);
  TimeUnits t = step_cost_.step_time(base);
  if (t > 0 && shared_cost_.has_value()) t += shared_cost_->step_time(base);
  return t;
}

TimingResult TimingEstimator::run(const trace::Program& program) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  TimingResult r;
  TimeUnits serialized = 0;
  TimeUnits compute_units = 0;
  TimeUnits shared_units = 0;
  auto gen = program.stream();
  for (const trace::Step& s : gen) {
    if (s.is_memory()) {
      OBX_CHECK(s.addr < program.memory_words, "access beyond program memory");
      const Addr base = layout_.stride_base(s.addr);
      const umm::StepStages st = step_cost_.stages(base);
      r.stages_total += st.stages;
      r.warps_dispatched += st.warps;
      serialized += st.stages + config_.latency - 1;
      if (shared_cost_.has_value()) {
        const umm::SharedStepRounds sr = shared_cost_->rounds(base);
        r.shared_rounds_total += sr.rounds;
        if (sr.rounds > 0) {
          shared_units += sr.rounds + config_.shared.latency - 1;
        }
      }
      ++r.access_steps;
    } else {
      ++r.compute_steps;
      if (config_.count_compute) ++compute_units;
    }
  }
  if (config_.overlap_latency) {
    // Pipeline stays full across steps: bandwidth bound vs dependency chain.
    // Shared-tier replays never overlap (each is a dependent re-issue of the
    // same warp), so they add serialized in both policies.
    const TimeUnits bandwidth =
        r.stages_total == 0 ? 0 : r.stages_total + config_.latency - 1;
    const TimeUnits chain = static_cast<TimeUnits>(config_.latency) * r.access_steps;
    r.time_units = std::max(bandwidth, chain) + compute_units + shared_units;
  } else {
    r.time_units = serialized + compute_units + shared_units;
  }
  return r;
}

TimeUnits simulate_units(const trace::Program& program, const Layout& layout,
                         umm::Model model, const umm::MachineConfig& config) {
  if (TimingEstimator::supports(config, layout)) {
    return TimingEstimator(model, config, layout).run(program).time_units;
  }
  // Exact fallback: a cycle-accurate run on all-zero inputs.  The programs
  // are oblivious, so the address trace — and therefore the charged time —
  // is the same for every input.
  const std::vector<Word> zeros(layout.lanes() * program.input_words, Word{0});
  return UmmBulkExecutor(model, config, layout).run(program, zeros).time_units;
}

}  // namespace obx::bulk

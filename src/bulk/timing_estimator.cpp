#include "bulk/timing_estimator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::bulk {

TimingEstimator::TimingEstimator(umm::Model model, umm::MachineConfig config, Layout layout)
    : config_(config),
      layout_(layout),
      step_cost_(model, config, layout.lanes(), layout.lane_stride()) {
  config_.validate();
  OBX_CHECK(layout_.uniform_residue(config_.width),
            "layout does not have uniform warp residues at this width "
            "(blocked layouts need width | block)");
  OBX_CHECK(layout_.arrangement() != Arrangement::kBlocked ||
                config_.effective_group() == config_.width,
            "the strided fast path supports blocked layouts only at the "
            "paper's group size (group_words == width); use UmmBulkExecutor");
}

TimeUnits TimingEstimator::step_time(Addr canonical) const {
  return step_cost_.step_time(layout_.stride_base(canonical));
}

TimingResult TimingEstimator::run(const trace::Program& program) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  TimingResult r;
  TimeUnits serialized = 0;
  TimeUnits compute_units = 0;
  auto gen = program.stream();
  for (const trace::Step& s : gen) {
    if (s.is_memory()) {
      OBX_CHECK(s.addr < program.memory_words, "access beyond program memory");
      const umm::StepStages st = step_cost_.stages(layout_.stride_base(s.addr));
      r.stages_total += st.stages;
      r.warps_dispatched += st.warps;
      serialized += st.stages + config_.latency - 1;
      ++r.access_steps;
    } else {
      ++r.compute_steps;
      if (config_.count_compute) ++compute_units;
    }
  }
  if (config_.overlap_latency) {
    // Pipeline stays full across steps: bandwidth bound vs dependency chain.
    const TimeUnits bandwidth =
        r.stages_total == 0 ? 0 : r.stages_total + config_.latency - 1;
    const TimeUnits chain = static_cast<TimeUnits>(config_.latency) * r.access_steps;
    r.time_units = std::max(bandwidth, chain) + compute_units;
  } else {
    r.time_units = serialized + compute_units;
  }
  return r;
}

}  // namespace obx::bulk

// Closed-form-per-step timing of bulk execution: the figure-scale fast path.
//
// Produces exactly the same time-unit total as UmmBulkExecutor (a property
// the test suite asserts), but in O(1) per step instead of O(p): within one
// step, every full warp's addresses form the same residue class of the same
// arithmetic progression (see Layout), so the per-warp stage count is a
// single memoised lookup.  No data is allocated — p = 4M sweeps of the
// paper's Figures 11-12 run in seconds.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "trace/program.hpp"
#include "umm/cost_model.hpp"
#include "umm/dmm.hpp"
#include "umm/machine_config.hpp"

namespace obx::bulk {

struct TimingResult {
  TimeUnits time_units = 0;
  std::uint64_t access_steps = 0;
  std::uint64_t compute_steps = 0;
  std::uint64_t stages_total = 0;
  std::uint64_t warps_dispatched = 0;
  /// Σ bank-conflict rounds on the shared (DMM) tier; 0 when disabled.
  std::uint64_t shared_rounds_total = 0;
};

class TimingEstimator {
 public:
  /// Requires layout.uniform_residue(config.width) — true for row-/column-
  /// wise always, for blocked layouts when the width divides the block.
  /// With the shared tier enabled, blocked layouts are refused too (their
  /// addresses are not one arithmetic progression modulo the bank-row
  /// modulus); simulate_units() below falls back to the exact executor.
  TimingEstimator(umm::Model model, umm::MachineConfig config, Layout layout);

  /// True when the fast path accepts this (config, layout) pair.
  static bool supports(const umm::MachineConfig& config, const Layout& layout);

  /// Streams the program once, charging each step's closed-form cost.
  TimingResult run(const trace::Program& program) const;

  /// Cost of a single access step at the given canonical address (both
  /// tiers combined when the shared tier is enabled).
  TimeUnits step_time(Addr canonical) const;

 private:
  umm::MachineConfig config_;
  Layout layout_;
  umm::StridedStepCost step_cost_;
  std::optional<umm::BankedStepCost> shared_cost_;
};

/// Simulated time units of `program` over `layout` on the given machine:
/// the TimingEstimator fast path when it applies, else an exact
/// UmmBulkExecutor run on all-zero inputs — valid because the programs are
/// oblivious, so their address trace (hence timing) is input-independent.
/// This is what the Planner's arrangement search charges each candidate.
TimeUnits simulate_units(const trace::Program& program, const Layout& layout,
                         umm::Model model, const umm::MachineConfig& config);

}  // namespace obx::bulk

// Process-wide thread-per-core executor with a work-stealing lane-tile
// scheduler.
//
// Theorem 2's bound O(pt/w + lt) says bulk throughput is won by keeping
// every execution unit saturated with lane work.  PR 4 delivered the w
// (SIMD) axis inside one core; this pool delivers the multi-core axis
// without paying per-batch scheduling overhead: workers are spawned once
// per process, pinned one-per-core where the platform allows, and park on a
// condvar (after a bounded spin) when idle.  A bulk run is cut into
// lane-tile tasks — the same L1-sized, vector-width-multiple tiles
// exec::resolve_tile_lanes computes — pushed to a Chase–Lev-style deque
// owned by the submitting thread; idle workers steal tiles from random
// victims, so tail imbalance (skewed tile costs, ragged last chunks) is
// absorbed by whoever is free instead of stretching a static partition.
//
// Submission is synchronous fork-join: parallel_for() returns after every
// tile of its region ran (the caller executes tiles from its own deque
// while it waits — it is always at least one of the "workers").  Nested
// submission from inside a task is allowed: a worker that submits a region
// drains its own deque and never parks, so the pool cannot deadlock on
// recursion.  Exceptions thrown by tiles are caught, the first one is
// rethrown on the submitting thread after the region completes, and
// remaining tiles of a failed region are skipped (their lane ranges are
// left untouched).
//
// Knobs (read once per process):
//   OBX_WORKERS=N   override the worker count (default: the CPUs in this
//                   process's affinity mask — cgroup/taskset aware — via
//                   default_worker_count()).
//   OBX_PIN=0       disable pthread_setaffinity_np pinning (non-Linux
//                   platforms never pin; pin failures are ignored).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace obx::bulk {

/// What the scheduler did for one region (one parallel_for call): how many
/// tile tasks ran, how many were stolen off the submitter's deque by another
/// thread, and whether the submitter had to park waiting for stolen tiles to
/// finish.  Aggregated per run into HostRunResult::sched and recorded (pool
/// topology side) in plan::PlanProvenance.
struct SchedulerStats {
  std::uint64_t tasks = 0;   ///< tile tasks executed for this region
  std::uint64_t steals = 0;  ///< tasks run by a thread other than the submitter
  std::uint64_t parks = 0;   ///< submitter slept waiting for in-flight tiles

  SchedulerStats& operator+=(const SchedulerStats& other) {
    tasks += other.tasks;
    steals += other.steals;
    parks += other.parks;
    return *this;
  }
};

class CorePool {
 public:
  struct Config {
    /// Worker threads to spawn; 0 = default_worker_count() (affinity-mask
    /// CPUs, OBX_WORKERS-overridable).
    unsigned workers = 0;
    /// Pin workers one-per-core: -1 = platform policy (pinning_enabled()),
    /// 0 = off, 1 = on (still a no-op off Linux).
    int pin = -1;
    /// Idle spin budget (iterations of a relax/steal loop) before a worker
    /// parks on the condvar.
    std::size_t spin_iterations = 2048;
  };

  /// Point-in-time copy of the pool-lifetime counters (monotonic; serve
  /// Metrics renders them on the Prometheus scrape).
  struct CountersSnapshot {
    std::uint64_t tasks = 0;    ///< tile tasks executed, all regions
    std::uint64_t steals = 0;   ///< tasks obtained from another thread's deque
    std::uint64_t parks = 0;    ///< worker went to sleep on the condvar
    std::uint64_t unparks = 0;  ///< worker wakeups signalled by submitters
    bool pinned = false;        ///< pinning policy in effect for the workers
    std::vector<std::uint64_t> worker_busy_ns;  ///< per worker, time inside tasks
  };

  CorePool() : CorePool(Config{}) {}
  explicit CorePool(Config config);
  ~CorePool();  ///< drains: waits for in-flight regions, then joins workers
  CorePool(const CorePool&) = delete;
  CorePool& operator=(const CorePool&) = delete;

  unsigned worker_count() const;
  bool pinning() const;  ///< resolved pin policy for this pool

  /// Runs body(tile_begin, tile_end) over [0, count) cut into tiles of
  /// `grain` (rounded up to a multiple of `align`; interior tile boundaries
  /// are always align-multiples, so blocked layouts never split a block when
  /// align divides the block — a trailing partial tile is allowed, covering
  /// the ragged tail of a padded blocked layout).  Up to max_workers threads
  /// execute tiles
  /// concurrently — the calling thread plus woken pool workers; the knob is
  /// a parallelism target, not a hard cap (an already-awake worker may help
  /// any region).  max_workers <= 1, count <= grain, or a single tile run
  /// the body inline with zero scheduler involvement.  Returns after every
  /// tile completed; the first tile exception is rethrown here.
  SchedulerStats parallel_for(std::size_t count, std::size_t align, std::size_t grain,
                              unsigned max_workers,
                              const std::function<void(std::size_t, std::size_t)>& body);

  CountersSnapshot counters() const;

  /// The process-wide pool every executor shares (workers spawn lazily on
  /// the first parallel region, so merely planning never starts threads).
  static CorePool& instance();

  /// Platform pinning policy: true on Linux unless OBX_PIN=0/off/false
  /// (latched on first use), false elsewhere.
  static bool pinning_enabled();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Tile grain for coarse interpreted chunks: ~4 tiles per worker (enough
/// slack for stealing to fix imbalance, few enough that per-chunk costs —
/// e.g. one program-stream drain per chunk — stay amortised), in lanes,
/// always a positive multiple of align.
std::size_t chunk_grain(std::size_t count, std::size_t align, unsigned workers);

}  // namespace obx::bulk

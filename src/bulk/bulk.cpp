#include "bulk/bulk.hpp"

#include "common/check.hpp"

namespace obx::bulk {

Layout make_layout(const trace::Program& program, std::size_t p, Arrangement arrangement,
                   std::size_t param) {
  switch (arrangement) {
    case Arrangement::kRowWise:
      return Layout::row_wise(p, program.memory_words);
    case Arrangement::kColumnWise:
      return Layout::column_wise(p, program.memory_words);
    case Arrangement::kBlocked:
      OBX_CHECK(param > 0, "blocked arrangement needs a block size");
      return Layout::blocked(p, program.memory_words, param);
    case Arrangement::kConflictFree:
      return Layout::conflict_free(p, program.memory_words, param == 0 ? 1 : param);
  }
  OBX_CHECK(false, "unknown arrangement");
  return Layout::column_wise(p, program.memory_words);
}

BulkOutputs run_bulk(const trace::Program& program, std::span<const Word> inputs,
                     std::size_t p, Arrangement arrangement, unsigned workers,
                     std::size_t arrangement_param) {
  HostBulkExecutor exec(make_layout(program, p, arrangement, arrangement_param),
                        HostBulkExecutor::Options{.workers = workers});
  const HostRunResult run = exec.run(program, inputs);
  BulkOutputs out;
  out.words_per_output = program.output_words;
  out.flat = exec.gather_outputs(program, run.memory);
  return out;
}

}  // namespace obx::bulk

#include "bulk/host_executor.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/thread_pool.hpp"
#include "exec/compiled_program.hpp"
#include "exec/jit/jit_program.hpp"
#include "trace/step.hpp"

namespace obx::bulk {

HostBulkExecutor::HostBulkExecutor(Layout layout)
    : HostBulkExecutor(layout, Options()) {}

HostBulkExecutor::HostBulkExecutor(Layout layout, Options options)
    : layout_(layout), options_(options) {}

void HostBulkExecutor::run_chunk(const trace::Program& program, std::span<Word> memory,
                                 Lane lane_begin, Lane lane_end,
                                 trace::StepCounts* counts) const {
  const std::size_t chunk = lane_end - lane_begin;
  const std::size_t reg_count = std::max<std::size_t>(program.register_count, 1);
  // Lane-major register file: register r of lane (lane_begin + i) lives at
  // regs[r * chunk + i].  64-byte aligned: bulk_alu's vector sweeps stream
  // whole cachelines through these columns.
  aligned_vector<Word> regs(reg_count * chunk, Word{0});
  auto reg = [&](std::uint8_t r) { return regs.data() + std::size_t{r} * chunk; };

  const std::size_t p = layout_.lanes();
  const std::size_t n = layout_.words_per_input();
  const std::size_t block = layout_.block();
  Word* mem = memory.data();

  trace::StepCounts local;
  auto gen = program.stream();
  for (const trace::Step& s : gen) {
    switch (s.kind) {
      case trace::StepKind::kLoad: {
        OBX_CHECK(s.addr < n, "load beyond program memory");
        Word* dst = reg(s.dst);
        switch (layout_.arrangement()) {
          case Arrangement::kColumnWise: {
            const Word* src = mem + s.addr * p + lane_begin;
            for (std::size_t i = 0; i < chunk; ++i) dst[i] = src[i];
            break;
          }
          case Arrangement::kRowWise: {
            for (std::size_t i = 0; i < chunk; ++i) {
              dst[i] = mem[(lane_begin + i) * n + s.addr];
            }
            break;
          }
          case Arrangement::kBlocked: {
            for (std::size_t i = 0; i < chunk; ++i) {
              const Lane j = lane_begin + i;
              dst[i] = mem[(j / block) * (n * block) + s.addr * block + (j % block)];
            }
            break;
          }
          case Arrangement::kConflictFree: {
            const Word* src = mem + (s.addr * p + lane_begin) * block;
            for (std::size_t i = 0; i < chunk; ++i) dst[i] = src[i * block];
            break;
          }
        }
        ++local.loads;
        break;
      }
      case trace::StepKind::kStore: {
        OBX_CHECK(s.addr < n, "store beyond program memory");
        const Word* src = reg(s.src0);
        switch (layout_.arrangement()) {
          case Arrangement::kColumnWise: {
            Word* dst = mem + s.addr * p + lane_begin;
            for (std::size_t i = 0; i < chunk; ++i) dst[i] = src[i];
            break;
          }
          case Arrangement::kRowWise: {
            for (std::size_t i = 0; i < chunk; ++i) {
              mem[(lane_begin + i) * n + s.addr] = src[i];
            }
            break;
          }
          case Arrangement::kBlocked: {
            for (std::size_t i = 0; i < chunk; ++i) {
              const Lane j = lane_begin + i;
              mem[(j / block) * (n * block) + s.addr * block + (j % block)] = src[i];
            }
            break;
          }
          case Arrangement::kConflictFree: {
            Word* dst = mem + (s.addr * p + lane_begin) * block;
            for (std::size_t i = 0; i < chunk; ++i) dst[i * block] = src[i];
            break;
          }
        }
        ++local.stores;
        break;
      }
      case trace::StepKind::kAlu:
        trace::bulk_alu(s.op, reg(s.dst), reg(s.src0), reg(s.src1), reg(s.src2), chunk);
        ++local.alu;
        break;
      case trace::StepKind::kImm: {
        Word* dst = reg(s.dst);
        for (std::size_t i = 0; i < chunk; ++i) dst[i] = s.imm;
        ++local.imm;
        break;
      }
    }
  }
  if (counts != nullptr) *counts = local;
}

HostRunResult HostBulkExecutor::run(const trace::Program& program,
                                    std::span<const Word> inputs) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(program.memory_words == layout_.words_per_input(),
            "layout sized for a different program");
  OBX_CHECK(inputs.size() == layout_.lanes() * program.input_words,
            "inputs must be lane-major flat: p * input_words words");
  OBX_CHECK(program.register_count <= 256, "register file limited to 256");

  HostRunResult result;
  result.memory.assign(layout_.total_words(), Word{0});
  const std::size_t p = layout_.lanes();
  const unsigned workers =
      options_.workers == 0 ? default_worker_count() : options_.workers;
  CorePool& pool = CorePool::instance();

  // Chunks must not split a blocked layout's block (alignment below); the
  // first chunk also reports the per-input step counts.
  const std::size_t align =
      layout_.arrangement() == Arrangement::kBlocked ? layout_.block() : 1;

  std::shared_ptr<const exec::CompiledProgram> compiled;
  if (options_.backend != exec::Backend::kInterpreted) {
    compiled = exec::CompiledProgram::get_or_compile(
        program, {.max_steps = options_.compile_budget_steps});
  }

  if (compiled != nullptr) {
    const SimdIsa isa = options_.simd.value_or(active_simd_isa());
    // kAuto and kJit prefer emitted zero-dispatch code; any emission failure
    // (platform, OBX_JIT=0, arena refusal) degrades to the compiled switch
    // backend.  kCompiled never emits, so the switch engine stays directly
    // reachable for benchmarks and differential tests.
    std::shared_ptr<const exec::JitProgram> jitted;
    if (options_.backend != exec::Backend::kCompiled) {
      jitted = exec::JitProgram::get_or_emit(program, compiled, isa);
    }
    result.backend =
        jitted != nullptr ? exec::Backend::kJit : exec::Backend::kCompiled;
    result.counts = compiled->counts();
    result.simd = isa;
    const std::size_t tile =
        exec::resolve_tile_lanes(options_.tile_lanes, compiled->register_count(),
                                 layout_, simd_width_words(isa));
    // One pool task per lane tile (not per worker): the steal loop soaks up
    // skewed tile costs, and grain == tile keeps the task boundaries exactly
    // the L1-sized, W-multiple tiles the kernels already use.  For blocked
    // layouts the tile divides the block (resolve_tile_lanes), so
    // tile-aligned task boundaries never split a block.
    const auto t0 = std::chrono::steady_clock::now();
    result.sched += pool.parallel_for(
        p, align == 1 ? 1 : tile, tile, workers,
        [&](std::size_t begin, std::size_t end) {
          if (jitted != nullptr) {
            exec::run_jit_chunk(*jitted, layout_, inputs, program.input_words,
                                result.memory, begin, end, tile);
          } else {
            exec::run_compiled_chunk(*compiled, layout_, inputs, program.input_words,
                                     result.memory, begin, end, tile, isa);
          }
        });
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
  }
  result.simd = active_simd_isa();  // what trace::bulk_alu will dispatch to

  result.sched += pool.parallel_for(
      p, 1, chunk_grain(p, 1, workers), workers, [&](std::size_t begin, std::size_t end) {
        for (Lane j = begin; j < end; ++j) {
          layout_.scatter(inputs.subspan(j * program.input_words, program.input_words),
                          j, result.memory);
        }
      });

  // Coarse chunks (~4 per worker), not per-tile: every interpreted chunk
  // re-drains the program stream, so the grain must amortise that cost.
  // The chunk containing lane 0 reports the per-input step counts.
  const auto t0 = std::chrono::steady_clock::now();
  result.sched += pool.parallel_for(
      p, align, chunk_grain(p, align, workers), workers,
      [&](std::size_t begin, std::size_t end) {
        run_chunk(program, result.memory, begin, end,
                  begin == 0 ? &result.counts : nullptr);
      });
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

std::vector<Word> HostBulkExecutor::gather_outputs(const trace::Program& program,
                                                   std::span<const Word> memory) const {
  std::vector<Word> out;
  gather_outputs(program, memory, out);
  return out;
}

void HostBulkExecutor::gather_outputs(const trace::Program& program,
                                      std::span<const Word> memory,
                                      std::vector<Word>& out) const {
  const std::size_t p = layout_.lanes();
  const std::size_t ow = program.output_words;
  out.resize(p * ow);
  if (ow == 0) return;
  parallel_for_chunks(p, options_.workers, 1, [&](std::size_t begin, std::size_t end) {
    if (layout_.arrangement() == Arrangement::kColumnWise) {
      // Two-level tiled transpose (mirror of the compiled backend's tile
      // scatter): lane sub-blocks keep the destination pages TLB-resident,
      // 8-word address tiles make each lane's write one full cacheline fed
      // from 8 contiguous read streams.
      constexpr std::size_t kSub = 256;
      constexpr std::size_t kLine = 8;
      for (std::size_t jb = begin; jb < end; jb += kSub) {
        const std::size_t je = std::min(jb + kSub, end);
        std::size_t i0 = 0;
        for (; i0 + kLine <= ow; i0 += kLine) {
          const Word* src[kLine];
          for (std::size_t k = 0; k < kLine; ++k) {
            src[k] = memory.data() + (program.output_offset + i0 + k) * p;
          }
          for (std::size_t j = jb; j < je; ++j) {
            Word* dst = out.data() + j * ow + i0;
            for (std::size_t k = 0; k < kLine; ++k) dst[k] = src[k][j];
          }
        }
        for (; i0 < ow; ++i0) {
          const Word* src = memory.data() + (program.output_offset + i0) * p;
          for (std::size_t j = jb; j < je; ++j) out[j * ow + i0] = src[j];
        }
      }
    } else {
      for (Lane j = begin; j < end; ++j) {
        layout_.gather(memory, j, program.output_offset,
                       std::span<Word>(out).subspan(j * ow, ow));
      }
    }
  });
}

}  // namespace obx::bulk

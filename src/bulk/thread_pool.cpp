#include "bulk/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace obx::bulk {

unsigned default_worker_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for_chunks(std::size_t count, unsigned workers, std::size_t align,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  OBX_CHECK(align > 0, "alignment must be positive");
  OBX_CHECK(count % align == 0, "count must be a multiple of the alignment");
  if (count == 0) return;
  const std::size_t blocks = count / align;
  const unsigned used = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, workers), blocks));
  if (used == 1) {
    body(0, count);
    return;
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(used);
  threads.reserve(used);
  const std::size_t per_worker = blocks / used;
  const std::size_t remainder = blocks % used;
  std::size_t begin_block = 0;
  for (unsigned t = 0; t < used; ++t) {
    const std::size_t take = per_worker + (t < remainder ? 1 : 0);
    const std::size_t begin = begin_block * align;
    const std::size_t end = (begin_block + take) * align;
    begin_block += take;
    threads.emplace_back([&, t, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace obx::bulk

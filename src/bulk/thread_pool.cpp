#include "bulk/thread_pool.hpp"

#include "common/check.hpp"
#include "bulk/core_pool.hpp"

namespace obx::bulk {

void parallel_for_chunks(std::size_t count, unsigned workers, std::size_t align,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  OBX_CHECK(align > 0, "alignment must be positive");
  OBX_CHECK(count % align == 0, "count must be a multiple of the alignment");
  if (count == 0) return;
  CorePool::instance().parallel_for(count, align, chunk_grain(count, align, workers),
                                    workers, body);
}

}  // namespace obx::bulk

#include "bulk/layout.hpp"

namespace obx::bulk {

std::string to_string(Arrangement a) {
  switch (a) {
    case Arrangement::kRowWise:
      return "row-wise";
    case Arrangement::kColumnWise:
      return "column-wise";
    case Arrangement::kBlocked:
      return "blocked";
    case Arrangement::kConflictFree:
      return "conflict-free";
  }
  return "?";
}

Layout::Layout(Arrangement arrangement, std::size_t lanes, std::size_t words_per_input,
               std::size_t block)
    : arrangement_(arrangement), p_(lanes), n_(words_per_input), block_(block) {
  OBX_CHECK(lanes > 0, "layout needs at least one lane");
  OBX_CHECK(words_per_input > 0, "layout needs at least one word per input");
  OBX_CHECK(block > 0, "arrangement parameter must be positive");
}

Layout Layout::row_wise(std::size_t lanes, std::size_t words_per_input) {
  return Layout(Arrangement::kRowWise, lanes, words_per_input, lanes);
}

Layout Layout::column_wise(std::size_t lanes, std::size_t words_per_input) {
  return Layout(Arrangement::kColumnWise, lanes, words_per_input, 1);
}

Layout Layout::blocked(std::size_t lanes, std::size_t words_per_input, std::size_t block) {
  return Layout(Arrangement::kBlocked, lanes, words_per_input, block);
}

Layout Layout::conflict_free(std::size_t lanes, std::size_t words_per_input,
                             std::size_t stride) {
  return Layout(Arrangement::kConflictFree, lanes, words_per_input, stride);
}

std::string Layout::name() const {
  if (arrangement_ == Arrangement::kBlocked) {
    return "blocked(" + std::to_string(block_) + ")";
  }
  if (arrangement_ == Arrangement::kConflictFree) {
    return "conflict-free(" + std::to_string(block_) + ")";
  }
  return to_string(arrangement_);
}

void Layout::scatter(std::span<const Word> input, Lane lane,
                     std::span<Word> memory) const {
  OBX_CHECK(input.size() <= n_, "input larger than the per-lane array");
  OBX_CHECK(memory.size() >= total_words(), "global memory too small for layout");
  for (std::size_t i = 0; i < input.size(); ++i) {
    memory[global(i, lane)] = input[i];
  }
}

void Layout::gather(std::span<const Word> memory, Lane lane, Addr offset,
                    std::span<Word> out) const {
  OBX_CHECK(offset + out.size() <= n_, "gather range beyond the per-lane array");
  OBX_CHECK(memory.size() >= total_words(), "global memory too small for layout");
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = memory[global(offset + i, lane)];
  }
}

}  // namespace obx::bulk

// High-level convenience API: one call from "a Program and p inputs" to
// "p outputs" — the user-facing face of the bulk-execution library.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/layout.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "trace/program.hpp"

namespace obx::bulk {

struct BulkOutputs {
  std::vector<Word> flat;  ///< lane-major: output j at [j*words, (j+1)*words)
  std::size_t words_per_output = 0;

  std::span<const Word> output(Lane j) const {
    return std::span<const Word>(flat).subspan(j * words_per_output, words_per_output);
  }
  std::size_t count() const {
    return words_per_output == 0 ? 0 : flat.size() / words_per_output;
  }
};

/// Executes `program` for p inputs (lane-major flat) on the host, using the
/// given arrangement, and returns the per-lane outputs.  `arrangement_param`
/// is forwarded to make_layout (block size / pad stride).
BulkOutputs run_bulk(const trace::Program& program, std::span<const Word> inputs,
                     std::size_t p, Arrangement arrangement = Arrangement::kColumnWise,
                     unsigned workers = 1, std::size_t arrangement_param = 0);

/// Builds the layout for a program/arrangement pair.  `param` is the
/// arrangement parameter: the block size for kBlocked (required) or the pad
/// stride for kConflictFree (0 = stride 1, plain column addressing); ignored
/// by row-/column-wise.
Layout make_layout(const trace::Program& program, std::size_t p, Arrangement arrangement,
                   std::size_t param = 0);

}  // namespace obx::bulk

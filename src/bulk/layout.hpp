// Data arrangements for bulk execution (paper Section III, Figures 5 and 10).
//
// p inputs of n words each are packed into one global array of p·n words:
//
//   row-wise:    b_j[i] at address j·n + i   — input j is contiguous; a warp
//                executing step i touches addresses n apart (one address
//                group per lane: the slow, non-coalesced arrangement).
//   column-wise: b_j[i] at address i·p + j   — lane-interleaved; a warp
//                touches w consecutive addresses (one or two address groups:
//                the coalesced, time-optimal arrangement of Theorem 3).
//   blocked:     a hybrid for the layout ablation — lanes grouped in blocks
//                of B, lane-interleaved inside a block: b_j[i] at
//                (j/B)·(n·B) + i·B + (j mod B).  B = 1 degenerates to
//                row-wise; B = p degenerates to column-wise.
//
// All three share a property the timing fast path exploits: within one step,
// the addresses of a full warp form an arithmetic progression whose residue
// class (mod w) is the same for every warp of the step, so a step's cost
// depends only on that residue (see umm::StridedStepCost).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace obx::bulk {

enum class Arrangement : std::uint8_t { kRowWise, kColumnWise, kBlocked };

std::string to_string(Arrangement a);

class Layout {
 public:
  static Layout row_wise(std::size_t lanes, std::size_t words_per_input);
  static Layout column_wise(std::size_t lanes, std::size_t words_per_input);
  /// block must divide lanes.
  static Layout blocked(std::size_t lanes, std::size_t words_per_input, std::size_t block);

  /// Global address of canonical word `a` of input `lane`.
  Addr global(Addr a, Lane lane) const {
    OBX_DCHECK(a < n_ && lane < p_, "layout access out of range");
    switch (arrangement_) {
      case Arrangement::kRowWise:
        return lane * n_ + a;
      case Arrangement::kColumnWise:
        return a * p_ + lane;
      case Arrangement::kBlocked:
        return (lane / block_) * (n_ * block_) + a * block_ + (lane % block_);
    }
    return kInvalidAddr;
  }

  std::size_t lanes() const { return p_; }
  std::size_t words_per_input() const { return n_; }
  std::size_t total_words() const { return p_ * n_; }
  std::size_t block() const { return block_; }
  Arrangement arrangement() const { return arrangement_; }
  std::string name() const;

  /// Lane-to-lane address distance inside a warp (constant per arrangement).
  std::uint64_t lane_stride() const {
    return arrangement_ == Arrangement::kRowWise ? n_ : 1;
  }

  /// A representative base address for canonical word `a` whose residue
  /// class mod any w equals that of every warp's first address in the step.
  Addr stride_base(Addr a) const {
    switch (arrangement_) {
      case Arrangement::kRowWise:
        return a;
      case Arrangement::kColumnWise:
        return a * p_;
      case Arrangement::kBlocked:
        return a * block_;
    }
    return 0;
  }

  /// True when the constant-residue property holds for warps of width w
  /// (always for row-/column-wise; blocked requires w | block).
  bool uniform_residue(std::uint32_t width) const {
    return arrangement_ != Arrangement::kBlocked || block_ % width == 0;
  }

  /// Copies one input into its arranged position in global memory.
  void scatter(std::span<const Word> input, Lane lane, std::span<Word> memory) const;
  /// Extracts `out.size()` canonical words starting at canonical `offset`.
  void gather(std::span<const Word> memory, Lane lane, Addr offset,
              std::span<Word> out) const;

 private:
  Layout(Arrangement arrangement, std::size_t lanes, std::size_t words_per_input,
         std::size_t block);

  Arrangement arrangement_;
  std::size_t p_;
  std::size_t n_;
  std::size_t block_;
};

}  // namespace obx::bulk

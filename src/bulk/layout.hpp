// Data arrangements for bulk execution (paper Section III, Figures 5 and 10).
//
// p inputs of n words each are packed into one global array of p·n words:
//
//   row-wise:    b_j[i] at address j·n + i   — input j is contiguous; a warp
//                executing step i touches addresses n apart (one address
//                group per lane: the slow, non-coalesced arrangement).
//   column-wise: b_j[i] at address i·p + j   — lane-interleaved; a warp
//                touches w consecutive addresses (one or two address groups:
//                the coalesced, time-optimal arrangement of Theorem 3).
//   blocked:     a hybrid for the layout ablation — lanes grouped in blocks
//                of B, lane-interleaved inside a block: b_j[i] at
//                (j/B)·(n·B) + i·B + (j mod B).  B = 1 degenerates to
//                row-wise; B = p degenerates to column-wise.  When B does
//                not divide p the last block is padded to B lanes (the
//                address map stays injective; p·n ≤ total_words).
//   conflict-free: column-wise padded by a stride s — b_j[i] at
//                (i·p + j)·s — so consecutive lanes land on consecutive
//                *banks* of a shared-memory tier whose rows hold s words
//                (s = umm::conflict_free_stride of the tier, following the
//                Sitchinava padded constructions).  s = 1 degenerates to
//                column-wise; the cost is an s× footprint and s address
//                groups per warp on the global tier.
//
// All four share a property the timing fast path exploits: within one step,
// the addresses of a full warp form an arithmetic progression whose residue
// class (mod w) is the same for every warp of the step, so a step's cost
// depends only on that residue (see umm::StridedStepCost).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace obx::bulk {

enum class Arrangement : std::uint8_t { kRowWise, kColumnWise, kBlocked, kConflictFree };

std::string to_string(Arrangement a);

class Layout {
 public:
  static Layout row_wise(std::size_t lanes, std::size_t words_per_input);
  static Layout column_wise(std::size_t lanes, std::size_t words_per_input);
  /// Lanes are padded up to a multiple of block (total_words grows).
  static Layout blocked(std::size_t lanes, std::size_t words_per_input, std::size_t block);
  /// Column-wise padded by `stride` words per element; stride 1 is exactly
  /// column-wise addressing (but keeps the kConflictFree code paths).
  static Layout conflict_free(std::size_t lanes, std::size_t words_per_input,
                              std::size_t stride);

  /// Global address of canonical word `a` of input `lane`.
  Addr global(Addr a, Lane lane) const {
    OBX_DCHECK(a < n_ && lane < p_, "layout access out of range");
    switch (arrangement_) {
      case Arrangement::kRowWise:
        return lane * n_ + a;
      case Arrangement::kColumnWise:
        return a * p_ + lane;
      case Arrangement::kBlocked:
        return (lane / block_) * (n_ * block_) + a * block_ + (lane % block_);
      case Arrangement::kConflictFree:
        return (a * p_ + lane) * block_;
    }
    return kInvalidAddr;
  }

  std::size_t lanes() const { return p_; }
  std::size_t words_per_input() const { return n_; }
  std::size_t total_words() const {
    switch (arrangement_) {
      case Arrangement::kBlocked:
        // Pad the last block: ceil(p/B) blocks of n·B words each.
        return ((p_ + block_ - 1) / block_) * (n_ * block_);
      case Arrangement::kConflictFree:
        return p_ * n_ * block_;
      default:
        return p_ * n_;
    }
  }
  /// The arrangement parameter: block size (blocked) or pad stride
  /// (conflict-free); lanes for row-wise, 1 for column-wise.
  std::size_t block() const { return block_; }
  Arrangement arrangement() const { return arrangement_; }
  std::string name() const;

  /// Lane-to-lane address distance inside a warp (constant per arrangement).
  std::uint64_t lane_stride() const {
    switch (arrangement_) {
      case Arrangement::kRowWise:
        return n_;
      case Arrangement::kConflictFree:
        return block_;
      default:
        return 1;
    }
  }

  /// A representative base address for canonical word `a` whose residue
  /// class mod any w equals that of every warp's first address in the step.
  Addr stride_base(Addr a) const {
    switch (arrangement_) {
      case Arrangement::kRowWise:
        return a;
      case Arrangement::kColumnWise:
        return a * p_;
      case Arrangement::kBlocked:
        return a * block_;
      case Arrangement::kConflictFree:
        return a * p_ * block_;
    }
    return 0;
  }

  /// True when the constant-residue property holds for warps of width w
  /// (always for row-/column-/conflict-free-wise; blocked requires
  /// w | block).
  bool uniform_residue(std::uint32_t width) const {
    return arrangement_ != Arrangement::kBlocked || block_ % width == 0;
  }

  /// Copies one input into its arranged position in global memory.
  void scatter(std::span<const Word> input, Lane lane, std::span<Word> memory) const;
  /// Extracts `out.size()` canonical words starting at canonical `offset`.
  void gather(std::span<const Word> memory, Lane lane, Addr offset,
              std::span<Word> out) const;

 private:
  Layout(Arrangement arrangement, std::size_t lanes, std::size_t words_per_input,
         std::size_t block);

  Arrangement arrangement_;
  std::size_t p_;
  std::size_t n_;
  std::size_t block_;
};

}  // namespace obx::bulk

#include "hmm/hmm_estimator.hpp"

#include "common/check.hpp"
#include "bulk/layout.hpp"
#include "bulk/timing_estimator.hpp"

namespace obx::hmm {

void HmmConfig::validate() const {
  OBX_CHECK(num_sms > 0, "HMM needs at least one SM");
  shared.validate();
  global.validate();
  OBX_CHECK(shared_capacity_words > 0, "shared memory capacity must be positive");
}

HmmConfig gtx_titan_hmm() {
  HmmConfig cfg;
  cfg.num_sms = 14;
  cfg.shared = umm::MachineConfig{.width = 32, .latency = 2};
  cfg.global = umm::gtx_titan_like();
  cfg.shared_capacity_words = 6 * 1024;
  return cfg;
}

HmmEstimator::HmmEstimator(HmmConfig config) : config_(config) { config_.validate(); }

bool HmmEstimator::admissible(const trace::Program& program) const {
  return program.memory_words <= config_.shared_capacity_words;
}

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// Fully pipelined bulk copy of `words` canonical words for p lanes through
/// the global pipeline (coalesced, transfers independent).
TimeUnits streamed_copy(std::uint64_t words, std::uint64_t p,
                        const umm::MachineConfig& global) {
  if (words == 0) return 0;
  return ceil_div(p, global.width) * words + global.latency - 1;
}

}  // namespace

HmmTiming HmmEstimator::run(const trace::Program& program, std::size_t p) const {
  OBX_CHECK(p > 0, "at least one lane");
  OBX_CHECK(admissible(program),
            "per-lane array does not fit in shared memory; run global-only");

  HmmTiming t;
  t.lanes_per_sm = ceil_div(p, config_.num_sms);
  t.copy_in = streamed_copy(program.input_words, p, config_.global);
  t.copy_out = streamed_copy(program.output_words, p, config_.global);

  // Compute phase: the busiest SM, column-wise in its shared DMM.
  const bulk::Layout shared_layout =
      bulk::Layout::column_wise(t.lanes_per_sm, program.memory_words);
  const bulk::TimingEstimator sm(umm::Model::kDmm, config_.shared, shared_layout);
  t.compute = sm.run(program).time_units;
  return t;
}

TimeUnits HmmEstimator::global_only(const trace::Program& program, std::size_t p) const {
  const bulk::Layout layout = bulk::Layout::column_wise(p, program.memory_words);
  const bulk::TimingEstimator est(umm::Model::kUmm, config_.global, layout);
  return est.run(program).time_units;
}

}  // namespace obx::hmm

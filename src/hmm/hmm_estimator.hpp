// Timing of the staged (shared-memory) bulk schedule on the HMM.
//
// Schedule for p lanes over d SMs (lanes split evenly, column-wise inside
// each SM's shared memory):
//   1. copy-in:  stream each lane's input words global → shared.  The
//      transfers are mutually independent, so the global pipeline stays
//      full: time = ceil(p/w)·input_words + L - 1.
//   2. compute:  every SM runs the oblivious program against its shared
//      DMM in parallel; per step cost ceil(p_sm/w_s) + l_s - 1 (stride-1
//      shared layout is bank-conflict-free).  SMs overlap perfectly, so the
//      phase costs one SM's time (the one with the most lanes).
//   3. copy-out: stream output words shared → global, like copy-in.
//
// Functional results are unchanged from any other executor (staging moves
// data, not semantics), so this module is timing-only; use
// bulk::HostBulkExecutor for values.
#pragma once

#include "common/types.hpp"
#include "hmm/hmm_config.hpp"
#include "trace/program.hpp"

namespace obx::hmm {

struct HmmTiming {
  TimeUnits copy_in = 0;
  TimeUnits compute = 0;
  TimeUnits copy_out = 0;
  std::size_t lanes_per_sm = 0;  ///< lanes of the busiest SM

  TimeUnits total() const { return copy_in + compute + copy_out; }
};

class HmmEstimator {
 public:
  explicit HmmEstimator(HmmConfig config);

  /// True when one lane's canonical array fits in an SM's shared memory —
  /// the staged schedule's admissibility condition.
  bool admissible(const trace::Program& program) const;

  /// Timing of the staged schedule for p lanes.  Throws if inadmissible.
  HmmTiming run(const trace::Program& program, std::size_t p) const;

  /// Timing of the paper's global-only schedule on the same global memory
  /// (column-wise UMM execution) — the comparison baseline.
  TimeUnits global_only(const trace::Program& program, std::size_t p) const;

  const HmmConfig& config() const { return config_; }

 private:
  HmmConfig config_;
};

}  // namespace obx::hmm

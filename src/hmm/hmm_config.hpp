// The Hierarchical Memory Machine (HMM) — Nakano's companion model to the
// DMM and UMM, cited by the paper as the faithful model of a whole GPU: d
// streaming multiprocessors, each a DMM with a small fast shared memory,
// all connected to one large UMM-style global memory.
//
// The paper's experiments deliberately bypass the hierarchy ("All input and
// output data are stored in the global memory ... we do not use the shared
// memory").  This module quantifies what that choice costs: an HMM schedule
// stages each lane's canonical array in shared memory, runs the oblivious
// program there at shared-memory latency, and streams inputs/outputs
// through the global pipeline once — so algorithms with t >> n (OPT's
// Θ(n³) over Θ(n²) words) gain enormously, while t ≈ n algorithms
// (prefix-sums) gain nothing.
#pragma once

#include <cstdint>

#include "umm/machine_config.hpp"

namespace obx::hmm {

struct HmmConfig {
  /// d: number of streaming multiprocessors (each one a DMM).
  std::uint32_t num_sms = 14;

  /// Shared memory of one SM: width = banks, small latency.
  umm::MachineConfig shared{.width = 32, .latency = 2};

  /// Global memory shared by all SMs: a UMM with DRAM-scale latency.
  umm::MachineConfig global{.width = 32, .latency = 200};

  /// Capacity of one SM's shared memory, in words (GTX Titan: 48 KB ≈ 6K
  /// 8-byte words).  A lane's canonical array must fit for the staged
  /// schedule to be admissible.
  std::size_t shared_capacity_words = 6 * 1024;

  void validate() const;
};

/// GTX-Titan-like hierarchy matching gpusim::gtx_titan()'s global memory.
HmmConfig gtx_titan_hmm();

}  // namespace obx::hmm

#include "plan/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/thread_pool.hpp"
#include "bulk/timing_estimator.hpp"
#include "exec/jit/jit_program.hpp"

namespace obx::plan {

namespace {

/// FNV-1a over explicit 64-bit words: byte-order- and host-independent, so
/// fingerprints (and the golden plan texts that print them) are stable.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  void mix_bool(bool v) { mix(v ? 1 : 0); }
  void mix_string(const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<unsigned char>(c));
  }
};

std::uint64_t to_u64(TimeUnits u) { return static_cast<std::uint64_t>(u); }

}  // namespace

std::uint64_t PlanOptions::fingerprint() const {
  Digest d;
  d.mix(machine.width);
  d.mix(machine.latency);
  d.mix(machine.group_words);
  d.mix_bool(machine.count_compute);
  d.mix_bool(machine.overlap_latency);
  d.mix(machine.shared.banks);
  d.mix(machine.shared.bank_words);
  d.mix(machine.shared.latency);
  d.mix(reference_lanes);
  d.mix_bool(optimise);
  d.mix(optimise_step_limit);
  d.mix_bool(compile);
  d.mix(compile_budget_steps);
  d.mix(static_cast<std::uint64_t>(backend));
  d.mix(tile_lanes);
  d.mix(workers);
  d.mix(arrangement.has_value()
            ? static_cast<std::uint64_t>(*arrangement) + 1
            : 0);
  d.mix(arrangement_param);
  // The tuner knobs are decisions; the injected clock is an observation
  // channel and stays out.
  d.mix_bool(tune.measure);
  d.mix(tune.trials);
  d.mix(tune.lanes);
  return d.h;
}

void PlanOptions::validate() const {
  machine.validate();
  OBX_CHECK(reference_lanes > 0, "reference lane count must be positive");
  OBX_CHECK(tune.trials > 0, "tuner trial count must be positive");
}

std::string ArrangementCandidate::name() const {
  if (arrangement == bulk::Arrangement::kBlocked) {
    return "blocked(" + std::to_string(param) + ")";
  }
  if (arrangement == bulk::Arrangement::kConflictFree) {
    return "conflict-free(" + std::to_string(param) + ")";
  }
  return bulk::to_string(arrangement);
}

TimeUnits ExecutionPlan::units_for_lanes(std::size_t lanes) const {
  OBX_CHECK(lanes > 0, "lane count must be positive");
  std::lock_guard lock(units_mutex_);
  const auto it = units_by_lanes_.find(lanes);
  if (it != units_by_lanes_.end()) return it->second;
  const TimeUnits units = bulk::simulate_units(
      program_, bulk::make_layout(program_, lanes, arrangement_, arrangement_param_),
      umm::Model::kUmm, options_.machine);
  units_by_lanes_.emplace(lanes, units);
  return units;
}

std::size_t ExecutionPlan::resident_lanes_for_budget(std::size_t budget_words,
                                                     std::size_t p) const {
  OBX_CHECK(budget_words > 0, "memory budget must be positive");
  OBX_CHECK(p > 0, "at least one lane");
  const std::size_t per_lane = program_.input_words + program_.memory_words +
                               program_.register_count + program_.output_words;
  return std::clamp<std::size_t>(budget_words / std::max<std::size_t>(per_lane, 1), 1, p);
}

bulk::Layout ExecutionPlan::layout(std::size_t lanes) const {
  return bulk::make_layout(program_, lanes, arrangement_, arrangement_param_);
}

bulk::HostBulkExecutor::Options ExecutionPlan::host_options() const {
  return bulk::HostBulkExecutor::Options{
      .workers = workers_,
      .backend = backend_,
      .tile_lanes = options_.tile_lanes,
      .compile_budget_steps = options_.compile_budget_steps,
      .simd = provenance_.simd};
}

bulk::StreamingExecutor::Options ExecutionPlan::streaming_options(
    std::size_t max_resident_lanes) const {
  return bulk::StreamingExecutor::Options{
      .max_resident_lanes = max_resident_lanes,
      .workers = workers_,
      .arrangement = arrangement_,
      .arrangement_param = arrangement_param_,
      .backend = backend_,
      .tile_lanes = options_.tile_lanes,
      .compile_budget_steps = options_.compile_budget_steps,
      .simd = provenance_.simd};
}

std::string ExecutionPlan::describe() const {
  std::ostringstream os;
  const PlanProvenance& pv = provenance_;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(fingerprint_));

  os << "plan: " << program_.name << "\n";
  os << "  fingerprint : " << fp << "\n";
  os << "  machine     : umm w=" << options_.machine.width
     << " l=" << options_.machine.latency
     << " group=" << options_.machine.effective_group();
  if (options_.machine.shared.enabled()) {
    os << " shared=" << options_.machine.shared.banks << "x"
       << options_.machine.shared.bank_words << " ls=" << options_.machine.shared.latency;
  }
  if (options_.machine.overlap_latency) os << " overlap";
  if (options_.machine.count_compute) os << " count-compute";
  os << "\n";
  os << "  source steps: total=" << pv.before.total() << " memory=" << pv.before.memory()
     << " (loads=" << pv.before.loads << " stores=" << pv.before.stores
     << " alu=" << pv.before.alu << " imm=" << pv.before.imm << ")\n";

  os << "  optimise    : ";
  if (!pv.optimise_attempted) {
    os << (options_.optimise ? "skipped (over step limit)" : "skipped (disabled)");
  } else if (!pv.optimised) {
    os << "no win";
  } else {
    os << "adopted (t " << pv.before.memory() << " -> " << pv.after.memory();
    for (const opt::PassReport& r : pv.passes) {
      if (r.removed > 0) os << "; " << r.pass << " -" << r.removed;
    }
    os << ")";
  }
  os << "\n";
  os << "  plan steps  : total=" << pv.after.total() << " memory=" << pv.after.memory()
     << "\n";

  os << "  compile     : ";
  if (!pv.compile_attempted) {
    os << (options_.backend == exec::Backend::kInterpreted
               ? "skipped (interpreted backend)"
               : "disabled");
  } else if (!pv.compiled) {
    os << "fallback (over budget " << options_.compile_budget_steps << ")";
  } else {
    os << "compiled (segments=" << pv.compiled_segments
       << " fused-ops=" << pv.compiled_fused_ops
       << " budget=" << options_.compile_budget_steps << ")";
  }
  os << "\n";

  os << "  jit         : ";
  if (pv.jitted) {
    os << "emitted (code=" << pv.jit_code_bytes << "B patches=" << pv.jit_patches
       << ")";
  } else if (options_.backend == exec::Backend::kInterpreted) {
    os << "skipped (interpreted backend)";
  } else if (options_.backend == exec::Backend::kCompiled) {
    os << "skipped (compiled backend)";
  } else if (!pv.compiled) {
    os << "skipped (no compiled artifact)";
  } else if (!exec::jit_enabled()) {
    os << "skipped (disabled)";
  } else if (!exec::jit_platform_supported()) {
    os << "skipped (unsupported host)";
  } else {
    os << "fallback (emission failed)";
  }
  os << "\n";
  os << "  backend     : " << exec::to_string(backend_) << "\n";
  os << "  simd        : " << to_string(pv.simd) << " (w=" << pv.simd_width << ")\n";

  std::string arr_name = bulk::to_string(arrangement_);
  if (arrangement_ == bulk::Arrangement::kBlocked ||
      arrangement_ == bulk::Arrangement::kConflictFree) {
    arr_name += "(" + std::to_string(arrangement_param_) + ")";
  }
  os << "  arrangement : " << arr_name;
  if (pv.arrangement_forced) {
    os << " (forced)\n";
  } else {
    os << (pv.tuned ? " (tuned over " : " (searched ") << pv.candidates.size()
       << " candidates, margin=" << to_u64(pv.margin_units) << " units @ "
       << pv.reference_lanes << " lanes)\n";
    for (const ArrangementCandidate& c : pv.candidates) {
      std::string label = c.name();
      if (label.size() < 17) label.resize(17, ' ');
      os << "    candidate : " << label << " sim=" << to_u64(c.sim_units) << " units";
      if (c.measured_ns != 0) os << " measured=" << c.measured_ns << "ns";
      if (c.chosen) os << " *";
      os << "\n";
    }
  }

  os << "  tile lanes  : " << pv.resolved_tile_lanes
     << (options_.tile_lanes == 0 ? " (auto" : " (requested")
     << " @ " << pv.reference_lanes << " lanes)\n";
  os << "  workers     : ";
  if (options_.workers == 0) {
    os << "auto";
  } else {
    os << options_.workers;
  }
  os << " (resolved " << pv.resolved_workers << ", pool " << pv.pool_workers
     << (pv.pool_pinned ? ", pinned" : ", unpinned") << ")\n";
  os << "  est. units  : " << to_u64(units_for_lanes(pv.reference_lanes)) << " @ "
     << pv.reference_lanes << " lanes\n";
  return os.str();
}

bulk::HostRunResult run(const ExecutionPlan& plan, std::span<const Word> inputs,
                        std::size_t p, std::vector<Word>* outputs) {
  const bulk::HostBulkExecutor exec(plan, p);
  bulk::HostRunResult result = exec.run(plan.program(), inputs);
  if (outputs != nullptr) exec.gather_outputs(plan.program(), result.memory, *outputs);
  return result;
}

bulk::StreamingExecutor::Stats run_streaming(
    const ExecutionPlan& plan, std::size_t p, std::size_t max_resident_lanes,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output) {
  const bulk::StreamingExecutor exec(plan, max_resident_lanes);
  return exec.run(plan.program(), p, fill_input, consume_output);
}

}  // namespace obx::plan

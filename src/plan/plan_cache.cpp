#include "plan/plan_cache.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <utility>

#include "common/check.hpp"

namespace obx::plan {

PlanCache::PlanCache(PlanOptions defaults) : defaults_(defaults) {
  defaults_.validate();
}

std::string PlanCache::key_of(const std::string& id, const PlanOptions& options) {
  char fp[24];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(options.fingerprint()));
  // '\x1f' (unit separator) cannot collide with printable ids.
  return id + '\x1f' + fp;
}

std::shared_ptr<const ExecutionPlan> PlanCache::get_or_build(
    const std::string& id, const trace::Program& program) {
  return get_or_build(id, program, defaults_);
}

std::shared_ptr<const ExecutionPlan> PlanCache::get_or_build(
    const std::string& id, const trace::Program& program, const PlanOptions& options) {
  OBX_CHECK(!id.empty(), "program id cannot be empty");
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  const std::string key = key_of(id, options);

  std::shared_future<std::shared_ptr<const ExecutionPlan>> future;
  std::promise<std::shared_ptr<const ExecutionPlan>> promise;
  bool builder = false;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      OBX_CHECK(it->second.slot == program.exec_cache,
                "program id reused for a different program: " + id);
      future = it->second.plan;
    } else {
      future = promise.get_future().share();
      entries_.emplace(key, Entry{future, program.exec_cache});
      builder = true;
    }
  }

  if (!builder) return future.get();

  // Build outside the cache lock: concurrent requests for *other* keys keep
  // flowing, while requests for this key block on the shared future and all
  // receive the one plan (and its one shared compiled artifact).
  try {
    promise.set_value(Planner(options).build(program));
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard lock(mutex_);
    entries_.erase(key);  // failures are not cached; later callers retry
    throw;
  }
  return future.get();
}

std::shared_ptr<const ExecutionPlan> PlanCache::lookup(const std::string& id) const {
  return lookup(id, defaults_);
}

std::shared_ptr<const ExecutionPlan> PlanCache::lookup(const std::string& id,
                                                       const PlanOptions& options) const {
  std::shared_future<std::shared_ptr<const ExecutionPlan>> future;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key_of(id, options));
    if (it == entries_.end()) return nullptr;
    future = it->second.plan;
  }
  // May briefly block on an in-flight build of the same key — the plan it
  // returns is still the cached, shared instance.
  return future.get();
}

std::vector<std::string> PlanCache::ids() const {
  std::set<std::string> unique;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [key, entry] : entries_) {
      unique.insert(key.substr(0, key.find('\x1f')));
    }
  }
  return {unique.begin(), unique.end()};
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  std::size_t done = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.plan.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ++done;
    }
  }
  return done;
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

PlanCache& PlanCache::process() {
  static PlanCache cache;
  return cache;
}

}  // namespace obx::plan

// PlanCache: thread-safe, process-wide memoisation of ExecutionPlans.
//
// Keyed by (program id, PlanOptions fingerprint) — the machine shape is part
// of the options, so one cache can serve several machine configurations
// without collisions.  Concurrent get_or_build() calls for the same key are
// collapsed: exactly one thread runs the Planner, everyone else blocks on a
// shared future and receives the identical shared plan (and therefore the
// identical shared compiled artifact).
//
// Id discipline: an id names one logical program for the cache's lifetime.
// The cache checks that a hit's program shares the exec_cache slot of the
// program it was built from when one is supplied, catching accidental id
// reuse; lookup-by-id alone (the hot serving path) skips the program
// entirely.  Scoped caches (one per BulkService) keep independent id
// namespaces; PlanCache::process() is the shared process-wide instance.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/planner.hpp"

namespace obx::plan {

class PlanCache {
 public:
  /// `defaults` are the options used by the two-argument get_or_build() and
  /// one-argument lookup().
  PlanCache() : PlanCache(PlanOptions{}) {}
  explicit PlanCache(PlanOptions defaults);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for (id, options), building it from `program`
  /// on first use.  On a hit `program` is only identity-checked (shared
  /// exec_cache slot), never re-planned.  Thread-safe; a build failure is
  /// not cached (later callers retry).
  std::shared_ptr<const ExecutionPlan> get_or_build(const std::string& id,
                                                    const trace::Program& program);
  std::shared_ptr<const ExecutionPlan> get_or_build(const std::string& id,
                                                    const trace::Program& program,
                                                    const PlanOptions& options);

  /// The cached plan for (id, options), or nullptr — never builds.  This is
  /// the hot serving path: one lock, one map lookup, no program in sight.
  std::shared_ptr<const ExecutionPlan> lookup(const std::string& id) const;
  std::shared_ptr<const ExecutionPlan> lookup(const std::string& id,
                                              const PlanOptions& options) const;

  bool contains(const std::string& id) const { return lookup(id) != nullptr; }
  bool contains(const std::string& id, const PlanOptions& options) const {
    return lookup(id, options) != nullptr;
  }

  /// Distinct program ids with at least one cached plan, sorted.
  std::vector<std::string> ids() const;
  /// Cached (id, options) entries, completed builds only.
  std::size_t size() const;
  void clear();

  const PlanOptions& defaults() const { return defaults_; }

  /// The process-wide shared instance (default options; per-call options
  /// passed explicitly).  Use scoped instances when id namespaces must not
  /// be shared — e.g. one per BulkService.
  static PlanCache& process();

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const ExecutionPlan>> plan;
    /// Slot of the program the entry was built from, for id-reuse checks.
    std::shared_ptr<trace::ExecCacheSlot> slot;
  };

  static std::string key_of(const std::string& id, const PlanOptions& options);

  PlanOptions defaults_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace obx::plan

// Plan-driven executor construction.
//
// The constructors are *declared* on bulk::HostBulkExecutor /
// bulk::StreamingExecutor (so executors "accept an ExecutionPlan" at the
// call site) but *defined* here, in the plan library: bulk/ sits below
// plan/ in the layering and must not link upward.  Any binary using these
// constructors links obx_plan (obx::obx does).
//
// The pre-plan Options constructors remain as the thin compatibility shim —
// an Options struct carries exactly the decisions a one-off forced plan
// would make (ExecutionPlan::host_options()/streaming_options() produce
// them), it just skips the planning.
#include "bulk/host_executor.hpp"
#include "bulk/streaming_executor.hpp"
#include "plan/plan.hpp"

namespace obx::bulk {

HostBulkExecutor::HostBulkExecutor(const plan::ExecutionPlan& plan, std::size_t lanes)
    : HostBulkExecutor(plan.layout(lanes), plan.host_options()) {}

StreamingExecutor::StreamingExecutor(const plan::ExecutionPlan& plan,
                                     std::size_t max_resident_lanes)
    : StreamingExecutor(plan.streaming_options(max_resident_lanes)) {}

}  // namespace obx::bulk

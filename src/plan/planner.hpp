// Planner: the single implementation of the optimise → compile → arrange →
// tile decision path.
//
// Every prepare path in the tree routes through here — serve::ProgramCache,
// advisor::Session, the plan-driven executor constructors, and obx_cli's
// `plan` subcommand — so the decisions cannot drift between layers.  The
// build is deterministic: the same (program stream, options) always produce
// the same decisions and the same ExecutionPlan::fingerprint().
#pragma once

#include <memory>

#include "plan/plan.hpp"

namespace obx::plan {

class Planner {
 public:
  Planner() : Planner(PlanOptions{}) {}
  /// Validates `options` (throws std::logic_error when invalid).
  explicit Planner(PlanOptions options);

  /// Builds an immutable plan for `program`:
  ///   1. optimise  — peephole passes, adopted only when steps were removed;
  ///   2. compile   — drain + fuse once into the program's shared exec_cache
  ///                  slot (over-budget => interpreter fallback, recorded);
  ///   3. arrange   — simulate row vs column at reference_lanes (or honour a
  ///                  forced arrangement);
  ///   4. tile      — record the lane-tile resolution at reference_lanes.
  /// The program is taken by value: the plan owns its (possibly rewritten)
  /// copy, and the caller's exec_cache slot is shared, not duplicated.
  std::shared_ptr<const ExecutionPlan> build(trace::Program program) const;

  const PlanOptions& options() const { return options_; }

 private:
  PlanOptions options_;
};

/// One-shot convenience for callers without a Planner to reuse.
inline std::shared_ptr<const ExecutionPlan> build_plan(trace::Program program,
                                                       const PlanOptions& options) {
  return Planner(options).build(std::move(program));
}

}  // namespace obx::plan

#include "plan/planner.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/thread_pool.hpp"
#include "bulk/timing_estimator.hpp"

namespace obx::plan {

namespace {

TimeUnits simulate(const trace::Program& program, std::size_t lanes,
                   bulk::Arrangement arrangement, const umm::MachineConfig& machine) {
  return bulk::TimingEstimator(umm::Model::kUmm, machine,
                               bulk::make_layout(program, lanes, arrangement))
      .run(program)
      .time_units;
}

/// Deterministic digest of everything a plan is: the options, the program's
/// step profile, and every decision that fired.  Two builds from the same
/// inputs always agree; any decision drift flips the fingerprint (which is
/// what the golden-plan CI diff watches).
std::uint64_t plan_fingerprint(const ExecutionPlan& plan) {
  // Re-uses the options digest as the seed, then folds in profile and
  // decisions via the same FNV stream (mirrored in PlanOptions::fingerprint).
  std::uint64_t h = plan.options().fingerprint();
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  const PlanProvenance& pv = plan.provenance();
  mix(pv.before.loads);
  mix(pv.before.stores);
  mix(pv.before.alu);
  mix(pv.before.imm);
  mix(pv.after.loads);
  mix(pv.after.stores);
  mix(pv.after.alu);
  mix(pv.after.imm);
  mix(pv.optimised ? 1 : 0);
  mix(pv.compiled ? 1 : 0);
  mix(pv.compiled_segments);
  mix(pv.compiled_fused_ops);
  mix(static_cast<std::uint64_t>(plan.arrangement()));
  mix(static_cast<std::uint64_t>(plan.backend()));
  mix(static_cast<std::uint64_t>(pv.simd));
  mix(pv.simd_width);
  mix(pv.resolved_workers);
  mix(pv.pool_workers);
  mix(pv.pool_pinned ? 1 : 0);
  mix(pv.resolved_tile_lanes);
  mix(static_cast<std::uint64_t>(pv.row_units));
  mix(static_cast<std::uint64_t>(pv.col_units));
  for (const char c : plan.program().name) mix(static_cast<unsigned char>(c));
  return h;
}

}  // namespace

Planner::Planner(PlanOptions options) : options_(options) { options_.validate(); }

std::shared_ptr<const ExecutionPlan> Planner::build(trace::Program program) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");

  auto plan = std::shared_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->options_ = options_;
  plan->program_ = std::move(program);
  plan->workers_ =
      options_.workers == 0 ? bulk::default_worker_count() : options_.workers;

  PlanProvenance& pv = plan->provenance_;
  pv.reference_lanes = options_.reference_lanes;
  pv.before = plan->program_.profile();
  pv.after = pv.before;

  // 1. Optimise — only capturable programs, adopted only on a real win.
  if (options_.optimise && pv.before.total() < options_.optimise_step_limit) {
    pv.optimise_attempted = true;
    opt::OptimizeOptions oo;
    oo.max_steps = options_.optimise_step_limit;
    opt::OptimizeResult r = opt::optimize(plan->program_, oo);
    if (r.after.total() < r.before.total()) {
      plan->program_ = std::move(r.program);
      pv.optimised = true;
      pv.passes = std::move(r.reports);
      pv.after = r.after;
    }
  }

  // 2. Compile — once per (program, process) through the shared exec_cache
  //    slot; an over-budget stream is a recorded interpreter fallback.
  if (options_.compile && options_.backend != exec::Backend::kInterpreted) {
    pv.compile_attempted = true;
    plan->compiled_ = exec::CompiledProgram::get_or_compile(
        plan->program_, {.max_steps = options_.compile_budget_steps});
    if (plan->compiled_ != nullptr) {
      pv.compiled = true;
      pv.compiled_segments = plan->compiled_->segments().size();
      pv.compiled_fused_ops = plan->compiled_->fused_ops();
    }
  }
  plan->backend_ = plan->compiled_ != nullptr ? exec::Backend::kCompiled
                                              : exec::Backend::kInterpreted;

  // 3. Arrange — forced, or whichever arrangement simulates faster on the
  //    plan's machine at the reference occupancy (ties go column-wise, the
  //    Theorem 3 time-optimal layout).
  TimeUnits chosen_units = 0;
  if (options_.arrangement.has_value()) {
    pv.arrangement_forced = true;
    plan->arrangement_ = *options_.arrangement;
    chosen_units = simulate(plan->program_, options_.reference_lanes,
                            plan->arrangement_, options_.machine);
  } else {
    pv.row_units = simulate(plan->program_, options_.reference_lanes,
                            bulk::Arrangement::kRowWise, options_.machine);
    pv.col_units = simulate(plan->program_, options_.reference_lanes,
                            bulk::Arrangement::kColumnWise, options_.machine);
    plan->arrangement_ = pv.col_units <= pv.row_units
                             ? bulk::Arrangement::kColumnWise
                             : bulk::Arrangement::kRowWise;
    chosen_units = std::min(pv.row_units, pv.col_units);
  }
  plan->units_by_lanes_.emplace(options_.reference_lanes, chosen_units);

  // 4. SIMD + tile — record the tier the kernels will dispatch to (latched
  //    per process, OBX_SIMD-overridable; results are tier-independent) and
  //    what the tile resolution picks at the reference occupancy under that
  //    tier's vector width (each run still resolves for its own lane count).
  pv.simd = active_simd_isa();
  pv.simd_width = simd_width_words(pv.simd);
  const std::size_t reg_count =
      plan->compiled_ != nullptr
          ? plan->compiled_->register_count()
          : std::max<std::size_t>(plan->program_.register_count, 1);
  pv.resolved_tile_lanes =
      exec::resolve_tile_lanes(options_.tile_lanes, reg_count,
                               plan->layout(options_.reference_lanes), pv.simd_width);

  // 5. Workers — resolve the knob against the shared CorePool's topology
  //    (0 = one lane-consumer per pool worker) and record both sides: how
  //    many threads a run will target, and the pool shape backing it.
  pv.resolved_workers = plan->workers_;
  pv.pool_workers = bulk::default_worker_count();
  pv.pool_pinned = bulk::CorePool::pinning_enabled();

  plan->fingerprint_ = plan_fingerprint(*plan);
  return plan;
}

}  // namespace obx::plan

#include "plan/planner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/thread_pool.hpp"
#include "bulk/timing_estimator.hpp"
#include "exec/jit/jit_program.hpp"
#include "umm/dmm.hpp"

namespace obx::plan {

namespace {

TimeUnits simulate(const trace::Program& program, std::size_t lanes,
                   bulk::Arrangement arrangement, std::size_t param,
                   const umm::MachineConfig& machine) {
  return bulk::simulate_units(program,
                              bulk::make_layout(program, lanes, arrangement, param),
                              umm::Model::kUmm, machine);
}

std::uint64_t steady_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Resolves the parameter of an arrangement: the forced/auto block size for
/// kBlocked (auto = the machine width — one warp per block), the pad stride
/// for kConflictFree (auto = the shared tier's conflict-free stride).
std::size_t resolve_param(bulk::Arrangement arrangement, std::size_t requested,
                          const umm::MachineConfig& machine) {
  switch (arrangement) {
    case bulk::Arrangement::kBlocked:
      return requested != 0 ? requested : machine.width;
    case bulk::Arrangement::kConflictFree:
      return requested != 0 ? requested : umm::conflict_free_stride(machine.shared);
    default:
      return 0;
  }
}

/// Deterministic digest of everything a plan is: the options, the program's
/// step profile, and every decision that fired.  Two builds from the same
/// inputs always agree; any decision drift flips the fingerprint (which is
/// what the golden-plan CI diff watches).
std::uint64_t plan_fingerprint(const ExecutionPlan& plan) {
  // Re-uses the options digest as the seed, then folds in profile and
  // decisions via the same FNV stream (mirrored in PlanOptions::fingerprint).
  std::uint64_t h = plan.options().fingerprint();
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  const PlanProvenance& pv = plan.provenance();
  mix(pv.before.loads);
  mix(pv.before.stores);
  mix(pv.before.alu);
  mix(pv.before.imm);
  mix(pv.after.loads);
  mix(pv.after.stores);
  mix(pv.after.alu);
  mix(pv.after.imm);
  mix(pv.optimised ? 1 : 0);
  mix(pv.compiled ? 1 : 0);
  mix(pv.compiled_segments);
  mix(pv.compiled_fused_ops);
  mix(pv.jitted ? 1 : 0);
  mix(pv.jit_code_bytes);
  mix(pv.jit_patches);
  mix(static_cast<std::uint64_t>(plan.arrangement()));
  mix(static_cast<std::uint64_t>(plan.backend()));
  mix(static_cast<std::uint64_t>(pv.simd));
  mix(pv.simd_width);
  mix(pv.resolved_workers);
  mix(pv.pool_workers);
  mix(pv.pool_pinned ? 1 : 0);
  mix(pv.resolved_tile_lanes);
  mix(static_cast<std::uint64_t>(pv.row_units));
  mix(static_cast<std::uint64_t>(pv.col_units));
  mix(plan.arrangement_param());
  mix(pv.tuned ? 1 : 0);
  mix(static_cast<std::uint64_t>(pv.margin_units));
  mix(pv.candidates.size());
  for (const ArrangementCandidate& c : pv.candidates) {
    mix(static_cast<std::uint64_t>(c.arrangement));
    mix(c.param);
    mix(static_cast<std::uint64_t>(c.sim_units));
    mix(c.chosen ? 1 : 0);
    // measured_ns is wall-clock noise, not a decision — the chosen flag
    // already captures what the measurement decided.
  }
  for (const char c : plan.program().name) mix(static_cast<unsigned char>(c));
  return h;
}

}  // namespace

Planner::Planner(PlanOptions options) : options_(options) { options_.validate(); }

std::shared_ptr<const ExecutionPlan> Planner::build(trace::Program program) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");

  auto plan = std::shared_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->options_ = options_;
  plan->program_ = std::move(program);
  plan->workers_ =
      options_.workers == 0 ? bulk::default_worker_count() : options_.workers;

  PlanProvenance& pv = plan->provenance_;
  pv.reference_lanes = options_.reference_lanes;
  pv.before = plan->program_.profile();
  pv.after = pv.before;

  // 1. Optimise — only capturable programs, adopted only on a real win.
  if (options_.optimise && pv.before.total() < options_.optimise_step_limit) {
    pv.optimise_attempted = true;
    opt::OptimizeOptions oo;
    oo.max_steps = options_.optimise_step_limit;
    opt::OptimizeResult r = opt::optimize(plan->program_, oo);
    if (r.after.total() < r.before.total()) {
      plan->program_ = std::move(r.program);
      pv.optimised = true;
      pv.passes = std::move(r.reports);
      pv.after = r.after;
    }
  }

  // 2. Compile — once per (program, process) through the shared exec_cache
  //    slot; an over-budget stream is a recorded interpreter fallback.
  if (options_.compile && options_.backend != exec::Backend::kInterpreted) {
    pv.compile_attempted = true;
    plan->compiled_ = exec::CompiledProgram::get_or_compile(
        plan->program_, {.max_steps = options_.compile_budget_steps});
    if (plan->compiled_ != nullptr) {
      pv.compiled = true;
      pv.compiled_segments = plan->compiled_->segments().size();
      pv.compiled_fused_ops = plan->compiled_->fused_ops();
    }
  }

  // 2b. Emit — copy-and-patch per-segment native code over the compiled
  //     artifact, memoised in the same exec_cache slot.  kCompiled keeps the
  //     switch engine directly requestable; any emission failure is a
  //     recorded fallback to it.
  if (plan->compiled_ != nullptr && options_.backend != exec::Backend::kCompiled) {
    pv.jit_attempted = true;
    plan->jitted_ = exec::JitProgram::get_or_emit(plan->program_, plan->compiled_,
                                                  active_simd_isa());
    if (plan->jitted_ != nullptr) {
      pv.jitted = true;
      pv.jit_code_bytes = plan->jitted_->code_bytes();
      pv.jit_patches = plan->jitted_->patch_count();
    }
  }
  plan->backend_ = plan->jitted_ != nullptr     ? exec::Backend::kJit
                   : plan->compiled_ != nullptr ? exec::Backend::kCompiled
                                                : exec::Backend::kInterpreted;

  // 3. Arrange — forced, or a search over {column, row, blocked,
  //    conflict-free}: simulated DMM+UMM units at the reference occupancy
  //    are the prior (strict-< wins, so ties keep the earlier candidate —
  //    column-wise, the Theorem 3 time-optimal layout), optionally refined
  //    by bounded real micro-measurements (the tuner's posterior).
  TimeUnits chosen_units = 0;
  if (options_.arrangement.has_value()) {
    pv.arrangement_forced = true;
    plan->arrangement_ = *options_.arrangement;
    plan->arrangement_param_ =
        resolve_param(plan->arrangement_, options_.arrangement_param, options_.machine);
    chosen_units = simulate(plan->program_, options_.reference_lanes, plan->arrangement_,
                            plan->arrangement_param_, options_.machine);
    ArrangementCandidate forced;
    forced.arrangement = plan->arrangement_;
    forced.param = plan->arrangement_param_;
    forced.sim_units = chosen_units;
    forced.chosen = true;
    pv.candidates.push_back(forced);
  } else {
    for (const bulk::Arrangement arr :
         {bulk::Arrangement::kColumnWise, bulk::Arrangement::kRowWise,
          bulk::Arrangement::kBlocked, bulk::Arrangement::kConflictFree}) {
      ArrangementCandidate c;
      c.arrangement = arr;
      c.param = resolve_param(arr, 0, options_.machine);
      c.sim_units =
          simulate(plan->program_, options_.reference_lanes, arr, c.param, options_.machine);
      pv.candidates.push_back(c);
    }
    pv.col_units = pv.candidates[0].sim_units;
    pv.row_units = pv.candidates[1].sim_units;

    std::size_t best = 0;
    for (std::size_t i = 1; i < pv.candidates.size(); ++i) {
      if (pv.candidates[i].sim_units < pv.candidates[best].sim_units) best = i;
    }

    if (options_.tune.measure) {
      // Posterior: run each candidate for real (all-zero inputs — the
      // programs are oblivious, so timing is input-independent), keep the
      // best of `trials`, and let the measurements pick the winner.  The
      // injected clock keeps tests deterministic.
      auto clock = options_.tune.clock;
      if (!clock) clock = steady_clock_ns;
      const std::size_t lanes =
          options_.tune.lanes == 0 ? options_.reference_lanes : options_.tune.lanes;
      const std::vector<Word> zeros(lanes * plan->program_.input_words, Word{0});
      bulk::HostBulkExecutor::Options ho;
      ho.workers = plan->workers_;
      ho.backend = plan->backend_;
      ho.tile_lanes = options_.tile_lanes;
      ho.compile_budget_steps = options_.compile_budget_steps;
      for (ArrangementCandidate& c : pv.candidates) {
        const bulk::HostBulkExecutor exec(
            bulk::make_layout(plan->program_, lanes, c.arrangement, c.param), ho);
        std::uint64_t best_ns = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t t = 0; t < options_.tune.trials; ++t) {
          const std::uint64_t t0 = clock();
          exec.run(plan->program_, zeros);
          const std::uint64_t t1 = clock();
          best_ns = std::min(best_ns, t1 > t0 ? t1 - t0 : std::uint64_t{0});
        }
        // 0 is the "not measured" sentinel; a sub-ns (or clock-stuck) trial
        // still records as measured.
        c.measured_ns = std::max<std::uint64_t>(best_ns, 1);
      }
      pv.tuned = true;
      best = 0;
      for (std::size_t i = 1; i < pv.candidates.size(); ++i) {
        if (pv.candidates[i].measured_ns < pv.candidates[best].measured_ns) best = i;
      }
    }

    pv.candidates[best].chosen = true;
    plan->arrangement_ = pv.candidates[best].arrangement;
    plan->arrangement_param_ = pv.candidates[best].param;
    chosen_units = pv.candidates[best].sim_units;

    // Winner's margin over the best rejected candidate: simulated units
    // normally, measured nanoseconds when the tuner decided (clamped at 0 —
    // a tuned winner may have a worse prior).
    std::uint64_t margin = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < pv.candidates.size(); ++i) {
      if (i == best) continue;
      const std::uint64_t winner_m =
          pv.tuned ? pv.candidates[best].measured_ns
                   : static_cast<std::uint64_t>(pv.candidates[best].sim_units);
      const std::uint64_t other_m =
          pv.tuned ? pv.candidates[i].measured_ns
                   : static_cast<std::uint64_t>(pv.candidates[i].sim_units);
      margin = std::min(margin, other_m > winner_m ? other_m - winner_m : std::uint64_t{0});
    }
    pv.margin_units = margin == std::numeric_limits<std::uint64_t>::max()
                          ? 0
                          : static_cast<TimeUnits>(margin);
  }
  plan->units_by_lanes_.emplace(options_.reference_lanes, chosen_units);

  // 4. SIMD + tile — record the tier the kernels will dispatch to (latched
  //    per process, OBX_SIMD-overridable; results are tier-independent) and
  //    what the tile resolution picks at the reference occupancy under that
  //    tier's vector width (each run still resolves for its own lane count).
  pv.simd = active_simd_isa();
  pv.simd_width = simd_width_words(pv.simd);
  const std::size_t reg_count =
      plan->compiled_ != nullptr
          ? plan->compiled_->register_count()
          : std::max<std::size_t>(plan->program_.register_count, 1);
  pv.resolved_tile_lanes =
      exec::resolve_tile_lanes(options_.tile_lanes, reg_count,
                               plan->layout(options_.reference_lanes), pv.simd_width);

  // 5. Workers — resolve the knob against the shared CorePool's topology
  //    (0 = one lane-consumer per pool worker) and record both sides: how
  //    many threads a run will target, and the pool shape backing it.
  pv.resolved_workers = plan->workers_;
  pv.pool_workers = bulk::default_worker_count();
  pv.pool_pinned = bulk::CorePool::pinning_enabled();

  plan->fingerprint_ = plan_fingerprint(*plan);
  return plan;
}

}  // namespace obx::plan

// ExecutionPlan: the one place where input-independent execution decisions
// are made and remembered.
//
// Theorem 2's win comes from paying per-program costs once and amortising
// them over every lane of every bulk run.  Before this layer, three call
// sites re-derived the same decisions with drifting defaults — the serving
// layer's PreparedProgram (optimise + arrange + eager compile), the
// advisor's Session (optimise + characterise + arrange + batch sizing), and
// the executor option structs (backend, tile size, compile budget).  A plan
// captures all of it, immutably:
//
//   - the optimised trace::Program (or the original when the optimiser is
//     disabled, the program is too long to capture, or no pass won),
//   - the shared exec::CompiledProgram artifact (also memoised through the
//     program's exec_cache slot, so executors pick it up for free),
//   - the chosen bulk::Arrangement (a search over row / column / blocked /
//     conflict-free: simulated DMM+UMM units as the prior at a reference
//     occupancy, optional bounded micro-measurements as the posterior —
//     unless forced),
//   - the lane-tile knob, resolved backend, and worker count,
//   - a memoised per-occupancy simulated-UMM-units estimate, and
//   - a provenance record of which passes and decisions fired.
//
// Plans are built by plan::Planner (see planner.hpp), shared as
// shared_ptr<const ExecutionPlan>, and cached process-wide by plan::PlanCache
// (see plan_cache.hpp).  Executors consume them directly:
//
//   auto plan = plan::Planner(options).build(program);
//   bulk::HostBulkExecutor exec(*plan, p);            // plan-driven
//   auto result = exec.run(plan->program(), inputs);  // always the plan's
//                                                     // (optimised) program
//
// or through the plan::run / plan::run_streaming conveniences below, which
// cannot get the program/plan pairing wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/simd_isa.hpp"
#include "common/types.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/layout.hpp"
#include "bulk/streaming_executor.hpp"
#include "exec/backend.hpp"
#include "exec/compiled_program.hpp"
#include "opt/optimizer.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::exec {
class JitProgram;
}

namespace obx::plan {

/// Every input-independent knob of the optimise → compile → arrange → tile
/// decision path.  En spelling throughout (`optimise`), matching
/// `optimise_step_limit`; serve::PrepareOptions keeps the old mixed-spelling
/// field as a deprecated alias.
struct PlanOptions {
  /// Machine the arrangement choice and simulated-units estimates target.
  umm::MachineConfig machine{.width = 32, .latency = 200};

  /// Occupancy the arrangement decision (and the tile-size provenance) is
  /// evaluated at.  Use the occupancy the caller is tuned for: the service
  /// passes its max_batch_lanes, the Session passes the full lane count p.
  std::size_t reference_lanes = 256;

  /// Run the peephole optimiser (skipped automatically for programs longer
  /// than optimise_step_limit; the optimised program is adopted only when it
  /// actually removed steps).
  bool optimise = true;
  std::size_t optimise_step_limit = std::size_t{1} << 22;

  /// Compile for the fused lane-tiled backend at plan-build time, so no run
  /// ever pays the one-time stream drain (ignored when `backend` is
  /// kInterpreted).  An over-budget compile falls back to the interpreter,
  /// recorded in the provenance.
  bool compile = true;
  std::size_t compile_budget_steps = exec::kDefaultCompileBudget;

  /// Requested lockstep engine; the plan resolves kAuto / kCompiled to
  /// whichever engine will actually run (see ExecutionPlan::backend()).
  exec::Backend backend = exec::Backend::kAuto;

  /// Compiled lane-tile size; 0 = auto (fit the register tile in L1).
  std::size_t tile_lanes = 0;

  /// Host threads per bulk run; 0 = auto (bulk::default_worker_count() at
  /// executor construction, so the knob — and plan fingerprints — stay
  /// machine-independent).
  unsigned workers = 0;

  /// Force an arrangement instead of searching.  All four arrangements are
  /// plannable; kBlocked / kConflictFree take their parameter from
  /// arrangement_param.
  std::optional<bulk::Arrangement> arrangement;

  /// Parameter of a forced kBlocked (block size) or kConflictFree (pad
  /// stride) arrangement; 0 = auto (machine width for blocked, the shared
  /// tier's conflict-free stride for conflict-free).  Ignored by
  /// row-/column-wise.
  std::size_t arrangement_param = 0;

  /// The measuring arrangement auto-tuner: when the search is not forced,
  /// real micro-measurements of each candidate refine the simulated prior.
  struct TuneOptions {
    /// Run each candidate arrangement for real (bounded trials on all-zero
    /// inputs — valid because the programs are oblivious) and let the best
    /// measured time pick the winner; the simulated units stay recorded as
    /// the prior.  Off by default: simulation alone decides.
    bool measure = false;
    std::size_t trials = 3;  ///< micro-measurement runs per candidate (min is kept)
    std::size_t lanes = 0;   ///< occupancy measured at; 0 = reference_lanes
    /// Injected monotonic nanosecond clock for deterministic tests; null =
    /// std::chrono::steady_clock.  NOT part of the fingerprint (a clock is
    /// an observation channel, not a decision knob).
    std::function<std::uint64_t()> clock{};
  };
  TuneOptions tune{};

  /// Deterministic 64-bit digest of every knob above (machine included).
  /// Same options => same fingerprint, on any host.  Part of the PlanCache
  /// key and of ExecutionPlan::fingerprint() — which is how tuned decisions
  /// are memoised in PlanCache per (program, machine, occupancy, tune).
  std::uint64_t fingerprint() const;

  /// Throws std::logic_error on an invalid machine shape or zero reference
  /// occupancy.
  void validate() const;
};

/// One entry of the Planner's arrangement search: an arrangement (with its
/// parameter), its simulated DMM+UMM units at the reference occupancy (the
/// prior), and — when the tuner measured — its best wall-clock time (the
/// posterior).
struct ArrangementCandidate {
  bulk::Arrangement arrangement = bulk::Arrangement::kColumnWise;
  std::size_t param = 0;          ///< block size / pad stride; 0 for row/column
  TimeUnits sim_units = 0;        ///< simulated units (prior)
  std::uint64_t measured_ns = 0;  ///< best measured trial; 0 = not measured
  bool chosen = false;

  /// "column-wise", "blocked(32)", "conflict-free(4)", ... — the layout name.
  std::string name() const;
};

/// What the Planner actually did — kept alongside the decisions so tools
/// (obx_cli plan, the golden-plan CI diff) can explain a plan, not just
/// apply it.
struct PlanProvenance {
  trace::StepCounts before;  ///< step profile of the source program
  trace::StepCounts after;   ///< profile of the program the plan executes

  bool optimise_attempted = false;  ///< optimiser ran (enabled and capturable)
  bool optimised = false;           ///< ...and its result was adopted
  std::vector<opt::PassReport> passes;  ///< per-pass step removals when adopted

  bool compile_attempted = false;
  bool compiled = false;  ///< false: disabled, interpreted-only, or over budget
  std::size_t compiled_segments = 0;
  std::size_t compiled_fused_ops = 0;

  /// Copy-and-patch JIT emission (see exec/jit/jit_program.hpp).  Attempted
  /// when a compiled artifact exists and the requested backend allows it
  /// (kAuto / kJit); `jitted` false with `jit_attempted` true means emission
  /// was unavailable (non-x86-64/non-Linux host, OBX_JIT=0, or an arena
  /// failure) and the plan fell back to the compiled switch backend.
  bool jit_attempted = false;
  bool jitted = false;
  std::size_t jit_code_bytes = 0;  ///< emitted native code size
  std::size_t jit_patches = 0;     ///< imm64 patch points applied

  bool arrangement_forced = false;
  /// The searched candidates, in search order (column, row, blocked,
  /// conflict-free), exactly one marked chosen.  A forced arrangement
  /// records a single candidate.
  std::vector<ArrangementCandidate> candidates;
  /// Winner's margin over the best rejected candidate: simulated units
  /// normally, measured nanoseconds when the tuner decided (0 when forced
  /// or when candidates tie).
  TimeUnits margin_units = 0;
  /// True when the measuring tuner (not the simulated prior) picked the
  /// winner.
  bool tuned = false;
  /// Simulated units at reference_lanes backing the arrangement choice —
  /// the row/column entries of the candidate list, kept flat for
  /// compatibility (both populated only when the choice was searched).
  TimeUnits row_units = 0;
  TimeUnits col_units = 0;
  std::size_t reference_lanes = 0;

  /// Tile size resolve_tile_lanes() picks at reference_lanes occupancy.
  std::size_t resolved_tile_lanes = 0;

  /// SIMD tier the lockstep kernels dispatch to — the process-wide
  /// active_simd_isa() at plan-build time (OBX_SIMD-overridable, latched) —
  /// and its vector width in 64-bit words.  Part of the plan fingerprint:
  /// the tier changes which code runs and how tiles are rounded, even though
  /// results are bit-identical across tiers.  Executors built from this plan
  /// are pinned to the recorded tier via host_options()/streaming_options().
  SimdIsa simd = SimdIsa::kScalar;
  std::size_t simd_width = 1;

  /// Worker resolution against the shared bulk::CorePool: the concrete
  /// parallelism target executors built from this plan will use (the
  /// options_.workers knob resolved; never 0), the pool topology it was
  /// resolved against (default_worker_count(): affinity-mask CPUs,
  /// OBX_WORKERS-overridable) and whether the pool pins workers to cores
  /// (Linux, OBX_PIN-disableable).  Part of the plan fingerprint, like the
  /// SIMD tier: a different pool shape means different code paths run even
  /// though results are bit-identical.  Per-run steal/park counts are
  /// runtime observations, not decisions — they live in
  /// HostRunResult::sched / StreamingExecutor::Stats::sched.
  unsigned resolved_workers = 1;
  unsigned pool_workers = 1;
  bool pool_pinned = false;
};

/// An immutable, shareable record of every input-independent decision for
/// one program on one machine.  Built by Planner; thread-safe throughout
/// (the units memo is internally locked).
class ExecutionPlan {
 public:
  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  /// The program the plan executes — already optimised when the optimiser
  /// won.  Its exec_cache slot holds the compiled artifact, so any executor
  /// running this program reuses the compile for free.
  const trace::Program& program() const { return program_; }

  bulk::Arrangement arrangement() const { return arrangement_; }

  /// Resolved arrangement parameter: the block size (kBlocked) or pad
  /// stride (kConflictFree); 0 for row-/column-wise.
  std::size_t arrangement_param() const { return arrangement_param_; }

  /// Resolved engine: kJit when per-segment native code was emitted,
  /// kCompiled when only the switch artifact exists, otherwise kInterpreted.
  /// Never kAuto — the plan already decided.
  exec::Backend backend() const { return backend_; }

  /// Non-null iff backend() is kCompiled or kJit.
  const std::shared_ptr<const exec::CompiledProgram>& compiled() const {
    return compiled_;
  }

  /// Non-null iff backend() == kJit: the emitted copy-and-patch code (also
  /// memoised through the program's exec_cache slot, so executors pick it up
  /// without re-emitting).
  const std::shared_ptr<const exec::JitProgram>& jitted() const { return jitted_; }

  /// Lane-tile knob (0 = auto); the concrete tile still depends on the
  /// occupancy of each run (see provenance().resolved_tile_lanes for the
  /// reference occupancy's value).
  std::size_t tile_lanes() const { return options_.tile_lanes; }

  /// Host threads per bulk run (resolved: never 0).
  unsigned workers() const { return workers_; }

  const PlanOptions& options() const { return options_; }
  const PlanProvenance& provenance() const { return provenance_; }

  std::size_t input_words() const { return program_.input_words; }
  std::size_t output_words() const { return program_.output_words; }

  /// Deterministic digest of (program profile, options, decisions): equal
  /// inputs produce equal fingerprints, and any drift in a decision shows up
  /// as a fingerprint change.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Simulated UMM time units of one bulk run at the given occupancy on the
  /// plan's machine, memoised per distinct lane count (thread-safe).  The
  /// reference-occupancy value is pre-seeded by the Planner.
  TimeUnits units_for_lanes(std::size_t lanes) const;

  /// Largest resident-lane batch that keeps one batch's working set (input
  /// + arranged memory + registers + output per lane) within budget_words,
  /// clamped to [1, p] — the Session's batch-sizing rule, now in one place.
  std::size_t resident_lanes_for_budget(std::size_t budget_words, std::size_t p) const;

  /// Layout of a bulk run at the given occupancy under the chosen arrangement.
  bulk::Layout layout(std::size_t lanes) const;

  /// The executor option structs this plan stands for.  Exists so the
  /// pre-plan Options surface keeps working; prefer the plan-driven executor
  /// constructors or plan::run / plan::run_streaming.
  bulk::HostBulkExecutor::Options host_options() const;
  bulk::StreamingExecutor::Options streaming_options(std::size_t max_resident_lanes) const;

  /// Human- and diff-friendly description of decisions + provenance +
  /// estimated units (the `obx_cli plan` output; golden-tested, so the text
  /// is deterministic across hosts).
  std::string describe() const;

 private:
  friend class Planner;
  ExecutionPlan() = default;

  trace::Program program_;
  PlanOptions options_;
  PlanProvenance provenance_;
  bulk::Arrangement arrangement_ = bulk::Arrangement::kColumnWise;
  std::size_t arrangement_param_ = 0;
  exec::Backend backend_ = exec::Backend::kInterpreted;
  unsigned workers_ = 1;
  std::shared_ptr<const exec::CompiledProgram> compiled_;
  std::shared_ptr<const exec::JitProgram> jitted_;
  std::uint64_t fingerprint_ = 0;

  mutable std::mutex units_mutex_;
  mutable std::map<std::size_t, TimeUnits> units_by_lanes_;
};

/// Plan-driven monolithic run: executes plan.program() over p lane-major
/// inputs with the plan's arrangement/backend/tile/workers.  When `outputs`
/// is non-null it receives the lane-major gathered output regions.
bulk::HostRunResult run(const ExecutionPlan& plan, std::span<const Word> inputs,
                        std::size_t p, std::vector<Word>* outputs = nullptr);

/// Plan-driven streaming run: plan.program() over p callback-fed lanes in
/// resident batches of at most max_resident_lanes.
bulk::StreamingExecutor::Stats run_streaming(
    const ExecutionPlan& plan, std::size_t p, std::size_t max_resident_lanes,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output);

}  // namespace obx::plan

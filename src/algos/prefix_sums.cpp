#include "algos/prefix_sums.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = running sum, r1 = loaded element.
Generator<Step> stream(std::size_t n) {
  co_yield Step::imm_f64(0, 0.0);
  for (Addr i = 0; i < n; ++i) {
    co_yield Step::load(1, i);
    co_yield Step::alu(Op::kAddF, 0, 0, 1);
    co_yield Step::store(i, 0);
  }
}

}  // namespace

trace::Program prefix_sums_program(std::size_t n) {
  OBX_CHECK(n > 0, "prefix sums need at least one element");
  trace::Program p;
  p.name = "prefix-sums(n=" + std::to_string(n) + ")";
  p.memory_words = n;
  p.input_words = n;
  p.output_offset = 0;
  p.output_words = n;
  p.register_count = 2;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> prefix_sums_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(n, -100.0, 100.0);
}

void prefix_sums_native(std::span<double> data) {
  double r = 0.0;
  for (double& x : data) {
    r += x;
    x = r;
  }
}

std::vector<Word> prefix_sums_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n, "input size mismatch");
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = trace::as_f64(input[i]);
  prefix_sums_native(vals);
  std::vector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = trace::from_f64(vals[i]);
  return out;
}

std::uint64_t prefix_sums_memory_steps(std::size_t n) { return 2 * n; }

}  // namespace obx::algos

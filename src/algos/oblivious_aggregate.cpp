#include "algos/oblivious_aggregate.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Memory layout: i64 keys at [0, n), f64 values at [n, 2n).
//
// Compare-exchange registers: r0/r1 = keys, r2/r3 = values, r4/r5 = key
// min/max, r6 = swap flag, r7/r8 = routed values.  Scan/mask registers:
// r0/r1 = adjacent keys, r2/r3 = values, r4 = equality, r5 = 0.0, r6 =
// carried addend, r7 = sum.
Generator<Step> stream(std::size_t n) {
  // Phase 1: stable odd-even transposition sort of the pairs by key.
  // Strict-less swaps leave equal keys (and their values) in place.
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = round % 2; i + 1 < n; i += 2) {
      co_yield Step::load(0, i);
      co_yield Step::load(1, i + 1);
      co_yield Step::load(2, n + i);
      co_yield Step::load(3, n + i + 1);
      co_yield Step::alu(Op::kMinI, 4, 0, 1);
      co_yield Step::alu(Op::kMaxI, 5, 0, 1);
      co_yield Step::alu(Op::kLtI, 6, 1, 0);
      co_yield Step::alu(Op::kSelect, 7, 6, 3, 2);
      co_yield Step::alu(Op::kSelect, 8, 6, 2, 3);
      co_yield Step::store(i, 4);
      co_yield Step::store(i + 1, 5);
      co_yield Step::store(n + i, 7);
      co_yield Step::store(n + i + 1, 8);
    }
  }
  co_yield Step::immediate(5, 0);  // +0.0
  // Phase 2: oblivious segmented scan — each value accumulates the running
  // sum of its group, left to right.
  for (std::size_t i = 1; i < n; ++i) {
    co_yield Step::load(0, i - 1);
    co_yield Step::load(1, i);
    co_yield Step::load(2, n + i - 1);
    co_yield Step::load(3, n + i);
    co_yield Step::alu(Op::kEqI, 4, 0, 1);
    co_yield Step::alu(Op::kSelect, 6, 4, 2, 5);
    co_yield Step::alu(Op::kAddF, 7, 3, 6);
    co_yield Step::store(n + i, 7);
  }
  // Phase 3: boundary mask — only the last element of each group keeps the
  // group total; interior positions are zeroed.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    co_yield Step::load(0, i);
    co_yield Step::load(1, i + 1);
    co_yield Step::load(2, n + i);
    co_yield Step::alu(Op::kEqI, 4, 0, 1);
    co_yield Step::alu(Op::kSelect, 6, 4, 5, 2);
    co_yield Step::store(n + i, 6);
  }
}

}  // namespace

trace::Program oblivious_aggregate_program(std::size_t n) {
  OBX_CHECK(n >= 1, "oblivious aggregate needs at least one pair");
  trace::Program p;
  p.name = "oblivious-aggregate(n=" + std::to_string(n) + ")";
  p.memory_words = 2 * n;
  p.input_words = 2 * n;
  p.output_offset = 0;
  p.output_words = 2 * n;
  p.register_count = 9;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> oblivious_aggregate_random_input(std::size_t n, Rng& rng) {
  std::vector<Word> words(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    // Half the keys land in a dense band so multi-element groups occur even
    // at small n; the rest roam the sparse keyspace.
    const std::uint64_t key = rng.next_below(2) == 0
                                  ? rng.next_below(n)
                                  : rng.next_below(std::uint64_t{1} << 20);
    words[i] = trace::from_i64(static_cast<std::int64_t>(key));
  }
  const std::vector<Word> values = rng.words_f64(n, -100.0, 100.0);
  std::copy(values.begin(), values.end(), words.begin() + static_cast<std::ptrdiff_t>(n));
  return words;
}

std::vector<Word> oblivious_aggregate_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == 2 * n, "input size mismatch");
  std::vector<std::pair<std::int64_t, Word>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {trace::as_i64(input[i]), input[n + i]};
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Mirror the program's addition order exactly: position 0 is never
  // rewritten by the scan, every later position computes v[i] + carried
  // (carried is 0.0 at group starts, matching the program's kSelect).
  std::vector<double> sums(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0) {
      sums[i] = trace::as_f64(pairs[i].second);
      continue;
    }
    const double carried = pairs[i].first == pairs[i - 1].first ? sums[i - 1] : 0.0;
    sums[i] = trace::as_f64(pairs[i].second) + carried;
  }
  std::vector<Word> out(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = trace::from_i64(pairs[i].first);
    const bool boundary = (i + 1 == n) || pairs[i].first != pairs[i + 1].first;
    out[n + i] = trace::from_f64(boundary ? sums[i] : 0.0);
  }
  return out;
}

std::uint64_t oblivious_aggregate_memory_steps(std::size_t n) {
  std::uint64_t steps = 0;
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = round % 2; i + 1 < n; i += 2) steps += 8;
  }
  if (n >= 1) steps += (n - 1) * 5 + (n - 1) * 4;
  return steps;
}

}  // namespace obx::algos

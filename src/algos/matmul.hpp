// Oblivious dense matrix multiplication (the paper's "matrix computation"
// task family).  C = A·B over n×n IEEE doubles with the classic i-j-k loop;
// every address is affine in the loop counters, t = n²(2n + 1) memory steps.
//
// Canonical memory: A at [0, n²), B at [n², 2n²), C at [2n², 3n²), row-major.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program matmul_program(std::size_t n);

/// 2n² words: A then B, uniform in [-1, 1).
std::vector<Word> matmul_random_input(std::size_t n, Rng& rng);

/// Native reference returning C (n² words), same accumulation order.
std::vector<Word> matmul_reference(std::size_t n, std::span<const Word> input);

std::uint64_t matmul_memory_steps(std::size_t n);

}  // namespace obx::algos

// Oblivious grouped aggregation over a large keyspace (multicore-oblivious
// family).
//
// The secure-analytics "GROUP BY key: SUM(value)" shape: sort the (key,
// value) pairs by key with an oblivious transposition network, run an
// oblivious segmented scan so each group's running sum accumulates left to
// right, then mask every non-boundary position to 0.0 with branch-free
// selects.  The output shape is fixed (n pairs) regardless of how many
// distinct keys the data holds — group sizes never leak through the trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program over n (key, value) pairs (any n >= 1).  Input = 2n
/// words: i64 keys at [0, n), f64 values at [n, 2n).  Output = the same 2n
/// words with keys sorted ascending and each group's sum on its last
/// element, 0.0 elsewhere.
trace::Program oblivious_aggregate_program(std::size_t n);

/// Keys mixed between a sparse 2^20 keyspace and a dense [0, n) band so
/// both singleton and multi-element groups occur; f64 values.
std::vector<Word> oblivious_aggregate_random_input(std::size_t n, Rng& rng);

/// Native reference: stable sort by key, left-to-right group sums, totals on
/// group boundaries (bit-identical addition order to the program).
std::vector<Word> oblivious_aggregate_reference(std::size_t n, std::span<const Word> input);

/// 8 memory steps per compare-exchange, 5 per scan link, 4 per boundary mask.
std::uint64_t oblivious_aggregate_memory_steps(std::size_t n);

}  // namespace obx::algos

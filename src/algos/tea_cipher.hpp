// Oblivious TEA encryption (the paper's "encryption/decryption" task family).
//
// The Tiny Encryption Algorithm processes 64-bit blocks as two 32-bit halves
// with a 128-bit key over 32 rounds of add/xor/shift — straight-line code, so
// trivially oblivious, and almost entirely register-resident: with
// count_compute enabled on the machine config this algorithm exhibits the
// compute-bound regime of the model.
//
// Canonical memory (one word per 32-bit quantity): key k0..k3 at [0, 4),
// then `blocks` 2-word plaintext blocks at [4, 4 + 2*blocks).  Encryption is
// in place; problem size n = number of blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program tea_program(std::size_t blocks);

/// 4 + 2*blocks words: random key and plaintext (32-bit values).
std::vector<Word> tea_random_input(std::size_t blocks, Rng& rng);

/// Native TEA encryption; returns the 2*blocks ciphertext words.
std::vector<Word> tea_reference(std::size_t blocks, std::span<const Word> input);

/// Oblivious TEA *decryption* program over the same canonical memory layout
/// (inverse rounds); composing it with tea_program is the identity on the
/// payload words.
trace::Program tea_decrypt_program(std::size_t blocks);

/// One native TEA block encryption (32 rounds).
void tea_encrypt_block(std::uint32_t v[2], const std::uint32_t k[4]);

/// One native TEA block decryption.
void tea_decrypt_block(std::uint32_t v[2], const std::uint32_t k[4]);

/// 4 key loads + 4 memory steps per block.
std::uint64_t tea_memory_steps(std::size_t blocks);

}  // namespace obx::algos

#include "algos/convolution.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

constexpr std::size_t m = kConvolutionTaps;

// Registers: r0 = accumulator, r1 = tap, r2 = sample, r3 = product.
Generator<Step> stream(std::size_t n) {
  const std::size_t outputs = n - m + 1;
  for (std::size_t i = 0; i < outputs; ++i) {
    co_yield Step::imm_f64(0, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      co_yield Step::load(1, k);
      co_yield Step::load(2, m + i + k);
      co_yield Step::alu(Op::kMulF, 3, 1, 2);
      co_yield Step::alu(Op::kAddF, 0, 0, 3);
    }
    co_yield Step::store(m + n + i, 0);
  }
}

}  // namespace

trace::Program convolution_program(std::size_t n) {
  OBX_CHECK(n >= m, "need at least as many samples as taps");
  trace::Program p;
  p.name = "convolution(n=" + std::to_string(n) + ")";
  p.memory_words = m + n + (n - m + 1);
  p.input_words = m + n;
  p.output_offset = m + n;
  p.output_words = n - m + 1;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> convolution_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(m + n, -1.0, 1.0);
}

std::vector<Word> convolution_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == m + n, "input must hold taps + samples");
  const std::size_t outputs = n - m + 1;
  std::vector<Word> out(outputs);
  for (std::size_t i = 0; i < outputs; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      acc += trace::as_f64(input[k]) * trace::as_f64(input[m + i + k]);
    }
    out[i] = trace::from_f64(acc);
  }
  return out;
}

std::uint64_t convolution_memory_steps(std::size_t n) {
  return (n - m + 1) * (2 * m + 1);
}

}  // namespace obx::algos

// Oblivious LU decomposition (Doolittle, no pivoting).
//
// Row pivoting is the classic source of data-dependent control flow in
// dense linear algebra; omitting it (valid for diagonally dominant systems,
// which the input generator produces) leaves a perfectly oblivious k-i-j
// elimination: every address is affine in the loop counters.
// t = Θ(n³) memory steps.
//
// Canonical memory: the n×n matrix, row-major f64, factored in place
// (L strictly below the diagonal with implicit unit diagonal, U on and
// above).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program lu_program(std::size_t n);

/// Random diagonally dominant matrix (off-diagonals in [-1, 1), diagonal
/// = n + 1): pivot-free elimination is numerically safe.
std::vector<Word> lu_random_input(std::size_t n, Rng& rng);

/// Native in-place Doolittle elimination, identical operation order.
std::vector<Word> lu_reference(std::size_t n, std::span<const Word> input);

std::uint64_t lu_memory_steps(std::size_t n);

}  // namespace obx::algos

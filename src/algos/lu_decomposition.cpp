#include "algos/lu_decomposition.hpp"

#include <cmath>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = multiplier A[i][k], r1 = pivot A[k][k], r2 = A[k][j],
// r3 = A[i][j], r4 = product.
Generator<Step> stream(std::size_t n) {
  const auto at = [n](std::size_t r, std::size_t c) { return Addr{r * n + c}; };
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      co_yield Step::load(0, at(i, k));
      co_yield Step::load(1, at(k, k));
      co_yield Step::alu(Op::kDivF, 0, 0, 1);  // multiplier
      co_yield Step::store(at(i, k), 0);
      for (std::size_t j = k + 1; j < n; ++j) {
        co_yield Step::load(2, at(k, j));
        co_yield Step::alu(Op::kMulF, 4, 0, 2);
        co_yield Step::load(3, at(i, j));
        co_yield Step::alu(Op::kSubF, 3, 3, 4);
        co_yield Step::store(at(i, j), 3);
      }
    }
  }
}

}  // namespace

trace::Program lu_program(std::size_t n) {
  OBX_CHECK(n > 0, "matrix dimension must be positive");
  trace::Program p;
  p.name = "lu(n=" + std::to_string(n) + ")";
  p.memory_words = n * n;
  p.input_words = n * n;
  p.output_offset = 0;
  p.output_words = n * n;
  p.register_count = 5;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> lu_random_input(std::size_t n, Rng& rng) {
  std::vector<Word> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = i == j ? static_cast<double>(n) + 1.0 : rng.next_double(-1.0, 1.0);
      m[i * n + j] = trace::from_f64(v);
    }
  }
  return m;
}

std::vector<Word> lu_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n * n, "matrix must be n x n");
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = trace::as_f64(input[i]);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = a[i * n + k] / a[k * n + k];
      a[i * n + k] = mult;
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * n + j] = a[i * n + j] - mult * a[k * n + j];
      }
    }
  }
  std::vector<Word> out(n * n);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_f64(a[i]);
  return out;
}

std::uint64_t lu_memory_steps(std::size_t n) {
  std::uint64_t t = 0;
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t rows = n - k - 1;
    t += rows * 3;                       // multiplier: 2 loads + 1 store
    t += rows * (n - k - 1) * 3;         // inner: 2 loads + 1 store
  }
  return t;
}

}  // namespace obx::algos

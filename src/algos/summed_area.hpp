// Oblivious summed-area table (integral image): the 2-D generalisation of
// the paper's prefix-sums, ubiquitous in image processing.
//
// Two in-place passes over an n×n image — running sums along each row, then
// along each column.  Every address is affine in the loop counters;
// t = 4n² memory steps.  Canonical memory: the image, row-major f64.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// n = image side length.
trace::Program summed_area_program(std::size_t n);

std::vector<Word> summed_area_random_input(std::size_t n, Rng& rng);

/// Native two-pass reference (identical accumulation order).
std::vector<Word> summed_area_reference(std::size_t n, std::span<const Word> input);

std::uint64_t summed_area_memory_steps(std::size_t n);

}  // namespace obx::algos

// Oblivious radix-2 FFT (the paper's signal-processing motivation: "an input
// stream is equally partitioned into many blocks, and the FFT algorithm is
// executed for each block ... This is exactly the bulk execution of the FFT
// algorithm").
//
// Iterative Cooley-Tukey over complex doubles stored interleaved: Re(x_i) at
// word 2i, Im(x_i) at 2i+1.  Twiddle factors depend only on loop indices, so
// the generator embeds them as immediates — addresses and control flow never
// touch the data, making the program oblivious with t = Θ(n log n).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious in-place FFT program over n complex points (n a power of two).
/// Canonical memory: 2n words, input = output = the whole array.
trace::Program fft_program(std::size_t n);

/// 2n words: n random complex samples in [-1, 1)².
std::vector<Word> fft_random_input(std::size_t n, Rng& rng);

/// Native FFT mirroring the program's operation order exactly (bit-identical
/// output), returning the interleaved 2n words.
std::vector<Word> fft_reference(std::size_t n, std::span<const Word> input);

/// Native in-place FFT on interleaved doubles (CPU baseline for benches).
void fft_native(std::span<double> interleaved);

/// Memory steps: 8 per bit-reversal swap + 8 per butterfly.
std::uint64_t fft_memory_steps(std::size_t n);

}  // namespace obx::algos

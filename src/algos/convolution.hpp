// Oblivious FIR convolution (the paper's "signal processing" task family,
// alongside FFT).  y[i] = Σ_k h[k]·x[i+k] for an m-tap filter over n
// samples; both loops have data-independent bounds and affine addresses.
// t = (n-m+1)(2m+1) memory steps.
//
// Canonical memory: taps h at [0, m), samples x at [m, m+n), outputs y at
// [m+n, m+n + (n-m+1)).  The tap count is fixed at kTaps so that the problem
// is parameterised by a single size like every other algorithm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

inline constexpr std::size_t kConvolutionTaps = 8;

/// n = sample count; requires n >= kConvolutionTaps.
trace::Program convolution_program(std::size_t n);

/// kConvolutionTaps + n words: taps then samples.
std::vector<Word> convolution_random_input(std::size_t n, Rng& rng);

/// Native reference returning the n - kConvolutionTaps + 1 outputs.
std::vector<Word> convolution_reference(std::size_t n, std::span<const Word> input);

std::uint64_t convolution_memory_steps(std::size_t n);

}  // namespace obx::algos

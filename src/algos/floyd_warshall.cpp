#include "algos/floyd_warshall.hpp"

#include <limits>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = dist[i][k], r1 = dist[k][j], r2 = candidate sum,
// r3 = dist[i][j].
Generator<Step> stream(std::size_t n) {
  const auto at = [n](std::size_t i, std::size_t j) { return Addr{i * n + j}; };
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        co_yield Step::load(0, at(i, k));
        co_yield Step::load(1, at(k, j));
        co_yield Step::alu(Op::kAddF, 2, 0, 1);
        co_yield Step::load(3, at(i, j));
        co_yield Step::alu(Op::kCmovLtF, 3, 2, 3, 2);  // if d < dist: dist ← d
        co_yield Step::store(at(i, j), 3);             // unconditional store
      }
    }
  }
}

}  // namespace

trace::Program floyd_warshall_program(std::size_t n) {
  OBX_CHECK(n > 0, "graph needs at least one vertex");
  trace::Program p;
  p.name = "floyd-warshall(n=" + std::to_string(n) + ")";
  p.memory_words = n * n;
  p.input_words = n * n;
  p.output_offset = 0;
  p.output_words = n * n;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> floyd_warshall_random_input(std::size_t n, Rng& rng) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<Word> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double v;
      if (i == j) {
        v = 0.0;
      } else if (rng.next_below(2) == 0) {
        v = rng.next_double(1.0, 10.0);
      } else {
        v = kInf;
      }
      m[i * n + j] = trace::from_f64(v);
    }
  }
  return m;
}

std::vector<Word> floyd_warshall_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n * n, "distance matrix must be n x n");
  std::vector<double> d(n * n);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = trace::as_f64(input[i]);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double cand = d[i * n + k] + d[k * n + j];
        if (cand < d[i * n + j]) d[i * n + j] = cand;
      }
    }
  }
  std::vector<Word> out(n * n);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_f64(d[i]);
  return out;
}

std::uint64_t floyd_warshall_memory_steps(std::size_t n) { return 4 * n * n * n; }

}  // namespace obx::algos

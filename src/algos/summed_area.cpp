#include "algos/summed_area.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = running sum, r1 = element.
Generator<Step> stream(std::size_t n) {
  const auto at = [n](std::size_t r, std::size_t c) { return Addr{r * n + c}; };
  // Pass 1: prefix-sum each row.
  for (std::size_t r = 0; r < n; ++r) {
    co_yield Step::imm_f64(0, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      co_yield Step::load(1, at(r, c));
      co_yield Step::alu(Op::kAddF, 0, 0, 1);
      co_yield Step::store(at(r, c), 0);
    }
  }
  // Pass 2: prefix-sum each column.
  for (std::size_t c = 0; c < n; ++c) {
    co_yield Step::imm_f64(0, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      co_yield Step::load(1, at(r, c));
      co_yield Step::alu(Op::kAddF, 0, 0, 1);
      co_yield Step::store(at(r, c), 0);
    }
  }
}

}  // namespace

trace::Program summed_area_program(std::size_t n) {
  OBX_CHECK(n > 0, "image side must be positive");
  trace::Program p;
  p.name = "summed-area(n=" + std::to_string(n) + ")";
  p.memory_words = n * n;
  p.input_words = n * n;
  p.output_offset = 0;
  p.output_words = n * n;
  p.register_count = 2;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> summed_area_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(n * n, 0.0, 255.0);
}

std::vector<Word> summed_area_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n * n, "image must be n x n");
  std::vector<double> img(n * n);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = trace::as_f64(input[i]);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      sum += img[r * n + c];
      img[r * n + c] = sum;
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += img[r * n + c];
      img[r * n + c] = sum;
    }
  }
  std::vector<Word> out(n * n);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_f64(img[i]);
  return out;
}

std::uint64_t summed_area_memory_steps(std::size_t n) { return 4 * n * n; }

}  // namespace obx::algos

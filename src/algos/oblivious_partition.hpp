// Oblivious tight compaction by a secret predicate (multicore-oblivious
// family).
//
// Stable partition: every negative value moves to the front, everything
// else follows, original order preserved within each side.  The predicate
// result is data-dependent but the trace is not: each element gets an
// integer rank (i for negatives, n + i otherwise) written to a scratch key
// array, and an odd-even transposition network sorts (key, value) pairs with
// branch-free kSelect swaps.  Distinct ranks make the compaction stable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program over n f64 words (any n >= 1); stable-partitions the
/// values so that v < 0 comes first.  Keys live in scratch words [n, 2n).
trace::Program oblivious_partition_program(std::size_t n);

std::vector<Word> oblivious_partition_random_input(std::size_t n, Rng& rng);

/// Native reference: std::stable_partition by v < 0.
std::vector<Word> oblivious_partition_reference(std::size_t n, std::span<const Word> input);

/// 3 memory steps per rank build + 8 per compare-exchange.
std::uint64_t oblivious_partition_memory_steps(std::size_t n);

}  // namespace obx::algos

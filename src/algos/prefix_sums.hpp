// Algorithm Prefix-sums (paper Section III).
//
//   r ← 0
//   for i ← 0 to n-1:  r ← r + b[i];  b[i] ← r
//
// The canonical simple oblivious algorithm: access function a(2i) =
// a(2i+1) = i, sequential time t = 2n memory steps.  Values are IEEE
// doubles (the paper uses 32-bit floats; doubles keep the single-Word cell).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program over n f64 words; input = output = the whole array.
trace::Program prefix_sums_program(std::size_t n);

/// n doubles uniform in [-100, 100), bit-cast to Words.
std::vector<Word> prefix_sums_random_input(std::size_t n, Rng& rng);

/// Native sequential prefix sums (the "CPU" of the paper's figures).
std::vector<Word> prefix_sums_reference(std::size_t n, std::span<const Word> input);

/// In-place native version on doubles, used by the CPU-baseline benches.
void prefix_sums_native(std::span<double> data);

/// t(n) = 2n memory steps.
std::uint64_t prefix_sums_memory_steps(std::size_t n);

}  // namespace obx::algos

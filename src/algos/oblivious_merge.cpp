#include "algos/oblivious_merge.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

/// Padded cascade size: the smallest power of two holding both runs.
std::size_t padded_size(std::size_t n) { return std::bit_ceil(2 * n); }

// Registers: r0/r1 = compare-exchange operands (also the reversal swap pair),
// r2 = min, r3 = max.  r0 doubles as the +inf sentinel during padding.
Generator<Step> stream(std::size_t n) {
  const std::size_t m = padded_size(n);
  // Pad the scratch tail with +inf so the sentinels sort to the back.
  if (m > 2 * n) {
    co_yield Step::imm_f64(0, std::numeric_limits<double>::infinity());
    for (std::size_t a = 2 * n; a < m; ++a) co_yield Step::store(a, 0);
  }
  // Reverse [n, m): run B (plus sentinels) becomes non-increasing, so the
  // whole array is one bitonic sequence.
  for (std::size_t i = 0; i < (m - n) / 2; ++i) {
    const std::size_t lo = n + i;
    const std::size_t hi = m - 1 - i;
    co_yield Step::load(0, lo);
    co_yield Step::load(1, hi);
    co_yield Step::store(lo, 1);
    co_yield Step::store(hi, 0);
  }
  // Bitonic merge cascade: log2(m) all-ascending compare-exchange phases.
  for (std::size_t j = m >> 1; j > 0; j >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t l = i ^ j;
      if (l <= i) continue;
      co_yield Step::load(0, i);
      co_yield Step::load(1, l);
      co_yield Step::alu(Op::kMinF, 2, 0, 1);
      co_yield Step::alu(Op::kMaxF, 3, 0, 1);
      co_yield Step::store(i, 2);
      co_yield Step::store(l, 3);
    }
  }
}

}  // namespace

trace::Program oblivious_merge_program(std::size_t n) {
  OBX_CHECK(n >= 1, "oblivious merge needs runs of at least one word");
  trace::Program p;
  p.name = "oblivious-merge(n=" + std::to_string(n) + ")";
  p.memory_words = padded_size(n);
  p.input_words = 2 * n;
  p.output_offset = 0;
  p.output_words = 2 * n;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> oblivious_merge_random_input(std::size_t n, Rng& rng) {
  std::vector<Word> words = rng.words_f64(2 * n, -1000.0, 1000.0);
  const auto ascending = [](Word a, Word b) { return trace::as_f64(a) < trace::as_f64(b); };
  std::sort(words.begin(), words.begin() + static_cast<std::ptrdiff_t>(n), ascending);
  std::sort(words.begin() + static_cast<std::ptrdiff_t>(n), words.end(), ascending);
  return words;
}

std::vector<Word> oblivious_merge_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == 2 * n, "input size mismatch");
  std::vector<Word> out(2 * n);
  const auto ascending = [](Word a, Word b) { return trace::as_f64(a) < trace::as_f64(b); };
  std::merge(input.begin(), input.begin() + static_cast<std::ptrdiff_t>(n),
             input.begin() + static_cast<std::ptrdiff_t>(n), input.end(), out.begin(),
             ascending);
  return out;
}

std::uint64_t oblivious_merge_memory_steps(std::size_t n) {
  const std::uint64_t m = padded_size(n);
  std::uint64_t steps = m - 2 * n;       // sentinel stores
  steps += 4 * ((m - n) / 2);            // reversal swaps
  std::uint64_t phases = 0;
  for (std::size_t j = m >> 1; j > 0; j >>= 1) ++phases;
  return steps + phases * (m / 2) * 4;   // compare-exchanges
}

}  // namespace obx::algos

// Oblivious polynomial evaluation by Horner's rule.
//
// r ← c[n-1]; for i ← n-2 downto 0: r ← r·x + c[i].  A pure dependency
// chain of 1 load per step — the latency-bound extreme of the model (its
// bulk execution is dominated by the l·t term until p is very large).
//
// Canonical memory: coefficients c[0..n) (c[i] multiplies x^i), the
// evaluation point x at n, the result at n+1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// n = number of coefficients (degree n-1).
trace::Program horner_program(std::size_t n);

/// n coefficients in [-1, 1) plus a point in [-2, 2).
std::vector<Word> horner_random_input(std::size_t n, Rng& rng);

/// Native Horner evaluation; returns the single result word.
std::vector<Word> horner_reference(std::size_t n, std::span<const Word> input);

/// n + 2 memory steps: one load per coefficient, the x load, the store.
std::uint64_t horner_memory_steps(std::size_t n);

}  // namespace obx::algos

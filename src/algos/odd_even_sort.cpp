#include "algos/odd_even_sort.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = a[i], r1 = a[i+1], r2 = min, r3 = max.
Generator<Step> stream(std::size_t n) {
  for (std::size_t phase = 0; phase < n; ++phase) {
    for (std::size_t i = phase % 2; i + 1 < n; i += 2) {
      co_yield Step::load(0, i);
      co_yield Step::load(1, i + 1);
      co_yield Step::alu(Op::kMinF, 2, 0, 1);
      co_yield Step::alu(Op::kMaxF, 3, 0, 1);
      co_yield Step::store(i, 2);
      co_yield Step::store(i + 1, 3);
    }
  }
}

}  // namespace

trace::Program odd_even_sort_program(std::size_t n) {
  OBX_CHECK(n > 0, "need at least one element");
  trace::Program p;
  p.name = "odd-even-sort(n=" + std::to_string(n) + ")";
  p.memory_words = n;
  p.input_words = n;
  p.output_offset = 0;
  p.output_words = n;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> odd_even_sort_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(n, -1000.0, 1000.0);
}

std::vector<Word> odd_even_sort_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n, "input size mismatch");
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = trace::as_f64(input[i]);
  std::sort(vals.begin(), vals.end());
  std::vector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = trace::from_f64(vals[i]);
  return out;
}

std::uint64_t odd_even_sort_memory_steps(std::size_t n) {
  std::uint64_t exchanges = 0;
  for (std::size_t phase = 0; phase < n; ++phase) {
    for (std::size_t i = phase % 2; i + 1 < n; i += 2) ++exchanges;
  }
  return 4 * exchanges;
}

}  // namespace obx::algos

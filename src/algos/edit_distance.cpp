#include "algos/edit_distance.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

Addr edit_distance_d_index(std::size_t n, std::size_t i, std::size_t j) {
  return 2 * n + i * (n + 1) + j;
}

namespace {

// Registers: r0 = imm scratch, r1 = A sym, r2 = B sym, r3 = diag+cost,
// r4 = up+1, r5 = left+1, r6 = one, r7 = mismatch flag / min scratch.
Generator<Step> stream(std::size_t n) {
  const auto d_at = [n](std::size_t i, std::size_t j) {
    return edit_distance_d_index(n, i, j);
  };

  // Borders: D[i][0] = i, D[0][j] = j.
  for (std::size_t i = 0; i <= n; ++i) {
    co_yield Step::immediate(0, static_cast<Word>(i));
    co_yield Step::store(d_at(i, 0), 0);
  }
  for (std::size_t j = 1; j <= n; ++j) {
    co_yield Step::immediate(0, static_cast<Word>(j));
    co_yield Step::store(d_at(0, j), 0);
  }

  co_yield Step::immediate(6, Word{1});
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      co_yield Step::load(1, i - 1);       // A[i-1]
      co_yield Step::load(2, n + j - 1);   // B[j-1]
      co_yield Step::alu(Op::kNeI, 7, 1, 2);  // cost = (a != b)
      co_yield Step::load(3, d_at(i - 1, j - 1));
      co_yield Step::alu(Op::kAddI, 3, 3, 7);  // diag + cost
      co_yield Step::load(4, d_at(i - 1, j));
      co_yield Step::alu(Op::kAddI, 4, 4, 6);  // up + 1
      co_yield Step::load(5, d_at(i, j - 1));
      co_yield Step::alu(Op::kAddI, 5, 5, 6);  // left + 1
      co_yield Step::alu(Op::kMinI, 7, 3, 4);
      co_yield Step::alu(Op::kMinI, 7, 7, 5);
      co_yield Step::store(d_at(i, j), 7);
    }
  }
}

}  // namespace

trace::Program edit_distance_program(std::size_t n) {
  OBX_CHECK(n > 0, "strings must be non-empty");
  trace::Program p;
  p.name = "edit-distance(n=" + std::to_string(n) + ")";
  p.memory_words = 2 * n + (n + 1) * (n + 1);
  p.input_words = 2 * n;
  p.output_offset = 2 * n;
  p.output_words = (n + 1) * (n + 1);
  p.register_count = 8;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> edit_distance_random_input(std::size_t n, Rng& rng) {
  return rng.words_u64(2 * n, 4);
}

std::vector<Word> edit_distance_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == 2 * n, "input must hold two length-n strings");
  const std::size_t m = n + 1;
  std::vector<std::int64_t> d(m * m, 0);
  for (std::size_t i = 0; i <= n; ++i) d[i * m] = static_cast<std::int64_t>(i);
  for (std::size_t j = 0; j <= n; ++j) d[j] = static_cast<std::int64_t>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int64_t cost = input[i - 1] != input[n + j - 1] ? 1 : 0;
      d[i * m + j] = std::min({d[(i - 1) * m + (j - 1)] + cost,
                               d[(i - 1) * m + j] + 1,
                               d[i * m + (j - 1)] + 1});
    }
  }
  std::vector<Word> out(m * m);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_i64(d[i]);
  return out;
}

std::int64_t edit_distance_native(std::span<const Word> a, std::span<const Word> b) {
  OBX_CHECK(a.size() == b.size(), "equal-length strings");
  const std::size_t n = a.size();
  std::vector<Word> input(2 * n);
  std::copy(a.begin(), a.end(), input.begin());
  std::copy(b.begin(), b.end(), input.begin() + static_cast<std::ptrdiff_t>(n));
  const std::vector<Word> table = edit_distance_reference(n, input);
  return trace::as_i64(table.back());
}

std::uint64_t edit_distance_memory_steps(std::size_t n) {
  // Borders: (n+1) + n stores; inner cells: 5 loads + 1 store each.
  return (2 * n + 1) + n * n * 6;
}

}  // namespace obx::algos

// Oblivious Levenshtein edit distance (the paper's "dynamic programming"
// task family beyond OPT).  The full (n+1)×(n+1) DP table is computed
// regardless of the data — only the *values*, never the addresses, depend on
// the strings — via the NeI/AddI/MinI step set.  t = Θ(n²) memory steps.
//
// Canonical memory: string A at [0, n), string B at [n, 2n) (one symbol per
// word), DP table D row-major at [2n, 2n + (n+1)²).  Output: the full table;
// its last entry is the distance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program edit_distance_program(std::size_t n);

/// 2n words: two strings over a 4-symbol alphabet {0,1,2,3}.
std::vector<Word> edit_distance_random_input(std::size_t n, Rng& rng);

/// Native DP; returns the full (n+1)² table as i64 words.
std::vector<Word> edit_distance_reference(std::size_t n, std::span<const Word> input);

/// Native distance of two equal-length symbol strings.
std::int64_t edit_distance_native(std::span<const Word> a, std::span<const Word> b);

std::uint64_t edit_distance_memory_steps(std::size_t n);

/// Index of D[i][j] within the program's canonical memory.
Addr edit_distance_d_index(std::size_t n, std::size_t i, std::size_t j);

}  // namespace obx::algos

// Oblivious bitonic sorting network (the paper's "sorting" task family).
//
// Batcher's bitonic sort is the textbook oblivious sorting algorithm: the
// compare-exchange pattern depends only on indices, so every memory access
// is fixed; t = Θ(n log² n) memory steps.  Keys are IEEE doubles sorted
// ascending.  Non-power-of-two lengths are padded obliviously with +inf
// sentinels in scratch words beyond the input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program over n f64 words (any n >= 1); sorts ascending in
/// place, running the network on bit_ceil(n) words with +inf padding.
trace::Program bitonic_sort_program(std::size_t n);

std::vector<Word> bitonic_sort_random_input(std::size_t n, Rng& rng);

/// Native reference: sorted copy of the input.
std::vector<Word> bitonic_sort_reference(std::size_t n, std::span<const Word> input);

/// 4 memory steps per compare-exchange.
std::uint64_t bitonic_sort_memory_steps(std::size_t n);

}  // namespace obx::algos

// Uniform description of an oblivious algorithm, for the registry-driven
// test sweeps and the cross-algorithm benchmark suite.
//
// Every algorithm in src/algos provides:
//   - a Program factory (the oblivious step stream),
//   - a random-input generator matching the program's input_words,
//   - a *native* sequential reference (plain C++, independent of the IR) that
//     returns the expected output region, and
//   - the closed-form memory-step count t(n) of Theorems 2/3.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

struct Algorithm {
  std::string name;
  std::string description;

  /// Builds the oblivious program for problem size n (meaning per algorithm:
  /// array length, polygon vertices, matrix dimension, ...).
  std::function<trace::Program(std::size_t)> make_program;

  /// One random input of program(n).input_words words.
  std::function<std::vector<Word>(std::size_t, Rng&)> make_input;

  /// Native sequential reference: expected output-region words for `input`.
  std::function<std::vector<Word>(std::size_t, std::span<const Word>)> reference;

  /// Closed-form memory-step count t(n); must equal program(n).memory_steps().
  std::function<std::uint64_t(std::size_t)> memory_steps;

  /// Problem sizes exercised by the parameterised test sweeps.
  std::vector<std::size_t> test_sizes;

  /// Tolerance for float comparison against the reference (0 = bit exact).
  double tolerance = 0.0;
};

/// All algorithms shipped with the library.
const std::vector<Algorithm>& registry();

/// Lookup by name; throws if absent.
const Algorithm& find(const std::string& name);

}  // namespace obx::algos

#include "algos/horner.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = accumulator, r1 = x, r2 = coefficient.
Generator<Step> stream(std::size_t n) {
  co_yield Step::load(1, n);          // x
  co_yield Step::load(0, n - 1);      // leading coefficient
  for (std::size_t i = n - 1; i-- > 0;) {
    co_yield Step::alu(Op::kMulF, 0, 0, 1);
    co_yield Step::load(2, i);
    co_yield Step::alu(Op::kAddF, 0, 0, 2);
  }
  co_yield Step::store(n + 1, 0);
}

}  // namespace

trace::Program horner_program(std::size_t n) {
  OBX_CHECK(n > 0, "polynomial needs at least one coefficient");
  trace::Program p;
  p.name = "horner(n=" + std::to_string(n) + ")";
  p.memory_words = n + 2;
  p.input_words = n + 1;
  p.output_offset = n + 1;
  p.output_words = 1;
  p.register_count = 3;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> horner_random_input(std::size_t n, Rng& rng) {
  std::vector<Word> input = rng.words_f64(n, -1.0, 1.0);
  input.push_back(trace::from_f64(rng.next_double(-2.0, 2.0)));
  return input;
}

std::vector<Word> horner_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n + 1, "input must hold n coefficients and x");
  const double x = trace::as_f64(input[n]);
  double r = trace::as_f64(input[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    r = r * x + trace::as_f64(input[i]);
  }
  return {trace::from_f64(r)};
}

std::uint64_t horner_memory_steps(std::size_t n) { return n + 2; }

}  // namespace obx::algos

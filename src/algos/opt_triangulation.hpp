// Algorithm OPT: optimal polygon triangulation by dynamic programming
// (paper Section IV).
//
// A convex n-gon with chord weights c[i,j] is triangulated minimising the
// total chord weight.  The DP of the paper:
//
//   for i ← 1 to n-1:        M[i,i] ← 0
//   for i ← n-2 downto 1:
//     for j ← i+1 to n-1:
//       s ← +inf
//       for k ← i to j-1:
//         r ← M[i,k] + M[k+1,j]
//         if r < s then s ← r else s ← s     // dummy else: oblivious
//       M[i,j] ← s + c[i-1,j]
//
// The dummy else becomes a CmovLtF step; every address is an affine function
// of the loop counters, so the program is oblivious with t = Θ(n³) memory
// steps.  Canonical memory: c (n×n, row-major, f64) at [0, n²), M (n×n used
// from index 1) at [n², 2n²).  The optimum is M[1, n-1].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program for a convex n-gon (n >= 3).  input = the c matrix
/// (n² words); output = the full M matrix (n² words at offset n²), whose
/// entry [1*n + (n-1)] is the optimal total weight.
trace::Program opt_program(std::size_t n);

/// Random symmetric chord weights in [0, 100): c[i*n+j] = c[j*n+i].
std::vector<Word> opt_random_input(std::size_t n, Rng& rng);

/// Native DP; returns the full M matrix (n² words, unused entries zero).
std::vector<Word> opt_reference(std::size_t n, std::span<const Word> input);

/// Native DP on doubles: returns M[1][n-1], the optimal total weight.
double opt_native(std::size_t n, std::span<const double> c);

/// Exponential-time brute force over all parse trees (for cross-validation,
/// n <= ~12): recursively evaluates min over k of W(i,k)+W(k+1,j)+c[i-1,j].
double opt_brute_force(std::size_t n, std::span<const double> c);

/// Memory steps: (n-1) init stores + Σ_{i<j} (2(j-i) + 2).
std::uint64_t opt_memory_steps(std::size_t n);

/// Index of M[i][j] within the program's canonical memory.
Addr opt_m_index(std::size_t n, std::size_t i, std::size_t j);

}  // namespace obx::algos

// Oblivious Floyd-Warshall all-pairs shortest paths.
//
// The classic k-i-j triple loop touches dist[i][j], dist[i][k], dist[k][j]
// at addresses that are affine in the loop counters, and the relaxation
// `if (d < dist[i][j]) dist[i][j] = d` becomes a CmovLtF + unconditional
// store — the same dummy-else discipline as Algorithm OPT.  t = Θ(n³).
//
// Canonical memory: the n×n distance matrix, row-major f64, in place.
// Missing edges are +inf; diagonal is 0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program floyd_warshall_program(std::size_t n);

/// Random digraph: each edge present with probability ~1/2, weight in
/// [1, 10); absent edges +inf; diagonal 0.
std::vector<Word> floyd_warshall_random_input(std::size_t n, Rng& rng);

/// Native Floyd-Warshall; returns the full distance matrix.
std::vector<Word> floyd_warshall_reference(std::size_t n, std::span<const Word> input);

/// 4 memory steps per (k, i, j) triple.
std::uint64_t floyd_warshall_memory_steps(std::size_t n);

}  // namespace obx::algos

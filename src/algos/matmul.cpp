#include "algos/matmul.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = accumulator, r1 = A element, r2 = B element, r3 = product.
Generator<Step> stream(std::size_t n) {
  const std::size_t nn = n * n;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      co_yield Step::imm_f64(0, 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        co_yield Step::load(1, i * n + k);
        co_yield Step::load(2, nn + k * n + j);
        co_yield Step::alu(Op::kMulF, 3, 1, 2);
        co_yield Step::alu(Op::kAddF, 0, 0, 3);
      }
      co_yield Step::store(2 * nn + i * n + j, 0);
    }
  }
}

}  // namespace

trace::Program matmul_program(std::size_t n) {
  OBX_CHECK(n > 0, "matrix dimension must be positive");
  trace::Program p;
  p.name = "matmul(n=" + std::to_string(n) + ")";
  p.memory_words = 3 * n * n;
  p.input_words = 2 * n * n;
  p.output_offset = 2 * n * n;
  p.output_words = n * n;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> matmul_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(2 * n * n, -1.0, 1.0);
}

std::vector<Word> matmul_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == 2 * n * n, "input must hold A and B");
  const std::size_t nn = n * n;
  std::vector<double> a(nn), b(nn), c(nn, 0.0);
  for (std::size_t i = 0; i < nn; ++i) a[i] = trace::as_f64(input[i]);
  for (std::size_t i = 0; i < nn; ++i) b[i] = trace::as_f64(input[nn + i]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
  std::vector<Word> out(nn);
  for (std::size_t i = 0; i < nn; ++i) out[i] = trace::from_f64(c[i]);
  return out;
}

std::uint64_t matmul_memory_steps(std::size_t n) {
  return n * n * (2 * n + 1);
}

}  // namespace obx::algos

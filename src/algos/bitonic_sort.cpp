#include "algos/bitonic_sort.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Registers: r0 = a[i], r1 = a[l], r2 = min, r3 = max.  r0 doubles as the
// +inf sentinel while padding.
//
// Non-power-of-two lengths run the network on m = bit_ceil(n) words with
// the scratch tail [n, m) preloaded with +inf: the sentinels sort to the
// back, so [0, n) holds the sorted input.  For power-of-two n the stream is
// byte-identical to the unpadded network (zero sentinel stores).
Generator<Step> stream(std::size_t n) {
  const std::size_t m = std::bit_ceil(n);
  if (m > n) {
    co_yield Step::imm_f64(0, std::numeric_limits<double>::infinity());
    for (std::size_t a = n; a < m; ++a) co_yield Step::store(a, 0);
  }
  for (std::size_t k = 2; k <= m; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t l = i ^ j;
        if (l <= i) continue;
        const bool ascending = (i & k) == 0;
        co_yield Step::load(0, i);
        co_yield Step::load(1, l);
        co_yield Step::alu(Op::kMinF, 2, 0, 1);
        co_yield Step::alu(Op::kMaxF, 3, 0, 1);
        co_yield Step::store(i, ascending ? std::uint8_t{2} : std::uint8_t{3});
        co_yield Step::store(l, ascending ? std::uint8_t{3} : std::uint8_t{2});
      }
    }
  }
}

}  // namespace

trace::Program bitonic_sort_program(std::size_t n) {
  OBX_CHECK(n >= 1, "bitonic sort needs at least one element");
  trace::Program p;
  p.name = "bitonic-sort(n=" + std::to_string(n) + ")";
  p.memory_words = std::bit_ceil(n);
  p.input_words = n;
  p.output_offset = 0;
  p.output_words = n;
  p.register_count = 4;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> bitonic_sort_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(n, -1000.0, 1000.0);
}

std::vector<Word> bitonic_sort_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n, "input size mismatch");
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = trace::as_f64(input[i]);
  std::sort(vals.begin(), vals.end());
  std::vector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = trace::from_f64(vals[i]);
  return out;
}

std::uint64_t bitonic_sort_memory_steps(std::size_t n) {
  // Sentinel stores, then each (k, j) phase performs m/2 compare-exchanges
  // of 4 memory steps on the padded size.
  const std::uint64_t m = std::bit_ceil(n);
  std::uint64_t phases = 0;
  for (std::size_t k = 2; k <= m; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) ++phases;
  }
  return (m - n) + phases * (m / 2) * 4;
}

}  // namespace obx::algos

// Oblivious merge of two sorted runs (multicore-oblivious family).
//
// "Data Oblivious Algorithms for Multicores" (Ramachandran–Shi) builds its
// binary-fork-join family on oblivious merging.  Here the merge is the
// bitonic merger: run B is reversed in place so A ++ reverse(B) is bitonic,
// then the log-depth compare-exchange cascade sorts it.  Run lengths need
// not be powers of two — the scratch tail is padded with +inf sentinels, so
// the first 2n words of the sorted result are exactly the merged runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

/// Oblivious program merging two ascending runs of n f64 words each
/// (input = 2n words: run A then run B); output = 2n merged words.
/// Any n >= 1 — the bitonic cascade runs on the padded power-of-two size.
trace::Program oblivious_merge_program(std::size_t n);

/// 2n random f64 words with each half sorted ascending.
std::vector<Word> oblivious_merge_random_input(std::size_t n, Rng& rng);

/// Native reference: std::merge of the two runs.
std::vector<Word> oblivious_merge_reference(std::size_t n, std::span<const Word> input);

/// Pad stores + reversal swaps + 4 memory steps per compare-exchange.
std::uint64_t oblivious_merge_memory_steps(std::size_t n);

}  // namespace obx::algos

// Oblivious odd-even transposition sort.
//
// n phases of neighbour compare-exchange (odd/even pairs alternating): the
// simplest O(n²) oblivious sorting network, a useful contrast to the
// O(n log² n) bitonic network — both appear in the cross-algorithm benches.
// Keys are IEEE doubles sorted ascending in place.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::algos {

trace::Program odd_even_sort_program(std::size_t n);

std::vector<Word> odd_even_sort_random_input(std::size_t n, Rng& rng);

std::vector<Word> odd_even_sort_reference(std::size_t n, std::span<const Word> input);

/// 4 memory steps per compare-exchange, n/2-ish exchanges per phase, n phases.
std::uint64_t odd_even_sort_memory_steps(std::size_t n);

}  // namespace obx::algos

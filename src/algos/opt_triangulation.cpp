#include "algos/opt_triangulation.hpp"

#include <limits>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

Addr opt_m_index(std::size_t n, std::size_t i, std::size_t j) {
  return n * n + i * n + j;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Registers: r0 = 0.0, r1 = +inf, r2 = s, r3/r4 = M loads, r5 = r, r6 = c, r7 = sum.
Generator<Step> stream(std::size_t n) {
  const auto m_at = [n](std::size_t i, std::size_t j) { return opt_m_index(n, i, j); };
  const auto c_at = [n](std::size_t i, std::size_t j) { return Addr{i * n + j}; };

  co_yield Step::imm_f64(0, 0.0);
  co_yield Step::imm_f64(1, kInf);
  for (std::size_t i = 1; i <= n - 1; ++i) {
    co_yield Step::store(m_at(i, i), 0);
  }
  for (std::size_t i = n - 2; i >= 1; --i) {
    for (std::size_t j = i + 1; j <= n - 1; ++j) {
      co_yield Step::alu(Op::kMov, 2, 1);  // s ← +inf
      for (std::size_t k = i; k <= j - 1; ++k) {
        co_yield Step::load(3, m_at(i, k));
        co_yield Step::load(4, m_at(k + 1, j));
        co_yield Step::alu(Op::kAddF, 5, 3, 4);       // r ← M[i,k] + M[k+1,j]
        co_yield Step::alu(Op::kCmovLtF, 2, 5, 2, 5);  // if r < s then s ← r
      }
      co_yield Step::load(6, c_at(i - 1, j));
      co_yield Step::alu(Op::kAddF, 7, 2, 6);
      co_yield Step::store(m_at(i, j), 7);
    }
  }
}

}  // namespace

trace::Program opt_program(std::size_t n) {
  OBX_CHECK(n >= 3, "a polygon needs at least 3 vertices");
  trace::Program p;
  p.name = "opt-triangulation(n=" + std::to_string(n) + ")";
  p.memory_words = 2 * n * n;
  p.input_words = n * n;
  p.output_offset = n * n;
  p.output_words = n * n;
  p.register_count = 8;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> opt_random_input(std::size_t n, Rng& rng) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.next_double(0.0, 100.0);
      c[i * n + j] = w;
      c[j * n + i] = w;
    }
  }
  std::vector<Word> words(n * n);
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = trace::from_f64(c[i]);
  return words;
}

std::vector<Word> opt_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n * n, "weight matrix must be n x n");
  std::vector<double> c(n * n);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = trace::as_f64(input[i]);

  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = 1; i <= n - 1; ++i) m[i * n + i] = 0.0;
  for (std::size_t i = n - 2; i >= 1; --i) {
    for (std::size_t j = i + 1; j <= n - 1; ++j) {
      double s = kInf;
      for (std::size_t k = i; k <= j - 1; ++k) {
        const double r = m[i * n + k] + m[(k + 1) * n + j];
        if (r < s) s = r;
      }
      m[i * n + j] = s + c[(i - 1) * n + j];
    }
  }

  std::vector<Word> out(n * n);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_f64(m[i]);
  return out;
}

double opt_native(std::size_t n, std::span<const double> c) {
  OBX_CHECK(c.size() == n * n, "weight matrix must be n x n");
  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = n - 2; i >= 1; --i) {
    for (std::size_t j = i + 1; j <= n - 1; ++j) {
      double s = kInf;
      for (std::size_t k = i; k <= j - 1; ++k) {
        const double r = m[i * n + k] + m[(k + 1) * n + j];
        if (r < s) s = r;
      }
      m[i * n + j] = s + c[(i - 1) * n + j];
    }
  }
  return m[1 * n + (n - 1)];
}

namespace {

double brute(std::size_t n, std::span<const double> c, std::size_t i, std::size_t j) {
  if (i == j) return 0.0;
  double best = kInf;
  for (std::size_t k = i; k <= j - 1; ++k) {
    const double v = brute(n, c, i, k) + brute(n, c, k + 1, j);
    if (v < best) best = v;
  }
  return best + c[(i - 1) * n + j];
}

}  // namespace

double opt_brute_force(std::size_t n, std::span<const double> c) {
  OBX_CHECK(c.size() == n * n, "weight matrix must be n x n");
  return brute(n, c, 1, n - 1);
}

std::uint64_t opt_memory_steps(std::size_t n) {
  std::uint64_t t = n - 1;  // diagonal init stores
  for (std::uint64_t i = 1; i + 1 <= n - 1; ++i) {
    for (std::uint64_t j = i + 1; j <= n - 1; ++j) {
      t += 2 * (j - i) + 2;  // 2 loads per k, plus c load and M store
    }
  }
  return t;
}

}  // namespace obx::algos

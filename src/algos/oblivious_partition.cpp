#include "algos/oblivious_partition.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

// Memory layout: values at [0, n), scratch rank keys at [n, 2n).
//
// Rank build registers: r0 = value, r1 = 0.0, r2 = predicate, r3 = n,
// r4 = predicate * n, r5 = n + i, r6 = rank.
// Compare-exchange registers: r0/r1 = keys, r2/r3 = values, r4/r5 = key
// min/max, r6 = swap flag, r7/r8 = routed values.
Generator<Step> stream(std::size_t n) {
  co_yield Step::immediate(1, 0);  // +0.0
  co_yield Step::immediate(3, trace::from_i64(static_cast<std::int64_t>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    co_yield Step::load(0, i);
    co_yield Step::alu(Op::kLtF, 2, 0, 1);  // secret predicate: v < 0
    co_yield Step::alu(Op::kMulI, 4, 2, 3);
    co_yield Step::immediate(5, trace::from_i64(static_cast<std::int64_t>(n + i)));
    co_yield Step::alu(Op::kSubI, 6, 5, 4);  // rank = pred ? i : n + i
    co_yield Step::store(n + i, 6);
    co_yield Step::store(i, 0);  // value passthrough: every output word is written
  }
  // Odd-even transposition network on the distinct ranks; strict-less swaps
  // keep it stable.  Values ride along via branch-free selects.
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = round % 2; i + 1 < n; i += 2) {
      co_yield Step::load(0, n + i);
      co_yield Step::load(1, n + i + 1);
      co_yield Step::load(2, i);
      co_yield Step::load(3, i + 1);
      co_yield Step::alu(Op::kMinI, 4, 0, 1);
      co_yield Step::alu(Op::kMaxI, 5, 0, 1);
      co_yield Step::alu(Op::kLtI, 6, 1, 0);  // right key smaller → swap
      co_yield Step::alu(Op::kSelect, 7, 6, 3, 2);
      co_yield Step::alu(Op::kSelect, 8, 6, 2, 3);
      co_yield Step::store(n + i, 4);
      co_yield Step::store(n + i + 1, 5);
      co_yield Step::store(i, 7);
      co_yield Step::store(i + 1, 8);
    }
  }
}

}  // namespace

trace::Program oblivious_partition_program(std::size_t n) {
  OBX_CHECK(n >= 1, "oblivious partition needs at least one element");
  trace::Program p;
  p.name = "oblivious-partition(n=" + std::to_string(n) + ")";
  p.memory_words = 2 * n;
  p.input_words = n;
  p.output_offset = 0;
  p.output_words = n;
  p.register_count = 9;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> oblivious_partition_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(n, -1000.0, 1000.0);
}

std::vector<Word> oblivious_partition_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == n, "input size mismatch");
  std::vector<Word> out(input.begin(), input.end());
  std::stable_partition(out.begin(), out.end(),
                        [](Word w) { return trace::as_f64(w) < 0.0; });
  return out;
}

std::uint64_t oblivious_partition_memory_steps(std::size_t n) {
  std::uint64_t steps = 3 * n;  // rank build: load + rank store + passthrough
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = round % 2; i + 1 < n; i += 2) steps += 8;
  }
  return steps;
}

}  // namespace obx::algos

#include "algos/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t bit_reverse(std::size_t i, std::size_t n) {
  std::size_t r = 0;
  for (std::size_t bit = 1; bit < n; bit <<= 1) {
    r <<= 1;
    r |= (i & 1);
    i >>= 1;
  }
  return r;
}

/// Twiddle e^{-2*pi*i*j/len}; shared by the generator and the native mirror so
/// both compute with identical doubles.
std::complex<double> twiddle(std::size_t j, std::size_t len) {
  const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                     static_cast<double>(len);
  return {std::cos(ang), std::sin(ang)};
}

// Registers: r0/r1 = u (re/im), r2/r3 = v, r4/r5 = t = v*w, r6 = scratch,
// r7 = scratch, r8/r9 = twiddle (re/im).
Generator<Step> stream(std::size_t n) {
  const auto re = [](std::size_t i) { return Addr{2 * i}; };
  const auto im = [](std::size_t i) { return Addr{2 * i + 1}; };

  // Bit-reversal permutation: swap pairs with i < rev(i).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse(i, n);
    if (i < j) {
      co_yield Step::load(0, re(i));
      co_yield Step::load(1, im(i));
      co_yield Step::load(2, re(j));
      co_yield Step::load(3, im(j));
      co_yield Step::store(re(i), 2);
      co_yield Step::store(im(i), 3);
      co_yield Step::store(re(j), 0);
      co_yield Step::store(im(j), 1);
    }
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = twiddle(j, len);
        co_yield Step::imm_f64(8, w.real());
        co_yield Step::imm_f64(9, w.imag());
        co_yield Step::load(0, re(base + j));
        co_yield Step::load(1, im(base + j));
        co_yield Step::load(2, re(base + j + half));
        co_yield Step::load(3, im(base + j + half));
        // t = v * w  (complex multiply)
        co_yield Step::alu(Op::kMulF, 4, 2, 8);  // vr*wr
        co_yield Step::alu(Op::kMulF, 6, 3, 9);  // vi*wi
        co_yield Step::alu(Op::kSubF, 4, 4, 6);  // tr = vr*wr - vi*wi
        co_yield Step::alu(Op::kMulF, 5, 2, 9);  // vr*wi
        co_yield Step::alu(Op::kMulF, 7, 3, 8);  // vi*wr
        co_yield Step::alu(Op::kAddF, 5, 5, 7);  // ti = vr*wi + vi*wr
        // a[base+j] = u + t; a[base+j+half] = u - t
        co_yield Step::alu(Op::kAddF, 6, 0, 4);
        co_yield Step::alu(Op::kAddF, 7, 1, 5);
        co_yield Step::store(re(base + j), 6);
        co_yield Step::store(im(base + j), 7);
        co_yield Step::alu(Op::kSubF, 6, 0, 4);
        co_yield Step::alu(Op::kSubF, 7, 1, 5);
        co_yield Step::store(re(base + j + half), 6);
        co_yield Step::store(im(base + j + half), 7);
      }
    }
  }
}

}  // namespace

trace::Program fft_program(std::size_t n) {
  OBX_CHECK(is_pow2(n), "FFT length must be a power of two");
  trace::Program p;
  p.name = "fft(n=" + std::to_string(n) + ")";
  p.memory_words = 2 * n;
  p.input_words = 2 * n;
  p.output_offset = 0;
  p.output_words = 2 * n;
  p.register_count = 10;
  p.stream = [n]() { return stream(n); };
  return p;
}

std::vector<Word> fft_random_input(std::size_t n, Rng& rng) {
  return rng.words_f64(2 * n, -1.0, 1.0);
}

void fft_native(std::span<double> a) {
  const std::size_t n = a.size() / 2;
  OBX_CHECK(a.size() == 2 * n && is_pow2(n), "interleaved array of 2n doubles, n power of 2");
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse(i, n);
    if (i < j) {
      std::swap(a[2 * i], a[2 * j]);
      std::swap(a[2 * i + 1], a[2 * j + 1]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = twiddle(j, len);
        const double ur = a[2 * (base + j)];
        const double ui = a[2 * (base + j) + 1];
        const double vr = a[2 * (base + j + half)];
        const double vi = a[2 * (base + j + half) + 1];
        // Mirror the program's exact operation order for bit-identity.
        const double tr = vr * w.real() - vi * w.imag();
        const double ti = vr * w.imag() + vi * w.real();
        a[2 * (base + j)] = ur + tr;
        a[2 * (base + j) + 1] = ui + ti;
        a[2 * (base + j + half)] = ur - tr;
        a[2 * (base + j + half) + 1] = ui - ti;
      }
    }
  }
}

std::vector<Word> fft_reference(std::size_t n, std::span<const Word> input) {
  OBX_CHECK(input.size() == 2 * n, "input must hold 2n words");
  std::vector<double> vals(2 * n);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = trace::as_f64(input[i]);
  fft_native(vals);
  std::vector<Word> out(2 * n);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = trace::from_f64(vals[i]);
  return out;
}

std::uint64_t fft_memory_steps(std::size_t n) {
  std::uint64_t swaps = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < bit_reverse(i, n)) ++swaps;
  }
  std::uint64_t butterflies = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) butterflies += n / 2;
  return 8 * swaps + 8 * butterflies;
}

}  // namespace obx::algos

#include "algos/algorithm.hpp"

#include "algos/bitonic_sort.hpp"
#include "algos/convolution.hpp"
#include "algos/edit_distance.hpp"
#include "algos/fft.hpp"
#include "algos/floyd_warshall.hpp"
#include "algos/horner.hpp"
#include "algos/lu_decomposition.hpp"
#include "algos/matmul.hpp"
#include "algos/oblivious_aggregate.hpp"
#include "algos/oblivious_merge.hpp"
#include "algos/oblivious_partition.hpp"
#include "algos/odd_even_sort.hpp"
#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "algos/summed_area.hpp"
#include "algos/tea_cipher.hpp"
#include "common/check.hpp"

namespace obx::algos {

const std::vector<Algorithm>& registry() {
  static const std::vector<Algorithm> algorithms = [] {
    std::vector<Algorithm> list;

    list.push_back(Algorithm{
        .name = "prefix-sums",
        .description = "running sums of an f64 array (paper Section III)",
        .make_program = prefix_sums_program,
        .make_input = prefix_sums_random_input,
        .reference = prefix_sums_reference,
        .memory_steps = prefix_sums_memory_steps,
        .test_sizes = {1, 2, 3, 32, 100, 1024},
    });

    list.push_back(Algorithm{
        .name = "opt-triangulation",
        .description = "optimal convex-polygon triangulation DP (paper Section IV)",
        .make_program = opt_program,
        .make_input = opt_random_input,
        .reference = opt_reference,
        .memory_steps = opt_memory_steps,
        .test_sizes = {3, 4, 5, 8, 16, 32},
    });

    list.push_back(Algorithm{
        .name = "fft",
        .description = "radix-2 in-place FFT over interleaved complex f64",
        .make_program = fft_program,
        .make_input = fft_random_input,
        .reference = fft_reference,
        .memory_steps = fft_memory_steps,
        .test_sizes = {1, 2, 4, 8, 64, 256},
    });

    list.push_back(Algorithm{
        .name = "bitonic-sort",
        .description = "Batcher's bitonic sorting network, ascending f64",
        .make_program = bitonic_sort_program,
        .make_input = bitonic_sort_random_input,
        .reference = bitonic_sort_reference,
        .memory_steps = bitonic_sort_memory_steps,
        .test_sizes = {1, 2, 3, 5, 8, 12, 64, 100, 256},
    });

    list.push_back(Algorithm{
        .name = "matmul",
        .description = "dense n x n matrix multiply, i-j-k order",
        .make_program = matmul_program,
        .make_input = matmul_random_input,
        .reference = matmul_reference,
        .memory_steps = matmul_memory_steps,
        .test_sizes = {1, 2, 4, 8, 16},
    });

    list.push_back(Algorithm{
        .name = "edit-distance",
        .description = "Levenshtein DP over two length-n strings",
        .make_program = edit_distance_program,
        .make_input = edit_distance_random_input,
        .reference = edit_distance_reference,
        .memory_steps = edit_distance_memory_steps,
        .test_sizes = {1, 2, 8, 32},
    });

    list.push_back(Algorithm{
        .name = "tea",
        .description = "TEA block cipher, 32 rounds per 64-bit block",
        .make_program = tea_program,
        .make_input = tea_random_input,
        .reference = tea_reference,
        .memory_steps = tea_memory_steps,
        .test_sizes = {1, 2, 8, 32},
    });

    list.push_back(Algorithm{
        .name = "convolution",
        .description = "8-tap FIR filter over n samples",
        .make_program = convolution_program,
        .make_input = convolution_random_input,
        .reference = convolution_reference,
        .memory_steps = convolution_memory_steps,
        .test_sizes = {8, 16, 64, 256},
    });

    list.push_back(Algorithm{
        .name = "floyd-warshall",
        .description = "all-pairs shortest paths over an n-vertex digraph",
        .make_program = floyd_warshall_program,
        .make_input = floyd_warshall_random_input,
        .reference = floyd_warshall_reference,
        .memory_steps = floyd_warshall_memory_steps,
        .test_sizes = {1, 2, 4, 8, 16},
    });

    list.push_back(Algorithm{
        .name = "summed-area",
        .description = "integral image (2-D prefix sums) over an n x n image",
        .make_program = summed_area_program,
        .make_input = summed_area_random_input,
        .reference = summed_area_reference,
        .memory_steps = summed_area_memory_steps,
        .test_sizes = {1, 2, 4, 16, 32},
    });

    list.push_back(Algorithm{
        .name = "odd-even-sort",
        .description = "odd-even transposition sorting network, ascending f64",
        .make_program = odd_even_sort_program,
        .make_input = odd_even_sort_random_input,
        .reference = odd_even_sort_reference,
        .memory_steps = odd_even_sort_memory_steps,
        .test_sizes = {1, 2, 3, 8, 64},
    });

    list.push_back(Algorithm{
        .name = "lu",
        .description = "LU decomposition without pivoting (Doolittle, in place)",
        .make_program = lu_program,
        .make_input = lu_random_input,
        .reference = lu_reference,
        .memory_steps = lu_memory_steps,
        .test_sizes = {1, 2, 4, 8, 16},
    });

    list.push_back(Algorithm{
        .name = "horner",
        .description = "polynomial evaluation by Horner's rule, n coefficients",
        .make_program = horner_program,
        .make_input = horner_random_input,
        .reference = horner_reference,
        .memory_steps = horner_memory_steps,
        .test_sizes = {1, 2, 32, 256},
    });

    list.push_back(Algorithm{
        .name = "oblivious-merge",
        .description = "bitonic merge of two sorted runs (Ramachandran-Shi family)",
        .make_program = oblivious_merge_program,
        .make_input = oblivious_merge_random_input,
        .reference = oblivious_merge_reference,
        .memory_steps = oblivious_merge_memory_steps,
        .test_sizes = {1, 2, 3, 5, 12, 33, 100},
    });

    list.push_back(Algorithm{
        .name = "oblivious-partition",
        .description = "stable tight compaction by a secret predicate (v < 0 first)",
        .make_program = oblivious_partition_program,
        .make_input = oblivious_partition_random_input,
        .reference = oblivious_partition_reference,
        .memory_steps = oblivious_partition_memory_steps,
        .test_sizes = {1, 2, 3, 5, 12, 33, 64},
    });

    list.push_back(Algorithm{
        .name = "oblivious-aggregate",
        .description = "grouped sum via oblivious sort + segmented scan",
        .make_program = oblivious_aggregate_program,
        .make_input = oblivious_aggregate_random_input,
        .reference = oblivious_aggregate_reference,
        .memory_steps = oblivious_aggregate_memory_steps,
        .test_sizes = {1, 2, 3, 5, 12, 33, 48},
    });

    return list;
  }();
  return algorithms;
}

const Algorithm& find(const std::string& name) {
  for (const Algorithm& a : registry()) {
    if (a.name == name) return a;
  }
  OBX_CHECK(false, "unknown algorithm: " + name);
  return registry().front();
}

}  // namespace obx::algos

#include "algos/tea_cipher.hpp"

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::algos {

using trace::Op;
using trace::Step;

namespace {

constexpr std::uint32_t kDelta = 0x9e3779b9u;
constexpr Word kMask32 = 0xffffffffULL;

// Registers: r0 = v0, r1 = v1, r2..r5 = k0..k3, r6 = sum, r7 = mask,
// r8..r10 = scratch, r11 = shift-4, r12 = shift-5.
Generator<Step> stream(std::size_t blocks) {
  co_yield Step::immediate(7, kMask32);
  co_yield Step::immediate(11, Word{4});
  co_yield Step::immediate(12, Word{5});
  for (std::uint8_t r = 0; r < 4; ++r) {
    co_yield Step::load(static_cast<std::uint8_t>(2 + r), Addr{r});
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    const Addr v0 = 4 + 2 * b;
    const Addr v1 = v0 + 1;
    co_yield Step::load(0, v0);
    co_yield Step::load(1, v1);
    for (std::uint32_t round = 1; round <= 32; ++round) {
      // sum is a round constant: embed it as an immediate.
      co_yield Step::immediate(6, Word{kDelta} * round & kMask32);
      // v0 += ((v1<<4)+k0) ^ (v1+sum) ^ ((v1>>5)+k1), all mod 2^32.
      co_yield Step::alu(Op::kShl, 8, 1, 11);
      co_yield Step::alu(Op::kAddI, 8, 8, 2);
      co_yield Step::alu(Op::kAddI, 9, 1, 6);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAnd, 9, 1, 7);   // v1 masked before >>5
      co_yield Step::alu(Op::kShr, 9, 9, 12);
      co_yield Step::alu(Op::kAddI, 9, 9, 3);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAddI, 0, 0, 8);
      co_yield Step::alu(Op::kAnd, 0, 0, 7);
      // v1 += ((v0<<4)+k2) ^ (v0+sum) ^ ((v0>>5)+k3), all mod 2^32.
      co_yield Step::alu(Op::kShl, 8, 0, 11);
      co_yield Step::alu(Op::kAddI, 8, 8, 4);
      co_yield Step::alu(Op::kAddI, 9, 0, 6);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAnd, 9, 0, 7);
      co_yield Step::alu(Op::kShr, 9, 9, 12);
      co_yield Step::alu(Op::kAddI, 9, 9, 5);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAddI, 1, 1, 8);
      co_yield Step::alu(Op::kAnd, 1, 1, 7);
    }
    co_yield Step::store(v0, 0);
    co_yield Step::store(v1, 1);
  }
}

// Inverse rounds: registers as in `stream`, sum counting down.
Generator<Step> decrypt_stream(std::size_t blocks) {
  co_yield Step::immediate(7, kMask32);
  co_yield Step::immediate(11, Word{4});
  co_yield Step::immediate(12, Word{5});
  for (std::uint8_t r = 0; r < 4; ++r) {
    co_yield Step::load(static_cast<std::uint8_t>(2 + r), Addr{r});
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    const Addr v0 = 4 + 2 * b;
    const Addr v1 = v0 + 1;
    co_yield Step::load(0, v0);
    co_yield Step::load(1, v1);
    for (std::uint32_t round = 32; round >= 1; --round) {
      co_yield Step::immediate(6, Word{kDelta} * round & kMask32);
      // v1 -= ((v0<<4)+k2) ^ (v0+sum) ^ ((v0>>5)+k3), mod 2^32.
      co_yield Step::alu(Op::kShl, 8, 0, 11);
      co_yield Step::alu(Op::kAddI, 8, 8, 4);
      co_yield Step::alu(Op::kAddI, 9, 0, 6);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAnd, 9, 0, 7);
      co_yield Step::alu(Op::kShr, 9, 9, 12);
      co_yield Step::alu(Op::kAddI, 9, 9, 5);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kSubI, 1, 1, 8);
      co_yield Step::alu(Op::kAnd, 1, 1, 7);
      // v0 -= ((v1<<4)+k0) ^ (v1+sum) ^ ((v1>>5)+k1), mod 2^32.
      co_yield Step::alu(Op::kShl, 8, 1, 11);
      co_yield Step::alu(Op::kAddI, 8, 8, 2);
      co_yield Step::alu(Op::kAddI, 9, 1, 6);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kAnd, 9, 1, 7);
      co_yield Step::alu(Op::kShr, 9, 9, 12);
      co_yield Step::alu(Op::kAddI, 9, 9, 3);
      co_yield Step::alu(Op::kXor, 8, 8, 9);
      co_yield Step::alu(Op::kSubI, 0, 0, 8);
      co_yield Step::alu(Op::kAnd, 0, 0, 7);
    }
    co_yield Step::store(v0, 0);
    co_yield Step::store(v1, 1);
  }
}

}  // namespace

trace::Program tea_decrypt_program(std::size_t blocks) {
  OBX_CHECK(blocks > 0, "need at least one block");
  trace::Program p;
  p.name = "tea-decrypt(blocks=" + std::to_string(blocks) + ")";
  p.memory_words = 4 + 2 * blocks;
  p.input_words = 4 + 2 * blocks;
  p.output_offset = 4;
  p.output_words = 2 * blocks;
  p.register_count = 13;
  p.stream = [blocks]() { return decrypt_stream(blocks); };
  return p;
}

void tea_decrypt_block(std::uint32_t v[2], const std::uint32_t k[4]) {
  std::uint32_t v0 = v[0];
  std::uint32_t v1 = v[1];
  std::uint32_t sum = kDelta * 32;
  for (int round = 0; round < 32; ++round) {
    v1 -= ((v0 << 4) + k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + k[3]);
    v0 -= ((v1 << 4) + k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + k[1]);
    sum -= kDelta;
  }
  v[0] = v0;
  v[1] = v1;
}

trace::Program tea_program(std::size_t blocks) {
  OBX_CHECK(blocks > 0, "need at least one block");
  trace::Program p;
  p.name = "tea(blocks=" + std::to_string(blocks) + ")";
  p.memory_words = 4 + 2 * blocks;
  p.input_words = 4 + 2 * blocks;
  p.output_offset = 4;
  p.output_words = 2 * blocks;
  p.register_count = 13;
  p.stream = [blocks]() { return stream(blocks); };
  return p;
}

std::vector<Word> tea_random_input(std::size_t blocks, Rng& rng) {
  return rng.words_u64(4 + 2 * blocks, 1ULL << 32);
}

void tea_encrypt_block(std::uint32_t v[2], const std::uint32_t k[4]) {
  std::uint32_t v0 = v[0];
  std::uint32_t v1 = v[1];
  std::uint32_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    sum += kDelta;
    v0 += ((v1 << 4) + k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + k[1]);
    v1 += ((v0 << 4) + k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + k[3]);
  }
  v[0] = v0;
  v[1] = v1;
}

std::vector<Word> tea_reference(std::size_t blocks, std::span<const Word> input) {
  OBX_CHECK(input.size() == 4 + 2 * blocks, "input must hold key + blocks");
  std::uint32_t k[4];
  for (int i = 0; i < 4; ++i) k[i] = static_cast<std::uint32_t>(input[static_cast<std::size_t>(i)]);
  std::vector<Word> out(2 * blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint32_t v[2] = {static_cast<std::uint32_t>(input[4 + 2 * b]),
                          static_cast<std::uint32_t>(input[4 + 2 * b + 1])};
    tea_encrypt_block(v, k);
    out[2 * b] = v[0];
    out[2 * b + 1] = v[1];
  }
  return out;
}

std::uint64_t tea_memory_steps(std::size_t blocks) { return 4 + 4 * blocks; }

}  // namespace obx::algos

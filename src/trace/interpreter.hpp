// Scalar reference interpreter: runs an oblivious program for ONE input on
// the sequential RAM of the paper.  Used as the semantic ground truth that
// every bulk executor must reproduce bit-for-bit, and as the unit-cost RAM
// baseline (one time unit per memory step).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::trace {

struct InterpreterResult {
  std::vector<Word> memory;  ///< final canonical memory image
  StepCounts counts;         ///< steps executed by kind

  /// RAM time: one unit per memory step, matching the paper's convention of
  /// charging local computation zero time.
  std::uint64_t ram_time() const { return counts.memory(); }

  /// The program's declared output region.
  std::span<const Word> output(const Program& p) const {
    return std::span<const Word>(memory).subspan(p.output_offset, p.output_words);
  }
};

/// Executes `program` with the first input.size() memory words initialised
/// from `input` (the rest zero).  input.size() must equal program.input_words.
InterpreterResult interpret(const Program& program, std::span<const Word> input);

}  // namespace obx::trace

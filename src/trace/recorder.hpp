// Recorder: the sequential-to-bulk conversion front end.
//
// The paper's conclusion sketches, as future work, "a conversion system that
// automatically converts a sequential program written in C language into a
// CUDA C program for the bulk execution".  This is that system for C++: the
// user writes the plain sequential algorithm against typed value handles
// (FVal/IVal/UVal) and memory accessors; every arithmetic operator emits an
// ALU step and every accessor emits a load/store step with a *literal*
// address.  The recorded Program is oblivious by construction — a value
// handle cannot be converted to bool or used as an index, so data-dependent
// control flow and data-dependent addressing are compile errors, and the
// oblivious `if r < s then s←r else s←s` idiom is expressed with cmov_lt.
//
//   Recorder rec(n);
//   auto r = rec.fimm(0.0);
//   for (Addr i = 0; i < n; ++i) {
//     r = r + rec.fload(i);     // read b[i]
//     rec.fstore(i, r);         // write prefix sum
//   }
//   Program prefix = std::move(rec).finish("prefix-sums", n, 0, n);
//
// Handles are value types: operations produce fresh registers, copies share a
// register, and the recorder recycles registers whose handles have died, so
// recorded loops use a bounded register file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/program.hpp"
#include "trace/step.hpp"

namespace obx::trace {

class Recorder;

namespace detail {

/// Internal gateway used by the free operator functions (keeps Recorder's
/// emission machinery out of the public API).
struct RecorderAccess;

/// Shared refcounted register handle; base of the typed value wrappers.
class RegHandle {
 public:
  RegHandle() = default;
  RegHandle(Recorder* rec, std::uint8_t idx);
  RegHandle(const RegHandle& other);
  RegHandle(RegHandle&& other) noexcept;
  RegHandle& operator=(const RegHandle& other);
  RegHandle& operator=(RegHandle&& other) noexcept;
  ~RegHandle();

  bool bound() const { return rec_ != nullptr; }
  std::uint8_t index() const;
  Recorder* recorder() const { return rec_; }

 private:
  void retain();
  void release();
  Recorder* rec_ = nullptr;
  std::uint8_t idx_ = 0;
};

}  // namespace detail

class Recorder {
 public:
  /// memory_words: size of the canonical per-input array the recorded
  /// program addresses.
  explicit Recorder(std::size_t memory_words);

  class FVal;  // IEEE double
  class IVal;  // signed 64-bit
  class UVal;  // raw 64-bit / bitwise

  // --- constants -----------------------------------------------------------
  FVal fimm(double v);
  IVal iimm(std::int64_t v);
  UVal uimm(Word v);

  // --- memory --------------------------------------------------------------
  FVal fload(Addr a);
  IVal iload(Addr a);
  UVal uload(Addr a);
  void fstore(Addr a, const FVal& v);
  void istore(Addr a, const IVal& v);
  void ustore(Addr a, const UVal& v);

  // --- oblivious conditionals ----------------------------------------------
  /// dst = (a < b) ? src : dst, in constant time (paper's dummy-else trick).
  void cmov_lt(FVal& dst, const FVal& a, const FVal& b, const FVal& src);
  void cmov_lt(IVal& dst, const IVal& a, const IVal& b, const IVal& src);

  // --- named ops not covered by operators -----------------------------------
  FVal fmin(const FVal& a, const FVal& b);
  FVal fmax(const FVal& a, const FVal& b);
  IVal imin(const IVal& a, const IVal& b);
  IVal imax(const IVal& a, const IVal& b);

  /// Seals the recording.  The recorder is consumed (rvalue-qualified); all
  /// value handles must have been destroyed or be destroyed before the
  /// Recorder itself goes out of scope.
  Program finish(std::string name, std::size_t input_words, std::size_t output_offset,
                 std::size_t output_words) &&;

  std::size_t steps_recorded() const { return steps_.size(); }
  std::size_t registers_used() const { return high_water_; }

 private:
  friend class detail::RegHandle;
  friend struct detail::RecorderAccess;
  friend class FVal;
  friend class IVal;
  friend class UVal;

  std::uint8_t alloc_reg();
  void retain_reg(std::uint8_t idx);
  void release_reg(std::uint8_t idx);
  std::uint8_t emit_binary(Op op, std::uint8_t a, std::uint8_t b);
  std::uint8_t emit_imm(Word v);
  std::uint8_t emit_load(Addr a);
  void emit_store(Addr a, std::uint8_t src);
  /// Gives `h` sole ownership of its register, copying it first if shared.
  void make_unique(detail::RegHandle& h);

  std::size_t memory_words_;
  std::vector<Step> steps_;
  std::vector<std::uint16_t> refcounts_;
  std::vector<std::uint8_t> free_list_;
  std::size_t high_water_ = 0;
  bool finished_ = false;
};

// Typed wrappers.  Construction is private to the Recorder; arithmetic is via
// free operators declared below.
class Recorder::FVal : public detail::RegHandle {
 public:
  FVal() = default;

 private:
  friend class Recorder;
  friend struct detail::RecorderAccess;
  using detail::RegHandle::RegHandle;
};

class Recorder::IVal : public detail::RegHandle {
 public:
  IVal() = default;

 private:
  friend class Recorder;
  friend struct detail::RecorderAccess;
  using detail::RegHandle::RegHandle;
};

class Recorder::UVal : public detail::RegHandle {
 public:
  UVal() = default;

 private:
  friend class Recorder;
  friend struct detail::RecorderAccess;
  using detail::RegHandle::RegHandle;
};

Recorder::FVal operator+(const Recorder::FVal& a, const Recorder::FVal& b);
Recorder::FVal operator-(const Recorder::FVal& a, const Recorder::FVal& b);
Recorder::FVal operator*(const Recorder::FVal& a, const Recorder::FVal& b);
Recorder::FVal operator/(const Recorder::FVal& a, const Recorder::FVal& b);

Recorder::IVal operator+(const Recorder::IVal& a, const Recorder::IVal& b);
Recorder::IVal operator-(const Recorder::IVal& a, const Recorder::IVal& b);
Recorder::IVal operator*(const Recorder::IVal& a, const Recorder::IVal& b);

Recorder::UVal operator&(const Recorder::UVal& a, const Recorder::UVal& b);
Recorder::UVal operator|(const Recorder::UVal& a, const Recorder::UVal& b);
Recorder::UVal operator^(const Recorder::UVal& a, const Recorder::UVal& b);
Recorder::UVal operator<<(const Recorder::UVal& a, const Recorder::UVal& b);
Recorder::UVal operator>>(const Recorder::UVal& a, const Recorder::UVal& b);
Recorder::UVal operator+(const Recorder::UVal& a, const Recorder::UVal& b);

}  // namespace obx::trace

// The oblivious-program instruction set.
//
// A Step is one time unit of the sequential RAM of the paper: either a memory
// access at a *fixed* canonical address (data independence is structural —
// the address is a field of the instruction, never computed from register
// contents), or a register-only ALU operation.  Bulk executors apply each
// step across all p lanes in lockstep.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace obx::trace {

enum class StepKind : std::uint8_t {
  kLoad,   ///< reg[dst] = mem[addr]
  kStore,  ///< mem[addr] = reg[src0]
  kAlu,    ///< reg[dst] = op(reg[src0], reg[src1], reg[src2], reg[dst])
  kImm,    ///< reg[dst] = imm
};

enum class Op : std::uint8_t {
  kNop,
  // IEEE-double arithmetic (operands/result bit-cast).
  kAddF,
  kSubF,
  kMulF,
  kDivF,
  kMinF,
  kMaxF,
  kNegF,
  // Two's-complement signed 64-bit arithmetic.
  kAddI,
  kSubI,
  kMulI,
  kMinI,
  kMaxI,
  // Raw 64-bit / bitwise.
  kAnd,
  kOr,
  kXor,
  kShl,  ///< dst = src0 << (src1 & 63)
  kShr,  ///< dst = src0 >> (src1 & 63)  (logical)
  kNotU,
  // Comparisons producing Word 0/1.
  kLtF,
  kLeF,
  kEqF,
  kLtI,
  kLeI,
  kEqI,
  kNeI,
  kLtU,
  // Ternary / conditional data movement (the oblivious "if" of the paper:
  // both branches take the same time and touch no memory).
  kSelect,   ///< dst = (src0 != 0) ? src1 : src2
  kCmovLtF,  ///< dst = (f64(src0) < f64(src1)) ? src2 : dst
  kCmovLtI,  ///< dst = (i64(src0) < i64(src1)) ? src2 : dst
  kMov,      ///< dst = src0
};

struct Step {
  StepKind kind = StepKind::kAlu;
  Op op = Op::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src0 = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  Addr addr = 0;
  Word imm = 0;

  static Step load(std::uint8_t dst, Addr addr) {
    Step s;
    s.kind = StepKind::kLoad;
    s.dst = dst;
    s.addr = addr;
    return s;
  }
  static Step store(Addr addr, std::uint8_t src) {
    Step s;
    s.kind = StepKind::kStore;
    s.src0 = src;
    s.addr = addr;
    return s;
  }
  static Step alu(Op op, std::uint8_t dst, std::uint8_t a, std::uint8_t b = 0,
                  std::uint8_t c = 0) {
    Step s;
    s.kind = StepKind::kAlu;
    s.op = op;
    s.dst = dst;
    s.src0 = a;
    s.src1 = b;
    s.src2 = c;
    return s;
  }
  static Step immediate(std::uint8_t dst, Word value) {
    Step s;
    s.kind = StepKind::kImm;
    s.dst = dst;
    s.imm = value;
    return s;
  }
  static Step imm_f64(std::uint8_t dst, double value);

  bool is_memory() const { return kind == StepKind::kLoad || kind == StepKind::kStore; }

  bool operator==(const Step&) const = default;
};

/// Applies an ALU op: returns the new value of the destination register.
/// `old_dst` feeds the cmov family, which may leave the destination unchanged.
Word apply_alu(Op op, Word a, Word b, Word c, Word old_dst);

/// Applies one ALU op across `count` lanes: dst[i] = op(a[i], b[i], c[i],
/// dst[i]).  The op dispatch is hoisted out of the lane loop so the loop
/// vectorises — this is the hot path of the lockstep host executor.
void bulk_alu(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
              std::size_t count);

std::string to_string(const Step& step);
std::string to_string(Op op);

}  // namespace obx::trace

// ALU op semantics with the opcode resolved at compile time.
//
// The one definition of what every trace::Op computes on a lane:
// apply_one<OP> is the constexpr-op form that fused kernels and vector lane
// loops inline; dispatch_op hoists the runtime opcode switch out of lane
// loops by re-entering a generic lambda with the op as an
// integral_constant.  trace::apply_alu and trace::bulk_alu are thin wrappers
// over these, as are every compiled-backend kernel — so integer wrap
// (unsigned two's-complement), lane-wise IEEE double semantics, and the
// cmov/select family behave bit-identically in every engine at every vector
// width.
//
// apply_one is force-inlined: SIMD translation units compile it under
// different target flags, and an out-of-line copy picked arbitrarily by the
// linker could carry instructions the running CPU lacks.
#pragma once

#include <type_traits>

#include "common/check.hpp"
#include "common/types.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

#if defined(__GNUC__)
#define OBX_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define OBX_ALWAYS_INLINE inline
#endif

namespace obx::trace {

/// The single quiet-NaN bit pattern every engine produces for a NaN
/// arithmetic result.
inline constexpr Word kCanonicalNaN = Word{0x7ff8000000000000ULL};

/// Bit-casts an arithmetic result back to a Word, canonicalizing NaN.
/// Hardware NaN-payload propagation picks a payload from the *first* source
/// operand of the instruction — and the compiler may commute a `+` or `*`
/// differently in scalar codegen than in the SLP-vectorized copy of this
/// same expression, so two engines computing `a + b` on two NaNs can return
/// different bit patterns.  Collapsing every NaN result to one canonical
/// pattern is what makes "bit-identical in every engine at every vector
/// width" true for the float ops (found by check::run_fuzz, sse2 vs scalar).
OBX_ALWAYS_INLINE Word from_f64_canon(double r) {
  return r != r ? kCanonicalNaN : from_f64(r);
}

/// apply_alu with the op as a template parameter: `x op y` (z = second
/// ternary operand, d = old destination for the cmov family).
template <Op OP>
OBX_ALWAYS_INLINE Word apply_one(Word x, Word y, Word z, Word d) {
  (void)x; (void)y; (void)z; (void)d;
  if constexpr (OP == Op::kNop) return d;
  else if constexpr (OP == Op::kAddF) return from_f64_canon(as_f64(x) + as_f64(y));
  else if constexpr (OP == Op::kSubF) return from_f64_canon(as_f64(x) - as_f64(y));
  else if constexpr (OP == Op::kMulF) return from_f64_canon(as_f64(x) * as_f64(y));
  else if constexpr (OP == Op::kDivF) return from_f64_canon(as_f64(x) / as_f64(y));
  else if constexpr (OP == Op::kMinF) return from_f64(as_f64(x) < as_f64(y) ? as_f64(x) : as_f64(y));
  else if constexpr (OP == Op::kMaxF) return from_f64(as_f64(x) > as_f64(y) ? as_f64(x) : as_f64(y));
  else if constexpr (OP == Op::kNegF) return from_f64(-as_f64(x));
  else if constexpr (OP == Op::kAddI) return x + y;  // wrap via unsigned arithmetic
  else if constexpr (OP == Op::kSubI) return x - y;
  else if constexpr (OP == Op::kMulI) return x * y;
  else if constexpr (OP == Op::kMinI) return from_i64(as_i64(x) < as_i64(y) ? as_i64(x) : as_i64(y));
  else if constexpr (OP == Op::kMaxI) return from_i64(as_i64(x) > as_i64(y) ? as_i64(x) : as_i64(y));
  else if constexpr (OP == Op::kAnd) return x & y;
  else if constexpr (OP == Op::kOr) return x | y;
  else if constexpr (OP == Op::kXor) return x ^ y;
  else if constexpr (OP == Op::kShl) return x << (y & 63);
  else if constexpr (OP == Op::kShr) return x >> (y & 63);
  else if constexpr (OP == Op::kNotU) return ~x;
  else if constexpr (OP == Op::kLtF) return from_bool(as_f64(x) < as_f64(y));
  else if constexpr (OP == Op::kLeF) return from_bool(as_f64(x) <= as_f64(y));
  else if constexpr (OP == Op::kEqF) return from_bool(as_f64(x) == as_f64(y));
  else if constexpr (OP == Op::kLtI) return from_bool(as_i64(x) < as_i64(y));
  else if constexpr (OP == Op::kLeI) return from_bool(as_i64(x) <= as_i64(y));
  else if constexpr (OP == Op::kEqI) return from_bool(x == y);
  else if constexpr (OP == Op::kNeI) return from_bool(x != y);
  else if constexpr (OP == Op::kLtU) return from_bool(x < y);
  else if constexpr (OP == Op::kSelect) return x != 0 ? y : z;
  else if constexpr (OP == Op::kCmovLtF) return as_f64(x) < as_f64(y) ? z : d;
  else if constexpr (OP == Op::kCmovLtI) return as_i64(x) < as_i64(y) ? z : d;
  else if constexpr (OP == Op::kMov) return x;
}

/// Invokes f(integral_constant<Op, op>{}) — resolves a runtime opcode into a
/// compile-time one exactly once, outside the lane loop.
template <class F>
OBX_ALWAYS_INLINE void dispatch_op(Op op, F&& f) {
#define OBX_TRACE_OP(O)                             \
  case Op::O:                                       \
    f(std::integral_constant<Op, Op::O>{});         \
    return;
  switch (op) {
    OBX_TRACE_OP(kNop)
    OBX_TRACE_OP(kAddF)
    OBX_TRACE_OP(kSubF)
    OBX_TRACE_OP(kMulF)
    OBX_TRACE_OP(kDivF)
    OBX_TRACE_OP(kMinF)
    OBX_TRACE_OP(kMaxF)
    OBX_TRACE_OP(kNegF)
    OBX_TRACE_OP(kAddI)
    OBX_TRACE_OP(kSubI)
    OBX_TRACE_OP(kMulI)
    OBX_TRACE_OP(kMinI)
    OBX_TRACE_OP(kMaxI)
    OBX_TRACE_OP(kAnd)
    OBX_TRACE_OP(kOr)
    OBX_TRACE_OP(kXor)
    OBX_TRACE_OP(kShl)
    OBX_TRACE_OP(kShr)
    OBX_TRACE_OP(kNotU)
    OBX_TRACE_OP(kLtF)
    OBX_TRACE_OP(kLeF)
    OBX_TRACE_OP(kEqF)
    OBX_TRACE_OP(kLtI)
    OBX_TRACE_OP(kLeI)
    OBX_TRACE_OP(kEqI)
    OBX_TRACE_OP(kNeI)
    OBX_TRACE_OP(kLtU)
    OBX_TRACE_OP(kSelect)
    OBX_TRACE_OP(kCmovLtF)
    OBX_TRACE_OP(kCmovLtI)
    OBX_TRACE_OP(kMov)
  }
#undef OBX_TRACE_OP
  OBX_CHECK(false, "unknown ALU op");
}

namespace detail {

/// Generic lockstep ALU sweep.  `Tag` exists so each SIMD translation unit
/// owns a distinct instantiation: the loop body is identical C++, but the TU
/// compiles it under its own target flags, and distinct symbols keep the
/// linker from folding a wide-vector body into a baseline caller.
template <int Tag>
void bulk_alu_tagged(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
                     std::size_t count) {
  dispatch_op(op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    for (std::size_t i = 0; i < count; ++i) {
      dst[i] = apply_one<OP>(a[i], b[i], c[i], dst[i]);
    }
  });
}

}  // namespace detail

}  // namespace obx::trace

#include "trace/oblivious_checker.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace obx::trace {

TraceMemory::TraceMemory(std::vector<Word> initial) : cells_(std::move(initial)) {}

Word TraceMemory::load(Addr a) {
  OBX_CHECK(a < cells_.size(), "TraceMemory load out of bounds");
  trace_.push_back(a);
  return cells_[a];
}

void TraceMemory::store(Addr a, Word v) {
  OBX_CHECK(a < cells_.size(), "TraceMemory store out of bounds");
  trace_.push_back(a);
  cells_[a] = v;
}

double TraceMemory::load_f64(Addr a) { return std::bit_cast<double>(load(a)); }
void TraceMemory::store_f64(Addr a, double v) { store(a, std::bit_cast<Word>(v)); }

namespace {

std::vector<Addr> program_address_trace(const Program& program) {
  std::vector<Addr> trace;
  auto gen = program.stream();
  for (const Step& s : gen) {
    if (s.is_memory()) trace.push_back(s.addr);
  }
  return trace;
}

std::optional<std::string> compare_traces(const std::vector<Addr>& a,
                                          const std::vector<Addr>& b, int trial) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "trace length differs on trial " << trial << ": " << a.size() << " vs "
       << b.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::ostringstream os;
      os << "address differs at step " << i << " on trial " << trial << ": " << a[i]
         << " vs " << b[i];
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace

ObliviousnessReport check_program(const Program& program, int trials) {
  OBX_CHECK(trials >= 1, "at least one trial");
  ObliviousnessReport report;
  report.access_function = program_address_trace(program);
  for (int t = 1; t < trials; ++t) {
    const std::vector<Addr> replay = program_address_trace(program);
    if (auto mismatch = compare_traces(report.access_function, replay, t)) {
      report.oblivious = false;
      report.detail = "stream factory is not replay-deterministic: " + *mismatch;
      report.access_function.clear();
      return report;
    }
  }
  return report;
}

ObliviousnessReport check_callback(
    const std::function<void(TraceMemory&)>& algorithm, std::size_t input_words,
    int trials, std::uint64_t seed) {
  OBX_CHECK(trials >= 2, "need at least two trials to witness data independence");
  ObliviousnessReport report;
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    TraceMemory mem(rng.words_f64(input_words, -1e6, 1e6));
    algorithm(mem);
    if (t == 0) {
      report.access_function = mem.trace();
      continue;
    }
    if (auto mismatch = compare_traces(report.access_function, mem.trace(), t)) {
      report.oblivious = false;
      report.detail = "access trace depends on input data: " + *mismatch;
      report.access_function.clear();
      return report;
    }
  }
  return report;
}

}  // namespace obx::trace

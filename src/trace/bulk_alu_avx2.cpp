// trace::bulk_alu body compiled for AVX2 (256-bit: 4 words per iteration).
// This TU is only added to the build when the compiler accepts -mavx2; the
// dispatcher in step.cpp only calls it when the CPU reports AVX2.
#include "trace/alu_ops.hpp"

namespace obx::trace::detail {

void bulk_alu_avx2(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
                   std::size_t count) {
  bulk_alu_tagged<2>(op, dst, a, b, c, count);
}

}  // namespace obx::trace::detail

// Text serialisation of oblivious programs (.obx format).
//
// A readable, diff-able, machine-parsable dump: one header line with the
// declared regions, then one instruction per line in the assembly syntax of
// trace::to_string.  Round-trips exactly (including immediate bit patterns,
// which are hex).  Used by `obx_cli dump` and by golden tests.
//
//   obx 1 memory=8 input=8 output=0+8 regs=2 name="prefix-sums(n=8)"
//   imm r0, 0x0
//   load r1, [0]
//   addf r0, r0, r1, r0
//   store [0], r0
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "trace/program.hpp"

namespace obx::trace {

/// Writes `program` (streamed once) to `os`.
void serialize_program(const Program& program, std::ostream& os);

/// Convenience: serialise to a string.
std::string serialize_program(const Program& program);

/// Parses a .obx stream back into a replayable Program.  Throws
/// std::logic_error with a line number on malformed input.
Program parse_program(std::istream& is);
Program parse_program(const std::string& text);

}  // namespace obx::trace

#include "trace/step.hpp"

#include <sstream>

#include "common/check.hpp"
#include "trace/value.hpp"

namespace obx::trace {

Step Step::imm_f64(std::uint8_t dst, double value) {
  return immediate(dst, from_f64(value));
}

Word apply_alu(Op op, Word a, Word b, Word c, Word old_dst) {
  switch (op) {
    case Op::kNop:
      return old_dst;
    case Op::kAddF:
      return from_f64(as_f64(a) + as_f64(b));
    case Op::kSubF:
      return from_f64(as_f64(a) - as_f64(b));
    case Op::kMulF:
      return from_f64(as_f64(a) * as_f64(b));
    case Op::kDivF:
      return from_f64(as_f64(a) / as_f64(b));
    case Op::kMinF:
      return from_f64(as_f64(a) < as_f64(b) ? as_f64(a) : as_f64(b));
    case Op::kMaxF:
      return from_f64(as_f64(a) > as_f64(b) ? as_f64(a) : as_f64(b));
    case Op::kNegF:
      return from_f64(-as_f64(a));
    case Op::kAddI:
      return a + b;  // two's-complement wrap via unsigned arithmetic
    case Op::kSubI:
      return a - b;
    case Op::kMulI:
      return a * b;
    case Op::kMinI:
      return from_i64(as_i64(a) < as_i64(b) ? as_i64(a) : as_i64(b));
    case Op::kMaxI:
      return from_i64(as_i64(a) > as_i64(b) ? as_i64(a) : as_i64(b));
    case Op::kAnd:
      return a & b;
    case Op::kOr:
      return a | b;
    case Op::kXor:
      return a ^ b;
    case Op::kShl:
      return a << (b & 63);
    case Op::kShr:
      return a >> (b & 63);
    case Op::kNotU:
      return ~a;
    case Op::kLtF:
      return from_bool(as_f64(a) < as_f64(b));
    case Op::kLeF:
      return from_bool(as_f64(a) <= as_f64(b));
    case Op::kEqF:
      return from_bool(as_f64(a) == as_f64(b));
    case Op::kLtI:
      return from_bool(as_i64(a) < as_i64(b));
    case Op::kLeI:
      return from_bool(as_i64(a) <= as_i64(b));
    case Op::kEqI:
      return from_bool(a == b);
    case Op::kNeI:
      return from_bool(a != b);
    case Op::kLtU:
      return from_bool(a < b);
    case Op::kSelect:
      return a != 0 ? b : c;
    case Op::kCmovLtF:
      return as_f64(a) < as_f64(b) ? c : old_dst;
    case Op::kCmovLtI:
      return as_i64(a) < as_i64(b) ? c : old_dst;
    case Op::kMov:
      return a;
  }
  OBX_CHECK(false, "unknown ALU op");
  return old_dst;
}

namespace {

template <typename F>
void alu_loop(Word* dst, const Word* a, const Word* b, const Word* c, std::size_t count,
              F&& f) {
  for (std::size_t i = 0; i < count; ++i) dst[i] = f(a[i], b[i], c[i], dst[i]);
}

}  // namespace

void bulk_alu(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
              std::size_t count) {
#define OBX_ALU_CASE(OPCODE, EXPR)                                            \
  case OPCODE:                                                                \
    alu_loop(dst, a, b, c, count,                                             \
             [](Word x, Word y, Word z, Word d) -> Word {                     \
               (void)x; (void)y; (void)z; (void)d;                            \
               return (EXPR);                                                 \
             });                                                              \
    return;

  switch (op) {
    OBX_ALU_CASE(Op::kNop, d)
    OBX_ALU_CASE(Op::kAddF, from_f64(as_f64(x) + as_f64(y)))
    OBX_ALU_CASE(Op::kSubF, from_f64(as_f64(x) - as_f64(y)))
    OBX_ALU_CASE(Op::kMulF, from_f64(as_f64(x) * as_f64(y)))
    OBX_ALU_CASE(Op::kDivF, from_f64(as_f64(x) / as_f64(y)))
    OBX_ALU_CASE(Op::kMinF, from_f64(as_f64(x) < as_f64(y) ? as_f64(x) : as_f64(y)))
    OBX_ALU_CASE(Op::kMaxF, from_f64(as_f64(x) > as_f64(y) ? as_f64(x) : as_f64(y)))
    OBX_ALU_CASE(Op::kNegF, from_f64(-as_f64(x)))
    OBX_ALU_CASE(Op::kAddI, x + y)  // wrap via unsigned arithmetic
    OBX_ALU_CASE(Op::kSubI, x - y)
    OBX_ALU_CASE(Op::kMulI, x * y)
    OBX_ALU_CASE(Op::kMinI, from_i64(as_i64(x) < as_i64(y) ? as_i64(x) : as_i64(y)))
    OBX_ALU_CASE(Op::kMaxI, from_i64(as_i64(x) > as_i64(y) ? as_i64(x) : as_i64(y)))
    OBX_ALU_CASE(Op::kAnd, x & y)
    OBX_ALU_CASE(Op::kOr, x | y)
    OBX_ALU_CASE(Op::kXor, x ^ y)
    OBX_ALU_CASE(Op::kShl, x << (y & 63))
    OBX_ALU_CASE(Op::kShr, x >> (y & 63))
    OBX_ALU_CASE(Op::kNotU, ~x)
    OBX_ALU_CASE(Op::kLtF, from_bool(as_f64(x) < as_f64(y)))
    OBX_ALU_CASE(Op::kLeF, from_bool(as_f64(x) <= as_f64(y)))
    OBX_ALU_CASE(Op::kEqF, from_bool(as_f64(x) == as_f64(y)))
    OBX_ALU_CASE(Op::kLtI, from_bool(as_i64(x) < as_i64(y)))
    OBX_ALU_CASE(Op::kLeI, from_bool(as_i64(x) <= as_i64(y)))
    OBX_ALU_CASE(Op::kEqI, from_bool(x == y))
    OBX_ALU_CASE(Op::kNeI, from_bool(x != y))
    OBX_ALU_CASE(Op::kLtU, from_bool(x < y))
    OBX_ALU_CASE(Op::kSelect, x != 0 ? y : z)
    OBX_ALU_CASE(Op::kCmovLtF, as_f64(x) < as_f64(y) ? z : d)
    OBX_ALU_CASE(Op::kCmovLtI, as_i64(x) < as_i64(y) ? z : d)
    OBX_ALU_CASE(Op::kMov, x)
  }
#undef OBX_ALU_CASE
  OBX_CHECK(false, "unknown ALU op");
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kAddF: return "addf";
    case Op::kSubF: return "subf";
    case Op::kMulF: return "mulf";
    case Op::kDivF: return "divf";
    case Op::kMinF: return "minf";
    case Op::kMaxF: return "maxf";
    case Op::kNegF: return "negf";
    case Op::kAddI: return "addi";
    case Op::kSubI: return "subi";
    case Op::kMulI: return "muli";
    case Op::kMinI: return "mini";
    case Op::kMaxI: return "maxi";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kNotU: return "not";
    case Op::kLtF: return "ltf";
    case Op::kLeF: return "lef";
    case Op::kEqF: return "eqf";
    case Op::kLtI: return "lti";
    case Op::kLeI: return "lei";
    case Op::kEqI: return "eqi";
    case Op::kNeI: return "nei";
    case Op::kLtU: return "ltu";
    case Op::kSelect: return "select";
    case Op::kCmovLtF: return "cmovltf";
    case Op::kCmovLtI: return "cmovlti";
    case Op::kMov: return "mov";
  }
  return "?";
}

std::string to_string(const Step& step) {
  std::ostringstream os;
  switch (step.kind) {
    case StepKind::kLoad:
      os << "load r" << int{step.dst} << ", [" << step.addr << ']';
      break;
    case StepKind::kStore:
      os << "store [" << step.addr << "], r" << int{step.src0};
      break;
    case StepKind::kAlu:
      os << to_string(step.op) << " r" << int{step.dst} << ", r" << int{step.src0} << ", r"
         << int{step.src1} << ", r" << int{step.src2};
      break;
    case StepKind::kImm:
      os << "imm r" << int{step.dst} << ", 0x" << std::hex << step.imm;
      break;
  }
  return os.str();
}

}  // namespace obx::trace

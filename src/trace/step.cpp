#include "trace/step.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/simd_isa.hpp"
#include "trace/alu_ops.hpp"
#include "trace/value.hpp"

namespace obx::trace {

Step Step::imm_f64(std::uint8_t dst, double value) {
  return immediate(dst, from_f64(value));
}

Word apply_alu(Op op, Word a, Word b, Word c, Word old_dst) {
  Word result = old_dst;
  dispatch_op(op, [&](auto opc) {
    constexpr Op OP = decltype(opc)::value;
    result = apply_one<OP>(a, b, c, old_dst);
  });
  return result;
}

namespace detail {
// Wide-vector sweeps, defined in per-ISA translation units that are only
// part of the build when the compiler supports the target flags (see
// src/trace/CMakeLists.txt).  Tag 0 below is the baseline body compiled with
// the project's default flags (SSE2 on x86-64, AdvSIMD on AArch64).
#if defined(OBX_SIMD_HAVE_AVX2)
void bulk_alu_avx2(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
                   std::size_t count);
#endif
#if defined(OBX_SIMD_HAVE_AVX512)
void bulk_alu_avx512(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
                     std::size_t count);
#endif
}  // namespace detail

void bulk_alu(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
              std::size_t count) {
  using Fn = void (*)(Op, Word*, const Word*, const Word*, const Word*, std::size_t);
  // One body per SIMD tier, picked once per process (active_simd_isa is
  // latched; OBX_SIMD=scalar pins the baseline body).
  static const Fn fn = [] {
    switch (active_simd_isa()) {
#if defined(OBX_SIMD_HAVE_AVX512)
      case SimdIsa::kAvx512:
        return static_cast<Fn>(detail::bulk_alu_avx512);
#endif
#if defined(OBX_SIMD_HAVE_AVX2)
      case SimdIsa::kAvx2:
        return static_cast<Fn>(detail::bulk_alu_avx2);
#endif
      default:
        return static_cast<Fn>(detail::bulk_alu_tagged<0>);
    }
  }();
  fn(op, dst, a, b, c, count);
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kAddF: return "addf";
    case Op::kSubF: return "subf";
    case Op::kMulF: return "mulf";
    case Op::kDivF: return "divf";
    case Op::kMinF: return "minf";
    case Op::kMaxF: return "maxf";
    case Op::kNegF: return "negf";
    case Op::kAddI: return "addi";
    case Op::kSubI: return "subi";
    case Op::kMulI: return "muli";
    case Op::kMinI: return "mini";
    case Op::kMaxI: return "maxi";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kNotU: return "not";
    case Op::kLtF: return "ltf";
    case Op::kLeF: return "lef";
    case Op::kEqF: return "eqf";
    case Op::kLtI: return "lti";
    case Op::kLeI: return "lei";
    case Op::kEqI: return "eqi";
    case Op::kNeI: return "nei";
    case Op::kLtU: return "ltu";
    case Op::kSelect: return "select";
    case Op::kCmovLtF: return "cmovltf";
    case Op::kCmovLtI: return "cmovlti";
    case Op::kMov: return "mov";
  }
  return "?";
}

std::string to_string(const Step& step) {
  std::ostringstream os;
  switch (step.kind) {
    case StepKind::kLoad:
      os << "load r" << int{step.dst} << ", [" << step.addr << ']';
      break;
    case StepKind::kStore:
      os << "store [" << step.addr << "], r" << int{step.src0};
      break;
    case StepKind::kAlu:
      os << to_string(step.op) << " r" << int{step.dst} << ", r" << int{step.src0} << ", r"
         << int{step.src1} << ", r" << int{step.src2};
      break;
    case StepKind::kImm:
      os << "imm r" << int{step.dst} << ", 0x" << std::hex << step.imm;
      break;
  }
  return os.str();
}

}  // namespace obx::trace

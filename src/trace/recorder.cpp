#include "trace/recorder.hpp"

#include <utility>

#include "common/check.hpp"
#include "trace/value.hpp"

namespace obx::trace {

// ---------------------------------------------------------------------------
// RegHandle
// ---------------------------------------------------------------------------

namespace detail {

RegHandle::RegHandle(Recorder* rec, std::uint8_t idx) : rec_(rec), idx_(idx) {}

RegHandle::RegHandle(const RegHandle& other) : rec_(other.rec_), idx_(other.idx_) {
  retain();
}

RegHandle::RegHandle(RegHandle&& other) noexcept : rec_(other.rec_), idx_(other.idx_) {
  other.rec_ = nullptr;
}

RegHandle& RegHandle::operator=(const RegHandle& other) {
  if (this == &other) return *this;
  release();
  rec_ = other.rec_;
  idx_ = other.idx_;
  retain();
  return *this;
}

RegHandle& RegHandle::operator=(RegHandle&& other) noexcept {
  if (this == &other) return *this;
  release();
  rec_ = other.rec_;
  idx_ = other.idx_;
  other.rec_ = nullptr;
  return *this;
}

RegHandle::~RegHandle() { release(); }

std::uint8_t RegHandle::index() const {
  OBX_CHECK(rec_ != nullptr, "use of an unbound value handle");
  return idx_;
}

void RegHandle::retain() {
  if (rec_ != nullptr) rec_->retain_reg(idx_);
}

void RegHandle::release() {
  if (rec_ != nullptr) {
    rec_->release_reg(idx_);
    rec_ = nullptr;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Recorder core
// ---------------------------------------------------------------------------

Recorder::Recorder(std::size_t memory_words) : memory_words_(memory_words) {
  OBX_CHECK(memory_words > 0, "recorded program needs at least one memory word");
}

std::uint8_t Recorder::alloc_reg() {
  if (!free_list_.empty()) {
    const std::uint8_t idx = free_list_.back();
    free_list_.pop_back();
    refcounts_[idx] = 1;
    return idx;
  }
  OBX_CHECK(refcounts_.size() < 256, "recorder ran out of registers (max 256 live values)");
  refcounts_.push_back(1);
  high_water_ = refcounts_.size();
  return static_cast<std::uint8_t>(refcounts_.size() - 1);
}

void Recorder::retain_reg(std::uint8_t idx) { ++refcounts_[idx]; }

void Recorder::release_reg(std::uint8_t idx) {
  OBX_DCHECK(refcounts_[idx] > 0, "register over-released");
  if (--refcounts_[idx] == 0) free_list_.push_back(idx);
}

std::uint8_t Recorder::emit_binary(Op op, std::uint8_t a, std::uint8_t b) {
  OBX_CHECK(!finished_, "recorder already finished");
  const std::uint8_t dst = alloc_reg();
  steps_.push_back(Step::alu(op, dst, a, b));
  return dst;
}

std::uint8_t Recorder::emit_imm(Word v) {
  OBX_CHECK(!finished_, "recorder already finished");
  const std::uint8_t dst = alloc_reg();
  steps_.push_back(Step::immediate(dst, v));
  return dst;
}

std::uint8_t Recorder::emit_load(Addr a) {
  OBX_CHECK(!finished_, "recorder already finished");
  OBX_CHECK(a < memory_words_, "recorded load out of bounds");
  const std::uint8_t dst = alloc_reg();
  steps_.push_back(Step::load(dst, a));
  return dst;
}

void Recorder::emit_store(Addr a, std::uint8_t src) {
  OBX_CHECK(!finished_, "recorder already finished");
  OBX_CHECK(a < memory_words_, "recorded store out of bounds");
  steps_.push_back(Step::store(a, src));
}

void Recorder::make_unique(detail::RegHandle& h) {
  OBX_CHECK(h.recorder() == this, "value handle belongs to another recorder");
  const std::uint8_t idx = h.index();
  if (refcounts_[idx] == 1) return;
  // Shared: move the value into a private register first.
  const std::uint8_t fresh = emit_binary(Op::kMov, idx, 0);
  h = detail::RegHandle(this, fresh);  // releases old share, adopts fresh (refcount 1)
}

// ---------------------------------------------------------------------------
// Typed API
// ---------------------------------------------------------------------------

Recorder::FVal Recorder::fimm(double v) { return FVal(this, emit_imm(from_f64(v))); }
Recorder::IVal Recorder::iimm(std::int64_t v) { return IVal(this, emit_imm(from_i64(v))); }
Recorder::UVal Recorder::uimm(Word v) { return UVal(this, emit_imm(v)); }

Recorder::FVal Recorder::fload(Addr a) { return FVal(this, emit_load(a)); }
Recorder::IVal Recorder::iload(Addr a) { return IVal(this, emit_load(a)); }
Recorder::UVal Recorder::uload(Addr a) { return UVal(this, emit_load(a)); }

void Recorder::fstore(Addr a, const FVal& v) { emit_store(a, v.index()); }
void Recorder::istore(Addr a, const IVal& v) { emit_store(a, v.index()); }
void Recorder::ustore(Addr a, const UVal& v) { emit_store(a, v.index()); }

void Recorder::cmov_lt(FVal& dst, const FVal& a, const FVal& b, const FVal& src) {
  make_unique(dst);
  steps_.push_back(Step::alu(Op::kCmovLtF, dst.index(), a.index(), b.index(), src.index()));
}

void Recorder::cmov_lt(IVal& dst, const IVal& a, const IVal& b, const IVal& src) {
  make_unique(dst);
  steps_.push_back(Step::alu(Op::kCmovLtI, dst.index(), a.index(), b.index(), src.index()));
}

Recorder::FVal Recorder::fmin(const FVal& a, const FVal& b) {
  return FVal(this, emit_binary(Op::kMinF, a.index(), b.index()));
}
Recorder::FVal Recorder::fmax(const FVal& a, const FVal& b) {
  return FVal(this, emit_binary(Op::kMaxF, a.index(), b.index()));
}
Recorder::IVal Recorder::imin(const IVal& a, const IVal& b) {
  return IVal(this, emit_binary(Op::kMinI, a.index(), b.index()));
}
Recorder::IVal Recorder::imax(const IVal& a, const IVal& b) {
  return IVal(this, emit_binary(Op::kMaxI, a.index(), b.index()));
}

Program Recorder::finish(std::string name, std::size_t input_words,
                         std::size_t output_offset, std::size_t output_words) && {
  OBX_CHECK(!finished_, "recorder already finished");
  OBX_CHECK(input_words <= memory_words_, "input larger than memory");
  OBX_CHECK(output_offset + output_words <= memory_words_, "output region out of bounds");
  finished_ = true;
  return make_replay_program(std::move(name), memory_words_, input_words, output_offset,
                             output_words, std::max<std::size_t>(high_water_, 1),
                             std::move(steps_));
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

namespace detail {

struct RecorderAccess {
  template <typename V>
  static V binary(const V& a, const V& b, Op op) {
    Recorder* rec = a.recorder();
    OBX_CHECK(rec != nullptr && rec == b.recorder(),
              "operands must come from the same recorder");
    return V(rec, rec->emit_binary(op, a.index(), b.index()));
  }
};

}  // namespace detail

#define OBX_DEFINE_BINOP(TYPE, OPSYM, OPCODE)                                       \
  Recorder::TYPE operator OPSYM(const Recorder::TYPE& a, const Recorder::TYPE& b) { \
    return detail::RecorderAccess::binary(a, b, OPCODE);                            \
  }

OBX_DEFINE_BINOP(FVal, +, Op::kAddF)
OBX_DEFINE_BINOP(FVal, -, Op::kSubF)
OBX_DEFINE_BINOP(FVal, *, Op::kMulF)
OBX_DEFINE_BINOP(FVal, /, Op::kDivF)
OBX_DEFINE_BINOP(IVal, +, Op::kAddI)
OBX_DEFINE_BINOP(IVal, -, Op::kSubI)
OBX_DEFINE_BINOP(IVal, *, Op::kMulI)
OBX_DEFINE_BINOP(UVal, &, Op::kAnd)
OBX_DEFINE_BINOP(UVal, |, Op::kOr)
OBX_DEFINE_BINOP(UVal, ^, Op::kXor)
OBX_DEFINE_BINOP(UVal, <<, Op::kShl)
OBX_DEFINE_BINOP(UVal, >>, Op::kShr)
OBX_DEFINE_BINOP(UVal, +, Op::kAddI)

#undef OBX_DEFINE_BINOP

}  // namespace obx::trace

// Typed views of the 64-bit machine word.
//
// Memory and registers hold raw Words; the instruction decides the type.  An
// IEEE double is stored bit-for-bit (so float algorithms are exact w.r.t. a
// native implementation), integers are stored two's-complement.
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace obx::trace {

inline double as_f64(Word w) { return std::bit_cast<double>(w); }
inline Word from_f64(double d) { return std::bit_cast<Word>(d); }

inline std::int64_t as_i64(Word w) { return static_cast<std::int64_t>(w); }
inline Word from_i64(std::int64_t v) { return static_cast<Word>(v); }

inline Word from_bool(bool b) { return b ? Word{1} : Word{0}; }

}  // namespace obx::trace

// An oblivious program: a named, replayable stream of Steps over a canonical
// per-input memory array.
//
// Programs are *stream factories*: each call to stream() yields a fresh
// Generator producing the same step sequence (the sequence is fixed — that
// is the definition of obliviousness).  Large programs (OPT on a 512-gon is
// ~10^8 steps) are never materialised; small programs can be captured into a
// TracedProgram for inspection and golden tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/generator.hpp"
#include "common/types.hpp"
#include "trace/step.hpp"

namespace obx::trace {

/// Static step-count profile of a program, as counted by profile().
struct StepCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t alu = 0;
  std::uint64_t imm = 0;

  std::uint64_t memory() const { return loads + stores; }
  std::uint64_t total() const { return loads + stores + alu + imm; }
};

/// Process-wide memo slot for compiled artifacts derived from a Program.
/// Copies of a Program share the slot (shared_ptr), so a backend that keys
/// its cache on the slot compiles — and drains the step stream — at most
/// once per (program, process) no matter how many executors, chunks, or
/// copies touch it.  The artifact is type-erased here to keep trace/ free of
/// any dependency on the execution layer; exec/ owns the concrete type.
struct ExecCacheSlot {
  std::mutex mutex;
  std::shared_ptr<const void> artifact;
  /// Largest compile budget (in steps) a failed compile was attempted with;
  /// lets callers skip re-draining streams known to exceed their budget.
  std::size_t attempted_budget = 0;

  /// Per-SIMD-tier memo for native code emitted from the compiled artifact
  /// (exec::JitProgram, type-erased like `artifact`), indexed by the numeric
  /// SimdIsa value and sized generously so trace/ needs no dependency on the
  /// ISA enum.  jit_attempted marks tiers whose emission already ran — a
  /// failed emission (null artifact) is remembered and never retried, so a
  /// fallback run does not re-pay the attempt.  Guarded by `mutex`.
  static constexpr std::size_t kJitTiers = 8;
  std::shared_ptr<const void> jit_artifact[kJitTiers];
  bool jit_attempted[kJitTiers] = {};
};

struct Program {
  std::string name;

  /// Size of the canonical per-input memory array (input + scratch + output).
  std::size_t memory_words = 0;
  /// The first input_words of memory are caller-provided input.
  std::size_t input_words = 0;
  /// The result lives at [output_offset, output_offset + output_words).
  std::size_t output_offset = 0;
  std::size_t output_words = 0;
  /// Registers used (register file size for executors).
  std::size_t register_count = 16;

  /// Produces a fresh step stream from the beginning of the program.
  std::function<Generator<Step>()> stream;

  /// Shared compile memo (see ExecCacheSlot).  Defaulted so every Program has
  /// one; copies alias it.  Reassigning `stream` after a compile would make
  /// the memo stale — streams are set once at construction everywhere.
  std::shared_ptr<ExecCacheSlot> exec_cache = std::make_shared<ExecCacheSlot>();

  /// Runs the stream to completion counting step kinds.  O(program length).
  StepCounts profile() const;

  /// Memory-step count t of the sequential algorithm (loads + stores), the
  /// `t` of Theorems 2/3.  O(program length).
  std::uint64_t memory_steps() const { return profile().memory(); }
};

/// A fully materialised program (for small instances, inspection, checker).
class TracedProgram {
 public:
  /// Drains `source.stream()` into a step vector; the result's stream()
  /// replays the vector.  Refuses to record more than max_steps.
  static TracedProgram capture(const Program& source, std::size_t max_steps = 1u << 24);

  const Program& program() const { return program_; }
  const std::vector<Step>& steps() const { return *steps_; }

 private:
  TracedProgram() = default;
  Program program_;
  std::shared_ptr<std::vector<Step>> steps_;
};

/// Convenience: builds a Program whose stream replays `steps`.
Program make_replay_program(std::string name, std::size_t memory_words,
                            std::size_t input_words, std::size_t output_offset,
                            std::size_t output_words, std::size_t register_count,
                            std::vector<Step> steps);

/// Sequential composition: runs `first` then `second` over one canonical
/// memory (both must declare the same memory_words).  The register file
/// carries across the boundary, so `second` must write a register before
/// reading it — which every well-formed program does anyway.  The result
/// takes `first`'s input region and `second`'s output region.  Composing a
/// cipher with its inverse, or a sort with a scan, stays oblivious.
Program concat_programs(const Program& first, const Program& second,
                        std::string name = "");

}  // namespace obx::trace

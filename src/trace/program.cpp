#include "trace/program.hpp"

#include "common/check.hpp"

namespace obx::trace {

StepCounts Program::profile() const {
  OBX_CHECK(stream != nullptr, "program has no stream factory");
  StepCounts counts;
  auto gen = stream();
  for (const Step& s : gen) {
    switch (s.kind) {
      case StepKind::kLoad:
        ++counts.loads;
        break;
      case StepKind::kStore:
        ++counts.stores;
        break;
      case StepKind::kAlu:
        ++counts.alu;
        break;
      case StepKind::kImm:
        ++counts.imm;
        break;
    }
  }
  return counts;
}

TracedProgram TracedProgram::capture(const Program& source, std::size_t max_steps) {
  OBX_CHECK(source.stream != nullptr, "program has no stream factory");
  auto steps = std::make_shared<std::vector<Step>>();
  auto gen = source.stream();
  for (const Step& s : gen) {
    OBX_CHECK(steps->size() < max_steps, "program too long to capture");
    steps->push_back(s);
  }
  TracedProgram out;
  out.program_ = source;
  out.steps_ = steps;
  out.program_.stream = [steps]() -> Generator<Step> {
    for (const Step& s : *steps) co_yield s;
  };
  return out;
}

Program concat_programs(const Program& first, const Program& second, std::string name) {
  OBX_CHECK(first.stream != nullptr && second.stream != nullptr,
            "both programs need stream factories");
  OBX_CHECK(first.memory_words == second.memory_words,
            "composed programs must share one canonical memory layout");
  Program p;
  p.name = name.empty() ? first.name + " ; " + second.name : std::move(name);
  p.memory_words = first.memory_words;
  p.input_words = first.input_words;
  p.output_offset = second.output_offset;
  p.output_words = second.output_words;
  p.register_count = std::max(first.register_count, second.register_count);
  auto f1 = first.stream;
  auto f2 = second.stream;
  p.stream = [f1, f2]() -> Generator<Step> {
    {
      auto g1 = f1();
      for (const Step& s : g1) co_yield s;
    }
    auto g2 = f2();
    for (const Step& s : g2) co_yield s;
  };
  return p;
}

Program make_replay_program(std::string name, std::size_t memory_words,
                            std::size_t input_words, std::size_t output_offset,
                            std::size_t output_words, std::size_t register_count,
                            std::vector<Step> steps) {
  auto shared = std::make_shared<std::vector<Step>>(std::move(steps));
  Program p;
  p.name = std::move(name);
  p.memory_words = memory_words;
  p.input_words = input_words;
  p.output_offset = output_offset;
  p.output_words = output_words;
  p.register_count = register_count;
  p.stream = [shared]() -> Generator<Step> {
    for (const Step& s : *shared) co_yield s;
  };
  return p;
}

}  // namespace obx::trace

// trace::bulk_alu body compiled for AVX-512 (512-bit: 8 words per
// iteration).  This TU is only added to the build when the compiler accepts
// -mavx512f; the dispatcher in step.cpp only calls it when the CPU reports
// AVX512F/DQ/BW/VL.
#include "trace/alu_ops.hpp"

namespace obx::trace::detail {

void bulk_alu_avx512(Op op, Word* dst, const Word* a, const Word* b, const Word* c,
                     std::size_t count) {
  bulk_alu_tagged<3>(op, dst, a, b, c, count);
}

}  // namespace obx::trace::detail

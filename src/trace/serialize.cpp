#include "trace/serialize.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "trace/step.hpp"

namespace obx::trace {
namespace {

constexpr Op kAllOps[] = {
    Op::kNop,  Op::kAddF, Op::kSubF, Op::kMulF, Op::kDivF,    Op::kMinF,
    Op::kMaxF, Op::kNegF, Op::kAddI, Op::kSubI, Op::kMulI,    Op::kMinI,
    Op::kMaxI, Op::kAnd,  Op::kOr,   Op::kXor,  Op::kShl,     Op::kShr,
    Op::kNotU, Op::kLtF,  Op::kLeF,  Op::kEqF,  Op::kLtI,     Op::kLeI,
    Op::kEqI,  Op::kNeI,  Op::kLtU,  Op::kSelect, Op::kCmovLtF, Op::kCmovLtI,
    Op::kMov};

const std::map<std::string, Op>& op_table() {
  static const std::map<std::string, Op> table = [] {
    std::map<std::string, Op> t;
    for (Op op : kAllOps) t[to_string(op)] = op;
    return t;
  }();
  return table;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  OBX_CHECK(false, ".obx parse error at line " + std::to_string(line) + ": " + what);
  std::abort();  // unreachable
}

/// Splits on spaces and commas, drops brackets.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == ',' || c == '[' || c == ']' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::uint64_t parse_u64(const std::string& s, std::size_t line, int base = 10) {
  std::uint64_t v = 0;
  std::string_view body = s;
  if (base == 16 && body.rfind("0x", 0) == 0) body.remove_prefix(2);
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), v, base);
  if (ec != std::errc() || ptr != body.data() + body.size()) {
    fail(line, "bad number: " + s);
  }
  return v;
}

std::uint8_t parse_reg(const std::string& s, std::size_t line) {
  if (s.size() < 2 || s[0] != 'r') fail(line, "bad register: " + s);
  const std::uint64_t idx = parse_u64(s.substr(1), line);
  if (idx > 255) fail(line, "register out of range: " + s);
  return static_cast<std::uint8_t>(idx);
}

}  // namespace

void serialize_program(const Program& program, std::ostream& os) {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  os << "obx 1 memory=" << program.memory_words << " input=" << program.input_words
     << " output=" << program.output_offset << '+' << program.output_words
     << " regs=" << program.register_count << " name=\"" << program.name << "\"\n";
  auto gen = program.stream();
  for (const Step& s : gen) {
    switch (s.kind) {
      case StepKind::kLoad:
        os << "load r" << int{s.dst} << ", [" << s.addr << "]\n";
        break;
      case StepKind::kStore:
        os << "store [" << s.addr << "], r" << int{s.src0} << '\n';
        break;
      case StepKind::kAlu:
        os << to_string(s.op) << " r" << int{s.dst} << ", r" << int{s.src0} << ", r"
           << int{s.src1} << ", r" << int{s.src2} << '\n';
        break;
      case StepKind::kImm:
        os << "imm r" << int{s.dst} << ", 0x" << std::hex << s.imm << std::dec << '\n';
        break;
    }
  }
}

std::string serialize_program(const Program& program) {
  std::ostringstream os;
  serialize_program(program, os);
  return os.str();
}

Program parse_program(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  // Header.
  OBX_CHECK(static_cast<bool>(std::getline(is, line)), "empty .obx input");
  ++line_no;
  std::size_t memory = 0, input = 0, out_off = 0, out_words = 0, regs = 0;
  std::string name;
  {
    std::istringstream hs(line);
    std::string magic;
    int version = 0;
    hs >> magic >> version;
    if (magic != "obx" || version != 1) fail(line_no, "bad header: " + line);
    std::string field;
    while (hs >> field) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) fail(line_no, "bad header field: " + field);
      const std::string key = field.substr(0, eq);
      std::string value = field.substr(eq + 1);
      if (key == "memory") {
        memory = parse_u64(value, line_no);
      } else if (key == "input") {
        input = parse_u64(value, line_no);
      } else if (key == "output") {
        const auto plus = value.find('+');
        if (plus == std::string::npos) fail(line_no, "bad output field: " + value);
        out_off = parse_u64(value.substr(0, plus), line_no);
        out_words = parse_u64(value.substr(plus + 1), line_no);
      } else if (key == "regs") {
        regs = parse_u64(value, line_no);
      } else if (key == "name") {
        // name="..." may contain spaces: consume to the closing quote.
        if (value.size() < 1 || value.front() != '"') fail(line_no, "bad name field");
        value.erase(0, 1);
        while (value.empty() || value.back() != '"') {
          std::string more;
          if (!(hs >> more)) fail(line_no, "unterminated name");
          value += ' ';
          value += more;
        }
        value.pop_back();
        name = value;
      } else {
        fail(line_no, "unknown header field: " + key);
      }
    }
  }
  if (memory == 0) fail(line_no, "header missing memory=");

  std::vector<Step> steps;
  while (std::getline(is, line)) {
    ++line_no;
    const auto toks = tokens_of(line);
    if (toks.empty() || toks[0].rfind("#", 0) == 0) continue;  // blank / comment
    const std::string& mnemonic = toks[0];
    if (mnemonic == "load") {
      if (toks.size() != 3) fail(line_no, "load needs reg, addr");
      steps.push_back(Step::load(parse_reg(toks[1], line_no), parse_u64(toks[2], line_no)));
    } else if (mnemonic == "store") {
      if (toks.size() != 3) fail(line_no, "store needs addr, reg");
      steps.push_back(Step::store(parse_u64(toks[1], line_no), parse_reg(toks[2], line_no)));
    } else if (mnemonic == "imm") {
      if (toks.size() != 3) fail(line_no, "imm needs reg, value");
      steps.push_back(
          Step::immediate(parse_reg(toks[1], line_no), parse_u64(toks[2], line_no, 16)));
    } else {
      const auto it = op_table().find(mnemonic);
      if (it == op_table().end()) fail(line_no, "unknown mnemonic: " + mnemonic);
      if (toks.size() != 5) fail(line_no, "alu needs 4 registers");
      steps.push_back(Step::alu(it->second, parse_reg(toks[1], line_no),
                                parse_reg(toks[2], line_no), parse_reg(toks[3], line_no),
                                parse_reg(toks[4], line_no)));
    }
  }
  return make_replay_program(std::move(name), memory, input, out_off, out_words,
                             std::max<std::size_t>(regs, 1), std::move(steps));
}

Program parse_program(const std::string& text) {
  std::istringstream is(text);
  return parse_program(is);
}

}  // namespace obx::trace

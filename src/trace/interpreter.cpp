#include "trace/interpreter.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace obx::trace {

InterpreterResult interpret(const Program& program, std::span<const Word> input) {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(input.size() == program.input_words,
            "input size must match the program's declared input_words");
  OBX_CHECK(program.input_words <= program.memory_words, "input larger than memory");
  OBX_CHECK(program.register_count <= 256, "register file limited to 256");

  InterpreterResult r;
  r.memory.assign(program.memory_words, Word{0});
  std::copy(input.begin(), input.end(), r.memory.begin());

  std::vector<Word> regs(std::max<std::size_t>(program.register_count, 1), Word{0});

  auto gen = program.stream();
  for (const Step& s : gen) {
    switch (s.kind) {
      case StepKind::kLoad:
        OBX_CHECK(s.addr < r.memory.size(), "load beyond program memory");
        OBX_CHECK(s.dst < regs.size(), "register index out of range");
        regs[s.dst] = r.memory[s.addr];
        ++r.counts.loads;
        break;
      case StepKind::kStore:
        OBX_CHECK(s.addr < r.memory.size(), "store beyond program memory");
        OBX_CHECK(s.src0 < regs.size(), "register index out of range");
        r.memory[s.addr] = regs[s.src0];
        ++r.counts.stores;
        break;
      case StepKind::kAlu:
        OBX_CHECK(s.dst < regs.size() && s.src0 < regs.size() && s.src1 < regs.size() &&
                      s.src2 < regs.size(),
                  "register index out of range");
        regs[s.dst] = apply_alu(s.op, regs[s.src0], regs[s.src1], regs[s.src2], regs[s.dst]);
        ++r.counts.alu;
        break;
      case StepKind::kImm:
        OBX_CHECK(s.dst < regs.size(), "register index out of range");
        regs[s.dst] = s.imm;
        ++r.counts.imm;
        break;
    }
  }
  return r;
}

}  // namespace obx::trace

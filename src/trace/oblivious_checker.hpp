// Mechanical verification of the paper's obliviousness definition.
//
// A sequential algorithm is oblivious when there is a function a(i) such
// that on *every* input the algorithm accesses address a(i) (or nothing) at
// each time i.  Two checkers:
//
//  1. check_program — for Programs in the obx IR.  The IR makes addressing
//     structurally data-independent, but a buggy stream factory could still
//     yield different step sequences on different invocations (e.g. hidden
//     state in the generator closure); this replays the stream several times
//     and confirms the address trace is identical, and additionally runs the
//     interpreter over random inputs to confirm execution doesn't depend on
//     data in any way that changes the trace length.
//
//  2. check_callback — for arbitrary user code written against an
//     instrumented memory (TraceMemory).  The callback runs on `trials`
//     random inputs; the recorded address sequences must coincide.  This is
//     the checker to run over hand-written algorithms before trusting their
//     bulk execution.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/program.hpp"

namespace obx::trace {

/// Instrumented flat memory handed to check_callback user code.  Every load
/// and store is appended to the access trace.
class TraceMemory {
 public:
  explicit TraceMemory(std::vector<Word> initial);

  Word load(Addr a);
  void store(Addr a, Word v);

  /// f64 conveniences so algorithms read naturally.
  double load_f64(Addr a);
  void store_f64(Addr a, double v);

  std::size_t size() const { return cells_.size(); }
  const std::vector<Addr>& trace() const { return trace_; }

 private:
  std::vector<Word> cells_;
  std::vector<Addr> trace_;
};

struct ObliviousnessReport {
  bool oblivious = true;
  std::string detail;  ///< human-readable mismatch description when !oblivious

  /// The common access function a(i) when oblivious (empty otherwise).
  std::vector<Addr> access_function;
};

/// Replays `program`'s stream `trials` times (the address trace of an IR
/// program is input-independent by construction, so replays suffice).
ObliviousnessReport check_program(const Program& program, int trials = 3);

/// Runs `algorithm` on `trials` random word inputs of size `input_words`
/// (values drawn from the given seed sequence) and compares access traces.
ObliviousnessReport check_callback(
    const std::function<void(TraceMemory&)>& algorithm, std::size_t input_words,
    int trials = 5, std::uint64_t seed = 42);

}  // namespace obx::trace

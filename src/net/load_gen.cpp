#include "net/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"

namespace obx::net {

namespace {

using serve::Clock;

struct ConnOutcome {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t transport_errors = 0;
  std::size_t deadline_missed = 0;
  std::vector<double> latencies_us;
};

void count_result(const Client::Result& r, ConnOutcome& outcome) {
  if (!r.transport_error.empty()) {
    ++outcome.transport_errors;
    return;
  }
  if (r.error_code) {
    ++outcome.failed;  // server-side error frame (kInternal etc.)
    return;
  }
  switch (r.status) {
    case serve::JobStatus::kCompleted:
      ++outcome.completed;
      outcome.latencies_us.push_back(static_cast<double>(r.latency_us));
      if (r.deadline_missed) ++outcome.deadline_missed;
      break;
    case serve::JobStatus::kRejected: ++outcome.rejected; break;
    case serve::JobStatus::kShed: ++outcome.shed; break;
    case serve::JobStatus::kFailed: ++outcome.failed; break;
  }
}

double exp_interval_seconds(Rng& rng, double rate_hz) {
  return -std::log(1.0 - rng.next_double()) / rate_hz;
}

/// Maps a nominal Poisson arrival instant onto the bursty on/off schedule:
/// each period's arrivals are compressed into its first `duty` fraction, so
/// bursts run at rate/duty while the per-period count (and thus the mean
/// rate) is preserved.  Monotone, so arrival order is unchanged.
double burstify(double t_seconds, const NetLoadOptions& options) {
  const double period = options.burst_period_s;
  const double k = std::floor(t_seconds / period);
  const double within = t_seconds - k * period;
  return k * period + within * options.burst_duty;
}

void connection_worker(const std::string& host, std::uint16_t port,
                       const std::vector<serve::WorkloadItem>& workload,
                       const NetTenantSpec& tenant,
                       const NetLoadOptions& options, std::size_t jobs,
                       double rate_hz, std::uint64_t seed,
                       ConnOutcome& outcome) {
  Rng rng(seed);
  Client client(host, port);
  std::deque<std::uint32_t> in_flight;

  const auto drain_one = [&] {
    const std::uint32_t id = in_flight.front();
    in_flight.pop_front();
    count_result(client.wait(id), outcome);
  };

  const Clock::time_point t0 = Clock::now();
  double nominal_s = 0;  // arrival clock before burst modulation
  for (std::size_t i = 0; i < jobs; ++i) {
    const serve::WorkloadItem& item = workload[rng.next_below(workload.size())];
    std::vector<Word> input = item.make_input(rng);

    if (rate_hz > 0) {
      nominal_s += exp_interval_seconds(rng, rate_hz);
      const double due_s =
          options.bursty ? burstify(nominal_s, options) : nominal_s;
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(due_s)));
    }
    while (in_flight.size() >= options.pipeline_depth) drain_one();

    ++outcome.submitted;
    const std::optional<std::uint32_t> id =
        client.submit_async(item.program_id, std::move(input), tenant.name,
                            tenant.priority, options.deadline_us);
    if (!id) {
      ++outcome.transport_errors;  // dead transport still yields one outcome
      continue;
    }
    in_flight.push_back(*id);
    if (rate_hz == 0 && in_flight.size() >= options.pipeline_depth) {
      drain_one();  // closed-loop: keep exactly pipeline_depth outstanding
    }
  }
  while (!in_flight.empty()) drain_one();
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

NetLoadReport run_net_load(const std::string& host, std::uint16_t port,
                           const std::vector<serve::WorkloadItem>& workload,
                           const std::vector<NetTenantSpec>& tenants,
                           const NetLoadOptions& options) {
  OBX_CHECK(!workload.empty(), "net load generator needs a workload");
  OBX_CHECK(!tenants.empty(), "net load generator needs at least one tenant");
  OBX_CHECK(options.jobs > 0, "need at least one job");
  OBX_CHECK(options.pipeline_depth > 0, "pipeline depth must be positive");
  if (options.bursty) {
    OBX_CHECK(options.burst_duty > 0 && options.burst_duty <= 1,
              "burst duty must be in (0, 1]");
    OBX_CHECK(options.burst_period_s > 0, "burst period must be positive");
  }

  double total_weight = 0;
  for (const NetTenantSpec& t : tenants) {
    OBX_CHECK(t.weight > 0, "tenant weights must be positive");
    OBX_CHECK(t.connections > 0, "tenants need at least one connection");
    total_weight += t.weight;
  }

  // Slice the job budget by tenant weight, then evenly per connection.
  struct ConnPlan {
    const NetTenantSpec* tenant;
    std::size_t tenant_index;
    std::size_t jobs;
    double rate_hz;
  };
  std::vector<ConnPlan> plan;
  std::size_t assigned = 0;
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    const NetTenantSpec& t = tenants[ti];
    std::size_t tenant_jobs = static_cast<std::size_t>(
        std::floor(static_cast<double>(options.jobs) * t.weight / total_weight));
    if (ti + 1 == tenants.size()) tenant_jobs = options.jobs - assigned;
    assigned += tenant_jobs;
    const double tenant_rate =
        options.arrival_rate_hz * t.weight / total_weight;
    const std::size_t per = tenant_jobs / t.connections;
    const std::size_t rem = tenant_jobs % t.connections;
    for (unsigned c = 0; c < t.connections; ++c) {
      ConnPlan p;
      p.tenant = &t;
      p.tenant_index = ti;
      p.jobs = per + (c < rem ? 1 : 0);
      p.rate_hz = tenant_rate / static_cast<double>(t.connections);
      if (p.jobs > 0) plan.push_back(p);
    }
  }

  std::vector<ConnOutcome> outcomes(plan.size());
  std::vector<std::thread> threads;
  threads.reserve(plan.size());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ConnPlan& p = plan[i];
    threads.emplace_back([&, i, p] {
      connection_worker(host, port, workload, *p.tenant, options, p.jobs,
                        p.rate_hz, options.seed * 6271 + i * 31 + 1,
                        outcomes[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = Clock::now();

  NetLoadReport report;
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  std::vector<std::vector<double>> tenant_latencies(tenants.size());
  report.tenants.resize(tenants.size());
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    report.tenants[ti].tenant = tenants[ti].name;
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ConnOutcome& o = outcomes[i];
    NetTenantReport& t = report.tenants[plan[i].tenant_index];
    t.submitted += o.submitted;
    t.completed += o.completed;
    t.rejected += o.rejected;
    t.shed += o.shed;
    t.failed += o.failed;
    t.transport_errors += o.transport_errors;
    t.deadline_missed += o.deadline_missed;
    auto& lat = tenant_latencies[plan[i].tenant_index];
    lat.insert(lat.end(), o.latencies_us.begin(), o.latencies_us.end());
  }
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    NetTenantReport& t = report.tenants[ti];
    auto& lat = tenant_latencies[ti];
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
      double sum = 0;
      for (double v : lat) sum += v;
      t.mean_latency_us = sum / static_cast<double>(lat.size());
      t.p50_latency_us = percentile(lat, 0.50);
      t.p95_latency_us = percentile(lat, 0.95);
    }
    report.submitted += t.submitted;
    report.completed += t.completed;
    report.rejected += t.rejected;
    report.shed += t.shed;
    report.failed += t.failed;
    report.transport_errors += t.transport_errors;
    report.deadline_missed += t.deadline_missed;
  }
  report.jobs_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(report.completed) / report.wall_seconds
          : 0;
  return report;
}

}  // namespace obx::net

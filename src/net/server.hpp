// Networked front end for serve::BulkService.
//
// One poll(2) event-loop thread owns every connection: it accepts clients,
// reassembles frames (net/frame.hpp), validates submissions, and feeds them
// into the service with try_submit — the callback-based, never-blocking
// admission path.  Completions arrive on executor threads, are posted to a
// mutex-guarded inbox, and a self-pipe wakes the loop to encode response
// frames back onto the owning connection.
//
// Backpressure and abuse handling:
//   * A submission whose priority maps to the kBlock overflow policy on a
//     full queue returns kWouldBlock; the server parks that frame, stops
//     reading from the connection (TCP backpressure does the rest), and
//     retries after completions drain queue space.
//   * Idle timeout counts from the last *complete* frame, so a slow-loris
//     writer trickling header bytes is cut off on the same clock as a
//     silent peer.  Connections with work in flight are never idle-killed.
//   * A write buffer that makes no progress for write_stall_timeout (a
//     slow-reading client) gets the connection dropped; its in-flight
//     completions are counted as responses_dropped.
//
// Exactly-once over the wire: every admitted submission is eventually
// accounted as exactly one of responses_sent (terminal frame queued to a
// live connection) or responses_dropped (connection died first) — once the
// service has quiesced, submits_admitted == responses_sent +
// responses_dropped.  Completions are never lost, even if they land after
// the loop has exited: the inbox is shared-ownership and post-shutdown
// arrivals are tallied as dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/service.hpp"

namespace obx::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with Server::port().
  std::uint16_t port = 0;
  std::size_t max_connections = 256;
  /// Cut connections with no complete frame and no in-flight work for this
  /// long (also the slow-loris budget for finishing a started frame).
  std::chrono::milliseconds idle_timeout{30000};
  /// Cut connections whose pending output makes no progress for this long.
  std::chrono::milliseconds write_stall_timeout{10000};
  /// stop(): how long to wait for in-flight work and queued output to
  /// flush before tearing connections down.
  std::chrono::milliseconds drain_timeout{5000};
};

/// Event-loop counters; all monotonic except connections_active.
struct ServerStatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t submits_received = 0;
  std::uint64_t submits_admitted = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_dropped = 0;
  std::uint64_t error_responses = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t would_block = 0;
  std::uint64_t idle_timeouts = 0;
  std::uint64_t stall_timeouts = 0;

  /// The wire-level exactly-once ledger (valid once the service quiesced).
  bool exactly_once() const {
    return submits_admitted == responses_sent + responses_dropped;
  }
};

class Server {
 public:
  /// Binds and starts the event loop.  `service` must outlive the server's
  /// stop(); the server does not own it.  Throws std::runtime_error when
  /// the listen socket cannot be set up.
  Server(serve::BulkService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

  /// Stops accepting, refuses new submissions with kShuttingDown, waits up
  /// to drain_timeout for in-flight responses to flush, closes everything,
  /// joins the loop.  Idempotent; called by the destructor.  The service is
  /// left running — stop it afterwards.
  void stop();

  ServerStatsSnapshot stats() const;

  /// Prometheus exposition text: the service's metrics plus obx_net_* lines.
  std::string scrape_metrics() const;

 private:
  class Loop;

  serve::BulkService& service_;
  ServerOptions options_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Loop> loop_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};
};

/// Renders a ServerStatsSnapshot as Prometheus exposition lines (used by
/// scrape_metrics; exposed for the CLI and tests).
std::string render_server_stats(const ServerStatsSnapshot& stats);

}  // namespace obx::net

// Thin RAII wrappers over POSIX TCP sockets.  Everything the server and
// client need and nothing more: listen on host:port (port 0 = ephemeral,
// resolved port readable back), accept, connect, nonblocking toggles, and
// EINTR-safe read/write that report would-block distinctly from EOF/error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace obx::net {

/// Result of a nonblocking read or write attempt.
struct IoResult {
  enum class Kind {
    kOk,          ///< `bytes` transferred (possibly short)
    kWouldBlock,  ///< no progress possible right now; retry after poll
    kClosed,      ///< peer closed (read side only)
    kError,       ///< hard socket error; the connection is dead
  };
  Kind kind = Kind::kOk;
  std::size_t bytes = 0;
};

/// Owns one file descriptor; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Releases ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  bool set_nonblocking(bool on);
  bool set_nodelay(bool on);

  IoResult read_some(void* data, std::size_t bytes);
  IoResult write_some(const void* data, std::size_t bytes);

  /// Blocking connect to an IPv4 host:port.  Returns an invalid Socket and
  /// fills `error` on failure.
  static Socket connect(const std::string& host, std::uint16_t port,
                        std::string* error = nullptr);

 private:
  int fd_ = -1;
};

/// A bound+listening TCP socket.  port() reports the kernel-assigned port
/// when the requested one was 0, which is how tests grab an ephemeral port
/// without races.
class ListenSocket {
 public:
  ListenSocket() = default;

  bool valid() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Accepts one pending connection; invalid Socket when none is ready or
  /// on transient error (the listener itself stays usable).
  Socket accept();

  static ListenSocket listen(const std::string& host, std::uint16_t port,
                             int backlog, std::string* error = nullptr);

 private:
  Socket socket_;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// A pipe used to wake a poll() loop from another thread; the read end is
/// polled, the write end is signalled.  Nonblocking on both ends.
class WakePipe {
 public:
  WakePipe();
  bool valid() const { return read_.valid() && write_.valid(); }
  int read_fd() const { return read_.fd(); }
  /// Write one byte; coalesces (a full pipe already means "wake up").
  void notify();
  /// Drain all pending wake bytes.
  void drain();

 private:
  Socket read_;
  Socket write_;
};

}  // namespace obx::net

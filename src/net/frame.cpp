#include "net/frame.hpp"

#include <cstring>

#include "common/check.hpp"

namespace obx::net {

namespace {

// --- little-endian scalar writers -----------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void put_bytes(std::vector<std::uint8_t>& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

void put_words(std::vector<std::uint8_t>& out, const std::vector<Word>& words) {
  for (Word w : words) put_u64(out, static_cast<std::uint64_t>(w));
}

// --- bounds-checked little-endian cursor ----------------------------------

/// Reads scalars off a payload span; any overrun or trailing garbage turns
/// into ok() == false rather than UB, which is what the fuzz leg leans on.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(scalar(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(scalar(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(scalar(4)); }
  std::uint64_t u64() { return scalar(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(scalar(8)); }

  std::string str(std::size_t n) {
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_ - n), n);
    return s;
  }

  std::vector<Word> words(std::size_t count) {
    std::vector<Word> out;
    if (count > remaining() / 8) {  // cheap pre-check before reserving
      ok_ = false;
      return out;
    }
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(static_cast<Word>(u64()));
    }
    if (!ok_) out.clear();
    return out;
  }

 private:
  std::uint64_t scalar(std::size_t n) {
    if (!take(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ - n + i]) << (8 * i);
    }
    return v;
  }

  bool take(std::size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- per-type payload codecs ----------------------------------------------

void encode_payload(const SubmitFrame& f, std::vector<std::uint8_t>& out) {
  put_u16(out, static_cast<std::uint16_t>(f.program_id.size()));
  put_u16(out, static_cast<std::uint16_t>(f.tenant.size()));
  put_u8(out, static_cast<std::uint8_t>(f.priority));
  put_u8(out, 0);  // reserved
  put_u16(out, 0);  // reserved
  put_u64(out, static_cast<std::uint64_t>(f.deadline_us));
  put_u32(out, static_cast<std::uint32_t>(f.input.size()));
  put_bytes(out, f.program_id);
  put_bytes(out, f.tenant);
  put_words(out, f.input);
}

bool decode_payload(Cursor& c, SubmitFrame& f) {
  const std::size_t prog_len = c.u16();
  const std::size_t tenant_len = c.u16();
  const std::uint8_t priority = c.u8();
  c.u8();
  c.u16();
  f.deadline_us = c.i64();
  const std::size_t input_words = c.u32();
  if (!c.ok()) return false;
  if (prog_len > kMaxIdBytes || tenant_len > kMaxIdBytes) return false;
  if (priority >= serve::kPriorityCount) return false;
  f.priority = static_cast<serve::Priority>(priority);
  f.program_id = c.str(prog_len);
  f.tenant = c.str(tenant_len);
  f.input = c.words(input_words);
  return c.ok();
}

void encode_payload(const ResponseFrame& f, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(f.status));
  put_u8(out, f.deadline_missed ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u32(out, f.batch_lanes);
  put_u64(out, f.queue_delay_us);
  put_u64(out, f.latency_us);
  put_u32(out, static_cast<std::uint32_t>(f.output.size()));
  put_words(out, f.output);
}

bool decode_payload(Cursor& c, ResponseFrame& f) {
  const std::uint8_t status = c.u8();
  f.deadline_missed = c.u8() != 0;
  c.u16();
  f.batch_lanes = c.u32();
  f.queue_delay_us = c.u64();
  f.latency_us = c.u64();
  const std::size_t output_words = c.u32();
  if (!c.ok()) return false;
  if (status > static_cast<std::uint8_t>(serve::JobStatus::kFailed)) {
    return false;
  }
  f.status = static_cast<serve::JobStatus>(status);
  f.output = c.words(output_words);
  return c.ok();
}

void encode_payload(const ErrorFrame& f, std::vector<std::uint8_t>& out) {
  put_u16(out, static_cast<std::uint16_t>(f.code));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(f.message.size()));
  put_bytes(out, f.message);
}

bool decode_payload(Cursor& c, ErrorFrame& f) {
  const std::uint16_t code = c.u16();
  c.u16();
  const std::size_t msg_len = c.u32();
  if (!c.ok()) return false;
  if (code < static_cast<std::uint16_t>(ErrorCode::kBadFrame) ||
      code > static_cast<std::uint16_t>(ErrorCode::kInternal)) {
    return false;
  }
  if (msg_len > kMaxIdBytes) return false;
  f.code = static_cast<ErrorCode>(code);
  f.message = c.str(msg_len);
  return c.ok();
}

void encode_payload(const StatsRequestFrame&, std::vector<std::uint8_t>&) {}

bool decode_payload(Cursor&, StatsRequestFrame&) { return true; }

void encode_payload(const StatsResponseFrame& f,
                    std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(f.text.size()));
  put_bytes(out, f.text);
}

bool decode_payload(Cursor& c, StatsResponseFrame& f) {
  const std::size_t len = c.u32();
  if (!c.ok() || len > kMaxFramePayloadBytes) return false;
  f.text = c.str(len);
  return c.ok();
}

template <typename T>
bool decode_as(const std::uint8_t* payload, std::size_t size,
               std::uint32_t request_id, Frame& out) {
  Cursor c(payload, size);
  T frame;
  frame.request_id = request_id;
  if (!decode_payload(c, frame)) return false;
  if (c.remaining() != 0) return false;  // trailing bytes = malformed
  out = std::move(frame);
  return true;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kUnknownProgram: return "unknown-program";
    case ErrorCode::kBadInput: return "bad-input";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::uint32_t request_id_of(const Frame& frame) {
  return std::visit([](const auto& f) { return f.request_id; }, frame);
}

FrameType type_of(const Frame& frame) {
  struct Visitor {
    FrameType operator()(const SubmitFrame&) { return FrameType::kSubmit; }
    FrameType operator()(const ResponseFrame&) { return FrameType::kResponse; }
    FrameType operator()(const ErrorFrame&) { return FrameType::kError; }
    FrameType operator()(const StatsRequestFrame&) {
      return FrameType::kStatsRequest;
    }
    FrameType operator()(const StatsResponseFrame&) {
      return FrameType::kStatsResponse;
    }
  };
  return std::visit(Visitor{}, frame);
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  out.resize(out.size() + kFrameHeaderBytes);
  const std::size_t payload_at = out.size();
  std::visit([&out](const auto& f) { encode_payload(f, out); }, frame);
  const std::size_t payload_bytes = out.size() - payload_at;
  OBX_CHECK(payload_bytes <= kMaxFramePayloadBytes,
            "frame payload exceeds protocol maximum");

  std::vector<std::uint8_t> header;
  header.reserve(kFrameHeaderBytes);
  put_u32(header, kFrameMagic);
  put_u8(header, kProtocolVersion);
  put_u8(header, static_cast<std::uint8_t>(type_of(frame)));
  put_u16(header, 0);  // flags
  put_u32(header, static_cast<std::uint32_t>(payload_bytes));
  put_u32(header, request_id_of(frame));
  std::memcpy(out.data() + header_at, header.data(), kFrameHeaderBytes);
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

void FrameReader::feed(const void* data, std::size_t bytes) {
  if (failed() || bytes == 0) return;
  // Reclaim consumed prefix before growing; keeps the buffer bounded by one
  // frame plus whatever the socket delivered past it.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + bytes);
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (failed()) return Status::kError;
  if (buffered() < kFrameHeaderBytes) return Status::kNeedMore;

  const std::uint8_t* h = buffer_.data() + consumed_;
  Cursor header(h, kFrameHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t type = header.u8();
  const std::uint16_t flags = header.u16();
  const std::uint32_t length = header.u32();
  const std::uint32_t request_id = header.u32();

  if (magic != kFrameMagic) return fail("bad frame magic");
  if (version != kProtocolVersion) {
    return fail("unsupported protocol version " + std::to_string(version));
  }
  if (flags != 0) return fail("nonzero reserved flags");
  if (length > kMaxFramePayloadBytes) {
    return fail("frame payload length " + std::to_string(length) +
                " exceeds maximum");
  }
  if (buffered() < kFrameHeaderBytes + length) return Status::kNeedMore;

  const std::uint8_t* payload = h + kFrameHeaderBytes;
  bool decoded = false;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kSubmit:
      decoded = decode_as<SubmitFrame>(payload, length, request_id, out);
      break;
    case FrameType::kResponse:
      decoded = decode_as<ResponseFrame>(payload, length, request_id, out);
      break;
    case FrameType::kError:
      decoded = decode_as<ErrorFrame>(payload, length, request_id, out);
      break;
    case FrameType::kStatsRequest:
      decoded = decode_as<StatsRequestFrame>(payload, length, request_id, out);
      break;
    case FrameType::kStatsResponse:
      decoded = decode_as<StatsResponseFrame>(payload, length, request_id, out);
      break;
    default:
      return fail("unknown frame type " + std::to_string(type));
  }
  if (!decoded) {
    return fail("malformed " + std::to_string(type) + "-type frame payload");
  }
  consumed_ += kFrameHeaderBytes + length;
  return Status::kFrame;
}

FrameReader::Status FrameReader::fail(const std::string& message) {
  error_ = message;
  return Status::kError;
}

}  // namespace obx::net

// Blocking client for the obx wire protocol.
//
// One Client owns one TCP connection.  submit() is synchronous
// (send + wait); submit_async()/wait() pipeline many requests over the
// connection and tolerate out-of-order completion — responses for ids the
// caller has not asked about yet are parked until their wait().  A Client
// is NOT thread-safe: use one per thread (the load generator opens one per
// simulated connection).
//
// Transport failures never throw: a dead connection yields Results with
// `transport_error` set, once per outstanding request, preserving the
// caller's exactly-one-result-per-submit accounting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace obx::net {

class Client {
 public:
  /// One terminal outcome per submitted request.
  struct Result {
    /// Nonempty when the transport died before a response arrived; all
    /// protocol-level fields below are then meaningless.
    std::string transport_error;
    serve::JobStatus status = serve::JobStatus::kCompleted;
    /// Set when the server answered with an error frame.
    std::optional<ErrorCode> error_code;
    std::string error;
    std::vector<Word> output;
    bool deadline_missed = false;
    std::uint32_t batch_lanes = 0;
    std::uint64_t queue_delay_us = 0;
    std::uint64_t latency_us = 0;

    bool ok() const {
      return transport_error.empty() && !error_code &&
             status == serve::JobStatus::kCompleted;
    }
  };

  Client() = default;

  /// Connects; check connected() / error() afterwards.
  Client(const std::string& host, std::uint16_t port);

  bool connected() const { return socket_.valid() && !broken(); }
  bool broken() const { return !transport_error_.empty(); }
  const std::string& error() const { return transport_error_; }

  /// Sends a submission and returns its request id (for wait()).  Returns
  /// std::nullopt when the transport is dead.
  std::optional<std::uint32_t> submit_async(
      const std::string& program_id, std::vector<Word> input,
      const std::string& tenant = "default",
      serve::Priority priority = serve::Priority::kNormal,
      std::int64_t deadline_us = -1);

  /// Blocks until the response for `request_id` arrives (or the transport
  /// dies).  Out-of-order responses for other ids are parked.
  Result wait(std::uint32_t request_id);

  /// submit_async + wait.
  Result submit(const std::string& program_id, std::vector<Word> input,
                const std::string& tenant = "default",
                serve::Priority priority = serve::Priority::kNormal,
                std::int64_t deadline_us = -1);

  /// Fetches the server's Prometheus metrics text ("" on transport death).
  std::string scrape_stats();

  /// Requests outstanding (submitted, not yet waited) count: ids still
  /// awaiting a server frame plus results parked for a later wait().
  std::size_t outstanding() const { return awaiting_.size() + parked_.size(); }

  void close() { socket_.close(); }

 private:
  bool send_frame(const Frame& frame);
  /// Reads until one frame is decoded; false on transport death.
  bool read_frame(Frame& out);
  void mark_broken(const std::string& why);

  /// Parks a Response/Error frame for a later wait().  The id must be in
  /// awaiting_ — a frame for an id we never sent (or already answered) is a
  /// protocol violation and breaks the transport, so a hostile server can
  /// neither grow parked_ without bound nor overwrite a parked result.
  void park(std::uint32_t id, Result&& result);

  Socket socket_;
  FrameReader reader_;
  std::string transport_error_;
  std::uint32_t next_request_id_ = 1;
  /// Ids submitted whose Response/Error frame has not arrived yet.
  std::set<std::uint32_t> awaiting_;
  /// Responses that arrived before their wait().
  std::map<std::uint32_t, Result> parked_;
};

}  // namespace obx::net

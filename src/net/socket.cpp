#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace obx::net {

namespace {

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

void set_error(std::string* error, const std::string& what) {
  if (error) *error = what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::set_nonblocking(bool on) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return fcntl(fd_, F_SETFL, want) == 0;
}

bool Socket::set_nodelay(bool on) {
  const int v = on ? 1 : 0;
  return setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) == 0;
}

IoResult Socket::read_some(void* data, std::size_t bytes) {
  for (;;) {
    const ssize_t n = ::read(fd_, data, bytes);
    if (n > 0) {
      return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(n)};
    }
    if (n == 0) return IoResult{IoResult::Kind::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Kind::kWouldBlock, 0};
    }
    return IoResult{IoResult::Kind::kError, 0};
  }
}

IoResult Socket::write_some(const void* data, std::size_t bytes) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, data, bytes, MSG_NOSIGNAL);
    if (n >= 0) {
      return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(n)};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Kind::kWouldBlock, 0};
    }
    return IoResult{IoResult::Kind::kError, 0};
  }
}

Socket Socket::connect(const std::string& host, std::uint16_t port,
                       std::string* error) {
  sockaddr_in addr;
  if (!fill_addr(host.empty() ? "127.0.0.1" : host, port, addr)) {
    if (error) *error = "unparseable IPv4 host '" + host + "'";
    return Socket{};
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_error(error, "socket");
    return Socket{};
  }
  for (;;) {
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    set_error(error, "connect " + host + ":" + std::to_string(port));
    return Socket{};
  }
  s.set_nodelay(true);
  return s;
}

Socket ListenSocket::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      s.set_nodelay(true);
      return s;
    }
    if (errno == EINTR) continue;
    return Socket{};
  }
}

ListenSocket ListenSocket::listen(const std::string& host, std::uint16_t port,
                                  int backlog, std::string* error) {
  sockaddr_in addr;
  if (!fill_addr(host, port, addr)) {
    if (error) *error = "unparseable IPv4 host '" + host + "'";
    return ListenSocket{};
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    set_error(error, "socket");
    return ListenSocket{};
  }
  const int reuse = 1;
  setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    set_error(error, "bind " + host + ":" + std::to_string(port));
    return ListenSocket{};
  }
  if (::listen(s.fd(), backlog) != 0) {
    set_error(error, "listen");
    return ListenSocket{};
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    set_error(error, "getsockname");
    return ListenSocket{};
  }
  ListenSocket listener;
  listener.socket_ = std::move(s);
  listener.socket_.set_nonblocking(true);
  listener.host_ = host.empty() ? "127.0.0.1" : host;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return;
  read_ = Socket(fds[0]);
  write_ = Socket(fds[1]);
  read_.set_nonblocking(true);
  write_.set_nonblocking(true);
}

void WakePipe::notify() {
  const std::uint8_t one = 1;
  // A full pipe is fine: the loop is already guaranteed to wake.
  (void)::write(write_.fd(), &one, 1);
}

void WakePipe::drain() {
  std::uint8_t sink[64];
  while (::read(read_.fd(), sink, sizeof(sink)) > 0) {
  }
}

}  // namespace obx::net

// The obx wire protocol: binary length-prefixed frames.
//
// Every message is one frame — a fixed 16-byte little-endian header followed
// by a typed payload:
//
//   offset  size  field
//   0       4     magic      0x4F425846 ("FXBO" on the wire, "OBXF" spelled)
//   4       1     version    kProtocolVersion (1)
//   5       1     type       FrameType
//   6       2     flags      reserved, must be 0
//   8       4     length     payload bytes (<= kMaxFramePayloadBytes)
//   12      4     request_id client-chosen correlation id
//
// A client submits work with kSubmit (program id, tenant id, priority
// class, relative deadline, input lane) and receives exactly one kResponse
// or kError per request id; kStatsRequest returns the server's metrics as
// Prometheus exposition text in a kStatsResponse.  Responses may arrive out
// of request order — batches complete independently — which is what the
// request id is for.
//
// Decoding is strict: bad magic, an unsupported version, an unknown type,
// an oversized length, or a payload that does not parse to exactly its
// declared length poisons the stream (FrameReader::Status::kError) — the
// server drops such connections.  A short buffer is not an error, just
// kNeedMore: frames are reassembled incrementally from whatever chunks the
// socket delivers.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "serve/job.hpp"

namespace obx::net {

inline constexpr std::uint32_t kFrameMagic = 0x4F425846u;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard cap on one frame's payload: bounds per-connection memory and makes
/// a hostile length field harmless.
inline constexpr std::size_t kMaxFramePayloadBytes = std::size_t{1} << 24;
/// Cap on embedded strings (program id, tenant id, error message).
inline constexpr std::size_t kMaxIdBytes = 4096;

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kResponse = 2,
  kError = 3,
  kStatsRequest = 4,
  kStatsResponse = 5,
};

enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,        ///< protocol violation; the connection is closing
  kUnknownProgram = 2,  ///< program id not registered on this server
  kBadInput = 3,        ///< input lane has the wrong number of words
  kOverloaded = 4,      ///< refused by admission (reserved; rejections are
                        ///< normally kResponse with status kRejected)
  kShuttingDown = 5,    ///< server is draining; resubmit elsewhere
  kInternal = 6,        ///< execution failed (JobStatus::kFailed)
};

const char* to_string(ErrorCode code);

struct SubmitFrame {
  std::uint32_t request_id = 0;
  std::string program_id;
  std::string tenant = "default";
  serve::Priority priority = serve::Priority::kNormal;
  std::int64_t deadline_us = -1;  ///< relative to arrival; -1 = none
  std::vector<Word> input;
};

struct ResponseFrame {
  std::uint32_t request_id = 0;
  serve::JobStatus status = serve::JobStatus::kCompleted;
  bool deadline_missed = false;
  std::uint32_t batch_lanes = 0;
  std::uint64_t queue_delay_us = 0;
  std::uint64_t latency_us = 0;
  std::vector<Word> output;
};

struct ErrorFrame {
  std::uint32_t request_id = 0;  ///< 0 when not tied to one request
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct StatsRequestFrame {
  std::uint32_t request_id = 0;
};

struct StatsResponseFrame {
  std::uint32_t request_id = 0;
  std::string text;  ///< Prometheus exposition format
};

using Frame = std::variant<SubmitFrame, ResponseFrame, ErrorFrame,
                           StatsRequestFrame, StatsResponseFrame>;

std::uint32_t request_id_of(const Frame& frame);
FrameType type_of(const Frame& frame);

/// Appends the full encoding (header + payload) of `frame` to `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

std::vector<std::uint8_t> encode(const Frame& frame);

/// Incremental frame parser over a byte stream.  feed() whatever the socket
/// delivered; next() pops complete frames until kNeedMore.  The first
/// protocol violation poisons the reader permanently (kError + error()).
class FrameReader {
 public:
  enum class Status { kFrame, kNeedMore, kError };

  void feed(const void* data, std::size_t bytes);
  Status next(Frame& out);

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by a complete frame (a nonzero
  /// value that never completes is a torn frame / slow-loris writer).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Status fail(const std::string& message);

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::string error_;
};

}  // namespace obx::net

// Multi-tenant load generator for the network front end.
//
// Replays open-loop arrival traces — Poisson, or on/off bursty with the
// same mean rate — across many tenants, each with its own priority class,
// traffic share, and connection count.  Every connection is one thread with
// one blocking net::Client, pipelining up to pipeline_depth requests so the
// wire is not round-trip bound.  Closed-loop (arrival_rate_hz = 0) measures
// sustainable round-trip throughput instead.
//
// The accounting mirrors the exactly-once contract: every generated job is
// reported as exactly one of completed / rejected / shed / failed /
// transport_error, per tenant and in aggregate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/load_gen.hpp"

namespace obx::net {

struct NetTenantSpec {
  std::string name = "default";
  serve::Priority priority = serve::Priority::kNormal;
  /// Relative share of the total job count (normalised across tenants).
  double weight = 1.0;
  /// Concurrent connections (threads) this tenant drives.
  unsigned connections = 1;
};

struct NetLoadOptions {
  std::size_t jobs = 10000;  ///< total across all tenants
  /// Aggregate arrival rate; 0 = closed-loop (pipeline_depth outstanding
  /// per connection, submit-on-completion).
  double arrival_rate_hz = 0;
  /// On/off burst modulation of the Poisson process: arrivals land only in
  /// the first `burst_duty` fraction of every `burst_period`, at rate/duty,
  /// preserving the mean.  Off for smooth Poisson.
  bool bursty = false;
  double burst_period_s = 0.25;
  double burst_duty = 0.3;
  /// Max requests in flight per connection before waiting one out.
  std::size_t pipeline_depth = 8;
  std::int64_t deadline_us = -1;  ///< per-job relative deadline; -1 = none
  std::uint64_t seed = 1;
};

struct NetTenantReport {
  std::string tenant;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;           ///< server answered kInternal / kFailed
  std::size_t transport_errors = 0;
  std::size_t deadline_missed = 0;
  // Server-reported latency (submit → completion) of completed jobs, us.
  double mean_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
};

struct NetLoadReport {
  double wall_seconds = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t transport_errors = 0;
  std::size_t deadline_missed = 0;
  double jobs_per_sec = 0;  ///< completed / wall_seconds
  std::vector<NetTenantReport> tenants;

  /// Every generated job reached exactly one terminal bucket.
  bool exactly_once() const {
    return submitted == completed + rejected + shed + failed + transport_errors;
  }
};

/// Drives host:port with `options.jobs` jobs spread over `tenants` by
/// weight and over `workload` uniformly at random; blocks until every
/// submission has a terminal outcome.
NetLoadReport run_net_load(const std::string& host, std::uint16_t port,
                           const std::vector<serve::WorkloadItem>& workload,
                           const std::vector<NetTenantSpec>& tenants,
                           const NetLoadOptions& options);

}  // namespace obx::net

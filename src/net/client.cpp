#include "net/client.hpp"

#include <utility>

namespace obx::net {

namespace {

Client::Result result_from(ResponseFrame&& r) {
  Client::Result out;
  out.status = r.status;
  out.output = std::move(r.output);
  out.deadline_missed = r.deadline_missed;
  out.batch_lanes = r.batch_lanes;
  out.queue_delay_us = r.queue_delay_us;
  out.latency_us = r.latency_us;
  return out;
}

Client::Result result_from(ErrorFrame&& e) {
  Client::Result out;
  out.status = serve::JobStatus::kFailed;
  out.error_code = e.code;
  out.error = std::move(e.message);
  return out;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  std::string error;
  socket_ = Socket::connect(host, port, &error);
  if (!socket_.valid()) transport_error_ = error;
}

std::optional<std::uint32_t> Client::submit_async(
    const std::string& program_id, std::vector<Word> input,
    const std::string& tenant, serve::Priority priority,
    std::int64_t deadline_us) {
  if (broken()) return std::nullopt;
  SubmitFrame submit;
  submit.request_id = next_request_id_++;
  submit.program_id = program_id;
  submit.tenant = tenant;
  submit.priority = priority;
  submit.deadline_us = deadline_us;
  submit.input = std::move(input);
  const std::uint32_t id = submit.request_id;
  if (!send_frame(Frame{std::move(submit)})) return std::nullopt;
  awaiting_.insert(id);
  return id;
}

Client::Result Client::wait(std::uint32_t request_id) {
  for (;;) {
    auto parked = parked_.find(request_id);
    if (parked != parked_.end()) {
      Result r = std::move(parked->second);
      parked_.erase(parked);
      return r;
    }
    if (broken()) {
      // The transport died with this request outstanding: synthesize its
      // terminal result so every submit still resolves exactly once.
      Result r;
      r.transport_error = transport_error_;
      awaiting_.erase(request_id);
      return r;
    }
    Frame frame;
    if (!read_frame(frame)) continue;  // loop re-checks broken()
    const std::uint32_t id = request_id_of(frame);
    if (auto* response = std::get_if<ResponseFrame>(&frame)) {
      park(id, result_from(std::move(*response)));
    } else if (auto* error = std::get_if<ErrorFrame>(&frame)) {
      park(id, result_from(std::move(*error)));
    } else {
      mark_broken("unexpected frame type from server");
    }
  }
}

void Client::park(std::uint32_t id, Result&& result) {
  if (awaiting_.erase(id) == 0) {
    // Either an id we never submitted or a duplicate answer for one already
    // parked/waited.  Both violate the one-response-per-request contract;
    // accepting them would let a misbehaving server grow parked_ without
    // bound or silently overwrite a delivered result.
    mark_broken("response for request id " + std::to_string(id) +
                " that is not outstanding");
    return;
  }
  parked_[id] = std::move(result);
}

Client::Result Client::submit(const std::string& program_id,
                              std::vector<Word> input,
                              const std::string& tenant,
                              serve::Priority priority,
                              std::int64_t deadline_us) {
  const std::optional<std::uint32_t> id =
      submit_async(program_id, std::move(input), tenant, priority, deadline_us);
  if (!id) {
    Result r;
    r.transport_error =
        transport_error_.empty() ? "not connected" : transport_error_;
    return r;
  }
  return wait(*id);
}

std::string Client::scrape_stats() {
  if (broken()) return {};
  StatsRequestFrame request;
  request.request_id = next_request_id_++;
  const std::uint32_t id = request.request_id;
  if (!send_frame(Frame{request})) return {};
  for (;;) {
    if (broken()) return {};
    Frame frame;
    if (!read_frame(frame)) continue;
    if (auto* stats = std::get_if<StatsResponseFrame>(&frame)) {
      if (stats->request_id == id) return std::move(stats->text);
      continue;  // stale stats response from a previous scrape; ignore
    }
    const std::uint32_t rid = request_id_of(frame);
    if (auto* response = std::get_if<ResponseFrame>(&frame)) {
      park(rid, result_from(std::move(*response)));
    } else if (auto* error = std::get_if<ErrorFrame>(&frame)) {
      park(rid, result_from(std::move(*error)));
    } else {
      mark_broken("unexpected frame type from server");
      return {};
    }
  }
}

bool Client::send_frame(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const IoResult r = socket_.write_some(bytes.data() + sent,
                                          bytes.size() - sent);
    if (r.kind == IoResult::Kind::kOk) {
      sent += r.bytes;
      continue;
    }
    // Blocking socket: kWouldBlock should not happen; treat any non-progress
    // as transport death.
    mark_broken("send failed");
    return false;
  }
  return true;
}

bool Client::read_frame(Frame& out) {
  for (;;) {
    switch (reader_.next(out)) {
      case FrameReader::Status::kFrame:
        return true;
      case FrameReader::Status::kError:
        mark_broken("protocol error from server: " + reader_.error());
        return false;
      case FrameReader::Status::kNeedMore:
        break;
    }
    std::uint8_t chunk[4096];
    const IoResult r = socket_.read_some(chunk, sizeof(chunk));
    if (r.kind == IoResult::Kind::kOk) {
      reader_.feed(chunk, r.bytes);
      continue;
    }
    if (r.kind == IoResult::Kind::kClosed) {
      mark_broken("server closed the connection");
    } else {
      mark_broken("read failed");
    }
    return false;
  }
}

void Client::mark_broken(const std::string& why) {
  if (transport_error_.empty()) transport_error_ = why;
  socket_.close();
}

}  // namespace obx::net

#include "net/server.hpp"

#include <poll.h>

#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/metrics.hpp"

namespace obx::net {

namespace {

using serve::Clock;

std::uint64_t us_of(Clock::duration d) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d);
  return us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count());
}

struct Completion {
  std::uint64_t conn_id = 0;
  std::uint32_t request_id = 0;
  serve::JobResult result;
};

/// Shared between the loop thread and the service's executor threads.  Held
/// by shared_ptr from every in-flight completion callback, so completions
/// that land after the loop exits still have somewhere safe to go: they are
/// tallied as dropped instead of touching freed state.
struct Inbox {
  std::mutex mutex;
  std::vector<Completion> pending;
  bool open = true;                  ///< loop still draining?
  WakePipe* wake = nullptr;          ///< guarded by mutex; null once closed
  std::atomic<std::uint64_t> dropped_after_close{0};

  void post(Completion&& c) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!open) {
      dropped_after_close.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pending.push_back(std::move(c));
    if (wake) wake->notify();
  }
};

struct Stats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_refused{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> submits_received{0};
  std::atomic<std::uint64_t> submits_admitted{0};
  std::atomic<std::uint64_t> responses_sent{0};
  std::atomic<std::uint64_t> responses_dropped{0};
  std::atomic<std::uint64_t> error_responses{0};
  std::atomic<std::uint64_t> stats_requests{0};
  std::atomic<std::uint64_t> would_block{0};
  std::atomic<std::uint64_t> idle_timeouts{0};
  std::atomic<std::uint64_t> stall_timeouts{0};
};

struct Connection {
  Socket socket;
  FrameReader reader;
  std::vector<std::uint8_t> write_buf;
  std::size_t write_pos = 0;
  /// Admitted submissions not yet answered on this connection.
  std::size_t in_flight = 0;
  /// A submission the service would have blocked on; retried after
  /// completions free queue space.  While set, the connection is not read.
  std::optional<SubmitFrame> parked;
  /// Last time a complete frame was decoded (idle/slow-loris clock).
  Clock::time_point last_frame;
  /// Set while write_buf is nonempty: last time a byte reached the kernel.
  Clock::time_point last_write_progress;
  /// No further reads; close once output is flushed and in_flight is 0.
  bool closing = false;

  bool want_read() const { return !closing && !parked && !reader.failed(); }
  bool want_write() const { return write_pos < write_buf.size(); }
};

}  // namespace

class Server::Loop {
 public:
  Loop(serve::BulkService& service, const ServerOptions& options,
       ListenSocket listener)
      : service_(service),
        options_(options),
        listener_(std::move(listener)),
        inbox_(std::make_shared<Inbox>()) {
    inbox_->wake = &wake_;
  }

  void run() {
    const auto poll_granularity = std::chrono::milliseconds(20);
    std::optional<Clock::time_point> drain_deadline;
    std::vector<pollfd> fds;

    for (;;) {
      if (stopping_.load(std::memory_order_acquire) && !drain_deadline) {
        drain_deadline = Clock::now() + options_.drain_timeout;
      }
      if (drain_deadline) {
        if (drained() || Clock::now() >= *drain_deadline) break;
      }

      fds.clear();
      fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
      const bool accepting = !stopping_.load(std::memory_order_acquire);
      if (accepting) fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      std::vector<std::uint64_t> polled;
      polled.reserve(connections_.size());
      for (auto& [id, conn] : connections_) {
        short events = 0;
        if (conn.want_read()) events = static_cast<short>(events | POLLIN);
        if (conn.want_write()) events = static_cast<short>(events | POLLOUT);
        // A parked connection is not read, but its peer can still vanish.
        // Register it anyway (POLLERR/POLLHUP are reported regardless of
        // `events`; POLLRDHUP additionally catches an orderly FIN) so a
        // disconnected parker is noticed instead of squatting a slot.
        const bool watch_hangup = conn.parked && !conn.closing;
#ifdef POLLRDHUP
        if (watch_hangup) events = static_cast<short>(events | POLLRDHUP);
#endif
        if (events == 0 && !watch_hangup) continue;
        fds.push_back(pollfd{conn.socket.fd(), events, 0});
        polled.push_back(id);
      }

      const int timeout_ms = static_cast<int>(poll_granularity.count());
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) break;  // poll itself failed: give up

      const Clock::time_point now = Clock::now();
      std::size_t cursor = 0;
      if (fds[cursor].revents & POLLIN) wake_.drain();
      ++cursor;
      if (accepting) {
        if (fds[cursor].revents & POLLIN) accept_pending(now);
        ++cursor;
      }
      for (std::uint64_t id : polled) {
        auto it = connections_.find(id);
        if (it == connections_.end()) {
          ++cursor;
          continue;
        }
        const short revents = fds[cursor++].revents;
        Connection& conn = it->second;
        short gone = POLLERR | POLLHUP | POLLNVAL;
#ifdef POLLRDHUP
        gone = static_cast<short>(gone | POLLRDHUP);
#endif
        if (revents & gone) {
          // Peer is gone; pending output is undeliverable.
          close_connection(it);
          continue;
        }
        if (revents & POLLOUT) flush_writes(conn, now);
        if (revents & POLLIN) handle_readable(it, now);
      }

      deliver_completions(now);
      retry_parked(now);
      enforce_timeouts(now);
      reap_closed();
    }
    shutdown_inbox();
    teardown_connections();
  }

  void request_stop() {
    stopping_.store(true, std::memory_order_release);
    wake_.notify();
  }

  std::uint16_t port() const { return listener_.port(); }

  ServerStatsSnapshot stats() const {
    ServerStatsSnapshot s;
    s.connections_accepted = stats_.connections_accepted.load();
    s.connections_refused = stats_.connections_refused.load();
    s.connections_closed = stats_.connections_closed.load();
    s.connections_active = stats_.connections_active.load();
    s.frames_received = stats_.frames_received.load();
    s.protocol_errors = stats_.protocol_errors.load();
    s.submits_received = stats_.submits_received.load();
    s.submits_admitted = stats_.submits_admitted.load();
    s.responses_sent = stats_.responses_sent.load();
    s.responses_dropped = stats_.responses_dropped.load() +
                          inbox_->dropped_after_close.load();
    s.error_responses = stats_.error_responses.load();
    s.stats_requests = stats_.stats_requests.load();
    s.would_block = stats_.would_block.load();
    s.idle_timeouts = stats_.idle_timeouts.load();
    s.stall_timeouts = stats_.stall_timeouts.load();
    return s;
  }

 private:
  bool drained() const {
    if (!parked_count_ && connections_.empty()) return true;
    for (const auto& [id, conn] : connections_) {
      if (conn.in_flight > 0 || conn.want_write() || conn.parked) return false;
    }
    return true;
  }

  void accept_pending(Clock::time_point now) {
    for (;;) {
      Socket s = listener_.accept();
      if (!s.valid()) return;
      if (connections_.size() >= options_.max_connections) {
        stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
        continue;  // RAII closes it: an explicit refusal, not a queue
      }
      s.set_nonblocking(true);
      Connection conn;
      conn.socket = std::move(s);
      conn.last_frame = now;
      connections_.emplace(next_conn_id_++, std::move(conn));
      stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      stats_.connections_active.store(connections_.size(),
                                      std::memory_order_relaxed);
    }
  }

  void handle_readable(std::map<std::uint64_t, Connection>::iterator it,
                       Clock::time_point now) {
    Connection& conn = it->second;
    std::uint8_t chunk[4096];
    bool saw_eof = false;
    for (;;) {
      const IoResult r = conn.socket.read_some(chunk, sizeof(chunk));
      if (r.kind == IoResult::Kind::kOk) {
        conn.reader.feed(chunk, r.bytes);
        continue;
      }
      if (r.kind == IoResult::Kind::kWouldBlock) break;
      // kClosed / kError: no more input after what is already buffered.
      saw_eof = true;
      break;
    }
    // Half-close semantics: frames that arrived before EOF still count —
    // process them first, then mark closing so in-flight responses can
    // flush before the reaper takes the connection.
    process_frames(it->first, conn, now);
    if (saw_eof) conn.closing = true;
  }

  void process_frames(std::uint64_t conn_id, Connection& conn,
                      Clock::time_point now) {
    Frame frame;
    while (!conn.parked && !conn.closing) {
      const FrameReader::Status status = conn.reader.next(frame);
      if (status == FrameReader::Status::kNeedMore) break;
      if (status == FrameReader::Status::kError) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, 0, ErrorCode::kBadFrame, conn.reader.error(), now);
        conn.closing = true;
        break;
      }
      stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
      conn.last_frame = now;
      handle_frame(conn_id, conn, std::move(frame), now);
    }
  }

  void handle_frame(std::uint64_t conn_id, Connection& conn, Frame&& frame,
                    Clock::time_point now) {
    if (auto* submit = std::get_if<SubmitFrame>(&frame)) {
      stats_.submits_received.fetch_add(1, std::memory_order_relaxed);
      handle_submit(conn_id, conn, std::move(*submit), now);
      return;
    }
    if (std::holds_alternative<StatsRequestFrame>(frame)) {
      stats_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      StatsResponseFrame response;
      response.request_id = request_id_of(frame);
      response.text = scrape();
      send_frame(conn, Frame{std::move(response)}, now);
      return;
    }
    // Clients have no business sending server-to-client frame types.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, request_id_of(frame), ErrorCode::kBadFrame,
               "unexpected frame type from client", now);
    conn.closing = true;
  }

  void handle_submit(std::uint64_t conn_id, Connection& conn,
                     SubmitFrame&& submit, Clock::time_point now) {
    if (stopping_.load(std::memory_order_acquire)) {
      send_error(conn, submit.request_id, ErrorCode::kShuttingDown,
                 "server is draining", now);
      return;
    }
    if (!service_.programs().contains(submit.program_id)) {
      send_error(conn, submit.request_id, ErrorCode::kUnknownProgram,
                 "program '" + submit.program_id + "' is not registered", now);
      return;
    }
    const std::size_t want = service_.programs().get(submit.program_id).input_words();
    if (submit.input.size() != want) {
      send_error(conn, submit.request_id, ErrorCode::kBadInput,
                 "program '" + submit.program_id + "' takes " +
                     std::to_string(want) + " input words, got " +
                     std::to_string(submit.input.size()),
                 now);
      return;
    }

    serve::SubmitOptions options;
    options.tenant = submit.tenant;
    options.priority = submit.priority;
    if (submit.deadline_us >= 0) {
      options.deadline = std::chrono::microseconds(submit.deadline_us);
    }
    const std::uint32_t request_id = submit.request_id;
    auto inbox = inbox_;
    // The callback is the only owner of the routing info; it runs exactly
    // once (service contract), so each admitted submit yields exactly one
    // inbox completion.
    auto done = [inbox, conn_id, request_id](serve::JobResult&& result) {
      inbox->post(Completion{conn_id, request_id, std::move(result)});
    };
    std::vector<Word> input = submit.input;  // keep a copy for retry-on-park
    const serve::BulkService::TrySubmit outcome = service_.try_submit(
        submit.program_id, std::move(input), options, std::move(done));
    if (outcome == serve::BulkService::TrySubmit::kWouldBlock) {
      stats_.would_block.fetch_add(1, std::memory_order_relaxed);
      conn.parked = std::move(submit);
      ++parked_count_;
      return;
    }
    stats_.submits_admitted.fetch_add(1, std::memory_order_relaxed);
    ++conn.in_flight;
  }

  void retry_parked(Clock::time_point now) {
    if (parked_count_ == 0) return;
    for (auto& [id, conn] : connections_) {
      if (!conn.parked || conn.closing) continue;
      SubmitFrame submit = std::move(*conn.parked);
      conn.parked.reset();
      --parked_count_;
      handle_submit(id, conn, std::move(submit), now);
      // Admitted (or terminally refused): drain any frames that piled up in
      // the reader while the connection was parked.
      if (!conn.parked) process_frames(id, conn, now);
    }
  }

  void deliver_completions(Clock::time_point now) {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(inbox_->mutex);
      batch.swap(inbox_->pending);
    }
    for (Completion& c : batch) route_completion(std::move(c), now);
  }

  void route_completion(Completion&& c, Clock::time_point now) {
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) {
      stats_.responses_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Connection& conn = it->second;
    if (conn.in_flight > 0) --conn.in_flight;
    // Count before writing: once the peer can observe the response, the
    // ledger must already balance (stats() races with fast clients).
    stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
    if (c.result.status == serve::JobStatus::kFailed) {
      // Execution failures become explicit error frames so the peer can tell
      // "the engine threw" apart from "your job was shed".
      ErrorFrame error;
      error.request_id = c.request_id;
      error.code = ErrorCode::kInternal;
      error.message = c.result.error.empty() ? "execution failed"
                                             : c.result.error;
      stats_.error_responses.fetch_add(1, std::memory_order_relaxed);
      send_frame(conn, Frame{std::move(error)}, now);
    } else {
      ResponseFrame response;
      response.request_id = c.request_id;
      response.status = c.result.status;
      response.deadline_missed = c.result.deadline_missed;
      response.batch_lanes = static_cast<std::uint32_t>(c.result.batch_lanes);
      response.queue_delay_us = us_of(c.result.queue_delay);
      response.latency_us = us_of(c.result.latency);
      response.output = std::move(c.result.output);
      send_frame(conn, Frame{std::move(response)}, now);
    }
  }

  void send_error(Connection& conn, std::uint32_t request_id, ErrorCode code,
                  const std::string& message, Clock::time_point now) {
    ErrorFrame error;
    error.request_id = request_id;
    error.code = code;
    error.message = message;
    stats_.error_responses.fetch_add(1, std::memory_order_relaxed);
    send_frame(conn, Frame{std::move(error)}, now);
  }

  void send_frame(Connection& conn, const Frame& frame, Clock::time_point now) {
    if (!conn.want_write()) {
      conn.write_buf.clear();
      conn.write_pos = 0;
      conn.last_write_progress = now;
    }
    encode_frame(frame, conn.write_buf);
    flush_writes(conn, now);  // opportunistic: most responses fit in-kernel
  }

  void flush_writes(Connection& conn, Clock::time_point now) {
    while (conn.want_write()) {
      const IoResult r = conn.socket.write_some(
          conn.write_buf.data() + conn.write_pos,
          conn.write_buf.size() - conn.write_pos);
      if (r.kind == IoResult::Kind::kOk) {
        conn.write_pos += r.bytes;
        conn.last_write_progress = now;
        continue;
      }
      if (r.kind == IoResult::Kind::kWouldBlock) return;
      conn.closing = true;  // peer gone; reap_closed drops the rest
      conn.write_buf.clear();
      conn.write_pos = 0;
      return;
    }
    conn.write_buf.clear();
    conn.write_pos = 0;
  }

  void enforce_timeouts(Clock::time_point now) {
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& conn = it->second;
      auto cur = it++;
      if (conn.want_write() &&
          now - conn.last_write_progress > options_.write_stall_timeout) {
        stats_.stall_timeouts.fetch_add(1, std::memory_order_relaxed);
        close_connection(cur);
        continue;
      }
      const bool idle_eligible =
          !conn.closing && conn.in_flight == 0 && !conn.parked &&
          !conn.want_write();
      if (idle_eligible && now - conn.last_frame > options_.idle_timeout) {
        stats_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        close_connection(cur);
      }
    }
  }

  void reap_closed() {
    for (auto it = connections_.begin(); it != connections_.end();) {
      auto cur = it++;
      Connection& conn = cur->second;
      if (conn.closing && conn.parked) {
        // A closing connection never retries its parked submit (retry_parked
        // skips it), so the frame is dead weight: drop it here or the
        // connection becomes an unreapable zombie that holds a
        // max_connections slot forever.
        conn.parked.reset();
        --parked_count_;
      }
      if (conn.closing && !conn.want_write() && conn.in_flight == 0 &&
          !conn.parked) {
        close_connection(cur);
      }
    }
  }

  void close_connection(std::map<std::uint64_t, Connection>::iterator it) {
    if (it->second.parked) --parked_count_;
    connections_.erase(it);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.store(connections_.size(),
                                    std::memory_order_relaxed);
  }

  void shutdown_inbox() {
    // Anything still queued (or arriving later) can no longer reach a
    // connection: count it as dropped so the exactly-once ledger stays
    // balanced.
    std::vector<Completion> leftovers;
    {
      std::lock_guard<std::mutex> lock(inbox_->mutex);
      inbox_->open = false;
      inbox_->wake = nullptr;
      leftovers.swap(inbox_->pending);
    }
    stats_.responses_dropped.fetch_add(leftovers.size(),
                                       std::memory_order_relaxed);
  }

  void teardown_connections() {
    while (!connections_.empty()) close_connection(connections_.begin());
  }

  std::string scrape() const {
    return serve::render_prometheus(service_.snapshot()) +
           render_server_stats(stats());
  }

  serve::BulkService& service_;
  ServerOptions options_;
  ListenSocket listener_;
  WakePipe wake_;
  std::shared_ptr<Inbox> inbox_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t parked_count_ = 0;
  std::atomic<bool> stopping_{false};
  mutable Stats stats_;
};

Server::Server(serve::BulkService& service, ServerOptions options)
    : service_(service), options_(options) {
  std::string error;
  ListenSocket listener =
      ListenSocket::listen(options_.host, options_.port, /*backlog=*/128,
                           &error);
  if (!listener.valid()) {
    throw std::runtime_error("net::Server: " + error);
  }
  host_ = listener.host();
  port_ = listener.port();
  loop_ = std::make_unique<Loop>(service_, options_, std::move(listener));
  thread_ = std::thread([this] { loop_->run(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  loop_->request_stop();
  if (thread_.joinable()) thread_.join();
}

ServerStatsSnapshot Server::stats() const { return loop_->stats(); }

std::string Server::scrape_metrics() const {
  return serve::render_prometheus(service_.snapshot()) +
         render_server_stats(stats());
}

std::string render_server_stats(const ServerStatsSnapshot& s) {
  std::ostringstream os;
  const auto counter = [&os](const char* name, std::uint64_t value) {
    os << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
  };
  counter("obx_net_connections_accepted_total", s.connections_accepted);
  counter("obx_net_connections_refused_total", s.connections_refused);
  counter("obx_net_connections_closed_total", s.connections_closed);
  os << "# TYPE obx_net_connections_active gauge\n"
     << "obx_net_connections_active " << s.connections_active << '\n';
  counter("obx_net_frames_received_total", s.frames_received);
  counter("obx_net_protocol_errors_total", s.protocol_errors);
  counter("obx_net_submits_received_total", s.submits_received);
  counter("obx_net_submits_admitted_total", s.submits_admitted);
  counter("obx_net_responses_sent_total", s.responses_sent);
  counter("obx_net_responses_dropped_total", s.responses_dropped);
  counter("obx_net_error_responses_total", s.error_responses);
  counter("obx_net_stats_requests_total", s.stats_requests);
  counter("obx_net_would_block_total", s.would_block);
  counter("obx_net_idle_timeouts_total", s.idle_timeouts);
  counter("obx_net_stall_timeouts_total", s.stall_timeouts);
  return os.str();
}

}  // namespace obx::net

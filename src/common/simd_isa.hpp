// Runtime SIMD ISA selection for lane-vectorized bulk execution.
//
// Theorem 2's `O(pt/w + lt)` bound has `w` = how many lanes one memory
// transaction (or one ALU instruction) serves.  On the host that is the SIMD
// width: every lane of a bulk run issues the identical instruction sequence,
// so W lanes can ride one vector register with no divergence masks.  This
// header names the ISA tiers the vectorized kernels are built for and picks
// one at runtime — once per process — so a single binary runs the widest
// vectors the CPU supports.
//
// The selection is overridable with the OBX_SIMD environment variable
// ("scalar", "sse2", "neon", "avx2", "avx512", or "auto"); an override that
// names a tier the CPU or the build does not support falls back to the best
// supported tier.  The chosen tier is recorded in plan::ExecutionPlan
// provenance (and its fingerprint), printed by `obx_cli plan`, and reported
// by bulk::HostRunResult.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace obx {

/// SIMD instruction-set tiers, narrowest to widest.  kScalar is plain
/// baseline codegen with no lane grouping; kSse2/kNeon run 2 words (128 bits)
/// per iteration at baseline flags; kAvx2/kAvx512 run 4/8 words and exist
/// only when the build's compiler supports the flags (OBX_SIMD_HAVE_AVX2 /
/// OBX_SIMD_HAVE_AVX512) *and* the CPU reports the features at runtime.
enum class SimdIsa : std::uint8_t {
  kScalar,
  kSse2,
  kNeon,
  kAvx2,
  kAvx512,
};

/// 64-bit words processed per vector iteration: 1, 2, 2, 4, 8.
std::size_t simd_width_words(SimdIsa isa);

std::string to_string(SimdIsa isa);

/// Parses an OBX_SIMD-style name ("scalar", "sse2", "neon", "avx2",
/// "avx512"); nullopt for anything else (including "auto" / "").
std::optional<SimdIsa> parse_simd_isa(std::string_view name);

/// True if this build contains kernels for `isa` and the running CPU
/// supports it.  kScalar is always true.
bool simd_isa_supported(SimdIsa isa);

/// The widest supported tier on this CPU with this build.
SimdIsa detect_simd_isa();

/// The tier every dispatching component (compiled backend kernels,
/// trace::bulk_alu, plan provenance) uses: detect_simd_isa() unless OBX_SIMD
/// overrides it, latched on first call so one process never mixes tiers
/// behind a cached plan's back.  Unsupported override values clamp to
/// detect_simd_isa() with a one-time stderr warning.
SimdIsa active_simd_isa();

}  // namespace obx

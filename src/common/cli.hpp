// Minimal command-line parsing for the obx tools.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments.  Unknown options are errors; values are validated on access.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace obx::cli {

class Args {
 public:
  /// Parses argv[1..); `bool_flags` names the options that take no value.
  /// Throws std::logic_error on malformed input or unknown options when
  /// `known_options` is non-empty.
  static Args parse(int argc, const char* const* argv,
                    const std::set<std::string>& bool_flags = {},
                    const std::set<std::string>& known_options = {});

  bool has(const std::string& key) const { return options_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key) const { return has(key); }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace obx::cli

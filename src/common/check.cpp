#include "common/check.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace obx::detail {

void check_failed(std::string_view condition, std::string_view message,
                  const std::source_location& loc) {
  std::ostringstream os;
  os << "OBX_CHECK failed: " << condition << " — " << message << " ["
     << loc.file_name() << ':' << loc.line() << " in " << loc.function_name() << ']';
  throw std::logic_error(os.str());
}

}  // namespace obx::detail

#include "common/rng.hpp"

#include <bit>

#include "common/check.hpp"

namespace obx {
namespace {

// splitmix64: expands a single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  OBX_CHECK(bound != 0, "next_below requires a nonzero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  // 53 high bits → uniform [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::vector<Word> Rng::words_f64(std::size_t n, double lo, double hi) {
  std::vector<Word> out(n);
  for (auto& w : out) w = std::bit_cast<Word>(next_double(lo, hi));
  return out;
}

std::vector<Word> Rng::words_u64(std::size_t n, std::uint64_t bound) {
  std::vector<Word> out(n);
  for (auto& w : out) w = next_below(bound);
  return out;
}

}  // namespace obx

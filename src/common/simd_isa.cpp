#include "common/simd_isa.hpp"

#include <cstdio>
#include <cstdlib>

namespace obx {

std::size_t simd_width_words(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return 1;
    case SimdIsa::kSse2: return 2;
    case SimdIsa::kNeon: return 2;
    case SimdIsa::kAvx2: return 4;
    case SimdIsa::kAvx512: return 8;
  }
  return 1;
}

std::string to_string(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kSse2: return "sse2";
    case SimdIsa::kNeon: return "neon";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
  }
  return "?";
}

std::optional<SimdIsa> parse_simd_isa(std::string_view name) {
  if (name == "scalar") return SimdIsa::kScalar;
  if (name == "sse2") return SimdIsa::kSse2;
  if (name == "neon") return SimdIsa::kNeon;
  if (name == "avx2") return SimdIsa::kAvx2;
  if (name == "avx512") return SimdIsa::kAvx512;
  return std::nullopt;
}

bool simd_isa_supported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // SSE2 is part of the x86-64 baseline
#else
      return false;
#endif
    case SimdIsa::kNeon:
#if defined(OBX_SIMD_HAVE_NEON)
      return true;  // AdvSIMD is part of the AArch64 baseline
#else
      return false;
#endif
    case SimdIsa::kAvx2:
#if defined(OBX_SIMD_HAVE_AVX2) && (defined(__x86_64__) || defined(_M_X64)) && \
    defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdIsa::kAvx512:
#if defined(OBX_SIMD_HAVE_AVX512) && (defined(__x86_64__) || defined(_M_X64)) && \
    defined(__GNUC__)
      // The kernels use 512-bit integer/double ops plus the DQ/BW/VL forms
      // the compiler emits freely at -mavx512f -mavx512dq -mavx512bw
      // -mavx512vl; require the full set.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
  }
  return false;
}

SimdIsa detect_simd_isa() {
  if (simd_isa_supported(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
  if (simd_isa_supported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (simd_isa_supported(SimdIsa::kSse2)) return SimdIsa::kSse2;
  if (simd_isa_supported(SimdIsa::kNeon)) return SimdIsa::kNeon;
  return SimdIsa::kScalar;
}

namespace {

SimdIsa resolve_active_simd_isa() {
  const char* env = std::getenv("OBX_SIMD");
  if (env == nullptr || env[0] == '\0' || std::string_view(env) == "auto") {
    return detect_simd_isa();
  }
  const std::optional<SimdIsa> requested = parse_simd_isa(env);
  if (!requested.has_value()) {
    std::fprintf(stderr,
                 "obx: OBX_SIMD=%s is not a known tier "
                 "(scalar|sse2|neon|avx2|avx512|auto); using %s\n",
                 env, to_string(detect_simd_isa()).c_str());
    return detect_simd_isa();
  }
  if (!simd_isa_supported(*requested)) {
    std::fprintf(stderr, "obx: OBX_SIMD=%s not supported by this CPU/build; using %s\n",
                 env, to_string(detect_simd_isa()).c_str());
    return detect_simd_isa();
  }
  return *requested;
}

}  // namespace

SimdIsa active_simd_isa() {
  // Latched once: every dispatch site (kernels, bulk_alu, plans) sees the
  // same tier for the whole process lifetime, so cached artifacts and their
  // recorded provenance can never disagree with the code that runs.
  static const SimdIsa active = resolve_active_simd_isa();
  return active;
}

}  // namespace obx

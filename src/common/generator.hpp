// Minimal C++20 coroutine generator.
//
// Oblivious programs in obx are *streams* of steps: an OPT instance for a
// 512-gon issues ~10^8 memory operations, far too many to materialise as a
// vector.  Algorithms are therefore written as coroutines yielding one
// trace::Step at a time, and executors pull from the stream.  This type is a
// deliberately small subset of std::generator (which lands in C++23).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/check.hpp"

namespace obx {

template <typename T>
class Generator {
 public:
  struct promise_type {
    T current{};
    std::exception_ptr exception;

    Generator get_return_object() {
      return Generator{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(T value) noexcept {
      current = std::move(value);
      return {};
    }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Generator() = default;
  explicit Generator(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Generator(Generator&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Generator& operator=(Generator&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;
  ~Generator() { destroy(); }

  /// Advances the coroutine and stores the next value; returns false when the
  /// stream is exhausted.  Rethrows any exception escaping the coroutine body.
  bool next(T& out) {
    if (!handle_ || handle_.done()) return false;
    handle_.resume();
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    if (handle_.done()) return false;
    out = handle_.promise().current;
    return true;
  }

  /// Input-iterator interface so generators work with range-for.
  struct Sentinel {};
  class Iterator {
   public:
    explicit Iterator(Generator* g) : gen_(g) { advance(); }
    const T& operator*() const { return value_; }
    Iterator& operator++() {
      advance();
      return *this;
    }
    bool operator==(Sentinel) const { return done_; }

   private:
    void advance() { done_ = !gen_->next(value_); }
    Generator* gen_;
    T value_{};
    bool done_ = false;
  };

  Iterator begin() { return Iterator{this}; }
  Sentinel end() { return Sentinel{}; }

  bool valid() const { return handle_ != nullptr; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace obx

// Human-readable formatting helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace obx {

/// 1024 → "1K", 4194304 → "4M", 3000 → "3000" (only exact binary multiples
/// get a suffix, matching the paper's axis labels: 1K, 32K, 4M, ...).
std::string format_count(std::uint64_t n);

/// Seconds with an auto-selected unit: "37.0 us", "67.9 ms", "2.13 s".
std::string format_seconds(double seconds);

/// "12.3 Kcycles", "4.5 Mcycles", ... for UMM time units.
std::string format_units(double units);

/// Fixed-point with the given number of decimals.
std::string format_fixed(double v, int decimals);

}  // namespace obx

#include "common/cli.hpp"

#include <charconv>
#include <stdexcept>

#include "common/check.hpp"

namespace obx::cli {

Args Args::parse(int argc, const char* const* argv,
                 const std::set<std::string>& bool_flags,
                 const std::set<std::string>& known_options) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(std::move(token));
      continue;
    }
    std::string key = token.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    }
    OBX_CHECK(!key.empty(), "empty option name");
    if (!known_options.empty()) {
      OBX_CHECK(known_options.count(key) > 0 || bool_flags.count(key) > 0,
                "unknown option --" + key);
    }
    if (bool_flags.count(key) > 0) {
      OBX_CHECK(!has_value, "flag --" + key + " takes no value");
      args.options_[key] = "true";
      continue;
    }
    if (!has_value) {
      OBX_CHECK(i + 1 < argc, "option --" + key + " needs a value");
      value = argv[++i];
    }
    args.options_[key] = std::move(value);
  }
  return args;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  OBX_CHECK(ec == std::errc() && ptr == s.data() + s.size(),
            "option --" + key + " is not an integer: " + s);
  return out;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    OBX_CHECK(consumed == it->second.size(),
              "option --" + key + " is not a number: " + it->second);
    return v;
  } catch (const std::invalid_argument&) {
    OBX_CHECK(false, "option --" + key + " is not a number: " + it->second);
  }
  return fallback;
}

}  // namespace obx::cli

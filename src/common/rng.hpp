// Deterministic pseudo-random inputs for tests, benches and examples.
//
// A small xoshiro256** implementation: fast, seedable, identical on every
// platform (std::mt19937 distribution output is not portable across
// standard-library implementations, which would make golden tests brittle).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace obx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();
  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// n doubles in [lo, hi) bit-cast into Words.
  std::vector<Word> words_f64(std::size_t n, double lo, double hi);
  /// n non-negative integers below `bound`, stored as raw Words.
  std::vector<Word> words_u64(std::size_t n, std::uint64_t bound);

 private:
  std::uint64_t s_[4];
};

}  // namespace obx

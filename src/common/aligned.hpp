// 64-byte-aligned allocation for SIMD-hot buffers.
//
// The vectorized backend streams whole cachelines through the per-tile
// register file and the arranged memory image; std::allocator only promises
// alignof(std::max_align_t) (16 on x86-64), which lets a 512-bit access
// straddle two cachelines.  aligned_vector pins those buffers to 64-byte
// boundaries — one line, and big enough for any vector width we dispatch to —
// at zero cost elsewhere (the allocator is stateless and on the aligned
// operator-new path).
#pragma once

#include <algorithm>
#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

namespace obx {

inline constexpr std::size_t kSimdAlignBytes = 64;

template <class T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlignBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlignBytes});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.  Element-wise interchangeable
/// with std::vector<T>; the cross-allocator comparisons below keep call sites
/// (tests especially) free to mix the two.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

template <class T, class A>
  requires(!std::is_same_v<A, AlignedAllocator<T>>)
bool operator==(const aligned_vector<T>& a, const std::vector<T, A>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

template <class T, class A>
  requires(!std::is_same_v<A, AlignedAllocator<T>>)
bool operator==(const std::vector<T, A>& a, const aligned_vector<T>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace obx

// 64-byte-aligned allocation for SIMD-hot buffers.
//
// The vectorized backend streams whole cachelines through the per-tile
// register file and the arranged memory image; std::allocator only promises
// alignof(std::max_align_t) (16 on x86-64), which lets a 512-bit access
// straddle two cachelines.  aligned_vector pins those buffers to 64-byte
// boundaries — one line, and big enough for any vector width we dispatch to —
// at zero cost elsewhere (the allocator is stateless and on the aligned
// operator-new path).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace obx {

inline constexpr std::size_t kSimdAlignBytes = 64;

/// Allocations at least this large get the transparent-huge-page hint when
/// OBX_THP is on: a figure-scale arranged memory image (p·n words) spans
/// thousands of 4K pages, and 2M mappings cut the TLB miss rate of the
/// lane-stride sweeps.  2M = one x86-64 huge page.
inline constexpr std::size_t kHugePageHintBytes = std::size_t{2} << 20;

/// OBX_THP=1/on: hint large allocations to transparent huge pages (latched
/// on first use).  Off by default — THP compaction stalls are real, so the
/// toggle is opt-in.
inline bool huge_page_hint_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("OBX_THP");
    if (v == nullptr) return false;
    return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
           std::strcmp(v, "false") != 0 && std::strcmp(v, "no") != 0;
  }();
  return enabled;
}

/// Best-effort madvise(MADV_HUGEPAGE) over the page-aligned interior of
/// [p, p+bytes).  No-op off Linux, below the size threshold, or with the
/// toggle off; failures are ignored (the kernel may lack THP entirely).
inline void hint_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (bytes < kHugePageHintBytes || !huge_page_hint_enabled()) return;
  const std::uintptr_t page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t begin = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t end = (addr + bytes) & ~(page - 1);
  if (end > begin) {
    (void)::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

template <class T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    T* p = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlignBytes}));
    hint_huge_pages(p, n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlignBytes});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.  Element-wise interchangeable
/// with std::vector<T>; the cross-allocator comparisons below keep call sites
/// (tests especially) free to mix the two.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

template <class T, class A>
  requires(!std::is_same_v<A, AlignedAllocator<T>>)
bool operator==(const aligned_vector<T>& a, const std::vector<T, A>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

template <class T, class A>
  requires(!std::is_same_v<A, AlignedAllocator<T>>)
bool operator==(const std::vector<T, A>& a, const aligned_vector<T>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace obx

// Lightweight runtime checking.
//
// OBX_CHECK is always on (argument validation of the public API); OBX_DCHECK
// compiles away in release builds and guards internal invariants on hot paths.
#pragma once

#include <source_location>
#include <string_view>

namespace obx::detail {

[[noreturn]] void check_failed(std::string_view condition, std::string_view message,
                               const std::source_location& loc);

}  // namespace obx::detail

#define OBX_CHECK(cond, msg)                                                        \
  do {                                                                              \
    if (!(cond)) [[unlikely]] {                                                     \
      ::obx::detail::check_failed(#cond, (msg), std::source_location::current());   \
    }                                                                               \
  } while (false)

#ifdef NDEBUG
#define OBX_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#else
#define OBX_DCHECK(cond, msg) OBX_CHECK(cond, msg)
#endif

#include "common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace obx {

std::string format_count(std::uint64_t n) {
  struct Suffix {
    std::uint64_t unit;
    char label;
  };
  constexpr std::array<Suffix, 3> suffixes{{{1ULL << 30, 'G'}, {1ULL << 20, 'M'}, {1ULL << 10, 'K'}}};
  for (const auto& s : suffixes) {
    if (n >= s.unit && n % s.unit == 0) {
      return std::to_string(n / s.unit) + s.label;
    }
  }
  return std::to_string(n);
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_seconds(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= 1.0) return format_fixed(seconds, 3) + " s";
  if (a >= 1e-3) return format_fixed(seconds * 1e3, 3) + " ms";
  if (a >= 1e-6) return format_fixed(seconds * 1e6, 3) + " us";
  return format_fixed(seconds * 1e9, 3) + " ns";
}

std::string format_units(double units) {
  const double a = std::fabs(units);
  if (a >= 1e9) return format_fixed(units / 1e9, 3) + " Gcycles";
  if (a >= 1e6) return format_fixed(units / 1e6, 3) + " Mcycles";
  if (a >= 1e3) return format_fixed(units / 1e3, 3) + " Kcycles";
  return format_fixed(units, 0) + " cycles";
}

}  // namespace obx

// Core scalar types shared by every obx module.
//
// The Unified Memory Machine (UMM) of Nakano et al. operates on a flat,
// word-addressed memory.  We fix the machine word to 64 bits: wide enough to
// hold an IEEE double (prefix-sums, FFT), a signed integer (dynamic
// programming), or raw bits (ciphers), so a single register file and memory
// image serve every oblivious algorithm in the library.
#pragma once

#include <cstdint>
#include <limits>

namespace obx {

/// Machine word. Typed views (f64 / i64 / u64) are provided by value.hpp.
using Word = std::uint64_t;

/// Word address into either the canonical (per-input) array of an oblivious
/// algorithm or the global memory of a machine model.
using Addr = std::uint64_t;

/// Count of UMM/DMM time units (clock cycles of the model).
using TimeUnits = std::uint64_t;

/// Lane index: which of the p bulk inputs a thread works on.
using Lane = std::uint64_t;

inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

}  // namespace obx

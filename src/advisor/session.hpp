// Session: the batteries-included entry point.
//
// Wires the whole library together for a user who just has an oblivious
// program and a pile of inputs: builds a one-off plan::ExecutionPlan
// (optimise → compile → arrange at the session's occupancy → tile), sizes
// resident batches to a memory budget, executes through the streaming bulk
// engine, and reports what it did (including the simulated machine time a
// UMM of the configured shape would have taken).  All decisions come from
// plan::Planner — the Session adds only the memory-budget batch sizing and
// the report.
//
//   advisor::Session session(advisor::SessionOptions{});
//   auto report = session.run(program, p, fill_input, consume_output);
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "bulk/thread_pool.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::advisor {

struct SessionOptions {
  /// Machine the simulated-time estimate is computed for (and that the
  /// arrangement recommendation targets).
  umm::MachineConfig machine{.width = 32, .latency = 200};

  /// Peak resident words for lane data (inputs + arranged memory + outputs
  /// of one batch).  Batches are sized to stay under this.
  std::size_t memory_budget_words = 1u << 24;

  /// Host threads per batch.  Defaults to the machine's core count so
  /// callers (and service batches) use the host out of the box; set to 1 for
  /// deterministic single-threaded timing runs.
  unsigned workers = bulk::default_worker_count();

  /// Run the peephole optimiser on the program first (skipped automatically
  /// for programs longer than optimise_step_limit).
  bool optimize = true;
  std::size_t optimise_step_limit = 1u << 22;

  /// Force an arrangement instead of taking the advisor's recommendation.
  std::optional<bulk::Arrangement> arrangement;
};

struct SessionReport {
  std::string program_name;            ///< name actually executed (may be "+opt")
  std::uint64_t memory_steps_before = 0;
  std::uint64_t memory_steps_after = 0;  ///< after optimisation (== before if skipped)
  bool optimised = false;
  bulk::Arrangement arrangement = bulk::Arrangement::kColumnWise;
  std::size_t lanes = 0;
  std::size_t batch_lanes = 0;         ///< resident lanes per batch
  std::size_t batches = 0;
  TimeUnits simulated_units = 0;       ///< full-p estimate on options.machine
  double host_seconds = 0.0;           ///< execute + callback wall-clock
  double host_execute_seconds = 0.0;   ///< engine time inside the bulk executor
  double host_callback_seconds = 0.0;  ///< time inside the caller's callbacks

  std::string summary() const;
};

class Session {
 public:
  Session() : Session(SessionOptions()) {}
  explicit Session(SessionOptions options);

  /// Executes `program` for p lanes with callback-fed inputs and outputs
  /// (the StreamingExecutor contract: fill_input(j, dst) writes lane j's
  /// input words; consume_output(j, out) receives its output region).
  SessionReport run(
      const trace::Program& program, std::size_t p,
      const std::function<void(Lane, std::span<Word>)>& fill_input,
      const std::function<void(Lane, std::span<const Word>)>& consume_output) const;

  const SessionOptions& options() const { return options_; }

 private:
  SessionOptions options_;
};

}  // namespace obx::advisor

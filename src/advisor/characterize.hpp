// Workload characterisation: where does a bulk oblivious program sit in the
// model's taxonomy, and how should it be executed?
//
// Answers, for a (program, p, machine) triple:
//   - memory/compute step mix and arithmetic intensity,
//   - simulated time of both arrangements and the coalescing gain,
//   - regime: latency-bound (l·t floor dominates) vs bandwidth-bound,
//   - distance from the Theorem 3 lower bound,
//   - data-reuse ratio t/n and whether HMM shared-memory staging would pay.
// The summary() rendering backs `obx_cli analyze`.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "hmm/hmm_config.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::advisor {

struct Characterization {
  // Program profile (per input).
  std::uint64_t memory_steps = 0;
  std::uint64_t compute_steps = 0;
  double arithmetic_intensity = 0.0;  ///< compute steps per memory step
  double reuse_ratio = 0.0;           ///< t / memory_words

  // Simulated bulk execution.
  std::size_t lanes = 0;
  TimeUnits row_units = 0;
  TimeUnits col_units = 0;
  double coalescing_gain = 0.0;  ///< row/col
  double lower_bound_ratio = 0.0;  ///< col / Theorem-3 bound
  bool latency_bound = false;      ///< l·t floor >= half the column time

  // Recommendations.
  bulk::Arrangement recommended_arrangement = bulk::Arrangement::kColumnWise;
  bool hmm_staging_fits = false;
  double hmm_staging_gain = 0.0;  ///< global-only / staged (0 if not evaluated)

  std::string summary() const;
};

/// Characterises `program` for p lanes on the given machine.  When `hier` is
/// non-null, also evaluates the HMM staged schedule.
Characterization characterize(const trace::Program& program, std::size_t p,
                              const umm::MachineConfig& machine,
                              const hmm::HmmConfig* hier = nullptr);

}  // namespace obx::advisor

#include "advisor/characterize.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/format.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "hmm/hmm_estimator.hpp"
#include "umm/cost_model.hpp"

namespace obx::advisor {

Characterization characterize(const trace::Program& program, std::size_t p,
                              const umm::MachineConfig& machine,
                              const hmm::HmmConfig* hier) {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(p > 0, "at least one lane");
  machine.validate();

  Characterization c;
  c.lanes = p;
  const trace::StepCounts counts = program.profile();
  c.memory_steps = counts.memory();
  c.compute_steps = counts.alu + counts.imm;
  c.arithmetic_intensity =
      c.memory_steps == 0
          ? 0.0
          : static_cast<double>(c.compute_steps) / static_cast<double>(c.memory_steps);
  c.reuse_ratio = static_cast<double>(c.memory_steps) /
                  static_cast<double>(program.memory_words);

  c.row_units = bulk::TimingEstimator(
                    umm::Model::kUmm, machine,
                    bulk::make_layout(program, p, bulk::Arrangement::kRowWise))
                    .run(program)
                    .time_units;
  c.col_units = bulk::TimingEstimator(
                    umm::Model::kUmm, machine,
                    bulk::make_layout(program, p, bulk::Arrangement::kColumnWise))
                    .run(program)
                    .time_units;
  c.coalescing_gain = c.col_units == 0
                          ? 1.0
                          : static_cast<double>(c.row_units) /
                                static_cast<double>(c.col_units);
  const TimeUnits bound = umm::theorem3_lower_bound(c.memory_steps, p, machine);
  c.lower_bound_ratio =
      bound == 0 ? 1.0
                 : static_cast<double>(c.col_units) / static_cast<double>(bound);
  const TimeUnits floor =
      static_cast<TimeUnits>(machine.latency) * c.memory_steps;
  c.latency_bound = 2 * floor >= c.col_units;
  c.recommended_arrangement = c.col_units <= c.row_units
                                  ? bulk::Arrangement::kColumnWise
                                  : bulk::Arrangement::kRowWise;

  if (hier != nullptr) {
    const hmm::HmmEstimator est(*hier);
    if (est.admissible(program)) {
      c.hmm_staging_fits = true;
      const TimeUnits staged = est.run(program, p).total();
      const TimeUnits global = est.global_only(program, p);
      c.hmm_staging_gain =
          staged == 0 ? 1.0
                      : static_cast<double>(global) / static_cast<double>(staged);
    }
  }
  return c;
}

std::string Characterization::summary() const {
  std::ostringstream os;
  os << "per-input profile: t = " << memory_steps << " memory steps, "
     << compute_steps << " register steps (intensity "
     << format_fixed(arithmetic_intensity, 2) << "), reuse t/n = "
     << format_fixed(reuse_ratio, 1) << "\n";
  os << "bulk p = " << format_count(lanes) << ": row-wise " << row_units
     << " units, column-wise " << col_units << " units (coalescing gain "
     << format_fixed(coalescing_gain, 1) << "x)\n";
  os << "regime: " << (latency_bound ? "latency-bound (the l*t floor dominates; "
                                       "more lanes are free)"
                                     : "bandwidth-bound (time scales with p/w)")
     << "\n";
  os << "column-wise is within " << format_fixed(lower_bound_ratio, 2)
     << "x of the Theorem 3 lower bound\n";
  os << "recommended arrangement: " << to_string(recommended_arrangement) << "\n";
  if (hmm_staging_fits) {
    os << "HMM shared-memory staging: fits, "
       << format_fixed(hmm_staging_gain, 2) << "x vs global-only ("
       << (hmm_staging_gain > 1.5 ? "recommended" : "not worth the copies") << ")\n";
  } else if (hmm_staging_gain == 0.0) {
    os << "HMM shared-memory staging: not evaluated or does not fit\n";
  }
  return os.str();
}

}  // namespace obx::advisor

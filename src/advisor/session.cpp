#include "advisor/session.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/format.hpp"
#include "bulk/bulk.hpp"
#include "bulk/streaming_executor.hpp"
#include "bulk/timing_estimator.hpp"
#include "opt/optimizer.hpp"

namespace obx::advisor {

Session::Session(SessionOptions options) : options_(options) {
  options_.machine.validate();
  OBX_CHECK(options_.memory_budget_words > 0, "memory budget must be positive");
}

SessionReport Session::run(
    const trace::Program& program, std::size_t p,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(p > 0, "at least one lane");

  SessionReport report;
  report.lanes = p;
  const trace::StepCounts counts = program.profile();
  report.memory_steps_before = counts.memory();

  // 1. Optimise (when enabled and the program is small enough to capture).
  trace::Program to_run = program;
  if (options_.optimize && counts.total() < options_.optimise_step_limit) {
    opt::OptimizeOptions oo;
    oo.max_steps = options_.optimise_step_limit;
    const opt::OptimizeResult r = opt::optimize(program, oo);
    if (r.after.total() < r.before.total()) {
      to_run = r.program;
      report.optimised = true;
    }
  }
  report.program_name = to_run.name;
  report.memory_steps_after = to_run.memory_steps();

  // 2. Pick the arrangement: forced, or whichever simulates faster on the
  //    configured machine.
  if (options_.arrangement.has_value()) {
    report.arrangement = *options_.arrangement;
    report.simulated_units =
        bulk::TimingEstimator(umm::Model::kUmm, options_.machine,
                              bulk::make_layout(to_run, p, report.arrangement))
            .run(to_run)
            .time_units;
  } else {
    const TimeUnits row =
        bulk::TimingEstimator(umm::Model::kUmm, options_.machine,
                              bulk::make_layout(to_run, p, bulk::Arrangement::kRowWise))
            .run(to_run)
            .time_units;
    const TimeUnits col = bulk::TimingEstimator(
                              umm::Model::kUmm, options_.machine,
                              bulk::make_layout(to_run, p, bulk::Arrangement::kColumnWise))
                              .run(to_run)
                              .time_units;
    report.arrangement =
        col <= row ? bulk::Arrangement::kColumnWise : bulk::Arrangement::kRowWise;
    report.simulated_units = std::min(row, col);
  }

  // 3. Size resident batches to the memory budget.  Per resident lane the
  //    streaming executor holds roughly input + arranged memory + registers
  //    + output words.
  const std::size_t per_lane = to_run.input_words + to_run.memory_words +
                               to_run.register_count + to_run.output_words;
  const std::size_t batch = std::clamp<std::size_t>(
      options_.memory_budget_words / std::max<std::size_t>(per_lane, 1), 1, p);
  report.batch_lanes = batch;

  // 4. Execute.
  bulk::StreamingExecutor exec(bulk::StreamingExecutor::Options{
      .max_resident_lanes = batch,
      .workers = options_.workers,
      .arrangement = report.arrangement,
  });
  const auto stats = exec.run(to_run, p, fill_input, consume_output);
  report.batches = stats.batches;
  report.host_seconds = stats.seconds();
  report.host_execute_seconds = stats.execute_seconds;
  report.host_callback_seconds = stats.callback_seconds;
  return report;
}

std::string SessionReport::summary() const {
  std::ostringstream os;
  os << program_name << ": " << format_count(lanes) << " lanes in " << batches
     << " batch(es) of <= " << batch_lanes << ", " << to_string(arrangement)
     << " arrangement";
  if (optimised) {
    os << ", optimised t " << memory_steps_before << " -> " << memory_steps_after;
  }
  os << "; host " << format_seconds(host_seconds) << ", simulated "
     << format_units(static_cast<double>(simulated_units));
  return os.str();
}

}  // namespace obx::advisor

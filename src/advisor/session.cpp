#include "advisor/session.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/format.hpp"
#include "plan/planner.hpp"

namespace obx::advisor {

Session::Session(SessionOptions options) : options_(options) {
  options_.machine.validate();
  OBX_CHECK(options_.memory_budget_words > 0, "memory budget must be positive");
}

SessionReport Session::run(
    const trace::Program& program, std::size_t p,
    const std::function<void(Lane, std::span<Word>)>& fill_input,
    const std::function<void(Lane, std::span<const Word>)>& consume_output) const {
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  OBX_CHECK(p > 0, "at least one lane");

  // One-off plan: optimise → compile → arrange (at the session's actual
  // occupancy p) → tile, all decided by the single planning layer.
  plan::PlanOptions po;
  po.machine = options_.machine;
  po.reference_lanes = p;
  po.optimise = options_.optimize;
  po.optimise_step_limit = options_.optimise_step_limit;
  po.workers = options_.workers;
  po.arrangement = options_.arrangement;
  const std::shared_ptr<const plan::ExecutionPlan> plan =
      plan::Planner(po).build(program);

  SessionReport report;
  report.lanes = p;
  report.program_name = plan->program().name;
  report.memory_steps_before = plan->provenance().before.memory();
  report.memory_steps_after = plan->provenance().after.memory();
  report.optimised = plan->provenance().optimised;
  report.arrangement = plan->arrangement();
  report.simulated_units = plan->units_for_lanes(p);
  report.batch_lanes = plan->resident_lanes_for_budget(options_.memory_budget_words, p);

  const auto stats =
      plan::run_streaming(*plan, p, report.batch_lanes, fill_input, consume_output);
  report.batches = stats.batches;
  report.host_seconds = stats.seconds();
  report.host_execute_seconds = stats.execute_seconds;
  report.host_callback_seconds = stats.callback_seconds;
  return report;
}

std::string SessionReport::summary() const {
  std::ostringstream os;
  os << program_name << ": " << format_count(lanes) << " lanes in " << batches
     << " batch(es) of <= " << batch_lanes << ", " << to_string(arrangement)
     << " arrangement";
  if (optimised) {
    os << ", optimised t " << memory_steps_before << " -> " << memory_steps_after;
  }
  os << "; host " << format_seconds(host_seconds) << ", simulated "
     << format_units(static_cast<double>(simulated_units));
  return os.str();
}

}  // namespace obx::advisor

// Virtual GPU: the reproduction's stand-in for the paper's GeForce GTX Titan.
//
// The paper's own methodology argues that the UMM *is* the model of GPU
// global-memory behaviour, so the virtual device is simply a UMM timing
// engine plus a clock that converts time units into seconds.  Functional
// results come from the lockstep host executor (bit-identical to CUDA
// kernels computing in the same order); timing comes from the UMM cost
// model.  See DESIGN.md §2 for why this substitution preserves the shapes of
// Figures 11-12.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "bulk/timing_estimator.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::gpusim {

struct GpuSpec {
  std::string name;
  double clock_hz = 1.0;        ///< time units → seconds conversion
  std::uint32_t multiprocessors = 1;  ///< informational (paper: 14 SMs)
  std::uint32_t threads_per_block = 64;  ///< paper's launch config
  umm::MachineConfig memory;    ///< the UMM parameters (w, l)
};

/// GeForce-GTX-Titan-like device: 837 MHz core clock, 14 SMs, warp width 32,
/// a few hundred cycles of global-memory latency.
GpuSpec gtx_titan();

class VirtualGpu {
 public:
  explicit VirtualGpu(GpuSpec spec);

  /// Simulated seconds for one bulk run of `program` over p lanes in the
  /// given arrangement (timing fast path, no data allocated).
  double estimate_seconds(const trace::Program& program, std::size_t p,
                          bulk::Arrangement arrangement) const;

  /// Raw simulated time units for the same run.
  TimeUnits estimate_units(const trace::Program& program, std::size_t p,
                           bulk::Arrangement arrangement) const;

  double seconds_from_units(TimeUnits units) const {
    return static_cast<double>(units) / spec_.clock_hz;
  }

  /// Number of CUDA-style blocks a launch of p threads would use.
  std::uint64_t blocks_for(std::size_t p) const {
    return (p + spec_.threads_per_block - 1) / spec_.threads_per_block;
  }

  const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

}  // namespace obx::gpusim

#include "gpusim/virtual_gpu.hpp"

#include "common/check.hpp"
#include "bulk/bulk.hpp"

namespace obx::gpusim {

GpuSpec gtx_titan() {
  GpuSpec spec;
  spec.name = "virtual-gtx-titan";
  spec.clock_hz = 837e6;
  spec.multiprocessors = 14;
  spec.threads_per_block = 64;
  spec.memory = umm::gtx_titan_like();
  return spec;
}

VirtualGpu::VirtualGpu(GpuSpec spec) : spec_(std::move(spec)) {
  OBX_CHECK(spec_.clock_hz > 0, "clock must be positive");
  spec_.memory.validate();
}

TimeUnits VirtualGpu::estimate_units(const trace::Program& program, std::size_t p,
                                     bulk::Arrangement arrangement) const {
  const bulk::Layout layout = bulk::make_layout(program, p, arrangement);
  const bulk::TimingEstimator estimator(umm::Model::kUmm, spec_.memory, layout);
  return estimator.run(program).time_units;
}

double VirtualGpu::estimate_seconds(const trace::Program& program, std::size_t p,
                                    bulk::Arrangement arrangement) const {
  return seconds_from_units(estimate_units(program, p, arrangement));
}

}  // namespace obx::gpusim

#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace obx::serve {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kShed: return "shed";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

Priority priority_from(const std::string& name) {
  if (name == "high") return Priority::kHigh;
  if (name == "low") return Priority::kLow;
  OBX_CHECK(name == "normal", "unknown priority class: " + name);
  return Priority::kNormal;
}

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kSize: return "size";
    case FlushReason::kDelay: return "delay";
    case FlushReason::kDeadline: return "deadline";
    case FlushReason::kDrain: return "drain";
  }
  return "?";
}

namespace {

/// tp - d without wrapping past Clock::time_point::min().  A job deadline
/// already in the past (or pathologically early) must flush *immediately*;
/// plain subtraction would overflow the signed duration rep — UB that in
/// practice wraps to a far-future instant and parks the group forever.
/// Requires d >= 0 (enforced on BatcherOptions below).
Clock::time_point saturating_minus(Clock::time_point tp, Clock::duration d) {
  if (tp.time_since_epoch() < Clock::time_point::min().time_since_epoch() + d) {
    return Clock::time_point::min();
  }
  return tp - d;
}

}  // namespace

Batcher::Batcher(BatcherOptions options) : options_(options) {
  OBX_CHECK(options_.max_batch_lanes > 0, "batches need at least one lane");
  OBX_CHECK(options_.max_batch_delay >= Clock::duration::zero(),
            "max_batch_delay cannot be negative");
  OBX_CHECK(options_.deadline_slack >= Clock::duration::zero(),
            "deadline_slack cannot be negative");
}

void Batcher::add(Job&& job, Clock::time_point now) {
  const GroupKey key{job.program_id, job.input.size()};
  Group& group = pending_[key];
  if (group.jobs.empty()) {
    group.opened_at = now;
    group.tightest_deadline.reset();
  }
  if (job.deadline.has_value()) {
    group.tightest_deadline = group.tightest_deadline.has_value()
                                  ? std::min(*group.tightest_deadline, *job.deadline)
                                  : *job.deadline;
  }
  group.jobs.push_back(std::move(job));
  if (group.jobs.size() >= options_.max_batch_lanes) {
    Group full = std::move(group);
    pending_.erase(key);
    flush(key, std::move(full), now, FlushReason::kSize);
  }
}

std::pair<Clock::time_point, FlushReason> Batcher::due(const Group& group) const {
  Clock::time_point when = group.opened_at + options_.max_batch_delay;
  FlushReason reason = FlushReason::kDelay;
  if (group.tightest_deadline.has_value()) {
    const Clock::time_point dl =
        saturating_minus(*group.tightest_deadline, options_.deadline_slack);
    if (dl < when) {
      when = dl;
      reason = FlushReason::kDeadline;
    }
  }
  return {when, reason};
}

std::vector<Batch> Batcher::take_ready(Clock::time_point now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto [when, reason] = due(it->second);
    if (when <= now) {
      Group group = std::move(it->second);
      const GroupKey key = it->first;
      it = pending_.erase(it);
      flush(key, std::move(group), now, reason);
    } else {
      ++it;
    }
  }
  return std::exchange(ready_, {});
}

std::optional<Clock::time_point> Batcher::next_due() const {
  if (!ready_.empty()) return Clock::time_point::min();  // already ready
  std::optional<Clock::time_point> earliest;
  for (const auto& [key, group] : pending_) {
    const auto [when, reason] = due(group);
    if (!earliest.has_value() || when < *earliest) earliest = when;
  }
  return earliest;
}

std::vector<Batch> Batcher::drain() {
  const Clock::time_point now = Clock::now();
  for (auto& [key, group] : pending_) {
    flush(key, std::move(group), now, FlushReason::kDrain);
  }
  pending_.clear();
  return std::exchange(ready_, {});
}

std::size_t Batcher::pending_jobs() const {
  std::size_t n = 0;
  for (const auto& [key, group] : pending_) n += group.jobs.size();
  return n;
}

void Batcher::flush(const GroupKey& key, Group&& group,
                    Clock::time_point now, FlushReason reason) {
  Batch batch;
  batch.program_id = key.first;
  batch.jobs = std::move(group.jobs);
  batch.formed_at = now;
  batch.reason = reason;
  ready_.push_back(std::move(batch));
}

}  // namespace obx::serve

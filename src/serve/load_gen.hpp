// Load generator for the serve benchmarks: multi-producer open-loop
// (Poisson arrivals) or closed-loop traffic against a BulkService.
//
// Open-loop models "heavy traffic": inter-arrival gaps are exponential with
// the requested aggregate rate, independent of service latency, so overload
// exercises the backpressure policy.  Closed-loop (rate = 0) models one
// outstanding request per producer — each submits, waits, repeats — and
// measures the service's sustainable round-trip throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/service.hpp"

namespace obx::serve {

struct WorkloadItem {
  std::string program_id;
  /// One fresh random input of the program's input_words.
  std::function<std::vector<Word>(Rng&)> make_input;
};

struct LoadGenOptions {
  std::size_t jobs = 10000;    ///< total across all producers
  unsigned producers = 4;
  double arrival_rate_hz = 0;  ///< aggregate Poisson rate; 0 = closed-loop
  std::optional<Clock::duration> deadline;  ///< per-job relative deadline
  std::uint64_t seed = 1;
};

struct LoadGenReport {
  double wall_seconds = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;  ///< resolved as kFailed (callback-path execution failure)
  std::size_t deadline_missed = 0;
  double jobs_per_sec = 0;  ///< completed / wall_seconds
  // Latency of completed jobs (submit → completion), microseconds.
  double mean_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double max_latency_us = 0;
};

/// Drives `service` with `options.jobs` jobs spread over the workload items
/// (round-robin per producer, randomized inputs) and blocks until every
/// submitted job reached a terminal state.
LoadGenReport run_load(BulkService& service, const std::vector<WorkloadItem>& workload,
                       const LoadGenOptions& options);

}  // namespace obx::serve

// Per-program preparation cache for the serving layer — now a thin wrapper
// over plan::PlanCache.
//
// Registering a program builds (and caches) its ExecutionPlan: peephole
// optimisation, eager compile for the fused lane-tiled backend, row-vs-column
// arrangement choice on the configured machine, and the memoised
// per-occupancy simulated-UMM-units estimate all happen once per program id
// inside plan::Planner; every batch for that id reuses the shared plan.  The
// optimise/arrange/compile/units-memo logic that used to live here is gone —
// src/plan/ is its single implementation.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "exec/compiled_program.hpp"
#include "plan/plan_cache.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::serve {

/// Serving-facing view of plan::PlanOptions (en spelling throughout,
/// aligned with PlanOptions; the historical mixed-spelling `optimize` field
/// survives as a deprecated alias).
struct PrepareOptions {
  /// Machine the arrangement choice and simulated-units estimates target.
  umm::MachineConfig machine{.width = 32, .latency = 200};
  /// Reference lane count for the arrangement decision (use the service's
  /// max_batch_lanes: that is the occupancy the service is tuned for).
  std::size_t reference_lanes = 256;
  bool optimise = true;
  std::size_t optimise_step_limit = std::size_t{1} << 22;
  /// Compile the (optimised) program for the fused lane-tiled backend at
  /// registration, so serving batches never pay the one-time stream drain and
  /// each program id is compiled exactly once per process.
  bool compile = true;
  std::size_t compile_budget_steps = exec::kDefaultCompileBudget;
  /// Host threads inside one batch's executor (the service maps its
  /// workers_per_batch here; the pool supplies cross-batch parallelism).
  unsigned workers = 1;

  /// The measuring arrangement auto-tuner (plan::PlanOptions::TuneOptions):
  /// when tune.measure is set, registration refines the simulated
  /// arrangement prior with bounded real micro-measurements of each
  /// candidate — registration gets slower by trials x candidates runs, every
  /// batch afterwards runs on the measured winner.  tune.lanes defaults to
  /// reference_lanes (the occupancy the service is tuned for).
  plan::PlanOptions::TuneOptions tune{};

  /// Deprecated alias for `optimise` (the pre-plan mixed en/em spelling that
  /// clashed with `optimise_step_limit`).  When set it overrides `optimise`;
  /// kept so downstream code compiles.  Will be removed.
  std::optional<bool> optimize;

  /// The canonical planning options this struct stands for.
  plan::PlanOptions plan_options() const;
};

/// One registered program: a handle on its cached ExecutionPlan with the
/// pre-plan accessor surface preserved.
class PreparedProgram {
 public:
  PreparedProgram(std::shared_ptr<const plan::ExecutionPlan> plan);

  /// The full plan (decisions + provenance + shared compiled artifact).
  const plan::ExecutionPlan& plan() const { return *plan_; }
  const std::shared_ptr<const plan::ExecutionPlan>& plan_ptr() const { return plan_; }

  const trace::Program& program() const { return plan_->program(); }
  bulk::Arrangement arrangement() const { return plan_->arrangement(); }
  bool optimised() const { return plan_->provenance().optimised; }
  /// Non-null when the program was compiled at registration (executors pick
  /// it up for free through the program's shared exec_cache slot).
  const std::shared_ptr<const exec::CompiledProgram>& compiled() const {
    return plan_->compiled();
  }
  std::size_t input_words() const { return plan_->input_words(); }
  std::size_t output_words() const { return plan_->output_words(); }

  /// Simulated UMM time units of one bulk run at the given occupancy
  /// (memoised per distinct lane count; thread-safe).
  TimeUnits units_for_lanes(std::size_t lanes) const {
    return plan_->units_for_lanes(lanes);
  }

 private:
  std::shared_ptr<const plan::ExecutionPlan> plan_;
};

/// Thread-safe id → PreparedProgram registry over a service-scoped
/// plan::PlanCache (service id namespaces stay independent of each other
/// and of PlanCache::process()).  Entries are immutable once added, so
/// get() hands out stable references.
class ProgramCache {
 public:
  explicit ProgramCache(PrepareOptions options)
      : options_(options), plans_(options.plan_options()) {}

  /// Plans and stores `program` under `id`; throws if the id is taken.
  void add(const std::string& id, trace::Program program);

  const PreparedProgram& get(const std::string& id) const;  ///< throws if absent
  bool contains(const std::string& id) const;
  std::vector<std::string> ids() const;

 private:
  PrepareOptions options_;
  plan::PlanCache plans_;
  mutable std::mutex mutex_;
  // unique_ptr so references stay valid across rehash/insert.
  std::map<std::string, std::unique_ptr<PreparedProgram>> programs_;
};

}  // namespace obx::serve

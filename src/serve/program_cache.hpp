// Per-program preparation cache: the advisor runs once per program id,
// not once per batch.
//
// Registering a program does the expensive, input-independent work up front
// (peephole optimisation, row-vs-column arrangement choice on the configured
// machine); every batch for that id then reuses the cached decision.  The
// cache also memoises the simulated-UMM-units estimate per batch size, so
// the metrics can report simulated units per batch without re-running the
// timing estimator on the hot path more than once per distinct occupancy.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "bulk/layout.hpp"
#include "exec/compiled_program.hpp"
#include "trace/program.hpp"
#include "umm/machine_config.hpp"

namespace obx::serve {

struct PrepareOptions {
  /// Machine the arrangement choice and simulated-units estimates target.
  umm::MachineConfig machine{.width = 32, .latency = 200};
  /// Reference lane count for the arrangement decision (use the service's
  /// max_batch_lanes: that is the occupancy the service is tuned for).
  std::size_t reference_lanes = 256;
  bool optimize = true;
  std::size_t optimise_step_limit = 1u << 22;
  /// Compile the (optimised) program for the fused lane-tiled backend at
  /// registration, so serving batches never pay the one-time stream drain and
  /// each program id is compiled exactly once per process.
  bool compile = true;
  std::size_t compile_budget_steps = exec::kDefaultCompileBudget;
};

class PreparedProgram {
 public:
  PreparedProgram(trace::Program program, const PrepareOptions& options);

  const trace::Program& program() const { return program_; }
  bulk::Arrangement arrangement() const { return arrangement_; }
  bool optimised() const { return optimised_; }
  /// Non-null when the program was compiled at registration (executors pick
  /// it up for free through the program's shared exec_cache slot).
  const std::shared_ptr<const exec::CompiledProgram>& compiled() const {
    return compiled_;
  }
  std::size_t input_words() const { return program_.input_words; }
  std::size_t output_words() const { return program_.output_words; }

  /// Simulated UMM time units of one bulk run at the given occupancy
  /// (memoised per distinct lane count; thread-safe).
  TimeUnits units_for_lanes(std::size_t lanes) const;

 private:
  trace::Program program_;
  umm::MachineConfig machine_;
  bulk::Arrangement arrangement_ = bulk::Arrangement::kColumnWise;
  bool optimised_ = false;
  std::shared_ptr<const exec::CompiledProgram> compiled_;
  mutable std::mutex units_mutex_;
  mutable std::map<std::size_t, TimeUnits> units_by_lanes_;
};

/// Thread-safe id → PreparedProgram registry.  Entries are immutable once
/// added, so get() hands out stable references.
class ProgramCache {
 public:
  explicit ProgramCache(PrepareOptions options) : options_(options) {}

  /// Prepares and stores `program` under `id`; throws if the id is taken.
  void add(const std::string& id, trace::Program program);

  const PreparedProgram& get(const std::string& id) const;  ///< throws if absent
  bool contains(const std::string& id) const;
  std::vector<std::string> ids() const;

 private:
  PrepareOptions options_;
  mutable std::mutex mutex_;
  // unique_ptr so references stay valid across rehash/insert.
  std::map<std::string, std::unique_ptr<PreparedProgram>> programs_;
};

}  // namespace obx::serve

#include "serve/service.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/check.hpp"
#include "bulk/streaming_executor.hpp"

namespace obx::serve {

namespace {

std::uint64_t to_us(Clock::duration d) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

// Bounded handoff between the batcher thread and the executor pool.  Always
// blocking on push: once a batch exists, its jobs are committed to execution,
// so the only correct overflow behaviour is to slow the batcher down (which
// in turn fills the admission queue, where the configured policy applies).
class BulkService::BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

  void push(Batch&& batch) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return batches_.size() < capacity_ || closed_; });
    // After close the executors still drain; never drop a formed batch.
    batches_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
  }

  bool pop(Batch& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !batches_.empty() || closed_; });
    if (batches_.empty()) return false;
    out = std::move(batches_.front());
    batches_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> batches_;
  bool closed_ = false;
};

BulkService::BulkService(ServiceOptions options)
    : options_(options), batcher_(options.batcher), tenants_(options.default_quota) {
  OBX_CHECK(options_.executors > 0, "executor pool needs at least one worker");
  options_.prepare.reference_lanes = options_.batcher.max_batch_lanes;
  options_.prepare.workers = options_.workers_per_batch;
  programs_ = std::make_unique<ProgramCache>(options_.prepare);
  queue_ = std::make_unique<AdmissionQueue>(options_.queue_capacity, options_.policy);
  batches_ = std::make_unique<BatchQueue>(options_.executors * 2);
  const Clock::time_point now = Clock::now();
  for (const auto& [tenant, quota] : options_.tenant_quotas) {
    tenants_.set_quota(tenant, quota, now);
  }
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  executor_threads_.reserve(options_.executors);
  for (unsigned i = 0; i < options_.executors; ++i) {
    executor_threads_.emplace_back([this] { executor_loop(); });
  }
}

BulkService::~BulkService() { stop(); }

void BulkService::register_program(const std::string& id, trace::Program program) {
  programs_->add(id, std::move(program));
}

void BulkService::set_tenant_quota(const std::string& tenant, TenantQuota quota) {
  tenants_.set_quota(tenant, quota, Clock::now());
}

BulkService::TrySubmit BulkService::admit(Job&& job, bool allow_block) {
  TenantCounters& tenant = metrics_.tenant(job.tenant);
  const OverflowPolicy policy = options_.effective_policy(job.priority);

  // Quota gate first: a tenant over its bucket never touches the shared
  // queue, so a quota storm cannot displace other tenants' work.
  const bool quota_ok = tenants_.admit(job.tenant, Clock::now());

  if (!quota_ok) {
    metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
    tenant.submitted.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.throttled.fetch_add(1, std::memory_order_relaxed);
    tenant.rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.throttled.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.status = JobStatus::kRejected;
    r.error = "tenant quota exceeded";
    job.resolve(std::move(r));
    return TrySubmit::kResolved;
  }

  std::optional<Job> shed;
  bool waited = false;
  const std::string tenant_id = job.tenant;  // job may be consumed by push
  const auto result = queue_->push(std::move(job), policy, &shed, allow_block, &waited);

  if (result == AdmissionQueue::PushResult::kWouldBlock) {
    // Nothing happened: hand the quota token back so the retry is not
    // charged twice.  (push leaves the job untouched, but our caller keeps
    // the original input, so the Job itself can be dropped.)
    tenants_.refund(tenant_id);
    return TrySubmit::kWouldBlock;
  }

  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  tenant.submitted.fetch_add(1, std::memory_order_relaxed);
  if (waited) tenant.overflow_block.fetch_add(1, std::memory_order_relaxed);
  if (shed.has_value()) {
    tenant.overflow_shed.fetch_add(1, std::memory_order_relaxed);
    resolve_dropped(std::move(*shed), JobStatus::kShed);
  }
  if (result == AdmissionQueue::PushResult::kRejected) {
    // push() leaves the job untouched on rejection, so it is still ours to
    // resolve.
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.overflow_reject.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.status = JobStatus::kRejected;
    job.resolve(std::move(r));
    return TrySubmit::kResolved;
  }
  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  return TrySubmit::kResolved;
}

std::future<JobResult> BulkService::submit(const std::string& id,
                                           std::vector<Word> input,
                                           const SubmitOptions& options) {
  const PreparedProgram& prepared = programs_->get(id);
  OBX_CHECK(input.size() == prepared.input_words(),
            "input has " + std::to_string(input.size()) + " words, program '" + id +
                "' expects " + std::to_string(prepared.input_words()));

  Job job;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.program_id = id;
  job.tenant = options.tenant;
  job.priority = options.priority;
  job.input = std::move(input);
  job.enqueue_time = Clock::now();
  if (options.deadline.has_value()) job.deadline = job.enqueue_time + *options.deadline;
  std::future<JobResult> future = job.promise.get_future();

  admit(std::move(job), /*allow_block=*/true);
  return future;
}

std::future<JobResult> BulkService::submit(const std::string& id,
                                           std::vector<Word> input,
                                           std::optional<Clock::duration> deadline) {
  SubmitOptions options;
  options.deadline = deadline;
  return submit(id, std::move(input), options);
}

BulkService::TrySubmit BulkService::try_submit(const std::string& id,
                                               std::vector<Word> input,
                                               const SubmitOptions& options,
                                               std::function<void(JobResult&&)> done) {
  const PreparedProgram& prepared = programs_->get(id);
  OBX_CHECK(input.size() == prepared.input_words(),
            "input has " + std::to_string(input.size()) + " words, program '" + id +
                "' expects " + std::to_string(prepared.input_words()));
  OBX_CHECK(static_cast<bool>(done), "try_submit needs a completion callback");

  Job job;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.program_id = id;
  job.tenant = options.tenant;
  job.priority = options.priority;
  job.input = std::move(input);
  job.enqueue_time = Clock::now();
  if (options.deadline.has_value()) job.deadline = job.enqueue_time + *options.deadline;
  job.on_complete = std::move(done);

  return admit(std::move(job), /*allow_block=*/false);
}

void BulkService::resolve_dropped(Job&& job, JobStatus status) {
  if (status == JobStatus::kShed) {
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    metrics_.tenant(job.tenant).shed.fetch_add(1, std::memory_order_relaxed);
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  }
  JobResult r;
  r.status = status;
  r.latency = Clock::now() - job.enqueue_time;
  job.resolve(std::move(r));
}

void BulkService::batcher_loop() {
  for (;;) {
    const std::optional<Clock::time_point> due = batcher_.next_due();
    Job job;
    AdmissionQueue::PopResult r;
    if (due.has_value()) {
      r = queue_->pop_until(job, *due);
    } else {
      r = queue_->pop(job);
    }
    if (r == AdmissionQueue::PopResult::kJob) {
      metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
      batcher_.add(std::move(job), Clock::now());
    }
    for (Batch& batch : batcher_.take_ready(Clock::now())) {
      dispatch(std::move(batch));
    }
    if (r == AdmissionQueue::PopResult::kClosed) {
      for (Batch& batch : batcher_.drain()) dispatch(std::move(batch));
      break;
    }
  }
  batches_->close();
}

void BulkService::dispatch(Batch&& batch) {
  switch (batch.reason) {
    case FlushReason::kSize:
      metrics_.flush_size.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDelay:
      metrics_.flush_delay.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDeadline:
      metrics_.flush_deadline.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDrain:
      metrics_.flush_drain.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  batches_->push(std::move(batch));
}

void BulkService::executor_loop() {
  Batch batch;
  while (batches_->pop(batch)) {
    execute(std::move(batch));
  }
}

void BulkService::execute(Batch&& batch) {
  const PreparedProgram& prepared = programs_->get(batch.program_id);
  const std::size_t lanes = batch.jobs.size();
  const Clock::time_point dispatched = Clock::now();

  std::vector<std::vector<Word>> outputs(lanes);
  try {
    if (options_.before_execute) options_.before_execute(batch);
    // Every engine decision (arrangement, backend, tile, workers) comes from
    // the plan built once at register_program() time.
    const bulk::StreamingExecutor exec(prepared.plan(), lanes);
    exec.run(
        prepared.program(), lanes,
        [&](Lane j, std::span<Word> dst) {
          const std::vector<Word>& in = batch.jobs[j].input;
          // Last line of defence behind submit-time validation and the
          // batcher's (program, input length) group key: a mis-sized lane
          // must fail loudly, never overrun the scatter buffer.
          OBX_CHECK(in.size() == prepared.input_words(),
                    "batched job input length does not match its program");
          std::copy(in.begin(), in.end(), dst.begin());
        },
        [&](Lane j, std::span<const Word> out) {
          outputs[j].assign(out.begin(), out.end());
        });
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    metrics_.failed.fetch_add(batch.jobs.size(), std::memory_order_relaxed);
    for (Job& job : batch.jobs) {
      metrics_.tenant(job.tenant).failed.fetch_add(1, std::memory_order_relaxed);
      job.resolve_error(error);
    }
    return;
  }

  const Clock::time_point completed = Clock::now();
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batch_occupancy.record(lanes);
  metrics_.batch_latency_us.record(to_us(completed - dispatched));
  if (options_.record_simulated_units) {
    metrics_.batch_sim_units.record(prepared.units_for_lanes(lanes));
  }

  for (std::size_t j = 0; j < lanes; ++j) {
    Job& job = batch.jobs[j];
    TenantCounters& tenant = metrics_.tenant(job.tenant);
    JobResult r;
    r.status = JobStatus::kCompleted;
    r.output = std::move(outputs[j]);
    r.queue_delay = dispatched - job.enqueue_time;
    r.latency = completed - job.enqueue_time;
    r.batch_lanes = lanes;
    r.deadline_missed = job.deadline.has_value() && completed > *job.deadline;
    metrics_.queue_delay_us.record(to_us(r.queue_delay));
    tenant.queue_delay_us.record(to_us(r.queue_delay));
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    tenant.completed.fetch_add(1, std::memory_order_relaxed);
    if (r.deadline_missed) {
      metrics_.deadline_missed.fetch_add(1, std::memory_order_relaxed);
      tenant.deadline_missed.fetch_add(1, std::memory_order_relaxed);
    }
    job.resolve(std::move(r));
  }
}

void BulkService::stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  queue_->close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  for (auto& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace obx::serve

// Job types for the batching bulk-execution service.
//
// A job is one *lane* of work: a single input for a registered oblivious
// program, submitted by some producer thread.  The service coalesces many
// jobs for the same program into one bulk execution, which is where the
// paper's economics pay off: Theorem 2 prices a bulk run at O(pt/w + lt),
// so the fixed l·t floor (and, on the host, the per-step decode cost) is
// amortised across every lane in the batch.
//
// Jobs carry a tenant id and a priority class: the service serves many
// mutually distrusting clients, so admission (quotas, overflow policy,
// shed-victim selection) is decided per tenant and per class, and the
// metrics registry accounts per tenant.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace obx::serve {

using Clock = std::chrono::steady_clock;

/// Terminal state of a submitted job.  Every job resolves exactly once
/// with one of these.
enum class JobStatus {
  kCompleted,  ///< executed; `output` holds the program's output region
  kRejected,   ///< refused at admission (queue full / quota exceeded)
  kShed,       ///< dropped from the queue to admit newer work (kShedOldest)
  kFailed,     ///< execution threw (callback path; the future path keeps the
               ///< exception itself and never sees this status)
};

const char* to_string(JobStatus status);

/// Priority class of a submitted job.  Classes map onto the admission
/// queue's overflow policies (ServiceOptions::priority_policies) and steer
/// shed-victim selection: under kShedOldest the oldest job of the *least
/// important* queued class is evicted first, and a newcomer never evicts a
/// job that outranks it.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kPriorityCount = 3;

const char* to_string(Priority priority);
Priority priority_from(const std::string& name);  ///< "high"/"normal"/"low"

struct JobResult {
  JobStatus status = JobStatus::kCompleted;
  std::vector<Word> output;       ///< program.output_words words when completed
  std::string error;              ///< detail for kFailed / quota rejections
  bool deadline_missed = false;   ///< completed, but after the job's deadline
  Clock::duration queue_delay{};  ///< submit → batch dispatch
  Clock::duration latency{};      ///< submit → completion
  std::size_t batch_lanes = 0;    ///< occupancy of the batch that ran this job
};

/// One queued lane.  Owned by exactly one component at a time (queue →
/// batcher → executor), so moving it around is race-free by construction.
struct Job {
  std::uint64_t id = 0;
  std::string program_id;
  std::string tenant = "default";
  Priority priority = Priority::kNormal;
  std::vector<Word> input;
  Clock::time_point enqueue_time{};
  std::optional<Clock::time_point> deadline;
  std::promise<JobResult> promise;
  /// When set, terminal resolution invokes this callback instead of the
  /// promise (the network front end routes completions through its event
  /// loop this way; the promise is left untouched).  Invoked exactly once,
  /// from whichever thread resolves the job.
  std::function<void(JobResult&&)> on_complete;

  /// Resolves the job with a value — callback if present, promise otherwise.
  void resolve(JobResult&& result) {
    if (on_complete) {
      auto callback = std::move(on_complete);
      on_complete = nullptr;
      callback(std::move(result));
    } else {
      promise.set_value(std::move(result));
    }
  }

  /// Resolves the job with an execution failure.  The future path keeps the
  /// exception; the callback path flattens it to JobStatus::kFailed plus the
  /// exception message, so a network peer still gets a terminal response.
  void resolve_error(std::exception_ptr error) {
    if (!on_complete) {
      promise.set_exception(std::move(error));
      return;
    }
    JobResult r;
    r.status = JobStatus::kFailed;
    try {
      std::rethrow_exception(std::move(error));
    } catch (const std::exception& e) {
      r.error = e.what();
    } catch (...) {
      r.error = "unknown execution failure";
    }
    resolve(std::move(r));
  }
};

/// Why a batch left the batcher (recorded in service metrics).
enum class FlushReason {
  kSize,      ///< reached max_batch_lanes
  kDelay,     ///< oldest job waited max_batch_delay
  kDeadline,  ///< waiting longer would miss a job's deadline
  kDrain,     ///< service shutting down / explicit drain
};

const char* to_string(FlushReason reason);

/// A flushed group of same-program jobs, ready for one bulk execution.
struct Batch {
  std::string program_id;
  std::vector<Job> jobs;
  Clock::time_point formed_at{};
  FlushReason reason = FlushReason::kSize;
};

}  // namespace obx::serve

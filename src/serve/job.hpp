// Job types for the batching bulk-execution service.
//
// A job is one *lane* of work: a single input for a registered oblivious
// program, submitted by some producer thread.  The service coalesces many
// jobs for the same program into one bulk execution, which is where the
// paper's economics pay off: Theorem 2 prices a bulk run at O(pt/w + lt),
// so the fixed l·t floor (and, on the host, the per-step decode cost) is
// amortised across every lane in the batch.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace obx::serve {

using Clock = std::chrono::steady_clock;

/// Terminal state of a submitted job.  Every future resolves exactly once
/// with one of these.
enum class JobStatus {
  kCompleted,  ///< executed; `output` holds the program's output region
  kRejected,   ///< refused at admission (queue full, policy = kReject)
  kShed,       ///< dropped from the queue to admit newer work (kShedOldest)
};

const char* to_string(JobStatus status);

struct JobResult {
  JobStatus status = JobStatus::kCompleted;
  std::vector<Word> output;       ///< program.output_words words when completed
  bool deadline_missed = false;   ///< completed, but after the job's deadline
  Clock::duration queue_delay{};  ///< submit → batch dispatch
  Clock::duration latency{};      ///< submit → completion
  std::size_t batch_lanes = 0;    ///< occupancy of the batch that ran this job
};

/// One queued lane.  Owned by exactly one component at a time (queue →
/// batcher → executor), so moving it around is race-free by construction.
struct Job {
  std::uint64_t id = 0;
  std::string program_id;
  std::vector<Word> input;
  Clock::time_point enqueue_time{};
  std::optional<Clock::time_point> deadline;
  std::promise<JobResult> promise;
};

/// Why a batch left the batcher (recorded in service metrics).
enum class FlushReason {
  kSize,      ///< reached max_batch_lanes
  kDelay,     ///< oldest job waited max_batch_delay
  kDeadline,  ///< waiting longer would miss a job's deadline
  kDrain,     ///< service shutting down / explicit drain
};

const char* to_string(FlushReason reason);

/// A flushed group of same-program jobs, ready for one bulk execution.
struct Batch {
  std::string program_id;
  std::vector<Job> jobs;
  Clock::time_point formed_at{};
  FlushReason reason = FlushReason::kSize;
};

}  // namespace obx::serve

// Service metrics: lock-free counters and log2-bucketed histograms, global
// and per tenant, with a Prometheus-style text rendering.
//
// The hot paths (submit, dispatch, batch completion) only touch atomics
// (plus one shared-locked map lookup for the tenant row); snapshot() reads
// them without stopping the world, so numbers from a live service are
// approximate in the usual monitoring sense (each individual counter is
// exact, cross-counter consistency is not guaranteed).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace obx::serve {

/// Histogram over non-negative integer samples with power-of-two buckets:
/// bucket k holds samples whose bit width is k (i.e. value in [2^(k-1), 2^k)),
/// bucket 0 holds zeros.  Quantiles are resolved to a bucket upper bound, so
/// they are exact to within a factor of 2 — plenty for latency monitoring.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  std::uint64_t min() const;  ///< 0 when empty; clamped so min() <= max()
  std::uint64_t max() const;  ///< 0 when empty
  /// Upper bound of the bucket containing the q-quantile.  q is clamped to
  /// [0, 1]; NaN reads as 0.  Returns 0 when empty.
  std::uint64_t quantile(double q) const;

  /// Not atomic with respect to concurrent record(): a racing sample can land
  /// partially before and partially after, leaving e.g. min_ at its sentinel
  /// while max_ holds the sample (min() clamps that torn window).  Intended
  /// for quiesced or test use; counters self-heal on subsequent records.
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Per-tenant accounting row.  Overflow counters record which admission
/// policy fired *on this tenant's submissions* (blocked-and-waited /
/// rejected at the door / shed something to get in); `shed` counts this
/// tenant's own jobs evicted as victims, `throttled` its quota rejections.
struct TenantCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> deadline_missed{0};
  std::atomic<std::uint64_t> throttled{0};
  std::atomic<std::uint64_t> overflow_block{0};
  std::atomic<std::uint64_t> overflow_reject{0};
  std::atomic<std::uint64_t> overflow_shed{0};
  Histogram queue_delay_us;  ///< submit → dispatch, completed jobs
};

/// Point-in-time copy of one tenant's counters.
struct TenantSnapshot {
  std::string tenant;
  std::uint64_t submitted = 0, completed = 0, rejected = 0, shed = 0, failed = 0;
  std::uint64_t deadline_missed = 0, throttled = 0;
  std::uint64_t overflow_block = 0, overflow_reject = 0, overflow_shed = 0;
  double mean_queue_delay_us = 0, p95_queue_delay_us = 0;
};

/// Point-in-time copy of every counter, for reporting.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;  ///< resolved with an exception (execution threw)
  std::uint64_t deadline_missed = 0;
  std::uint64_t throttled = 0;  ///< rejected at the per-tenant quota gate
  std::uint64_t batches = 0;
  std::int64_t queue_depth = 0;

  // Histogram summaries (value domains noted per field).
  double mean_queue_delay_us = 0, p50_queue_delay_us = 0, p95_queue_delay_us = 0;
  double mean_batch_latency_us = 0, p95_batch_latency_us = 0;
  double mean_batch_occupancy = 0, max_batch_occupancy = 0;
  double mean_batch_sim_units = 0;
  std::uint64_t flush_size = 0, flush_delay = 0, flush_deadline = 0, flush_drain = 0;

  /// Per-tenant rows, sorted by tenant id (deterministic rendering), plus a
  /// trailing Metrics::kOverflowTenant aggregate when the cardinality cap
  /// was hit.
  std::vector<TenantSnapshot> tenants;

  /// Shared bulk::CorePool scheduler counters (process-wide and monotonic:
  /// every pool consumer in this process contributes, not just the service).
  /// An imbalance signature — steals growing much faster than tasks, or
  /// parks dwarfing unparks — means batches are too small or tile costs too
  /// skewed for the configured worker count.
  std::uint64_t sched_workers = 0;   ///< pool worker threads
  bool sched_pinned = false;         ///< workers pinned one-per-core
  std::uint64_t sched_tasks = 0;     ///< lane-tile tasks executed
  std::uint64_t sched_steals = 0;    ///< tasks run off another thread's deque
  std::uint64_t sched_parks = 0;     ///< worker went to sleep
  std::uint64_t sched_unparks = 0;   ///< wakeups signalled by submitters
  std::vector<std::uint64_t> sched_worker_busy_ns;  ///< per worker, in tasks

  /// Multi-line human-readable dump (the "text snapshot" of the service).
  std::string to_string() const;
};

class Metrics {
 public:
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> deadline_missed{0};
  std::atomic<std::uint64_t> throttled{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::int64_t> queue_depth{0};
  std::atomic<std::uint64_t> flush_size{0};
  std::atomic<std::uint64_t> flush_delay{0};
  std::atomic<std::uint64_t> flush_deadline{0};
  std::atomic<std::uint64_t> flush_drain{0};

  Histogram queue_delay_us;     ///< submit → dispatch, microseconds
  Histogram batch_latency_us;   ///< dispatch → completion, microseconds
  Histogram batch_occupancy;    ///< lanes per executed batch
  Histogram batch_sim_units;    ///< simulated UMM time units per batch

  /// Cardinality cap: tenant ids arrive on the wire unauthenticated, so an
  /// attacker can mint unlimited distinct ids.  At most this many get their
  /// own row; the rest share the [`kOverflowTenant`] aggregate so memory and
  /// scrape size stay bounded.
  static constexpr std::size_t kMaxTenants = 1024;
  /// Label the shared overflow row renders under.  A real tenant using this
  /// exact id simply merges into the aggregate — harmless, since the row is
  /// monitoring-only and quota enforcement does not key off it.
  static constexpr const char* kOverflowTenant = "__overflow__";

  /// The accounting row for `tenant`, created on first use.  The returned
  /// reference is stable for the lifetime of the Metrics object.  Once
  /// kMaxTenants distinct ids are tracked, unseen ids all map to the shared
  /// overflow row.
  TenantCounters& tenant(const std::string& tenant);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<TenantCounters>> tenants_;
  /// Aggregate row for tenants past the cap; rendered as kOverflowTenant.
  TenantCounters overflow_;
};

/// Escapes a tenant id (or any string) for use as a Prometheus label value:
/// backslash, double quote and newline get the exposition-format escapes,
/// and every other control byte is replaced with '_' so a hostile tenant
/// name can never corrupt the scrape output.
std::string escape_label_value(const std::string& value);

/// Renders a snapshot in the Prometheus text exposition format (counters
/// and gauges prefixed `obx_serve_`, one `tenant="..."` labelled family per
/// per-tenant counter).  Deterministic: tenants render in sorted order.
std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace obx::serve

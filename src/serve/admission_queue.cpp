#include "serve/admission_queue.hpp"

#include "common/check.hpp"

namespace obx::serve {

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kReject: return "reject";
    case OverflowPolicy::kShedOldest: return "shed";
  }
  return "?";
}

OverflowPolicy overflow_policy_from(const std::string& name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "reject") return OverflowPolicy::kReject;
  OBX_CHECK(name == "shed" || name == "shed-oldest",
            "unknown backpressure policy: " + name);
  return OverflowPolicy::kShedOldest;
}

AdmissionQueue::AdmissionQueue(std::size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  OBX_CHECK(capacity_ > 0, "admission queue needs capacity >= 1");
}

AdmissionQueue::PushResult AdmissionQueue::push(Job&& job, OverflowPolicy policy,
                                                std::optional<Job>* shed,
                                                bool allow_block, bool* waited) {
  std::optional<Job> victim;
  std::unique_lock lock(mutex_);
  if (closed_) return PushResult::kRejected;
  if (jobs_.size() >= capacity_) {
    switch (policy) {
      case OverflowPolicy::kBlock:
        if (!allow_block) return PushResult::kWouldBlock;
        if (waited != nullptr) *waited = true;
        not_full_.wait(lock, [&] { return jobs_.size() < capacity_ || closed_; });
        if (closed_) return PushResult::kRejected;
        break;
      case OverflowPolicy::kReject:
        return PushResult::kRejected;
      case OverflowPolicy::kShedOldest: {
        // Victim: the oldest job of the least important class present (the
        // deque is FIFO, so the first match is the oldest of that class).
        auto victim_it = jobs_.begin();
        for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
          if (it->priority > victim_it->priority) victim_it = it;
        }
        if (victim_it->priority < job.priority) {
          // Everything queued outranks the newcomer: shedding would invert
          // the priority order, so refuse the newcomer instead.
          return PushResult::kRejected;
        }
        victim = std::move(*victim_it);
        jobs_.erase(victim_it);
        break;
      }
    }
  }
  jobs_.push_back(std::move(job));
  lock.unlock();
  not_empty_.notify_one();
  if (victim.has_value()) {
    if (shed != nullptr) {
      *shed = std::move(*victim);
    } else {
      // No out-param: the evicted job must still resolve.  Letting the Job
      // die here would surface as std::future_error(broken_promise) at the
      // producer — a silent drop in all but name.
      JobResult r;
      r.status = JobStatus::kShed;
      r.latency = Clock::now() - victim->enqueue_time;
      victim->resolve(std::move(r));
    }
  }
  return PushResult::kAccepted;
}

AdmissionQueue::PopResult AdmissionQueue::take_locked(std::unique_lock<std::mutex>&,
                                                      Job& out) {
  out = std::move(jobs_.front());
  jobs_.pop_front();
  not_full_.notify_one();
  return PopResult::kJob;
}

AdmissionQueue::PopResult AdmissionQueue::pop(Job& out) {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return !jobs_.empty() || closed_; });
  if (!jobs_.empty()) return take_locked(lock, out);
  return PopResult::kClosed;
}

AdmissionQueue::PopResult AdmissionQueue::pop_until(Job& out,
                                                    Clock::time_point deadline) {
  std::unique_lock lock(mutex_);
  if (!not_empty_.wait_until(lock, deadline,
                             [&] { return !jobs_.empty() || closed_; })) {
    return PopResult::kTimeout;
  }
  if (!jobs_.empty()) return take_locked(lock, out);
  return PopResult::kClosed;
}

void AdmissionQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard lock(mutex_);
  return jobs_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

}  // namespace obx::serve

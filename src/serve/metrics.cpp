#include "serve/metrics.hpp"

#include <bit>
#include <sstream>

namespace obx::serve {

void Histogram::record(std::uint64_t value) {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::min() const {
  if (count() == 0) return 0;
  // reset() racing record() can leave a torn snapshot where min_ still holds
  // its ~0 sentinel (or a stale floor) while max_ already reflects a sample.
  // Clamp so min() <= max() always holds; the window closes on the next
  // record().  (A lone UINT64_MAX sample also leaves min_ == sentinel — and
  // the clamp returns the right answer there too, since min == max.)
  const std::uint64_t mn = min_.load(std::memory_order_relaxed);
  const std::uint64_t mx = max_.load(std::memory_order_relaxed);
  return mn > mx ? mx : mn;
}

std::uint64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (!(q >= 0)) q = 0;  // negated so NaN lands here, not in the cast below
  if (q > 1) q = 1;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket k, clamped to the true max.
      const std::uint64_t bound = k == 0 ? 0 : (k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1);
      return std::min(bound, max());
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth.load(std::memory_order_relaxed);
  s.flush_size = flush_size.load(std::memory_order_relaxed);
  s.flush_delay = flush_delay.load(std::memory_order_relaxed);
  s.flush_deadline = flush_deadline.load(std::memory_order_relaxed);
  s.flush_drain = flush_drain.load(std::memory_order_relaxed);
  s.mean_queue_delay_us = queue_delay_us.mean();
  s.p50_queue_delay_us = static_cast<double>(queue_delay_us.quantile(0.50));
  s.p95_queue_delay_us = static_cast<double>(queue_delay_us.quantile(0.95));
  s.mean_batch_latency_us = batch_latency_us.mean();
  s.p95_batch_latency_us = static_cast<double>(batch_latency_us.quantile(0.95));
  s.mean_batch_occupancy = batch_occupancy.mean();
  s.max_batch_occupancy = static_cast<double>(batch_occupancy.max());
  s.mean_batch_sim_units = batch_sim_units.mean();
  return s;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "serve.metrics:\n"
     << "  jobs        submitted=" << submitted << " completed=" << completed
     << " rejected=" << rejected << " shed=" << shed << " failed=" << failed
     << " deadline_missed=" << deadline_missed << "\n"
     << "  queue       depth=" << queue_depth
     << " delay_us mean=" << mean_queue_delay_us << " p50=" << p50_queue_delay_us
     << " p95=" << p95_queue_delay_us << "\n"
     << "  batches     count=" << batches << " occupancy mean=" << mean_batch_occupancy
     << " max=" << max_batch_occupancy << " latency_us mean=" << mean_batch_latency_us
     << " p95=" << p95_batch_latency_us << "\n"
     << "  flushes     size=" << flush_size << " delay=" << flush_delay
     << " deadline=" << flush_deadline << " drain=" << flush_drain << "\n"
     << "  simulated   units/batch mean=" << mean_batch_sim_units << "\n";
  return os.str();
}

}  // namespace obx::serve

#include "serve/metrics.hpp"

#include "bulk/core_pool.hpp"

#include <bit>
#include <mutex>
#include <sstream>

namespace obx::serve {

void Histogram::record(std::uint64_t value) {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::min() const {
  if (count() == 0) return 0;
  // reset() racing record() can leave a torn snapshot where min_ still holds
  // its ~0 sentinel (or a stale floor) while max_ already reflects a sample.
  // Clamp so min() <= max() always holds; the window closes on the next
  // record().  (A lone UINT64_MAX sample also leaves min_ == sentinel — and
  // the clamp returns the right answer there too, since min == max.)
  const std::uint64_t mn = min_.load(std::memory_order_relaxed);
  const std::uint64_t mx = max_.load(std::memory_order_relaxed);
  return mn > mx ? mx : mn;
}

std::uint64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (!(q >= 0)) q = 0;  // negated so NaN lands here, not in the cast below
  if (q > 1) q = 1;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket k, clamped to the true max.
      const std::uint64_t bound = k == 0 ? 0 : (k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1);
      return std::min(bound, max());
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

TenantCounters& Metrics::tenant(const std::string& tenant) {
  {
    std::shared_lock lock(tenants_mutex_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return *it->second;
    if (tenants_.size() >= kMaxTenants) return overflow_;
  }
  std::unique_lock lock(tenants_mutex_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return *it->second;
  if (tenants_.size() >= kMaxTenants) return overflow_;
  auto& slot = tenants_[tenant];
  slot = std::make_unique<TenantCounters>();
  return *slot;
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
  s.throttled = throttled.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth.load(std::memory_order_relaxed);
  s.flush_size = flush_size.load(std::memory_order_relaxed);
  s.flush_delay = flush_delay.load(std::memory_order_relaxed);
  s.flush_deadline = flush_deadline.load(std::memory_order_relaxed);
  s.flush_drain = flush_drain.load(std::memory_order_relaxed);
  s.mean_queue_delay_us = queue_delay_us.mean();
  s.p50_queue_delay_us = static_cast<double>(queue_delay_us.quantile(0.50));
  s.p95_queue_delay_us = static_cast<double>(queue_delay_us.quantile(0.95));
  s.mean_batch_latency_us = batch_latency_us.mean();
  s.p95_batch_latency_us = static_cast<double>(batch_latency_us.quantile(0.95));
  s.mean_batch_occupancy = batch_occupancy.mean();
  s.max_batch_occupancy = static_cast<double>(batch_occupancy.max());
  s.mean_batch_sim_units = batch_sim_units.mean();
  const auto snap_tenant = [](const std::string& name,
                              const TenantCounters& counters) {
    TenantSnapshot t;
    t.tenant = name;
    t.submitted = counters.submitted.load(std::memory_order_relaxed);
    t.completed = counters.completed.load(std::memory_order_relaxed);
    t.rejected = counters.rejected.load(std::memory_order_relaxed);
    t.shed = counters.shed.load(std::memory_order_relaxed);
    t.failed = counters.failed.load(std::memory_order_relaxed);
    t.deadline_missed = counters.deadline_missed.load(std::memory_order_relaxed);
    t.throttled = counters.throttled.load(std::memory_order_relaxed);
    t.overflow_block = counters.overflow_block.load(std::memory_order_relaxed);
    t.overflow_reject = counters.overflow_reject.load(std::memory_order_relaxed);
    t.overflow_shed = counters.overflow_shed.load(std::memory_order_relaxed);
    t.mean_queue_delay_us = counters.queue_delay_us.mean();
    t.p95_queue_delay_us = static_cast<double>(counters.queue_delay_us.quantile(0.95));
    return t;
  };
  {
    std::shared_lock lock(tenants_mutex_);
    s.tenants.reserve(tenants_.size() + 1);
    for (const auto& [name, counters] : tenants_) {  // std::map: sorted order
      s.tenants.push_back(snap_tenant(name, *counters));
    }
  }
  // The shared past-the-cap row only renders once something landed in it, so
  // the common uncapped case is unchanged.
  TenantSnapshot spill = snap_tenant(kOverflowTenant, overflow_);
  if (spill.submitted || spill.rejected || spill.shed || spill.failed ||
      spill.throttled || spill.overflow_block) {
    s.tenants.push_back(std::move(spill));
  }
  // Scheduler visibility: the pool is process-wide, so these counters cover
  // every executor sharing it (reading them never spawns the workers).
  const bulk::CorePool::CountersSnapshot sched = bulk::CorePool::instance().counters();
  s.sched_workers = sched.worker_busy_ns.size();
  s.sched_pinned = sched.pinned;
  s.sched_tasks = sched.tasks;
  s.sched_steals = sched.steals;
  s.sched_parks = sched.parks;
  s.sched_unparks = sched.unparks;
  s.sched_worker_busy_ns = sched.worker_busy_ns;
  return s;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "serve.metrics:\n"
     << "  jobs        submitted=" << submitted << " completed=" << completed
     << " rejected=" << rejected << " shed=" << shed << " failed=" << failed
     << " deadline_missed=" << deadline_missed << " throttled=" << throttled << "\n"
     << "  queue       depth=" << queue_depth
     << " delay_us mean=" << mean_queue_delay_us << " p50=" << p50_queue_delay_us
     << " p95=" << p95_queue_delay_us << "\n"
     << "  batches     count=" << batches << " occupancy mean=" << mean_batch_occupancy
     << " max=" << max_batch_occupancy << " latency_us mean=" << mean_batch_latency_us
     << " p95=" << p95_batch_latency_us << "\n"
     << "  flushes     size=" << flush_size << " delay=" << flush_delay
     << " deadline=" << flush_deadline << " drain=" << flush_drain << "\n"
     << "  simulated   units/batch mean=" << mean_batch_sim_units << "\n"
     << "  scheduler   workers=" << sched_workers
     << (sched_pinned ? " pinned" : " unpinned") << " tasks=" << sched_tasks
     << " steals=" << sched_steals << " parks=" << sched_parks
     << " unparks=" << sched_unparks << "\n";
  for (const TenantSnapshot& t : tenants) {
    os << "  tenant " << t.tenant << ": submitted=" << t.submitted
       << " completed=" << t.completed << " rejected=" << t.rejected
       << " shed=" << t.shed << " failed=" << t.failed
       << " throttled=" << t.throttled << " overflow(block=" << t.overflow_block
       << " reject=" << t.overflow_reject << " shed=" << t.overflow_shed
       << ") delay_us mean=" << t.mean_queue_delay_us
       << " p95=" << t.p95_queue_delay_us << "\n";
  }
  return os.str();
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        // Any other control byte (including '\r' and DEL) would either be
        // invisible or let a tenant name smuggle format structure into the
        // scrape; a validated placeholder keeps the exposition parseable.
        if (static_cast<unsigned char>(c) < 0x20 || c == '\x7f') {
          out += '_';
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void counter(std::ostringstream& os, const char* name, std::uint64_t value) {
  os << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
}

void gauge(std::ostringstream& os, const char* name, double value) {
  os << "# TYPE " << name << " gauge\n" << name << " " << value << "\n";
}

/// One labelled counter family: emits a `{tenant="..."}` sample per tenant.
void tenant_counter(std::ostringstream& os, const std::string& name,
                    const std::vector<TenantSnapshot>& tenants,
                    std::uint64_t TenantSnapshot::* field) {
  os << "# TYPE " << name << " counter\n";
  for (const TenantSnapshot& t : tenants) {
    os << name << "{tenant=\"" << escape_label_value(t.tenant) << "\"} "
       << t.*field << "\n";
  }
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& s) {
  std::ostringstream os;
  counter(os, "obx_serve_jobs_submitted_total", s.submitted);
  counter(os, "obx_serve_jobs_completed_total", s.completed);
  counter(os, "obx_serve_jobs_rejected_total", s.rejected);
  counter(os, "obx_serve_jobs_shed_total", s.shed);
  counter(os, "obx_serve_jobs_failed_total", s.failed);
  counter(os, "obx_serve_jobs_deadline_missed_total", s.deadline_missed);
  counter(os, "obx_serve_jobs_throttled_total", s.throttled);
  counter(os, "obx_serve_batches_total", s.batches);
  gauge(os, "obx_serve_queue_depth", static_cast<double>(s.queue_depth));
  gauge(os, "obx_serve_queue_delay_us_mean", s.mean_queue_delay_us);
  gauge(os, "obx_serve_queue_delay_us_p50", s.p50_queue_delay_us);
  gauge(os, "obx_serve_queue_delay_us_p95", s.p95_queue_delay_us);
  gauge(os, "obx_serve_batch_latency_us_mean", s.mean_batch_latency_us);
  gauge(os, "obx_serve_batch_latency_us_p95", s.p95_batch_latency_us);
  gauge(os, "obx_serve_batch_occupancy_mean", s.mean_batch_occupancy);
  gauge(os, "obx_serve_batch_occupancy_max", s.max_batch_occupancy);
  counter(os, "obx_serve_flush_size_total", s.flush_size);
  counter(os, "obx_serve_flush_delay_total", s.flush_delay);
  counter(os, "obx_serve_flush_deadline_total", s.flush_deadline);
  counter(os, "obx_serve_flush_drain_total", s.flush_drain);
  gauge(os, "obx_serve_sched_workers", static_cast<double>(s.sched_workers));
  gauge(os, "obx_serve_sched_pinned", s.sched_pinned ? 1.0 : 0.0);
  counter(os, "obx_serve_sched_tasks_total", s.sched_tasks);
  counter(os, "obx_serve_sched_steals_total", s.sched_steals);
  counter(os, "obx_serve_sched_parks_total", s.sched_parks);
  counter(os, "obx_serve_sched_unparks_total", s.sched_unparks);
  if (!s.sched_worker_busy_ns.empty()) {
    os << "# TYPE obx_serve_sched_worker_busy_ns_total counter\n";
    for (std::size_t i = 0; i < s.sched_worker_busy_ns.size(); ++i) {
      os << "obx_serve_sched_worker_busy_ns_total{worker=\"" << i << "\"} "
         << s.sched_worker_busy_ns[i] << "\n";
    }
  }
  if (!s.tenants.empty()) {
    tenant_counter(os, "obx_serve_tenant_submitted_total", s.tenants,
                   &TenantSnapshot::submitted);
    tenant_counter(os, "obx_serve_tenant_completed_total", s.tenants,
                   &TenantSnapshot::completed);
    tenant_counter(os, "obx_serve_tenant_rejected_total", s.tenants,
                   &TenantSnapshot::rejected);
    tenant_counter(os, "obx_serve_tenant_shed_total", s.tenants,
                   &TenantSnapshot::shed);
    tenant_counter(os, "obx_serve_tenant_failed_total", s.tenants,
                   &TenantSnapshot::failed);
    tenant_counter(os, "obx_serve_tenant_deadline_missed_total", s.tenants,
                   &TenantSnapshot::deadline_missed);
    tenant_counter(os, "obx_serve_tenant_throttled_total", s.tenants,
                   &TenantSnapshot::throttled);
    tenant_counter(os, "obx_serve_tenant_overflow_block_total", s.tenants,
                   &TenantSnapshot::overflow_block);
    tenant_counter(os, "obx_serve_tenant_overflow_reject_total", s.tenants,
                   &TenantSnapshot::overflow_reject);
    tenant_counter(os, "obx_serve_tenant_overflow_shed_total", s.tenants,
                   &TenantSnapshot::overflow_shed);
    os << "# TYPE obx_serve_tenant_queue_delay_us_p95 gauge\n";
    for (const TenantSnapshot& t : s.tenants) {
      os << "obx_serve_tenant_queue_delay_us_p95{tenant=\""
         << escape_label_value(t.tenant) << "\"} " << t.p95_queue_delay_us << "\n";
    }
  }
  return os.str();
}

}  // namespace obx::serve

#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/check.hpp"

namespace obx::serve {

namespace {

struct ProducerOutcome {
  std::vector<double> latencies_us;  // completed jobs only
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t deadline_missed = 0;
};

void count_outcome(const JobResult& r, ProducerOutcome& outcome) {
  switch (r.status) {
    case JobStatus::kCompleted:
      ++outcome.completed;
      outcome.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(r.latency).count());
      if (r.deadline_missed) ++outcome.deadline_missed;
      break;
    case JobStatus::kRejected: ++outcome.rejected; break;
    case JobStatus::kShed: ++outcome.shed; break;
    case JobStatus::kFailed: ++outcome.failed; break;
  }
}

double exp_interval_seconds(Rng& rng, double rate_hz) {
  // Inverse-CDF sample of Exp(rate); next_double() < 1 keeps log finite.
  return -std::log(1.0 - rng.next_double()) / rate_hz;
}

void producer(BulkService& service, const std::vector<WorkloadItem>& workload,
              const LoadGenOptions& options, std::size_t jobs, std::uint64_t seed,
              ProducerOutcome& outcome) {
  Rng rng(seed);
  const double rate =
      options.arrival_rate_hz > 0
          ? options.arrival_rate_hz / static_cast<double>(options.producers)
          : 0.0;

  std::vector<std::future<JobResult>> futures;
  futures.reserve(options.arrival_rate_hz > 0 ? jobs : 1);
  Clock::time_point next_arrival = Clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    const WorkloadItem& item =
        workload[rng.next_below(workload.size())];
    std::vector<Word> input = item.make_input(rng);
    if (rate > 0) {
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(exp_interval_seconds(rng, rate)));
      std::this_thread::sleep_until(next_arrival);
      futures.push_back(
          service.submit(item.program_id, std::move(input), options.deadline));
    } else {
      // Closed-loop: one outstanding job per producer.
      futures.clear();
      futures.push_back(
          service.submit(item.program_id, std::move(input), options.deadline));
      const JobResult r = futures.back().get();
      futures.clear();
      count_outcome(r, outcome);
    }
  }
  for (auto& f : futures) {
    count_outcome(f.get(), outcome);
  }
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

LoadGenReport run_load(BulkService& service, const std::vector<WorkloadItem>& workload,
                       const LoadGenOptions& options) {
  OBX_CHECK(!workload.empty(), "load generator needs at least one workload item");
  OBX_CHECK(options.producers > 0, "need at least one producer");
  OBX_CHECK(options.jobs > 0, "need at least one job");

  const unsigned producers = static_cast<unsigned>(
      std::min<std::size_t>(options.producers, options.jobs));
  std::vector<ProducerOutcome> outcomes(producers);
  std::vector<std::thread> threads;
  threads.reserve(producers);

  const auto t0 = Clock::now();
  const std::size_t per = options.jobs / producers;
  const std::size_t rem = options.jobs % producers;
  for (unsigned i = 0; i < producers; ++i) {
    const std::size_t jobs = per + (i < rem ? 1 : 0);
    threads.emplace_back([&, i, jobs] {
      producer(service, workload, options, jobs, options.seed * 7919 + i,
               outcomes[i]);
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = Clock::now();

  LoadGenReport report;
  report.submitted = options.jobs;
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  std::vector<double> latencies;
  for (const auto& o : outcomes) {
    report.completed += o.completed;
    report.rejected += o.rejected;
    report.shed += o.shed;
    report.failed += o.failed;
    report.deadline_missed += o.deadline_missed;
    latencies.insert(latencies.end(), o.latencies_us.begin(), o.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.jobs_per_sec = report.wall_seconds > 0
                            ? static_cast<double>(report.completed) / report.wall_seconds
                            : 0;
  if (!latencies.empty()) {
    double sum = 0;
    for (double v : latencies) sum += v;
    report.mean_latency_us = sum / static_cast<double>(latencies.size());
    report.p50_latency_us = percentile(latencies, 0.50);
    report.p95_latency_us = percentile(latencies, 0.95);
    report.max_latency_us = latencies.back();
  }
  return report;
}

}  // namespace obx::serve

#include "serve/program_cache.hpp"

#include "common/check.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "opt/optimizer.hpp"

namespace obx::serve {

namespace {

TimeUnits simulate(const trace::Program& program, std::size_t lanes,
                   bulk::Arrangement arrangement, const umm::MachineConfig& machine) {
  return bulk::TimingEstimator(umm::Model::kUmm, machine,
                               bulk::make_layout(program, lanes, arrangement))
      .run(program)
      .time_units;
}

}  // namespace

PreparedProgram::PreparedProgram(trace::Program program, const PrepareOptions& options)
    : program_(std::move(program)), machine_(options.machine) {
  machine_.validate();
  OBX_CHECK(options.reference_lanes > 0, "reference lane count must be positive");

  const trace::StepCounts counts = program_.profile();
  if (options.optimize && counts.total() < options.optimise_step_limit) {
    opt::OptimizeOptions oo;
    oo.max_steps = options.optimise_step_limit;
    opt::OptimizeResult r = opt::optimize(program_, oo);
    if (r.after.total() < r.before.total()) {
      program_ = std::move(r.program);
      optimised_ = true;
    }
  }

  if (options.compile) {
    compiled_ = exec::CompiledProgram::get_or_compile(
        program_, {.max_steps = options.compile_budget_steps});
  }

  const TimeUnits row = simulate(program_, options.reference_lanes,
                                 bulk::Arrangement::kRowWise, machine_);
  const TimeUnits col = simulate(program_, options.reference_lanes,
                                 bulk::Arrangement::kColumnWise, machine_);
  arrangement_ =
      col <= row ? bulk::Arrangement::kColumnWise : bulk::Arrangement::kRowWise;
}

TimeUnits PreparedProgram::units_for_lanes(std::size_t lanes) const {
  OBX_CHECK(lanes > 0, "lane count must be positive");
  std::lock_guard lock(units_mutex_);
  const auto it = units_by_lanes_.find(lanes);
  if (it != units_by_lanes_.end()) return it->second;
  const TimeUnits units = simulate(program_, lanes, arrangement_, machine_);
  units_by_lanes_.emplace(lanes, units);
  return units;
}

void ProgramCache::add(const std::string& id, trace::Program program) {
  OBX_CHECK(!id.empty(), "program id cannot be empty");
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  auto prepared = std::make_unique<PreparedProgram>(std::move(program), options_);
  std::lock_guard lock(mutex_);
  const bool inserted = programs_.emplace(id, std::move(prepared)).second;
  OBX_CHECK(inserted, "program id already registered: " + id);
}

const PreparedProgram& ProgramCache::get(const std::string& id) const {
  std::lock_guard lock(mutex_);
  const auto it = programs_.find(id);
  OBX_CHECK(it != programs_.end(), "unknown program id: " + id);
  return *it->second;
}

bool ProgramCache::contains(const std::string& id) const {
  std::lock_guard lock(mutex_);
  return programs_.count(id) > 0;
}

std::vector<std::string> ProgramCache::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [id, prepared] : programs_) out.push_back(id);
  return out;
}

}  // namespace obx::serve

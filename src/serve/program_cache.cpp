#include "serve/program_cache.hpp"

#include "common/check.hpp"

namespace obx::serve {

plan::PlanOptions PrepareOptions::plan_options() const {
  plan::PlanOptions po;
  po.machine = machine;
  po.reference_lanes = reference_lanes;
  po.optimise = optimize.value_or(optimise);
  po.optimise_step_limit = optimise_step_limit;
  po.compile = compile;
  po.compile_budget_steps = compile_budget_steps;
  po.workers = workers;
  po.tune = tune;
  return po;
}

PreparedProgram::PreparedProgram(std::shared_ptr<const plan::ExecutionPlan> plan)
    : plan_(std::move(plan)) {
  OBX_CHECK(plan_ != nullptr, "prepared program needs a plan");
}

void ProgramCache::add(const std::string& id, trace::Program program) {
  OBX_CHECK(!id.empty(), "program id cannot be empty");
  OBX_CHECK(program.stream != nullptr, "program has no stream factory");
  // Plan outside the registry lock (optimise + compile + arrangement can be
  // slow); the plan cache collapses duplicate concurrent builds itself.
  auto prepared =
      std::make_unique<PreparedProgram>(plans_.get_or_build(id, program));
  std::lock_guard lock(mutex_);
  const bool inserted = programs_.emplace(id, std::move(prepared)).second;
  OBX_CHECK(inserted, "program id already registered: " + id);
}

const PreparedProgram& ProgramCache::get(const std::string& id) const {
  std::lock_guard lock(mutex_);
  const auto it = programs_.find(id);
  OBX_CHECK(it != programs_.end(), "unknown program id: " + id);
  return *it->second;
}

bool ProgramCache::contains(const std::string& id) const {
  std::lock_guard lock(mutex_);
  return programs_.count(id) > 0;
}

std::vector<std::string> ProgramCache::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [id, prepared] : programs_) out.push_back(id);
  return out;
}

}  // namespace obx::serve

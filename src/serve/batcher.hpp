// Dynamic batcher: coalesces same-program jobs into bulk-execution batches.
//
// Pure state machine — every method takes the current time as a parameter,
// so flush behaviour is deterministic and unit-testable without threads or
// sleeps.  The service's batcher thread drives it with the real clock.
//
// A pending group (one per (program id, input length) — two jobs whose
// inputs differ in length must never share a batch, since a batch scatters
// every lane with one program's input_words) flushes when ANY of:
//   size:     it reaches max_batch_lanes (checked on add),
//   delay:    max_batch_delay has elapsed since the group OPENED (first job
//             added to the batcher — not since submit: under a backlog the
//             admission-queue wait would otherwise eat the whole window and
//             degrade every batch to one lane, exactly when coalescing
//             matters most; with an empty queue the two clocks coincide),
//   deadline: waiting longer would miss some job's deadline, i.e. now has
//             reached (deadline - deadline_slack) for the tightest job.
//
// max_batch_delay is the central knob: 0 degenerates to one-job batches
// (lowest queueing delay, no amortisation); larger values trade bounded
// extra latency for fuller batches, and fuller batches amortise the fixed
// per-batch cost — the service-level image of the l·t term in Theorem 2.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/job.hpp"

namespace obx::serve {

struct BatcherOptions {
  std::size_t max_batch_lanes = 256;
  Clock::duration max_batch_delay = std::chrono::microseconds(500);
  /// Headroom reserved for execution when honouring deadlines: a group
  /// flushes once now >= deadline - deadline_slack (saturating: a deadline
  /// already closer than the slack flushes immediately).  Must be >= 0.
  Clock::duration deadline_slack = Clock::duration::zero();
};

class Batcher {
 public:
  explicit Batcher(BatcherOptions options);

  /// Adds a job to its (program, input length) pending group; moves the
  /// group to the ready list immediately if it reaches max_batch_lanes.
  void add(Job&& job, Clock::time_point now);

  /// Flushes every group whose delay or deadline trigger has fired by `now`,
  /// and returns all ready batches (including size-triggered ones from add).
  std::vector<Batch> take_ready(Clock::time_point now);

  /// Earliest instant at which some pending group becomes due, or nullopt
  /// when nothing is pending (the service thread sleeps until this).
  std::optional<Clock::time_point> next_due() const;

  /// Flushes everything unconditionally (service drain/shutdown).
  std::vector<Batch> drain();

  std::size_t pending_jobs() const;
  const BatcherOptions& options() const { return options_; }

 private:
  struct Group {
    std::vector<Job> jobs;
    Clock::time_point opened_at{};  ///< when the first job joined this group
    std::optional<Clock::time_point> tightest_deadline;
  };

  /// Regression guard (PR 11): grouping by program id alone would let a
  /// mis-sized job ride a batch whose lanes scatter a different input_words
  /// — the length is part of the key, so aliasing is structurally impossible
  /// even if a caller registers variable-length sessions under one id.
  using GroupKey = std::pair<std::string, std::size_t>;

  /// Time at which `group` must flush, and which trigger that would be.
  std::pair<Clock::time_point, FlushReason> due(const Group& group) const;
  void flush(const GroupKey& key, Group&& group, Clock::time_point now,
             FlushReason reason);

  BatcherOptions options_;
  std::map<GroupKey, Group> pending_;
  std::vector<Batch> ready_;
};

}  // namespace obx::serve

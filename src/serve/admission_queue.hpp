// Bounded MPMC admission queue with explicit backpressure policies.
//
// The queue is the only place the service pushes back on producers; once a
// job is accepted it will reach a terminal state (the batcher and executor
// pool never drop work).  Overflow behaviour is a policy choice:
//
//   kBlock     — producers wait for room (closed-loop backpressure; nothing
//                is lost, producer latency absorbs the overload)
//   kReject    — admission fails fast (load-shedding at the front door;
//                the caller gets JobStatus::kRejected immediately)
//   kShedOldest— a queued job is evicted to admit the newcomer.  The victim
//                is the oldest job of the *least important* priority class
//                present, and a newcomer never evicts a job that outranks
//                it (that push degenerates to kReject) — under overload,
//                old low-priority requests are the least likely to matter.
//
// The policy is resolved per push: the service maps each priority class to
// a policy, so one queue serves mixed-class traffic.  Event-loop callers
// (the network front end) push with allow_block = false and get
// kWouldBlock instead of a blocked thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/job.hpp"

namespace obx::serve {

enum class OverflowPolicy { kBlock, kReject, kShedOldest };

const char* to_string(OverflowPolicy policy);
OverflowPolicy overflow_policy_from(const std::string& name);  ///< "block"/"reject"/"shed"

class AdmissionQueue {
 public:
  enum class PushResult { kAccepted, kRejected, kWouldBlock };
  enum class PopResult { kJob, kTimeout, kClosed };

  AdmissionQueue(std::size_t capacity, OverflowPolicy policy);

  /// Admits `job` under `policy`.  With kShedOldest, a full queue evicts the
  /// oldest least-important entry into *shed (the caller owns resolving its
  /// promise); when `shed` is null the queue resolves the evicted job itself
  /// with JobStatus::kShed — an eviction never destroys an unresolved job.
  /// Returns kRejected under kReject on a full queue, under kShedOldest when
  /// every queued job outranks the newcomer, or for any push after close();
  /// returns kWouldBlock (job untouched, nothing admitted) under kBlock on a
  /// full queue when `allow_block` is false.  On kRejected/kWouldBlock `job`
  /// is left untouched, so the caller still owns it.  `*waited` is set when
  /// a kBlock push actually had to wait for room.
  PushResult push(Job&& job, OverflowPolicy policy, std::optional<Job>* shed,
                  bool allow_block = true, bool* waited = nullptr);

  /// Admits under the queue's configured default policy (always blocking).
  PushResult push(Job&& job, std::optional<Job>* shed = nullptr) {
    return push(std::move(job), policy_, shed, /*allow_block=*/true);
  }

  /// Blocks until a job is available or the queue is closed and empty.
  PopResult pop(Job& out);

  /// Like pop(), but gives up at `deadline` (returns kTimeout).
  PopResult pop_until(Job& out, Clock::time_point deadline);

  /// Marks the queue closed: subsequent pushes are rejected, pops drain the
  /// remaining jobs then report kClosed.
  void close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }
  bool closed() const;

 private:
  PopResult take_locked(std::unique_lock<std::mutex>& lock, Job& out);

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

}  // namespace obx::serve

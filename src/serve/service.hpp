// BulkService: the batching bulk-execution service.
//
//   producers ──▶ quota gate ──▶ AdmissionQueue ──▶ Batcher ──▶ ExecutorPool ──▶ futures
//                 (per-tenant     (bounded MPMC,      (group by    (N workers ×     / callbacks
//                  token bucket)   per-priority        program,     StreamingExecutor)
//                                  overflow policy)    flush on
//                                                      size/delay/deadline)
//
// Many producer threads submit independent single-lane jobs; the service
// coalesces them into large-occupancy bulk executions through the existing
// engine.  Program characterisation (optimise + arrangement choice) is
// cached per program id, so the advisor runs once, not per batch.
//
// Multi-tenancy happens at admission: each job carries a tenant id and a
// priority class.  Tenants are charged against per-tenant token-bucket
// quotas before the shared queue is touched, priority classes map onto the
// block / reject / shed-oldest overflow policies, and every outcome is
// accounted per tenant in the metrics registry.
//
// Lifecycle guarantee: every accepted job resolves exactly once —
// kCompleted after execution, kShed if evicted under the shed-oldest policy,
// kRejected if refused at admission (queue or quota).  stop() (and the
// destructor) drains all accepted work before joining the threads; nothing
// is abandoned.  Jobs submitted with a completion callback (try_submit)
// resolve through the callback instead of a future, with execution failures
// flattened to JobStatus::kFailed.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission_queue.hpp"
#include "serve/batcher.hpp"
#include "serve/job.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "serve/tenant.hpp"

namespace obx::serve {

struct ServiceOptions {
  std::size_t queue_capacity = 4096;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  /// Per-priority-class override of `policy` at queue overflow; an unset
  /// entry falls back to `policy`.  Index with static_cast<size_t>(Priority).
  std::array<std::optional<OverflowPolicy>, kPriorityCount> priority_policies{};
  /// Token-bucket quotas charged per tenant before the queue (more can be
  /// installed at runtime with set_tenant_quota).
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Quota applied to tenants without an explicit entry; unset = unlimited.
  std::optional<TenantQuota> default_quota;
  BatcherOptions batcher;
  /// Executor pool size: batches in flight concurrently.  These threads
  /// only pipeline batches (gather inputs, resolve futures); the lane work
  /// itself runs on the shared bulk::CorePool, so executors ×
  /// workers_per_batch cannot oversubscribe the host — every batch's tiles
  /// drain through the same per-core workers.
  unsigned executors = 2;
  /// Parallelism target inside one batch's StreamingExecutor, passed to the
  /// shared CorePool per run.  0 (default) = one consumer per pool worker;
  /// 1 = run batches inline on their executor thread (the pre-pool
  /// behaviour).
  unsigned workers_per_batch = 0;
  /// Machine model + optimisation policy for per-program characterisation
  /// (reference_lanes is overridden with batcher.max_batch_lanes).
  PrepareOptions prepare;
  /// Estimate simulated UMM units per executed batch (memoised per program
  /// and occupancy; adds one timing-estimator pass per distinct occupancy).
  bool record_simulated_units = true;
  /// Fault-injection seam (check::FaultPlan): called on the executor thread
  /// right before a batch runs, inside the failure-handling scope — a throw
  /// here resolves every job in the batch with that exception, exactly like
  /// an engine failure.  Empty in production.
  std::function<void(const Batch&)> before_execute;

  OverflowPolicy effective_policy(Priority priority) const {
    const auto& override_ = priority_policies[static_cast<std::size_t>(priority)];
    return override_.value_or(policy);
  }
};

/// Per-submission options (who is asking, how urgent, by when).
struct SubmitOptions {
  std::string tenant = "default";
  Priority priority = Priority::kNormal;
  /// Relative to now; a completed-late job is still delivered, flagged
  /// deadline_missed.
  std::optional<Clock::duration> deadline;
};

class BulkService {
 public:
  /// Outcome of a non-blocking try_submit.  kResolved means the submission
  /// reached a terminal state (accepted into the queue, or rejected with the
  /// callback already invoked); kWouldBlock means nothing happened — the
  /// job's priority maps to kBlock, the queue is full, and the caller should
  /// retry later (the event-loop image of blocking backpressure).
  enum class TrySubmit { kResolved, kWouldBlock };

  explicit BulkService(ServiceOptions options);
  ~BulkService();

  BulkService(const BulkService&) = delete;
  BulkService& operator=(const BulkService&) = delete;

  /// Prepares (optimises + characterises) and registers a program.  Must
  /// happen before any submit() for that id.
  void register_program(const std::string& id, trace::Program program);

  /// Submits one lane of work.  `input` must hold exactly the program's
  /// input_words.  Never blocks except under an effective kBlock policy on
  /// a full queue.
  std::future<JobResult> submit(const std::string& id, std::vector<Word> input,
                                const SubmitOptions& options);

  /// Single-tenant compatibility shim: tenant "default", Priority::kNormal.
  std::future<JobResult> submit(const std::string& id, std::vector<Word> input,
                                std::optional<Clock::duration> deadline = std::nullopt);

  /// Callback-based, never-blocking submission for event-loop callers.
  /// `done` is invoked exactly once with the terminal JobResult — possibly
  /// synchronously (quota/queue rejection) and possibly from an executor
  /// thread — unless kWouldBlock is returned, in which case nothing was
  /// admitted or charged and `done` will never be called.
  TrySubmit try_submit(const std::string& id, std::vector<Word> input,
                       const SubmitOptions& options,
                       std::function<void(JobResult&&)> done);

  /// Installs or replaces a tenant's quota at runtime.
  void set_tenant_quota(const std::string& tenant, TenantQuota quota);

  /// Stops admission, drains every accepted job through execution, joins all
  /// threads.  Idempotent; called by the destructor.
  void stop();

  const Metrics& metrics() const { return metrics_; }
  MetricsSnapshot snapshot() const { return metrics_.snapshot(); }
  const ServiceOptions& options() const { return options_; }
  const ProgramCache& programs() const { return *programs_; }

 private:
  class BatchQueue;

  /// Shared admission path: quota gate, then the queue under the job's
  /// effective policy.  Returns kWouldBlock only when !allow_block (with the
  /// job rolled back into `job`); otherwise the job reached the queue or was
  /// resolved terminally.
  TrySubmit admit(Job&& job, bool allow_block);

  void batcher_loop();
  void executor_loop();
  void dispatch(Batch&& batch);
  void execute(Batch&& batch);
  void resolve_dropped(Job&& job, JobStatus status);

  ServiceOptions options_;
  std::unique_ptr<ProgramCache> programs_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<BatchQueue> batches_;
  Batcher batcher_;
  Metrics metrics_;
  TenantTable tenants_;
  std::atomic<std::uint64_t> next_job_id_{0};
  std::atomic<bool> stopped_{false};
  std::thread batcher_thread_;
  std::vector<std::thread> executor_threads_;
};

}  // namespace obx::serve

// BulkService: the batching bulk-execution service.
//
//   producers ──▶ AdmissionQueue ──▶ Batcher ──▶ ExecutorPool ──▶ futures
//                 (bounded MPMC,      (group by    (N workers ×
//                  backpressure)       program,     StreamingExecutor)
//                                      flush on
//                                      size/delay/deadline)
//
// Many producer threads submit independent single-lane jobs; the service
// coalesces them into large-occupancy bulk executions through the existing
// engine.  Program characterisation (optimise + arrangement choice) is
// cached per program id, so the advisor runs once, not per batch.
//
// Lifecycle guarantee: every accepted job's future resolves exactly once —
// kCompleted after execution, kShed if evicted under the shed-oldest policy,
// kRejected if refused at admission.  stop() (and the destructor) drains all
// accepted work before joining the threads; nothing is abandoned.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission_queue.hpp"
#include "serve/batcher.hpp"
#include "serve/job.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"

namespace obx::serve {

struct ServiceOptions {
  std::size_t queue_capacity = 4096;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  BatcherOptions batcher;
  /// Executor pool size: batches in flight concurrently.
  unsigned executors = 2;
  /// Host threads inside one batch's StreamingExecutor.  Defaults to 1:
  /// the pool already supplies cross-batch parallelism, and executors ×
  /// workers_per_batch should not oversubscribe the host.
  unsigned workers_per_batch = 1;
  /// Machine model + optimisation policy for per-program characterisation
  /// (reference_lanes is overridden with batcher.max_batch_lanes).
  PrepareOptions prepare;
  /// Estimate simulated UMM units per executed batch (memoised per program
  /// and occupancy; adds one timing-estimator pass per distinct occupancy).
  bool record_simulated_units = true;
  /// Fault-injection seam (check::FaultPlan): called on the executor thread
  /// right before a batch runs, inside the failure-handling scope — a throw
  /// here resolves every job in the batch with that exception, exactly like
  /// an engine failure.  Empty in production.
  std::function<void(const Batch&)> before_execute;
};

class BulkService {
 public:
  explicit BulkService(ServiceOptions options);
  ~BulkService();

  BulkService(const BulkService&) = delete;
  BulkService& operator=(const BulkService&) = delete;

  /// Prepares (optimises + characterises) and registers a program.  Must
  /// happen before any submit() for that id.
  void register_program(const std::string& id, trace::Program program);

  /// Submits one lane of work.  `input` must hold exactly the program's
  /// input_words.  `deadline` is relative to now; a completed-late job is
  /// still delivered, flagged deadline_missed.  Never blocks except under
  /// OverflowPolicy::kBlock on a full queue.
  std::future<JobResult> submit(const std::string& id, std::vector<Word> input,
                                std::optional<Clock::duration> deadline = std::nullopt);

  /// Stops admission, drains every accepted job through execution, joins all
  /// threads.  Idempotent; called by the destructor.
  void stop();

  const Metrics& metrics() const { return metrics_; }
  MetricsSnapshot snapshot() const { return metrics_.snapshot(); }
  const ServiceOptions& options() const { return options_; }
  const ProgramCache& programs() const { return *programs_; }

 private:
  class BatchQueue;

  void batcher_loop();
  void executor_loop();
  void dispatch(Batch&& batch);
  void execute(Batch&& batch);
  void resolve_dropped(Job&& job, JobStatus status);

  ServiceOptions options_;
  std::unique_ptr<ProgramCache> programs_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<BatchQueue> batches_;
  Batcher batcher_;
  Metrics metrics_;
  std::atomic<std::uint64_t> next_job_id_{0};
  std::atomic<bool> stopped_{false};
  std::thread batcher_thread_;
  std::vector<std::thread> executor_threads_;
};

}  // namespace obx::serve

#include "serve/tenant.hpp"

#include <algorithm>
#include <chrono>

namespace obx::serve {

void TokenBucket::refill(Clock::time_point now) {
  if (now <= refilled_) return;
  const double elapsed = std::chrono::duration<double>(now - refilled_).count();
  tokens_ = std::min(quota_.effective_burst(), tokens_ + elapsed * quota_.rate_hz);
  refilled_ = now;
}

bool TokenBucket::try_acquire(Clock::time_point now) {
  if (quota_.rate_hz <= 0) return true;
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void TokenBucket::refund() {
  if (quota_.rate_hz <= 0) return;
  tokens_ = std::min(quota_.effective_burst(), tokens_ + 1.0);
}

double TokenBucket::tokens(Clock::time_point now) {
  refill(now);
  return tokens_;
}

TokenBucket* TenantTable::bucket_locked(const std::string& tenant,
                                        Clock::time_point now) {
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return &it->second;
  if (!default_quota_.has_value()) return nullptr;  // unlimited
  if (buckets_.size() >= kMaxBuckets) {
    // Past the cardinality cap: unseen ids share one default-quota bucket
    // instead of minting fresh state per id.
    if (!overflow_.has_value()) overflow_.emplace(*default_quota_, now);
    return &*overflow_;
  }
  return &buckets_.try_emplace(tenant, *default_quota_, now).first->second;
}

void TenantTable::set_quota(const std::string& tenant, TenantQuota quota,
                            Clock::time_point now) {
  std::lock_guard lock(mutex_);
  buckets_.insert_or_assign(tenant, TokenBucket(quota, now));
}

bool TenantTable::admit(const std::string& tenant, Clock::time_point now) {
  std::lock_guard lock(mutex_);
  TokenBucket* bucket = bucket_locked(tenant, now);
  return bucket == nullptr || bucket->try_acquire(now);
}

void TenantTable::refund(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end()) {
    it->second.refund();
  } else if (overflow_.has_value()) {
    // A past-the-cap tenant was charged against the shared bucket.
    overflow_->refund();
  }
}

std::optional<TenantQuota> TenantTable::quota_for(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second.quota();
  return default_quota_;
}

}  // namespace obx::serve

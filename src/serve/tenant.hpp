// Per-tenant admission quotas for the multi-tenant serving front end.
//
// A tenant is whoever a request claims to be submitted on behalf of (the
// network protocol carries the id verbatim).  Tenants are mutually
// distrusting: one tenant flooding the service must not be able to starve
// the others, so admission charges a per-tenant token bucket *before* the
// shared queue is touched.  Buckets are clock-injected — every method takes
// `now` — so quota behaviour is deterministic and unit-testable, exactly
// like the Batcher.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace obx::serve {

/// Token-bucket quota: sustained `rate_hz` jobs/s with bursts up to `burst`
/// jobs.  rate_hz <= 0 means unlimited (the bucket never throttles).
struct TenantQuota {
  double rate_hz = 0;
  /// Bucket capacity; <= 0 defaults to max(rate_hz, 1) — one second of
  /// sustained rate.
  double burst = 0;

  double effective_burst() const {
    return burst > 0 ? burst : (rate_hz > 1 ? rate_hz : 1.0);
  }
};

/// Classic token bucket, refilled lazily from the elapsed time between
/// try_acquire calls.  Not thread-safe on its own; TenantTable serialises.
class TokenBucket {
 public:
  TokenBucket(TenantQuota quota, Clock::time_point now)
      : quota_(quota), tokens_(quota.effective_burst()), refilled_(now) {}

  /// Takes one token if available.  Unlimited quotas always succeed.
  bool try_acquire(Clock::time_point now);

  /// Returns one token (an admission that was rolled back because the queue
  /// would have blocked a non-blocking caller; the retry re-charges it).
  void refund();

  double tokens(Clock::time_point now);
  const TenantQuota& quota() const { return quota_; }

 private:
  void refill(Clock::time_point now);

  TenantQuota quota_;
  double tokens_;
  Clock::time_point refilled_;
};

/// Thread-safe tenant id → quota bucket registry.  Tenants without an
/// explicit quota fall back to `default_quota` (when set) or run unlimited.
///
/// Cardinality is bounded: tenant ids are client-supplied and
/// unauthenticated, so with a default quota set, only the first kMaxBuckets
/// distinct ids get a private bucket — later unseen ids all draw from one
/// shared overflow bucket (also at default_quota).  An id-minting storm is
/// therefore throttled collectively instead of growing the table without
/// bound.  Explicitly configured quotas (set_quota) always get their own
/// bucket and count toward the cap.
class TenantTable {
 public:
  static constexpr std::size_t kMaxBuckets = 1024;

  explicit TenantTable(std::optional<TenantQuota> default_quota = std::nullopt)
      : default_quota_(default_quota) {}

  /// Installs (or replaces) `tenant`'s quota; a replacement starts a fresh
  /// bucket at full burst.
  void set_quota(const std::string& tenant, TenantQuota quota, Clock::time_point now);

  /// Charges one job against `tenant`'s bucket.  True = admit.
  bool admit(const std::string& tenant, Clock::time_point now);

  /// Returns one token to `tenant`'s bucket (rolled-back admission).
  void refund(const std::string& tenant);

  std::optional<TenantQuota> quota_for(const std::string& tenant) const;

 private:
  TokenBucket* bucket_locked(const std::string& tenant, Clock::time_point now);

  std::optional<TenantQuota> default_quota_;
  mutable std::mutex mutex_;
  std::map<std::string, TokenBucket> buckets_;
  /// Shared default-quota bucket for tenants first seen after the cap.
  std::optional<TokenBucket> overflow_;
};

}  // namespace obx::serve

// The command-line argument parser behind obx_cli.
#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace {

using obx::cli::Args;

Args parse(std::initializer_list<const char*> argv,
           const std::set<std::string>& flags = {},
           const std::set<std::string>& known = {}) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args::parse(static_cast<int>(v.size()), v.data(), flags, known);
}

TEST(Cli, PositionalAndOptions) {
  const Args args = parse({"run", "fft", "--n", "64", "--p=128"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "fft");
  EXPECT_EQ(args.get_int("n", 0), 64);
  EXPECT_EQ(args.get_int("p", 0), 128);
}

TEST(Cli, Defaults) {
  const Args args = parse({"run"});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("missing"));
}

TEST(Cli, BooleanFlags) {
  const Args args = parse({"--overlap", "--n", "4"}, {"overlap"});
  EXPECT_TRUE(args.get_bool("overlap"));
  EXPECT_EQ(args.get_int("n", 0), 4);
  EXPECT_THROW(parse({"--overlap=yes"}, {"overlap"}), std::logic_error);
}

TEST(Cli, EqualsSyntax) {
  const Args args = parse({"--model=dmm", "--ratio=2.5"});
  EXPECT_EQ(args.get("model", ""), "dmm");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 2.5);
}

TEST(Cli, Validation) {
  EXPECT_THROW(parse({"--n"}), std::logic_error);                       // missing value
  EXPECT_THROW(parse({"--n", "abc"}).get_int("n", 0), std::logic_error);
  EXPECT_THROW(parse({"--x", "1y"}).get_double("x", 0), std::logic_error);
  EXPECT_THROW(parse({"--bogus", "1"}, {}, {"n"}), std::logic_error);   // unknown
  EXPECT_NO_THROW(parse({"--n", "1"}, {}, {"n"}));
}

TEST(Cli, NegativeNumbers) {
  const Args args = parse({"--n", "-5", "--x", "-2.5"});
  EXPECT_EQ(args.get_int("n", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0), -2.5);
}

}  // namespace

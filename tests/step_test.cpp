// The instruction set: scalar ALU semantics and the bulk lane loop.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

Word f(double v) { return from_f64(v); }
Word i(std::int64_t v) { return from_i64(v); }

TEST(Alu, FloatArithmetic) {
  EXPECT_EQ(as_f64(apply_alu(Op::kAddF, f(1.5), f(2.25), 0, 0)), 3.75);
  EXPECT_EQ(as_f64(apply_alu(Op::kSubF, f(1.5), f(2.25), 0, 0)), -0.75);
  EXPECT_EQ(as_f64(apply_alu(Op::kMulF, f(3.0), f(-2.0), 0, 0)), -6.0);
  EXPECT_EQ(as_f64(apply_alu(Op::kDivF, f(7.0), f(2.0), 0, 0)), 3.5);
  EXPECT_EQ(as_f64(apply_alu(Op::kMinF, f(3.0), f(-2.0), 0, 0)), -2.0);
  EXPECT_EQ(as_f64(apply_alu(Op::kMaxF, f(3.0), f(-2.0), 0, 0)), 3.0);
  EXPECT_EQ(as_f64(apply_alu(Op::kNegF, f(3.0), 0, 0, 0)), -3.0);
}

TEST(Alu, FloatSpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(as_f64(apply_alu(Op::kAddF, f(inf), f(1.0), 0, 0)), inf);
  EXPECT_EQ(as_f64(apply_alu(Op::kMinF, f(inf), f(5.0), 0, 0)), 5.0);
  EXPECT_TRUE(std::isnan(as_f64(apply_alu(Op::kSubF, f(inf), f(inf), 0, 0))));
}

TEST(Alu, IntegerArithmetic) {
  EXPECT_EQ(as_i64(apply_alu(Op::kAddI, i(-3), i(5), 0, 0)), 2);
  EXPECT_EQ(as_i64(apply_alu(Op::kSubI, i(-3), i(5), 0, 0)), -8);
  EXPECT_EQ(as_i64(apply_alu(Op::kMulI, i(-3), i(5), 0, 0)), -15);
  EXPECT_EQ(as_i64(apply_alu(Op::kMinI, i(-3), i(5), 0, 0)), -3);
  EXPECT_EQ(as_i64(apply_alu(Op::kMaxI, i(-3), i(5), 0, 0)), 5);
}

TEST(Alu, IntegerWrapsTwosComplement) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(as_i64(apply_alu(Op::kAddI, i(max), i(1), 0, 0)),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Alu, Bitwise) {
  EXPECT_EQ(apply_alu(Op::kAnd, 0b1100, 0b1010, 0, 0), 0b1000u);
  EXPECT_EQ(apply_alu(Op::kOr, 0b1100, 0b1010, 0, 0), 0b1110u);
  EXPECT_EQ(apply_alu(Op::kXor, 0b1100, 0b1010, 0, 0), 0b0110u);
  EXPECT_EQ(apply_alu(Op::kShl, 1, 8, 0, 0), 256u);
  EXPECT_EQ(apply_alu(Op::kShr, 256, 4, 0, 0), 16u);
  EXPECT_EQ(apply_alu(Op::kShl, 1, 64, 0, 0), 1u);  // shift count masked to 6 bits
  EXPECT_EQ(apply_alu(Op::kNotU, 0, 0, 0, 0), ~Word{0});
}

TEST(Alu, Comparisons) {
  EXPECT_EQ(apply_alu(Op::kLtF, f(1.0), f(2.0), 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kLtF, f(2.0), f(1.0), 0, 0), 0u);
  EXPECT_EQ(apply_alu(Op::kLeF, f(2.0), f(2.0), 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kEqF, f(2.0), f(2.0), 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kLtI, i(-5), i(-4), 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kLeI, i(-4), i(-4), 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kEqI, 7, 7, 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kNeI, 7, 8, 0, 0), 1u);
  EXPECT_EQ(apply_alu(Op::kLtU, Word(-1), 0, 0, 0), 0u);  // unsigned compare
  EXPECT_EQ(apply_alu(Op::kLtI, Word(-1), 0, 0, 0), 1u);  // signed compare
}

TEST(Alu, ConditionalMoves) {
  // kSelect: cond ? b : c.
  EXPECT_EQ(apply_alu(Op::kSelect, 1, 42, 99, 7), 42u);
  EXPECT_EQ(apply_alu(Op::kSelect, 0, 42, 99, 7), 99u);
  // kCmovLtF: (a < b) ? c : old_dst — the paper's oblivious if.
  EXPECT_EQ(apply_alu(Op::kCmovLtF, f(1.0), f(2.0), 42, 7), 42u);
  EXPECT_EQ(apply_alu(Op::kCmovLtF, f(2.0), f(1.0), 42, 7), 7u);
  EXPECT_EQ(apply_alu(Op::kCmovLtI, i(-2), i(-1), 42, 7), 42u);
  EXPECT_EQ(apply_alu(Op::kCmovLtI, i(-1), i(-2), 42, 7), 7u);
}

TEST(Alu, NopAndMov) {
  EXPECT_EQ(apply_alu(Op::kNop, 1, 2, 3, 99), 99u);
  EXPECT_EQ(apply_alu(Op::kMov, 1, 2, 3, 99), 1u);
}

class BulkAluProperty : public ::testing::TestWithParam<Op> {};

TEST_P(BulkAluProperty, LaneLoopMatchesScalarSemantics) {
  const Op op = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) + 1);
  const std::size_t lanes = 67;  // odd count: exercises vector tails
  std::vector<Word> a(lanes), b(lanes), c(lanes), dst(lanes), expected(lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    // Mix float and integer bit patterns.
    a[j] = (j % 2 == 0) ? from_f64(rng.next_double(-10, 10)) : rng.next_u64();
    b[j] = (j % 3 == 0) ? from_f64(rng.next_double(-10, 10)) : rng.next_below(100);
    c[j] = rng.next_u64();
    dst[j] = rng.next_u64();
    expected[j] = apply_alu(op, a[j], b[j], c[j], dst[j]);
  }
  bulk_alu(op, dst.data(), a.data(), b.data(), c.data(), lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    EXPECT_EQ(dst[j], expected[j]) << "lane " << j << " op " << to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BulkAluProperty,
    ::testing::Values(Op::kNop, Op::kAddF, Op::kSubF, Op::kMulF, Op::kDivF, Op::kMinF,
                      Op::kMaxF, Op::kNegF, Op::kAddI, Op::kSubI, Op::kMulI, Op::kMinI,
                      Op::kMaxI, Op::kAnd, Op::kOr, Op::kXor, Op::kShl, Op::kShr,
                      Op::kNotU, Op::kLtF, Op::kLeF, Op::kEqF, Op::kLtI, Op::kLeI,
                      Op::kEqI, Op::kNeI, Op::kLtU, Op::kSelect, Op::kCmovLtF,
                      Op::kCmovLtI, Op::kMov));

TEST(Step, Factories) {
  const Step l = Step::load(3, 100);
  EXPECT_EQ(l.kind, StepKind::kLoad);
  EXPECT_EQ(l.dst, 3);
  EXPECT_EQ(l.addr, 100u);
  EXPECT_TRUE(l.is_memory());

  const Step s = Step::store(200, 4);
  EXPECT_EQ(s.kind, StepKind::kStore);
  EXPECT_EQ(s.src0, 4);
  EXPECT_TRUE(s.is_memory());

  const Step a = Step::alu(Op::kAddF, 1, 2, 3);
  EXPECT_EQ(a.kind, StepKind::kAlu);
  EXPECT_FALSE(a.is_memory());

  const Step m = Step::immediate(5, 77);
  EXPECT_EQ(m.kind, StepKind::kImm);
  EXPECT_EQ(m.imm, 77u);
  EXPECT_EQ(Step::imm_f64(5, 1.0).imm, from_f64(1.0));
}

TEST(Step, ToStringCoversKinds) {
  EXPECT_EQ(to_string(Step::load(3, 100)), "load r3, [100]");
  EXPECT_EQ(to_string(Step::store(200, 4)), "store [200], r4");
  EXPECT_NE(to_string(Step::alu(Op::kAddF, 1, 2, 3)).find("addf"), std::string::npos);
  EXPECT_NE(to_string(Step::immediate(5, 255)).find("imm r5"), std::string::npos);
}

}  // namespace

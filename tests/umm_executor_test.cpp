// Cycle-accurate UMM executor: functional results must equal the host
// executor; simulated times must equal the closed-form TimingEstimator.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "common/rng.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

std::vector<Word> flat_inputs(const algos::Algorithm& algo, std::size_t n, std::size_t p,
                              Rng& rng) {
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

struct SimCase {
  std::string algo;
  std::size_t n;
  std::size_t p;
  std::uint32_t width;
  std::uint32_t latency;
  Arrangement arrangement;
  umm::Model model;
};

class SimulatorAgreement : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorAgreement, FunctionalMatchesHostAndTimeMatchesEstimator) {
  const SimCase c = GetParam();
  const algos::Algorithm& algo = algos::find(c.algo);
  const trace::Program program = algo.make_program(c.n);
  Rng rng(99);
  const std::vector<Word> inputs = flat_inputs(algo, c.n, c.p, rng);

  const umm::MachineConfig cfg{.width = c.width, .latency = c.latency};
  const Layout layout = make_layout(program, c.p, c.arrangement);

  const UmmBulkExecutor sim(c.model, cfg, layout);
  const UmmRunResult sim_run = sim.run(program, inputs);

  const HostBulkExecutor host(layout);
  const HostRunResult host_run = host.run(program, inputs);
  EXPECT_EQ(sim_run.memory, host_run.memory) << "functional divergence";

  const TimingEstimator estimator(c.model, cfg, layout);
  const TimingResult est = estimator.run(program);
  EXPECT_EQ(sim_run.time_units, est.time_units) << "timing fast path diverges";
  EXPECT_EQ(sim_run.stats.stages_total, est.stages_total);
  EXPECT_EQ(sim_run.stats.warps_dispatched, est.warps_dispatched);
  EXPECT_EQ(sim_run.stats.access_steps, est.access_steps);
}

std::vector<SimCase> sim_cases() {
  std::vector<SimCase> cases;
  for (const Arrangement arr : {Arrangement::kRowWise, Arrangement::kColumnWise}) {
    for (const umm::Model model : {umm::Model::kUmm, umm::Model::kDmm}) {
      cases.push_back({"prefix-sums", 32, 64, 8, 5, arr, model});
      cases.push_back({"prefix-sums", 7, 20, 4, 3, arr, model});   // n < w, tail warp
      cases.push_back({"opt-triangulation", 8, 16, 8, 20, arr, model});
      cases.push_back({"fft", 8, 12, 4, 2, arr, model});
      cases.push_back({"bitonic-sort", 16, 24, 8, 7, arr, model});
      cases.push_back({"edit-distance", 4, 9, 4, 5, arr, model});
      cases.push_back({"tea", 2, 16, 8, 3, arr, model});
      cases.push_back({"convolution", 16, 10, 4, 4, arr, model});
      cases.push_back({"matmul", 4, 16, 8, 11, arr, model});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimulatorAgreement, ::testing::ValuesIn(sim_cases()));

TEST(UmmExecutor, ComputeChargingMatchesEstimator) {
  const algos::Algorithm& algo = algos::find("tea");
  const trace::Program program = algo.make_program(2);
  const std::size_t p = 8;
  Rng rng(5);
  const std::vector<Word> inputs = flat_inputs(algo, 2, p, rng);

  umm::MachineConfig cfg{.width = 4, .latency = 3};
  cfg.count_compute = true;
  const Layout layout = Layout::column_wise(p, program.memory_words);
  const UmmRunResult sim = UmmBulkExecutor(umm::Model::kUmm, cfg, layout).run(program, inputs);
  const TimingResult est = TimingEstimator(umm::Model::kUmm, cfg, layout).run(program);
  EXPECT_EQ(sim.time_units, est.time_units);
  EXPECT_GT(est.compute_steps, 0u);
}

TEST(UmmExecutor, ColumnWiseBeatsRowWiseAtScale) {
  // The paper's core claim, at simulator scale: with p >> w and a nontrivial
  // latency, the coalesced arrangement is faster by roughly w.
  const trace::Program program = algos::find("prefix-sums").make_program(32);
  const std::size_t p = 256;
  Rng rng(6);
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::vector<Word> inputs = flat_inputs(algo, 32, p, rng);

  const umm::MachineConfig cfg{.width = 32, .latency = 1};
  const auto row = UmmBulkExecutor(umm::Model::kUmm, cfg,
                                   Layout::row_wise(p, program.memory_words))
                       .run(program, inputs);
  const auto col = UmmBulkExecutor(umm::Model::kUmm, cfg,
                                   Layout::column_wise(p, program.memory_words))
                       .run(program, inputs);
  EXPECT_LT(col.time_units, row.time_units);
  const double ratio =
      static_cast<double>(row.time_units) / static_cast<double>(col.time_units);
  EXPECT_GT(ratio, 16.0);  // ideal is w = 32
  EXPECT_LE(ratio, 32.5);
}

}  // namespace

// Compiled-backend equivalence fuzz: for every registry algorithm, all four
// arrangements (row, column, blocked, conflict-free), and awkward lane
// counts, the compiled lane-tiled backend — and, where available, the JIT —
// must produce bit-identical arranged memory to the interpreted backend, and
// both must match the scalar interpreter per lane.  The same sweep pins the
// compiled backend to the scalar SIMD tier and to the best tier this
// CPU/build supports and asserts those are bit-identical too — the
// lane-vectorization contract (including the float-op algorithms, whose
// lane-wise IEEE results must not change with vector width).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "common/rng.hpp"
#include "common/simd_isa.hpp"
#include "exec/backend.hpp"
#include "exec/jit/jit_program.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

std::vector<Word> flat_inputs(const algos::Algorithm& algo, std::size_t n, std::size_t p,
                              Rng& rng) {
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

/// A block size that divides p, > 1 where possible, to make blocked layouts
/// non-degenerate.
std::size_t block_for(std::size_t p) {
  switch (p) {
    case 5: return 5;
    case 33: return 11;
    case 257: return 257;
    default: return 1;
  }
}

using Case = std::tuple<std::string, Arrangement, std::size_t>;

class ExecEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(ExecEquivalence, CompiledMatchesInterpretedAndInterpreter) {
  const auto& [name, arrangement, p] = GetParam();
  const algos::Algorithm& algo = algos::find(name);
  const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
  const trace::Program program = algo.make_program(n);

  Rng rng(0xE9u ^ (p * 977));
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);

  // Blocked gets a p-dividing block; conflict-free gets a non-trivial pad
  // stride (3) so the padded scatter/gather path is what is being tested.
  const Layout layout =
      arrangement == Arrangement::kBlocked
          ? Layout::blocked(p, program.memory_words, block_for(p))
          : (arrangement == Arrangement::kConflictFree
                 ? Layout::conflict_free(p, program.memory_words, 3)
                 : make_layout(program, p, arrangement));

  const HostBulkExecutor interp(
      layout, HostBulkExecutor::Options{.backend = exec::Backend::kInterpreted});
  // Two workers so compiled chunking × tiling is exercised alongside the
  // single-chunk interpreted reference.
  const HostBulkExecutor compiled(
      layout,
      HostBulkExecutor::Options{.workers = 2, .backend = exec::Backend::kCompiled});

  const HostRunResult a = interp.run(program, inputs);
  const HostRunResult b = compiled.run(program, inputs);
  EXPECT_EQ(a.backend, exec::Backend::kInterpreted);
  ASSERT_EQ(b.backend, exec::Backend::kCompiled) << "program failed to compile";

  // Bit-identical arranged memory — stronger than comparing outputs.
  ASSERT_EQ(a.memory, b.memory) << name << " " << layout.name() << " p=" << p;
  EXPECT_EQ(a.counts.total(), b.counts.total());
  EXPECT_EQ(a.counts.memory(), b.counts.memory());

  // SIMD tiers in one process: pin the compiled backend to kScalar and to
  // the widest supported tier; both must match the default run bit-for-bit.
  const HostBulkExecutor compiled_scalar(
      layout, HostBulkExecutor::Options{.workers = 2,
                                        .backend = exec::Backend::kCompiled,
                                        .simd = SimdIsa::kScalar});
  const HostRunResult s = compiled_scalar.run(program, inputs);
  ASSERT_EQ(s.backend, exec::Backend::kCompiled);
  EXPECT_EQ(s.simd, SimdIsa::kScalar);
  ASSERT_EQ(s.memory, b.memory)
      << name << " " << layout.name() << " p=" << p << ": scalar vs "
      << to_string(b.simd);
  const SimdIsa best = detect_simd_isa();
  if (best != SimdIsa::kScalar) {
    const HostBulkExecutor compiled_best(
        layout, HostBulkExecutor::Options{.workers = 2,
                                          .backend = exec::Backend::kCompiled,
                                          .simd = best});
    const HostRunResult v = compiled_best.run(program, inputs);
    ASSERT_EQ(v.backend, exec::Backend::kCompiled);
    EXPECT_EQ(v.simd, best);
    ASSERT_EQ(v.memory, s.memory)
        << name << " " << layout.name() << " p=" << p << ": " << to_string(best)
        << " vs scalar";
  }

  // JIT leg: where copy-and-patch is available, the emitted code must also
  // be bit-identical to the interpreted reference on this arrangement.
  if (exec::jit_available()) {
    const HostBulkExecutor jitted(
        layout,
        HostBulkExecutor::Options{.workers = 2, .backend = exec::Backend::kJit});
    const HostRunResult j = jitted.run(program, inputs);
    ASSERT_EQ(j.backend, exec::Backend::kJit) << "program failed to JIT";
    ASSERT_EQ(j.memory, a.memory)
        << name << " " << layout.name() << " p=" << p << ": jit vs interpreted";
  }

  const std::vector<Word> outputs = compiled.gather_outputs(program, b.memory);
  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const Word> input(inputs.data() + j * program.input_words,
                                      program.input_words);
    const trace::InterpreterResult ref = trace::interpret(program, input);
    const auto expected = ref.output(program);
    for (std::size_t i = 0; i < program.output_words; ++i) {
      ASSERT_EQ(outputs[j * program.output_words + i], expected[i])
          << name << " lane " << j << " word " << i;
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& algo : algos::registry()) {
    for (const Arrangement arrangement :
         {Arrangement::kRowWise, Arrangement::kColumnWise, Arrangement::kBlocked,
          Arrangement::kConflictFree}) {
      for (const std::size_t p : {1u, 5u, 33u, 257u}) {
        cases.emplace_back(algo.name, arrangement, p);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsArrangementsLanes, ExecEquivalence,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           std::string name = std::get<0>(param_info.param) + "_" +
                                              to_string(std::get<1>(param_info.param)) +
                                              "_p" +
                                              std::to_string(std::get<2>(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Explicit tile sizes, including ones that do not divide p, must not change
// results (partial tiles take the remainder path).
TEST(ExecEquivalenceTiles, TileSizeIsPureTuning) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 32;
  const std::size_t p = 203;
  const trace::Program program = algo.make_program(n);
  Rng rng(77);
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);
  const Layout layout = Layout::column_wise(p, program.memory_words);

  const HostRunResult ref =
      HostBulkExecutor(layout, {.backend = exec::Backend::kInterpreted})
          .run(program, inputs);
  for (const std::size_t tile : {1u, 3u, 64u, 256u, 1024u}) {
    const HostRunResult got =
        HostBulkExecutor(layout,
                         {.backend = exec::Backend::kCompiled, .tile_lanes = tile})
            .run(program, inputs);
    ASSERT_EQ(got.backend, exec::Backend::kCompiled);
    ASSERT_EQ(ref.memory, got.memory) << "tile=" << tile;
  }
}

// Lane counts that are not multiples of any vector width: every tile ends in
// a scalar epilogue (for p < width the whole run is epilogue).  Uses a
// float-heavy algorithm so IEEE tail handling is what is being exercised.
TEST(ExecEquivalenceRaggedTail, OddLaneCountsMatchScalarTier) {
  const algos::Algorithm& algo = algos::find("convolution");
  const std::size_t n = algo.test_sizes.front();
  const trace::Program program = algo.make_program(n);
  for (const std::size_t p : {1u, 3u, 7u, 9u, 63u, 65u}) {
    Rng rng(0xA7u + p);
    const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);
    const Layout layout = Layout::column_wise(p, program.memory_words);
    const HostRunResult scalar =
        HostBulkExecutor(layout, {.backend = exec::Backend::kCompiled,
                                  .simd = SimdIsa::kScalar})
            .run(program, inputs);
    const HostRunResult best =
        HostBulkExecutor(layout, {.backend = exec::Backend::kCompiled,
                                  .simd = detect_simd_isa()})
            .run(program, inputs);
    ASSERT_EQ(scalar.backend, exec::Backend::kCompiled);
    ASSERT_EQ(best.backend, exec::Backend::kCompiled);
    ASSERT_EQ(scalar.memory, best.memory)
        << "p=" << p << " tier=" << to_string(best.simd);
  }
}

// The tile-size rounding rule: requested sizes >= the vector width round
// down to a multiple of it; smaller requests are honoured; auto sizes are
// powers of two (multiples of every width); blocked layouts prefer a
// vector-multiple divisor of the block and fall back to a plain divisor.
TEST(ResolveTileLanes, RoundsToVectorWidthMultiples) {
  const Layout col = Layout::column_wise(4096, 8);
  EXPECT_EQ(exec::resolve_tile_lanes(100, 4, col, 8), 96u);
  EXPECT_EQ(exec::resolve_tile_lanes(96, 4, col, 8), 96u);
  EXPECT_EQ(exec::resolve_tile_lanes(100, 4, col, 1), 100u);
  // Requests below the width are honoured as-is (pure scalar tail).
  EXPECT_EQ(exec::resolve_tile_lanes(3, 4, col, 8), 3u);
  // Auto tiles are powers of two regardless of width.
  const std::size_t auto_tile = exec::resolve_tile_lanes(0, 4, col, 8);
  EXPECT_EQ(auto_tile % 8, 0u);
  EXPECT_EQ(auto_tile, exec::resolve_tile_lanes(0, 4, col, 1));
  // Blocked: tile must divide the block; prefer a vector-width multiple.
  const Layout blocked24 = Layout::blocked(48, 8, 24);
  EXPECT_EQ(exec::resolve_tile_lanes(24, 4, blocked24, 4), 24u);
  EXPECT_EQ(exec::resolve_tile_lanes(23, 4, blocked24, 4), 12u);
  // No vector-multiple divisor exists: fall back to the plain divisor rule.
  const Layout blocked9 = Layout::blocked(27, 8, 9);
  EXPECT_EQ(exec::resolve_tile_lanes(9, 4, blocked9, 4), 9u);
}

// Degenerate inputs must always yield a valid (>= 1 lane) tile: a zero tile
// would turn the executor's tile loop into an infinite loop or a div-by-zero.
TEST(ResolveTileLanes, DegenerateInputsYieldAtLeastOneLane) {
  // Occupancy below every vector width.
  const Layout one = Layout::column_wise(1, 8);
  EXPECT_EQ(exec::resolve_tile_lanes(0, 4, one, 8), 1u);
  EXPECT_EQ(exec::resolve_tile_lanes(100, 4, one, 8), 1u);
  const Layout three = Layout::column_wise(3, 8);
  EXPECT_GE(exec::resolve_tile_lanes(0, 4, three, 8), 1u);
  EXPECT_GE(exec::resolve_tile_lanes(7, 4, three, 8), 1u);
  // reg_count == 0 (a store-only or empty program).
  EXPECT_GE(exec::resolve_tile_lanes(0, 0, Layout::column_wise(64, 8), 8), 1u);
  // Explicit requests of 1 survive vector-width rounding.
  EXPECT_EQ(exec::resolve_tile_lanes(1, 4, Layout::column_wise(64, 8), 8), 1u);
  // Blocked with block = 1 (prime p): the only divisor is 1.
  EXPECT_EQ(exec::resolve_tile_lanes(0, 4, Layout::blocked(7, 8, 1), 8), 1u);
  // Blocked block smaller than the vector width: no vector-multiple divisor
  // exists at all; the plain-divisor fallback must still be >= 1.
  const std::size_t ragged =
      exec::resolve_tile_lanes(8, 4, Layout::blocked(9, 8, 3), 8);
  EXPECT_GE(ragged, 1u);
  EXPECT_EQ(3u % ragged, 0u);  // still divides the block
  // Huge vector width relative to everything else.
  EXPECT_GE(exec::resolve_tile_lanes(2, 1, Layout::column_wise(2, 8), 64), 1u);
}

}  // namespace

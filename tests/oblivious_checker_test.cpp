// Mechanical obliviousness checking (the paper's Section III definition).
#include <gtest/gtest.h>

#include "algos/prefix_sums.hpp"
#include "trace/oblivious_checker.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

TEST(Checker, PrefixSumsProgramIsOblivious) {
  const auto report = check_program(algos::prefix_sums_program(32), 3);
  EXPECT_TRUE(report.oblivious);
  // Access function of the paper: a(2i) = a(2i+1) = i.
  ASSERT_EQ(report.access_function.size(), 64u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(report.access_function[2 * i], i);
    EXPECT_EQ(report.access_function[2 * i + 1], i);
  }
}

TEST(Checker, ObliviousCallbackAccepted) {
  // Oblivious max-scan: reads every element, writes a running max — the
  // *values* depend on data, the addresses do not.
  auto algorithm = [](TraceMemory& mem) {
    double best = -1e300;
    for (Addr i = 0; i < mem.size(); ++i) {
      const double v = mem.load_f64(i);
      if (v > best) best = v;  // data-dependent values are fine
      mem.store_f64(i, best);
    }
  };
  const auto report = check_callback(algorithm, 16, 5);
  EXPECT_TRUE(report.oblivious) << report.detail;
  EXPECT_EQ(report.access_function.size(), 32u);
}

TEST(Checker, DataDependentAddressRejected) {
  // A binary-search-like probe: the address touched depends on the data.
  auto algorithm = [](TraceMemory& mem) {
    const double v = mem.load_f64(0);
    const Addr next = v < 0 ? 1 : 2;
    (void)mem.load_f64(next);
  };
  const auto report = check_callback(algorithm, 8, 8);
  EXPECT_FALSE(report.oblivious);
  EXPECT_NE(report.detail.find("depends on input data"), std::string::npos);
}

TEST(Checker, DataDependentTraceLengthRejected) {
  // Early exit on sign: trace length varies with the input.
  auto algorithm = [](TraceMemory& mem) {
    for (Addr i = 0; i < mem.size(); ++i) {
      if (mem.load_f64(i) < 0) return;
    }
  };
  const auto report = check_callback(algorithm, 8, 8);
  EXPECT_FALSE(report.oblivious);
}

TEST(Checker, CallbackNeedsTwoTrials) {
  auto algorithm = [](TraceMemory&) {};
  EXPECT_THROW(check_callback(algorithm, 4, 1), std::logic_error);
}

TEST(Checker, TraceMemoryBoundsChecked) {
  TraceMemory mem(std::vector<Word>(4, 0));
  EXPECT_THROW(mem.load(10), std::logic_error);
  EXPECT_THROW(mem.store(10, 1), std::logic_error);
}

TEST(Checker, TraceMemoryRecordsOrder) {
  TraceMemory mem(std::vector<Word>(4, 0));
  mem.store(2, 1);
  (void)mem.load(0);
  mem.store(3, 1);
  const std::vector<Addr> expected{2, 0, 3};
  EXPECT_EQ(mem.trace(), expected);
}

}  // namespace

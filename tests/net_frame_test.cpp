// Wire protocol codec: round trips, incremental reassembly, and strict
// rejection of malformed frames.
#include <gtest/gtest.h>

#include <vector>

#include "check/net_fault.hpp"
#include "net/frame.hpp"

namespace {

using namespace obx;
using namespace obx::net;

SubmitFrame sample_submit() {
  SubmitFrame f;
  f.request_id = 42;
  f.program_id = "prefix-sums";
  f.tenant = "tenant-a";
  f.priority = serve::Priority::kHigh;
  f.deadline_us = 1500;
  f.input = {1, 2, 3, 0xffffffffffffffffULL};
  return f;
}

TEST(NetFrame, SubmitRoundTrip) {
  const std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  ASSERT_GE(bytes.size(), kFrameHeaderBytes);

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_EQ(reader.next(out), FrameReader::Status::kFrame);
  const auto& decoded = std::get<SubmitFrame>(out);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.program_id, "prefix-sums");
  EXPECT_EQ(decoded.tenant, "tenant-a");
  EXPECT_EQ(decoded.priority, serve::Priority::kHigh);
  EXPECT_EQ(decoded.deadline_us, 1500);
  EXPECT_EQ(decoded.input, sample_submit().input);
  EXPECT_EQ(reader.next(out), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetFrame, ResponseAndErrorRoundTrip) {
  ResponseFrame r;
  r.request_id = 7;
  r.status = obx::serve::JobStatus::kShed;
  r.deadline_missed = true;
  r.batch_lanes = 128;
  r.queue_delay_us = 250;
  r.latency_us = 900;
  r.output = {10, 20};
  ErrorFrame e;
  e.request_id = 8;
  e.code = ErrorCode::kUnknownProgram;
  e.message = "no such program";

  std::vector<std::uint8_t> bytes;
  encode_frame(Frame{r}, bytes);
  encode_frame(Frame{e}, bytes);

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_EQ(reader.next(out), FrameReader::Status::kFrame);
  const auto& dr = std::get<ResponseFrame>(out);
  EXPECT_EQ(dr.status, obx::serve::JobStatus::kShed);
  EXPECT_TRUE(dr.deadline_missed);
  EXPECT_EQ(dr.output, r.output);
  ASSERT_EQ(reader.next(out), FrameReader::Status::kFrame);
  const auto& de = std::get<ErrorFrame>(out);
  EXPECT_EQ(de.code, ErrorCode::kUnknownProgram);
  EXPECT_EQ(de.message, "no such program");
}

TEST(NetFrame, ByteAtATimeReassembly) {
  const std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  FrameReader reader;
  Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(&bytes[i], 1);
    ASSERT_EQ(reader.next(out), FrameReader::Status::kNeedMore)
        << "frame completed early at byte " << i;
  }
  reader.feed(&bytes.back(), 1);
  ASSERT_EQ(reader.next(out), FrameReader::Status::kFrame);
  EXPECT_EQ(std::get<SubmitFrame>(out).program_id, "prefix-sums");
}

TEST(NetFrame, TruncatedHeaderIsNeedMoreNotError) {
  const std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  FrameReader reader;
  reader.feed(bytes.data(), kFrameHeaderBytes - 1);
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kNeedMore);
  EXPECT_FALSE(reader.failed());
}

TEST(NetFrame, BadMagicPoisonsTheStream) {
  std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  bytes[0] ^= 0xff;
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
  EXPECT_TRUE(reader.failed());
  // Poisoned for good: even a subsequent valid frame is refused.
  const std::vector<std::uint8_t> good = encode(Frame{sample_submit()});
  reader.feed(good.data(), good.size());
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
}

TEST(NetFrame, BadVersionRejected) {
  std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  bytes[4] = 99;
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
}

TEST(NetFrame, OversizedLengthRejectedWithoutAllocating) {
  std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayloadBytes) + 1;
  bytes[8] = static_cast<std::uint8_t>(huge & 0xff);
  bytes[9] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  bytes[10] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  bytes[11] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  FrameReader reader;
  reader.feed(bytes.data(), kFrameHeaderBytes);  // header alone must suffice
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
}

TEST(NetFrame, UnknownTypeRejected) {
  std::vector<std::uint8_t> bytes = encode(Frame{sample_submit()});
  bytes[5] = 200;
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
}

TEST(NetFrame, TrailingPayloadBytesRejected) {
  SubmitFrame f = sample_submit();
  std::vector<std::uint8_t> bytes = encode(Frame{f});
  // Grow the payload by one byte and patch the header length to match: the
  // declared length now exceeds what the submit payload parses to.
  bytes.push_back(0);
  const std::uint32_t length =
      static_cast<std::uint32_t>(bytes.size() - kFrameHeaderBytes);
  bytes[8] = static_cast<std::uint8_t>(length & 0xff);
  bytes[9] = static_cast<std::uint8_t>((length >> 8) & 0xff);
  bytes[10] = static_cast<std::uint8_t>((length >> 16) & 0xff);
  bytes[11] = static_cast<std::uint8_t>((length >> 24) & 0xff);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(reader.next(out), FrameReader::Status::kError);
}

TEST(NetFrame, HostileTenantNamesSurviveRoundTrip) {
  SubmitFrame f = sample_submit();
  f.tenant = "evil\"name\\with\nnewlines\x01";
  const std::vector<std::uint8_t> bytes = encode(Frame{f});
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_EQ(reader.next(out), FrameReader::Status::kFrame);
  EXPECT_EQ(std::get<SubmitFrame>(out).tenant, f.tenant);
}

TEST(NetFrame, FuzzHarnessFindsNoViolations) {
  obx::check::FrameFuzzOptions options;
  options.seed = 20260808;
  options.roundtrips = 150;
  options.mutations = 300;
  const obx::check::FrameFuzzReport report = obx::check::run_frame_fuzz(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.roundtrips, 150u);
  EXPECT_EQ(report.mutations, 300u);
  EXPECT_GT(report.mutations_rejected, 0u);
}

}  // namespace

// The composed machine: functional memory + time-unit accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "umm/machine.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

MachineConfig small_config() { return MachineConfig{.width = 4, .latency = 5}; }

TEST(Machine, ReadBackWrites) {
  Machine m(Model::kUmm, small_config(), 64);
  const std::vector<Addr> addrs{0, 1, 2, 3};
  const std::vector<Word> values{10, 20, 30, 40};
  m.step_write(addrs, values);
  std::vector<Word> out(4, 0);
  m.step_read(addrs, out);
  EXPECT_EQ(out, values);
}

TEST(Machine, CoalescedWarpTiming) {
  // One warp of 4 lanes into one aligned address group: l time units.
  Machine m(Model::kUmm, small_config(), 64);
  const std::vector<Addr> addrs{8, 9, 10, 11};
  const std::vector<Word> values{1, 2, 3, 4};
  EXPECT_EQ(m.step_write(addrs, values), 5u);
  EXPECT_EQ(m.time_units(), 5u);
}

TEST(Machine, PaperFigure4TwoWarps) {
  // 8 lanes = 2 warps at w = 4.  First warp spans 3 groups, second spans 1:
  // the step completes in 3 + 1 + 5 - 1 = 8 time units.
  Machine m(Model::kUmm, small_config(), 64);
  const std::vector<Addr> addrs{0, 5, 6, 10, 16, 17, 18, 19};
  std::vector<Word> out(8, 0);
  EXPECT_EQ(m.step_read(addrs, out), 8u);
  EXPECT_EQ(m.stats().warps_dispatched, 2u);
  EXPECT_EQ(m.stats().stages_total, 4u);
}

TEST(Machine, InactiveLanesUntouched) {
  Machine m(Model::kUmm, small_config(), 16);
  const std::vector<Addr> w_addrs{0, 1, 2, 3};
  const std::vector<Word> w_vals{7, 7, 7, 7};
  m.step_write(w_addrs, w_vals);

  std::vector<Addr> addrs{0, kInvalidAddr, 2, kInvalidAddr};
  std::vector<Word> out{99, 99, 99, 99};
  m.step_read(addrs, out);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 99u);  // untouched
  EXPECT_EQ(out[2], 7u);
  EXPECT_EQ(out[3], 99u);
}

TEST(Machine, FullyInactiveStepIsFree) {
  Machine m(Model::kUmm, small_config(), 16);
  std::vector<Addr> addrs(4, kInvalidAddr);
  std::vector<Word> out(4, 0);
  EXPECT_EQ(m.step_read(addrs, out), 0u);
  EXPECT_EQ(m.time_units(), 0u);
  EXPECT_EQ(m.stats().access_steps, 0u);
}

TEST(Machine, ComputeStepsFreeByDefault) {
  Machine m(Model::kUmm, small_config(), 16);
  EXPECT_EQ(m.step_compute(), 0u);
  EXPECT_EQ(m.time_units(), 0u);
  EXPECT_EQ(m.stats().compute_steps, 1u);
}

TEST(Machine, ComputeStepsChargedWhenEnabled) {
  MachineConfig cfg = small_config();
  cfg.count_compute = true;
  Machine m(Model::kUmm, cfg, 16);
  EXPECT_EQ(m.step_compute(), 1u);
  EXPECT_EQ(m.time_units(), 1u);
}

TEST(Machine, DmmBankConflictTiming) {
  // w = 4 lanes hitting addresses 0,4,8,12: all bank 0 → 4 stages on the
  // DMM (4 + 5 - 1 = 8 units), but 4 groups on the UMM too (same here).
  const std::vector<Addr> conflict{0, 4, 8, 12};
  std::vector<Word> out(4, 0);
  Machine dmm(Model::kDmm, small_config(), 64);
  EXPECT_EQ(dmm.step_read(conflict, out), 8u);

  // Broadcast: 1 group on the UMM (5 units) vs 4-way conflict on the DMM (8).
  const std::vector<Addr> broadcast{3, 3, 3, 3};
  Machine umm2(Model::kUmm, small_config(), 64);
  Machine dmm2(Model::kDmm, small_config(), 64);
  EXPECT_EQ(umm2.step_read(broadcast, out), 5u);
  EXPECT_EQ(dmm2.step_read(broadcast, out), 8u);
}

TEST(Machine, MismatchedSpansRejected) {
  Machine m(Model::kUmm, small_config(), 16);
  const std::vector<Addr> addrs{0, 1};
  std::vector<Word> out(3, 0);
  EXPECT_THROW(m.step_read(addrs, out), std::logic_error);
}

TEST(Machine, SerializedStepsSumLatency) {
  // t dependent steps, each one coalesced warp: total = t * l.
  Machine m(Model::kUmm, small_config(), 64);
  const std::vector<Addr> addrs{0, 1, 2, 3};
  std::vector<Word> out(4, 0);
  for (int i = 0; i < 10; ++i) m.step_read(addrs, out);
  EXPECT_EQ(m.time_units(), 50u);
  EXPECT_EQ(m.stats().access_steps, 10u);
}

}  // namespace

// Build-sanity smoke test: one end-to-end pass through every major module.
#include <gtest/gtest.h>

#include "algos/prefix_sums.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "umm/cost_model.hpp"

namespace {

using namespace obx;

TEST(Smoke, EndToEndPrefixSums) {
  const std::size_t n = 16;
  const std::size_t p = 8;
  const trace::Program program = algos::prefix_sums_program(n);

  Rng rng(1);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::prefix_sums_random_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }

  const bulk::BulkOutputs outputs =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);
  ASSERT_EQ(outputs.count(), p);

  for (std::size_t j = 0; j < p; ++j) {
    const auto expected = algos::prefix_sums_reference(
        n, std::span<const Word>(inputs).subspan(j * n, n));
    const auto got = outputs.output(j);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], expected[i]) << "lane " << j;
  }
}

}  // namespace

#!/usr/bin/env bash
# Golden-plan check: `obx_cli plan <algorithm>` must print exactly the
# checked-in decision record for every program in the registry.  Any drift in
# the optimise/compile/arrange/tile pipeline (or in the plan fingerprint)
# shows up as a diff here before it shows up as a perf or semantics surprise.
#
#   check_plan_golden.sh <obx_cli> <golden_dir>            # diff (CI mode)
#   check_plan_golden.sh <obx_cli> <golden_dir> --update   # regenerate goldens
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <obx_cli> <golden_dir> [--update]" >&2
  exit 2
fi

cli="$1"
golden_dir="$2"
mode="${3:-check}"

# Plans record the active SIMD tier (and fold it into the fingerprint), which
# depends on the host CPU.  Pin the scalar tier so the goldens are
# host-independent; the SIMD tiers themselves are covered by
# exec_equivalence_test, which asserts bit-identical results in-process.
export OBX_SIMD=scalar
# Likewise the CorePool topology (worker count + pinning policy) lands in
# the provenance and the fingerprint; pin a one-worker unpinned pool so the
# goldens don't depend on the runner's core count.  The real pool shapes are
# covered by core_pool_test / fuzz_differential_test in-process.
export OBX_WORKERS=1
export OBX_PIN=0
# JIT emission is host-dependent (x86-64 Linux only) and its code size lands
# in the provenance and the fingerprint; pin it off so the goldens read
# "skipped (disabled)" on every host.  The JIT itself is covered by
# exec_jit_test / fuzz_differential_test in-process.
export OBX_JIT=0

if [[ "$mode" == "--update" ]]; then
  mkdir -p "$golden_dir"
fi

failures=0
count=0
while IFS= read -r algo; do
  count=$((count + 1))
  golden="$golden_dir/$algo.txt"
  if [[ "$mode" == "--update" ]]; then
    "$cli" plan "$algo" > "$golden"
    echo "updated $golden"
    continue
  fi
  if [[ ! -f "$golden" ]]; then
    echo "MISSING golden for '$algo' ($golden); run with --update" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! diff -u "$golden" <("$cli" plan "$algo"); then
    echo "PLAN DRIFT for '$algo' (golden: $golden); if intended, regenerate" \
         "with: $0 $cli $golden_dir --update" >&2
    failures=$((failures + 1))
  fi
done < <("$cli" list --names)

if [[ "$count" -eq 0 ]]; then
  echo "no algorithms listed by '$cli list --names'" >&2
  exit 1
fi

if [[ "$mode" != "--update" ]]; then
  if [[ "$failures" -ne 0 ]]; then
    echo "$failures/$count plans drifted from their goldens" >&2
    exit 1
  fi
  echo "all $count plans match their goldens"
fi

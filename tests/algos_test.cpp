// Registry-wide algorithm sweep: every algorithm, every declared size —
// step counts match the closed form, the interpreter matches the native
// reference bit-for-bit, and the program is oblivious.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "trace/oblivious_checker.hpp"

namespace {

using namespace obx;

using Case = std::tuple<std::string, std::size_t>;

class AlgorithmSweep : public ::testing::TestWithParam<Case> {
 protected:
  const algos::Algorithm& algo() const { return algos::find(std::get<0>(GetParam())); }
  std::size_t size() const { return std::get<1>(GetParam()); }
};

TEST_P(AlgorithmSweep, MemoryStepsMatchClosedForm) {
  const trace::Program program = algo().make_program(size());
  EXPECT_EQ(program.memory_steps(), algo().memory_steps(size()));
}

TEST_P(AlgorithmSweep, InterpreterMatchesNativeReference) {
  const trace::Program program = algo().make_program(size());
  Rng rng(size() * 31 + 7);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<Word> input = algo().make_input(size(), rng);
    ASSERT_EQ(input.size(), program.input_words);
    const trace::InterpreterResult run = trace::interpret(program, input);
    const std::vector<Word> expected = algo().reference(size(), input);
    const auto got = run.output(program);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(got[i], expected[i])
          << algo().name << " n=" << size() << " trial " << trial << " word " << i;
    }
  }
}

TEST_P(AlgorithmSweep, ProgramIsOblivious) {
  const trace::Program program = algo().make_program(size());
  const auto report = trace::check_program(program, 2);
  EXPECT_TRUE(report.oblivious) << report.detail;
}

TEST_P(AlgorithmSweep, DeclaredRegionsAreConsistent) {
  const trace::Program program = algo().make_program(size());
  EXPECT_LE(program.input_words, program.memory_words);
  EXPECT_LE(program.output_offset + program.output_words, program.memory_words);
  EXPECT_GT(program.output_words, 0u);
  EXPECT_GT(program.register_count, 0u);
  EXPECT_LE(program.register_count, 256u);
}

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (const auto& algo : algos::registry()) {
    for (std::size_t n : algo.test_sizes) cases.emplace_back(algo.name, n);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Registry, AlgorithmSweep, ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           std::string name = std::get<0>(param_info.param) + "_n" +
                                              std::to_string(std::get<1>(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Registry, LookupWorks) {
  EXPECT_EQ(algos::find("fft").name, "fft");
  EXPECT_THROW(algos::find("nope"), std::logic_error);
  EXPECT_EQ(algos::registry().size(), 16u);
  EXPECT_EQ(algos::find("oblivious-merge").name, "oblivious-merge");
  EXPECT_EQ(algos::find("oblivious-partition").name, "oblivious-partition");
  EXPECT_EQ(algos::find("oblivious-aggregate").name, "oblivious-aggregate");
}

}  // namespace

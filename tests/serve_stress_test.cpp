// Multi-producer stress: the service must complete every accepted job
// exactly once, with output bit-identical to a direct HostBulkExecutor run,
// under every backpressure policy and with randomized program mixes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "serve/service.hpp"

namespace {

using namespace obx;
using namespace obx::serve;
using namespace std::chrono_literals;

struct StressProgram {
  std::string id;
  const algos::Algorithm* algo;
  std::size_t n;
  trace::Program program;
};

std::vector<StressProgram> stress_programs() {
  std::vector<StressProgram> programs;
  for (const auto& [name, n] : std::initializer_list<std::pair<const char*, std::size_t>>{
           {"prefix-sums", 24}, {"horner", 16}, {"bitonic-sort", 16}}) {
    const algos::Algorithm& algo = algos::find(name);
    programs.push_back(StressProgram{
        .id = name, .algo = &algo, .n = n, .program = algo.make_program(n)});
  }
  return programs;
}

struct Submission {
  std::size_t program_index;
  std::vector<Word> input;
  std::future<JobResult> future;
};

// Runs `producers` threads submitting `jobs_per_producer` randomized jobs
// each, waits for every terminal state, and verifies the exactly-once and
// bit-identical-output guarantees.
void run_stress(OverflowPolicy policy, std::size_t queue_capacity,
                unsigned producers, std::size_t jobs_per_producer) {
  const std::vector<StressProgram> programs = stress_programs();

  ServiceOptions options;
  options.queue_capacity = queue_capacity;
  options.policy = policy;
  options.batcher.max_batch_lanes = 32;
  options.batcher.max_batch_delay = 200us;
  options.executors = 2;
  BulkService service(options);
  for (const auto& p : programs) {
    service.register_program(p.id, p.algo->make_program(p.n));
  }

  std::vector<std::vector<Submission>> per_producer(producers);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      auto& submissions = per_producer[t];
      submissions.reserve(jobs_per_producer);
      for (std::size_t i = 0; i < jobs_per_producer; ++i) {
        const std::size_t pick = rng.next_below(programs.size());
        const StressProgram& p = programs[pick];
        std::vector<Word> input = p.algo->make_input(p.n, rng);
        Submission s;
        s.program_index = pick;
        s.input = input;
        s.future = service.submit(p.id, std::move(input));
        submissions.push_back(std::move(s));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::size_t completed = 0, shed = 0, rejected = 0;
  for (auto& submissions : per_producer) {
    for (Submission& s : submissions) {
      ASSERT_TRUE(s.future.valid());
      const JobResult r = s.future.get();  // resolves exactly once by contract
      switch (r.status) {
        case JobStatus::kCompleted: {
          ++completed;
          const StressProgram& p = programs[s.program_index];
          const bulk::BulkOutputs direct = bulk::run_bulk(p.program, s.input, 1);
          ASSERT_EQ(r.output, direct.flat)
              << "program " << p.id << " output diverged from direct execution";
          break;
        }
        case JobStatus::kShed: ++shed; break;
        case JobStatus::kRejected: ++rejected; break;
        case JobStatus::kFailed:
          FAIL() << "no faults are injected here, so nothing may fail";
          break;
      }
    }
  }
  service.stop();

  const std::size_t total = producers * jobs_per_producer;
  EXPECT_EQ(completed + shed + rejected, total) << "jobs lost or duplicated";
  const MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.completed, completed);
  EXPECT_EQ(snap.shed, shed);
  EXPECT_EQ(snap.rejected, rejected);
  EXPECT_EQ(snap.queue_depth, 0);
  if (policy == OverflowPolicy::kBlock) {
    // Blocking admission never drops anything.
    EXPECT_EQ(completed, total);
  } else {
    // Dropping policies still complete the lion's share at this load.
    EXPECT_GT(completed, 0u);
  }
}

TEST(ServeStress, BlockPolicyCompletesEveryJob) {
  run_stress(OverflowPolicy::kBlock, /*queue_capacity=*/64, /*producers=*/4,
             /*jobs_per_producer=*/500);
}

TEST(ServeStress, ShedOldestNeverLosesTrackOfJobs) {
  run_stress(OverflowPolicy::kShedOldest, /*queue_capacity=*/16, /*producers=*/4,
             /*jobs_per_producer=*/500);
}

TEST(ServeStress, RejectNeverLosesTrackOfJobs) {
  run_stress(OverflowPolicy::kReject, /*queue_capacity=*/16, /*producers=*/4,
             /*jobs_per_producer=*/500);
}

TEST(ServeStress, ManyProducersHighFanIn) {
  run_stress(OverflowPolicy::kBlock, /*queue_capacity=*/256, /*producers=*/8,
             /*jobs_per_producer=*/250);
}

}  // namespace

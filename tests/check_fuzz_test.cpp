// The differential fuzzing harness itself: generator determinism and
// validity, execution-matrix coverage, a clean bounded campaign, the
// mutation test (a deliberately injected kernel bug must be caught and
// shrunk to a handful of steps), and reproducer round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/fuzz.hpp"
#include "check/generator.hpp"
#include "check/shrink.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace obx;

// ---------------------------------------------------------------------------
// Generator: determinism and structural validity.

TEST(FuzzGenerator, SameSeedSameProgram) {
  Rng a(42), b(42), c(43);
  const std::string pa = trace::serialize_program(check::generate_program(a));
  const std::string pb = trace::serialize_program(check::generate_program(b));
  const std::string pc = trace::serialize_program(check::generate_program(c));
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

TEST(FuzzGenerator, ProgramsAreStructurallyValidOblivious) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const trace::Program program = check::generate_program(rng);
    // Whole memory is both input and output: any wrong word is observable.
    EXPECT_GE(program.memory_words, 1u);
    EXPECT_EQ(program.input_words, program.memory_words);
    EXPECT_EQ(program.output_offset, 0u);
    EXPECT_EQ(program.output_words, program.memory_words);
    EXPECT_GE(program.register_count, 1u);
    const auto steps = trace::TracedProgram::capture(program).steps();
    EXPECT_FALSE(steps.empty());
    for (const trace::Step& s : steps) {
      switch (s.kind) {
        case trace::StepKind::kLoad:
          EXPECT_LT(s.dst, program.register_count);
          EXPECT_LT(s.addr, program.memory_words);
          break;
        case trace::StepKind::kStore:
          EXPECT_LT(s.src0, program.register_count);
          EXPECT_LT(s.addr, program.memory_words);
          break;
        case trace::StepKind::kAlu:
          EXPECT_LT(s.dst, program.register_count);
          EXPECT_LT(s.src0, program.register_count);
          EXPECT_LT(s.src1, program.register_count);
          EXPECT_LT(s.src2, program.register_count);
          break;
        case trace::StepKind::kImm:
          EXPECT_LT(s.dst, program.register_count);
          break;
      }
    }
  }
}

TEST(FuzzGenerator, InputsAreDeterministicAndSized) {
  const auto a = check::generate_inputs(7, 5, 9);
  const auto b = check::generate_inputs(7, 5, 9);
  const auto c = check::generate_inputs(8, 5, 9);
  EXPECT_EQ(a.size(), 45u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FuzzGenerator, EdgeWordPoolHasTheNastyPatterns) {
  const std::vector<Word>& pool = check::edge_words();
  auto has = [&](Word w) {
    return std::find(pool.begin(), pool.end(), w) != pool.end();
  };
  EXPECT_TRUE(has(Word{0x7ff8000000000000ULL}));  // quiet NaN
  EXPECT_TRUE(has(Word{0x7ff0000000000000ULL}));  // +inf
  EXPECT_TRUE(has(Word{1} << 63));                // INT64_MIN / -0.0
  EXPECT_TRUE(has(Word{64}));                     // shift at the &63 boundary
  EXPECT_TRUE(has(~Word{0}));
}

// ---------------------------------------------------------------------------
// Execution matrix: every axis the harness promises must actually appear.

TEST(FuzzMatrix, CoversEveryAxis) {
  const auto matrix = check::config_matrix(12, 100);
  bool interpreted = false, compiled = false;
  bool row = false, col = false, blocked = false, ragged = false;
  bool conflict_free = false, planner_searched = false, planner_tuned = false;
  bool tile1 = false, tile3 = false, workers2 = false, scalar = false;
  bool straddle_under = false, straddle_exact = false;
  std::set<std::string> names;
  for (const check::ExecConfig& c : matrix) {
    EXPECT_TRUE(names.insert(c.name()).second) << "duplicate " << c.name();
    interpreted |= c.backend == exec::Backend::kInterpreted;
    compiled |= c.backend == exec::Backend::kCompiled;
    row |= c.arrangement == bulk::Arrangement::kRowWise;
    col |= c.arrangement == bulk::Arrangement::kColumnWise;
    if (c.arrangement == bulk::Arrangement::kBlocked) {
      blocked = true;
      EXPECT_NE(c.block, 0u);
      ragged |= 12u % c.block != 0;  // padded last block
    }
    if (c.arrangement == bulk::Arrangement::kConflictFree) {
      conflict_free = true;
      EXPECT_NE(c.block, 0u);  // pad stride
    }
    planner_searched |= c.via_planner && !c.tune;
    planner_tuned |= c.via_planner && c.tune;
    tile1 |= c.tile_lanes == 1;
    tile3 |= c.tile_lanes == 3;
    workers2 |= c.workers == 2;
    scalar |= c.backend == exec::Backend::kCompiled && c.simd == SimdIsa::kScalar;
    if (c.expect_backend.has_value()) {
      straddle_under |= *c.expect_backend == exec::Backend::kInterpreted &&
                        c.compile_budget_steps == 99;
      straddle_exact |= *c.expect_backend == exec::Backend::kCompiled &&
                        c.compile_budget_steps == 100;
    }
  }
  EXPECT_TRUE(interpreted);
  EXPECT_TRUE(compiled);
  EXPECT_TRUE(row);
  EXPECT_TRUE(col);
  EXPECT_TRUE(blocked);
  EXPECT_TRUE(ragged) << "a non-divisor block must exercise the padded tail";
  EXPECT_TRUE(conflict_free);
  EXPECT_TRUE(planner_searched) << "arrangement-search path must be in the matrix";
  EXPECT_TRUE(planner_tuned) << "auto-tuner path must be in the matrix";
  EXPECT_TRUE(tile1);
  EXPECT_TRUE(tile3);
  EXPECT_TRUE(workers2);
  EXPECT_TRUE(scalar);
  EXPECT_TRUE(straddle_under) << "budget = steps-1 must expect interpreter fallback";
  EXPECT_TRUE(straddle_exact) << "budget = steps must expect a compile";
}

TEST(FuzzMatrix, BoundaryLaneCountsStraddleVectorWidths) {
  const auto lanes = check::boundary_lane_counts();
  auto has = [&](std::size_t p) {
    return std::find(lanes.begin(), lanes.end(), p) != lanes.end();
  };
  for (const std::size_t w : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    EXPECT_TRUE(has(w - 1) && has(w) && has(w + 1)) << "width " << w;
  }
  EXPECT_TRUE(has(1));
  EXPECT_TRUE(std::all_of(lanes.begin(), lanes.end(),
                          [](std::size_t p) { return p >= 1; }));
}

// ---------------------------------------------------------------------------
// A clean bounded campaign: the engines agree on everything the fuzzer can
// produce (this is the unit-test face of the `check_fuzz` ctest leg).

TEST(FuzzCampaign, BoundedRunFindsNoDivergences) {
  check::FuzzOptions options;
  options.seed = 7;
  options.iters = 40;
  const check::FuzzReport report = check::run_fuzz(options);
  EXPECT_TRUE(report.ok()) << report.failures.front().divergence.to_string();
  EXPECT_EQ(report.programs, 40u);
  EXPECT_GT(report.configs, report.programs * 10);  // full matrix per program
}

TEST(FuzzCampaign, DeterministicAcrossRuns) {
  check::FuzzOptions options;
  options.seed = 11;
  options.iters = 10;
  const check::FuzzReport a = check::run_fuzz(options);
  const check::FuzzReport b = check::run_fuzz(options);
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_EQ(a.summary(), b.summary());
}

// ---------------------------------------------------------------------------
// Mutation test: deliberately inject a kernel bug (kAddI silently computes
// kSubI) and prove the differential predicate catches it and the shrinker
// reduces it to a handful of steps.

std::optional<trace::Program> with_injected_add_bug(const trace::Program& p) {
  std::vector<trace::Step> steps = trace::TracedProgram::capture(p).steps();
  bool changed = false;
  for (trace::Step& s : steps) {
    if (s.kind == trace::StepKind::kAlu && s.op == trace::Op::kAddI) {
      s.op = trace::Op::kSubI;
      changed = true;
    }
  }
  if (!changed) return std::nullopt;
  return trace::make_replay_program(p.name + "-buggy", p.memory_words,
                                    p.input_words, p.output_offset,
                                    p.output_words, p.register_count,
                                    std::move(steps));
}

TEST(FuzzShrink, InjectedKernelBugIsCaughtAndShrunkToAFewSteps) {
  // A fixed input pool larger than any generated program's memory, so a
  // candidate's inputs do not change as region shrink trims memory words —
  // that keeps the predicate deterministic across shrink candidates.
  const std::vector<Word> pool = check::generate_inputs(99, 1, 64);
  auto run = [&](const trace::Program& prog) {
    const std::vector<Word> in(pool.begin(),
                               pool.begin() + static_cast<std::ptrdiff_t>(
                                                  prog.input_words));
    return trace::interpret(prog, in).memory;
  };
  const check::Predicate caught_by_buggy_kernel =
      [&](const trace::Program& candidate) {
        const auto buggy = with_injected_add_bug(candidate);
        if (!buggy.has_value()) return false;  // no kAddI left: bug unreachable
        return run(candidate) != run(*buggy);
      };

  std::optional<trace::Program> failing;
  check::GenOptions gen;
  gen.max_steps = 60;
  for (std::uint64_t seed = 1; seed <= 100 && !failing.has_value(); ++seed) {
    Rng rng(seed);
    trace::Program candidate = check::generate_program(rng, gen);
    if (caught_by_buggy_kernel(candidate)) failing = std::move(candidate);
  }
  ASSERT_TRUE(failing.has_value())
      << "no generated program exposed the injected kAddI bug";

  const check::ShrinkResult shrunk =
      check::shrink_program(*failing, caught_by_buggy_kernel);
  EXPECT_TRUE(caught_by_buggy_kernel(shrunk.program));
  EXPECT_LE(shrunk.steps_after, shrunk.steps_before);
  EXPECT_LE(shrunk.steps_after, 8u)
      << "shrunk to " << shrunk.steps_after << " steps:\n"
      << trace::serialize_program(shrunk.program);

  // Determinism: the same failing program shrinks to the same minimal form.
  const check::ShrinkResult again =
      check::shrink_program(*failing, caught_by_buggy_kernel);
  EXPECT_EQ(trace::serialize_program(shrunk.program),
            trace::serialize_program(again.program));
  EXPECT_EQ(shrunk.predicate_calls, again.predicate_calls);
}

// ---------------------------------------------------------------------------
// Reproducers: text round-trip, replay, and the emitted regression source.

TEST(FuzzReproducer, RoundTripsThroughText) {
  Rng rng(5);
  check::Reproducer repro;
  repro.program = check::generate_program(rng);
  repro.input_seed = 0xdeadbeefULL;
  repro.p = 17;
  repro.note = "compiled/row/sse2/tile=0 (unit test)";
  const std::string text = check::write_reproducer(repro);
  const check::Reproducer parsed = check::parse_reproducer(text);
  EXPECT_EQ(parsed.input_seed, repro.input_seed);
  EXPECT_EQ(parsed.p, repro.p);
  EXPECT_EQ(parsed.note, repro.note);
  EXPECT_EQ(trace::serialize_program(parsed.program),
            trace::serialize_program(repro.program));
}

TEST(FuzzReproducer, ReplayOfACleanProgramAgrees) {
  Rng rng(9);
  check::Reproducer repro;
  repro.program = check::generate_program(rng);
  repro.input_seed = 123;
  repro.p = 9;
  const auto divergence = check::replay_reproducer(repro);
  EXPECT_FALSE(divergence.has_value())
      << (divergence ? divergence->to_string() : "");
}

TEST(FuzzReproducer, RegressionSourceEmbedsTheProgramAndSeed) {
  Rng rng(3);
  check::Reproducer repro;
  repro.program = check::generate_program(rng);
  repro.input_seed = 4242;
  repro.p = 5;
  repro.note = "unit";
  const std::string src = check::regression_test_source(repro, "Sample");
  EXPECT_NE(src.find("TEST(FuzzRegression, Sample)"), std::string::npos);
  EXPECT_NE(src.find("trace::parse_program"), std::string::npos);
  EXPECT_NE(src.find(trace::serialize_program(repro.program)), std::string::npos);
  EXPECT_NE(src.find("4242"), std::string::npos);
  EXPECT_NE(src.find("// found as: unit"), std::string::npos);
}

TEST(FuzzReproducer, ParseRejectsTextWithoutHeader) {
  EXPECT_THROW(check::parse_reproducer("obx 1 memory=1 input=1 output=0+1 regs=1\n"),
               std::logic_error);
}

}  // namespace

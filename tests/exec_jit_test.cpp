// Copy-and-patch JIT tests: bit-identical equivalence with the interpreter
// across arrangements, ragged lane counts and tile sizes; segment-boundary
// and compile-budget straddles; emitted-code metadata.  Every test skips
// where emission is unavailable (non-x86-64/non-Linux, OBX_JIT=0) — the
// fallback ladder those hosts take is covered by exec_compile_test and the
// differential fuzzer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/layout.hpp"
#include "check/differential.hpp"
#include "common/rng.hpp"
#include "exec/backend.hpp"
#include "exec/compiled_program.hpp"
#include "exec/jit/jit_program.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace obx;
using bulk::Arrangement;
using trace::Op;
using trace::Step;

std::vector<Word> lane_major_inputs(const algos::Algorithm& algo, std::size_t n,
                                    std::size_t p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

TEST(JitTest, PlatformProbeIsConsistent) {
  EXPECT_EQ(exec::jit_available(),
            exec::jit_platform_supported() && exec::jit_enabled());
#if defined(__x86_64__) && defined(__linux__)
  EXPECT_TRUE(exec::jit_platform_supported());
#else
  EXPECT_FALSE(exec::jit_platform_supported());
#endif
}

// The acceptance matrix of the JIT: every arrangement x ragged lane count x
// tile size must be bit-identical to trace::interpret, and must actually run
// the emitted code (backend == kJit), not a silent fallback.
TEST(JitTest, BitIdenticalAcrossArrangementsRaggedLanesAndTiles) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 32;
  const trace::Program program = algo.make_program(n);

  struct Arr {
    Arrangement arrangement;
    std::size_t param;
  };
  const std::vector<Arr> arrangements{{Arrangement::kColumnWise, 0},
                                      {Arrangement::kRowWise, 0},
                                      {Arrangement::kBlocked, 4},
                                      {Arrangement::kConflictFree, 2}};
  for (const std::size_t p : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{9}, std::size_t{63}, std::size_t{65}}) {
    const std::vector<Word> inputs = lane_major_inputs(algo, n, p, 7 * p + 1);
    const std::vector<Word> oracle = check::oracle_memory(program, inputs, p);
    for (const Arr& arr : arrangements) {
      for (const std::size_t tile : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
        const bulk::Layout layout =
            bulk::make_layout(program, p, arr.arrangement, arr.param);
        const bulk::HostBulkExecutor exec(
            layout, bulk::HostBulkExecutor::Options{.backend = exec::Backend::kJit,
                                                    .tile_lanes = tile});
        const auto run = exec.run(program, inputs);
        ASSERT_EQ(run.backend, exec::Backend::kJit)
            << "p=" << p << " arr=" << bulk::to_string(arr.arrangement)
            << " tile=" << tile;
        for (std::size_t j = 0; j < p; ++j) {
          for (std::size_t i = 0; i < program.memory_words; ++i) {
            ASSERT_EQ(run.memory[layout.global(static_cast<Addr>(i), j)],
                      oracle[j * program.memory_words + i])
                << "p=" << p << " arr=" << bulk::to_string(arr.arrangement)
                << " tile=" << tile << " lane=" << j << " word=" << i;
          }
        }
      }
    }
  }
}

// Tiny segments — including a segment size that splits fused triples — must
// be emitted as independent entry points and still match the interpreter.
TEST(JitTest, SegmentBoundariesPreserveSemantics) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 64;
  const std::size_t p = 7;
  const trace::Program program = algo.make_program(n);
  const std::vector<Word> inputs = lane_major_inputs(algo, n, p, 3);

  const auto compiled = exec::CompiledProgram::compile(
      program, {.max_steps = 1u << 20, .segment_steps = 17});
  ASSERT_NE(compiled, nullptr);
  ASSERT_GT(compiled->segments().size(), 1u);

  const auto jit = exec::JitProgram::emit(compiled, active_simd_isa());
  ASSERT_NE(jit, nullptr);
  EXPECT_EQ(jit->entries().size(), compiled->segments().size());
  EXPECT_EQ(jit->patch_count(), 3 * compiled->fused_ops());

  const bulk::Layout layout = bulk::Layout::column_wise(p, program.memory_words);
  std::vector<Word> memory(layout.total_words(), Word{0});
  exec::run_jit_chunk(*jit, layout, inputs, program.input_words, memory, 0, p,
                      /*tile_lanes=*/4);

  for (std::size_t j = 0; j < p; ++j) {
    const trace::InterpreterResult ref = trace::interpret(
        program, std::span<const Word>(inputs.data() + j * program.input_words,
                                       program.input_words));
    for (std::size_t a = 0; a < program.memory_words; ++a) {
      ASSERT_EQ(memory[layout.global(static_cast<Addr>(a), j)], ref.memory[a])
          << "lane " << j << " word " << a;
    }
  }
}

// A zero-step program compiles to zero segments and emits to zero entry
// points — a valid JIT artifact, no code arena needed — and a run through it
// still scatters the inputs.
TEST(JitTest, EmptyProgramEmitsAndRuns) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  trace::Program program;
  program.name = "empty";
  program.memory_words = 4;
  program.input_words = 4;
  program.register_count = 1;
  program.stream = [] { return []() -> Generator<Step> { co_return; }(); };
  program.exec_cache = std::make_shared<trace::ExecCacheSlot>();

  const std::size_t p = 5;
  std::vector<Word> inputs(p * 4);
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i + 11;

  const bulk::HostBulkExecutor exec(
      bulk::Layout::column_wise(p, 4),
      bulk::HostBulkExecutor::Options{.backend = exec::Backend::kJit});
  const auto run = exec.run(program, inputs);
  EXPECT_EQ(run.backend, exec::Backend::kJit);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(run.memory[i * p + j], inputs[j * 4 + i]);
    }
  }
}

// One step under budget must fall all the way to the interpreter; exactly at
// budget must compile and emit.  Fresh cache slots so the straddle is
// exercised, not memoised away.
TEST(JitTest, CompileBudgetStraddle) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 16;
  const std::size_t p = 4;
  trace::Program program = algo.make_program(n);
  const std::size_t steps = trace::TracedProgram::capture(program).steps().size();
  ASSERT_GE(steps, 2u);
  const std::vector<Word> inputs = lane_major_inputs(algo, n, p, 9);
  const bulk::Layout layout = bulk::Layout::column_wise(p, program.memory_words);

  program.exec_cache = std::make_shared<trace::ExecCacheSlot>();
  const bulk::HostBulkExecutor under(
      layout, bulk::HostBulkExecutor::Options{.backend = exec::Backend::kJit,
                                              .compile_budget_steps = steps - 1});
  EXPECT_EQ(under.run(program, inputs).backend, exec::Backend::kInterpreted);

  program.exec_cache = std::make_shared<trace::ExecCacheSlot>();
  const bulk::HostBulkExecutor exact(
      layout, bulk::HostBulkExecutor::Options{.backend = exec::Backend::kJit,
                                              .compile_budget_steps = steps});
  EXPECT_EQ(exact.run(program, inputs).backend, exec::Backend::kJit);
}

// Emission is memoised per (program, ISA) through the shared exec-cache
// slot: repeated runs and executors share one artifact.
TEST(JitTest, EmissionMemoisedPerProgramAndIsa) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  const trace::Program program = algos::find("prefix-sums").make_program(16);
  const auto compiled = exec::CompiledProgram::get_or_compile(program);
  ASSERT_NE(compiled, nullptr);
  const SimdIsa isa = active_simd_isa();
  const auto first = exec::JitProgram::get_or_emit(program, compiled, isa);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(exec::JitProgram::get_or_emit(program, compiled, isa).get(), first.get());
  EXPECT_GT(first->code_bytes(), 0u);
  EXPECT_EQ(first->patch_count(), 3 * compiled->fused_ops());
  EXPECT_EQ(&first->compiled(), compiled.get());
}

// Every opcode the interpreter knows must round-trip through the emitted
// kernels: a synthetic program touching the full ALU surface, all at once.
TEST(JitTest, FullOpcodeSurfaceMatchesOracle) {
  if (!exec::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";
  trace::Program program;
  program.name = "op-surface";
  const std::size_t n = 8;
  program.memory_words = n;
  program.input_words = n;
  program.register_count = 6;
  program.stream = [n] {
    return [](std::size_t words) -> Generator<Step> {
      co_yield Step::load(0, 0);
      co_yield Step::load(1, 1);
      co_yield Step::load(2, 2);
      for (const Op op :
           {Op::kAddF, Op::kSubF, Op::kMulF, Op::kDivF, Op::kMinF, Op::kMaxF,
            Op::kNegF, Op::kAddI, Op::kSubI, Op::kMulI, Op::kMinI, Op::kMaxI,
            Op::kAnd, Op::kOr, Op::kXor, Op::kShl, Op::kShr, Op::kNotU,
            Op::kLtF, Op::kLeF, Op::kEqF, Op::kLtI, Op::kLeI, Op::kEqI,
            Op::kNeI, Op::kLtU, Op::kSelect, Op::kCmovLtF, Op::kCmovLtI,
            Op::kMov}) {
        co_yield Step::alu(op, 3, 0, 1, 2);
        co_yield Step::alu(Op::kXor, 4, 4, 3);
      }
      co_yield Step::store(static_cast<Addr>(words - 1), 4);
      co_yield Step::immediate(5, 0x9e3779b97f4a7c15ull);
      co_yield Step::alu(Op::kAddI, 4, 4, 5);
      co_yield Step::store(static_cast<Addr>(words - 2), 4);
    }(n);
  };
  program.exec_cache = std::make_shared<trace::ExecCacheSlot>();

  for (const std::size_t p : {std::size_t{3}, std::size_t{33}}) {
    std::vector<Word> inputs(p * n);
    Rng rng(p);
    for (Word& w : inputs) w = rng.next_u64();
    const std::vector<Word> oracle = check::oracle_memory(program, inputs, p);
    const bulk::Layout layout = bulk::Layout::column_wise(p, n);
    const bulk::HostBulkExecutor exec(
        layout, bulk::HostBulkExecutor::Options{.backend = exec::Backend::kJit});
    const auto run = exec.run(program, inputs);
    ASSERT_EQ(run.backend, exec::Backend::kJit);
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(run.memory[layout.global(static_cast<Addr>(i), j)],
                  oracle[j * n + i])
            << "p=" << p << " lane=" << j << " word=" << i;
      }
    }
  }
}

}  // namespace

// Fork-join lane chunking.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bulk/thread_pool.hpp"

namespace {

using namespace obx::bulk;

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for_chunks(100, workers, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RespectsAlignment) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunks(64, 3, 16, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b % 16, 0u);
    EXPECT_EQ(e % 16, 0u);
    covered += e - b;
  }
  EXPECT_EQ(covered, 64u);
}

TEST(ThreadPool, MoreWorkersThanBlocksIsFine) {
  std::atomic<int> total{0};
  parallel_for_chunks(4, 16, 1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  bool called = false;
  parallel_for_chunks(0, 4, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_chunks(10, 1, 1, [&](std::size_t, std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for_chunks(32, 4, 1,
                          [&](std::size_t b, std::size_t) {
                            if (b == 0) throw std::runtime_error("worker failure");
                          }),
      std::runtime_error);
}

TEST(ThreadPool, RejectsMisalignedCount) {
  EXPECT_THROW(parallel_for_chunks(10, 2, 3, [](std::size_t, std::size_t) {}),
               std::logic_error);
}

TEST(ThreadPool, DefaultWorkerCountPositive) { EXPECT_GE(default_worker_count(), 1u); }

}  // namespace

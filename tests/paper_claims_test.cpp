// Capstone: the paper's headline claims, asserted against the simulator.
//
// Each test is one sentence of the paper turned into an executable check.
#include <gtest/gtest.h>

#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/rng.hpp"
#include "trace/oblivious_checker.hpp"
#include "umm/cost_model.hpp"

namespace {

using namespace obx;

const umm::MachineConfig kTitan{.width = 32, .latency = 200};

TimeUnits col_units(const trace::Program& program, std::size_t p,
                    const umm::MachineConfig& cfg = kTitan) {
  return bulk::TimingEstimator(umm::Model::kUmm, cfg,
                               bulk::make_layout(program, p,
                                                 bulk::Arrangement::kColumnWise))
      .run(program)
      .time_units;
}

TimeUnits row_units(const trace::Program& program, std::size_t p,
                    const umm::MachineConfig& cfg = kTitan) {
  return bulk::TimingEstimator(umm::Model::kUmm, cfg,
                               bulk::make_layout(program, p, bulk::Arrangement::kRowWise))
      .run(program)
      .time_units;
}

// "The bulk execution for p different inputs can be implemented to run
//  O(pt/w + lt) time units using p threads on the UMM."
TEST(PaperClaims, MainTheoremUpperBound) {
  for (const std::size_t n : {32u, 256u}) {
    const trace::Program program = algos::prefix_sums_program(n);
    const std::uint64_t t = algos::prefix_sums_memory_steps(n);
    for (const std::size_t p : {32u, 4096u, 1u << 20}) {
      const TimeUnits measured = col_units(program, p);
      // c * (pt/w + lt) with a small explicit constant.
      const TimeUnits form = (p * t) / kTitan.width +
                             static_cast<TimeUnits>(kTitan.latency) * t;
      EXPECT_LE(measured, 2 * form) << "n=" << n << " p=" << p;
    }
  }
}

// "We also prove that this implementation is time optimal" (Theorem 3).
TEST(PaperClaims, TimeOptimality) {
  const trace::Program program = algos::prefix_sums_program(64);
  const std::uint64_t t = algos::prefix_sums_memory_steps(64);
  for (const std::size_t p : {64u, 1024u, 1u << 18}) {
    const TimeUnits measured = col_units(program, p);
    const TimeUnits bound = umm::theorem3_lower_bound(t, p, kTitan);
    EXPECT_GE(measured, bound);
    EXPECT_LE(measured, 3 * bound) << "not within a constant of optimal, p=" << p;
  }
}

// "The prefix-sum algorithm is oblivious ... a(2i) = a(2i+1) = i."
TEST(PaperClaims, PrefixSumsObliviousWithDeclaredAccessFunction) {
  const auto report = trace::check_program(algos::prefix_sums_program(128), 2);
  ASSERT_TRUE(report.oblivious);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(report.access_function[2 * i], i);
    EXPECT_EQ(report.access_function[2 * i + 1], i);
  }
}

// "Algorithm OPT runs O(n³) time units" and is oblivious (Lemma 4).
TEST(PaperClaims, OptIsCubicAndOblivious) {
  const std::uint64_t t8 = algos::opt_memory_steps(8);
  const std::uint64_t t16 = algos::opt_memory_steps(16);
  const std::uint64_t t32 = algos::opt_memory_steps(32);
  // Doubling n scales t by ~8 asymptotically; allow the low-order slack.
  EXPECT_GT(static_cast<double>(t16) / static_cast<double>(t8), 6.0);
  EXPECT_GT(static_cast<double>(t32) / static_cast<double>(t16), 7.0);
  EXPECT_LT(static_cast<double>(t32) / static_cast<double>(t16), 9.0);
  EXPECT_TRUE(trace::check_program(algos::opt_program(12), 2).oblivious);
}

// "The computing time of the CPU is proportional to p" — here for the
// unit-cost RAM baseline: cost(p) = t * p exactly.
TEST(PaperClaims, SequentialBaselineIsLinear) {
  const std::uint64_t t = algos::prefix_sums_memory_steps(64);
  EXPECT_EQ(t * 2048, 2 * t * 1024);
}

// "Our implementations can be 150 times faster than that of a single CPU if
//  they have many inputs" — the machine-level content of that claim is the
// throughput ratio between the coalesced UMM and the sequential RAM at the
// same clock: it approaches w for memory-bound programs with p >> w*l.
TEST(PaperClaims, SpeedupOverRamSaturatesNearW) {
  const trace::Program program = algos::prefix_sums_program(64);
  const std::uint64_t t = algos::prefix_sums_memory_steps(64);
  const std::size_t p = 1 << 22;
  const double ram = static_cast<double>(t) * static_cast<double>(p);
  const double gpu = static_cast<double>(col_units(program, p));
  const double speedup = ram / gpu;
  EXPECT_GT(speedup, 0.9 * kTitan.width);
  EXPECT_LE(speedup, 1.0 * kTitan.width);
}

// "It is very important to avoid the non-coalesced access": the row-wise
// arrangement forfeits the whole factor w.
TEST(PaperClaims, NonCoalescedAccessForfeitsW) {
  const trace::Program program = algos::prefix_sums_program(64);
  const std::size_t p = 1 << 20;
  const double ratio = static_cast<double>(row_units(program, p)) /
                       static_cast<double>(col_units(program, p));
  EXPECT_NEAR(ratio, kTitan.width, 0.1 * kTitan.width);
}

// Lemma 1, quoted exactly, for a configuration meeting its assumptions.
TEST(PaperClaims, Lemma1Exact) {
  const std::size_t n = 128;
  const std::size_t p = 1024;
  const trace::Program program = algos::prefix_sums_program(n);
  EXPECT_EQ(row_units(program, p), umm::lemma1_row_wise(n, p, kTitan));
  EXPECT_EQ(col_units(program, p), umm::lemma1_column_wise(n, p, kTitan));
}

// The bulk-execution results are exactly the sequential algorithm's results
// (the whole point of the construction) — end to end on the paper's two
// case studies.
TEST(PaperClaims, BulkEqualsSequential) {
  Rng rng(2014);
  {
    const trace::Program program = algos::prefix_sums_program(48);
    std::vector<Word> inputs;
    const std::size_t p = 40;
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algos::prefix_sums_random_input(48, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
    }
    const auto out = bulk::run_bulk(program, inputs, p);
    for (std::size_t j = 0; j < p; ++j) {
      const auto expected = algos::prefix_sums_reference(
          48, std::span<const Word>(inputs).subspan(j * 48, 48));
      const auto got = out.output(j);
      for (std::size_t i = 0; i < 48; ++i) ASSERT_EQ(got[i], expected[i]);
    }
  }
  {
    const std::size_t n = 10;
    const trace::Program program = algos::opt_program(n);
    std::vector<Word> inputs;
    const std::size_t p = 24;
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algos::opt_random_input(n, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
    }
    const auto out = bulk::run_bulk(program, inputs, p);
    for (std::size_t j = 0; j < p; ++j) {
      const auto expected = algos::opt_reference(
          n, std::span<const Word>(inputs).subspan(j * n * n, n * n));
      const auto got = out.output(j);
      for (std::size_t i = 0; i < n * n; ++i) ASSERT_EQ(got[i], expected[i]);
    }
  }
}

}  // namespace

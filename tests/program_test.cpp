// Program containers: profiling, capture, replay determinism.
#include <gtest/gtest.h>

#include <bit>

#include "algos/prefix_sums.hpp"
#include "trace/interpreter.hpp"
#include "trace/program.hpp"
#include "trace/step.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

TEST(Program, ProfileCountsKinds) {
  const Program p = algos::prefix_sums_program(10);
  const StepCounts c = p.profile();
  EXPECT_EQ(c.loads, 10u);
  EXPECT_EQ(c.stores, 10u);
  EXPECT_EQ(c.alu, 10u);
  EXPECT_EQ(c.imm, 1u);
  EXPECT_EQ(c.memory(), 20u);
  EXPECT_EQ(c.total(), 31u);
  EXPECT_EQ(p.memory_steps(), algos::prefix_sums_memory_steps(10));
}

TEST(Program, StreamIsReplayable) {
  const Program p = algos::prefix_sums_program(5);
  auto collect = [&] {
    std::vector<Step> steps;
    auto gen = p.stream();
    for (const Step& s : gen) steps.push_back(s);
    return steps;
  };
  const auto first = collect();
  const auto second = collect();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(TracedProgram, CaptureMatchesSource) {
  const Program source = algos::prefix_sums_program(8);
  const TracedProgram traced = TracedProgram::capture(source);
  EXPECT_EQ(traced.steps().size(), source.profile().total());
  EXPECT_EQ(traced.program().memory_words, source.memory_words);

  // The captured program's stream replays the identical sequence.
  auto gen = traced.program().stream();
  std::size_t idx = 0;
  for (const Step& s : gen) {
    ASSERT_LT(idx, traced.steps().size());
    EXPECT_EQ(s, traced.steps()[idx]);
    ++idx;
  }
  EXPECT_EQ(idx, traced.steps().size());
}

TEST(TracedProgram, CaptureRespectsLimit) {
  const Program source = algos::prefix_sums_program(100);
  EXPECT_THROW(TracedProgram::capture(source, 10), std::logic_error);
}

TEST(Program, ReplayProgramRoundTrip) {
  std::vector<Step> steps{Step::load(0, 0), Step::store(1, 0)};
  const Program p = make_replay_program("copy", 2, 1, 1, 1, 2, steps);
  EXPECT_EQ(p.name, "copy");
  EXPECT_EQ(p.memory_steps(), 2u);
  auto gen = p.stream();
  Step s;
  ASSERT_TRUE(gen.next(s));
  EXPECT_EQ(s, steps[0]);
  ASSERT_TRUE(gen.next(s));
  EXPECT_EQ(s, steps[1]);
  EXPECT_FALSE(gen.next(s));
}

TEST(Program, ProfileRequiresStream) {
  Program p;
  EXPECT_THROW(p.profile(), std::logic_error);
}

TEST(Program, ConcatRunsBothInOrder) {
  // prefix-sums applied twice = second-order prefix sums.
  const Program once = algos::prefix_sums_program(4);
  const Program twice = concat_programs(once, once);
  EXPECT_EQ(twice.memory_steps(), 2 * once.memory_steps());
  EXPECT_EQ(twice.name, once.name + " ; " + once.name);

  std::vector<Word> input(4);
  for (int i = 0; i < 4; ++i) input[static_cast<std::size_t>(i)] = Step::imm_f64(0, 1.0).imm;
  // input = [1,1,1,1] -> prefix [1,2,3,4] -> prefix [1,3,6,10].
  const auto run = obx::trace::interpret(twice, input);
  const double expected[] = {1, 3, 6, 10};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<double>(run.memory[i]), expected[i]);
  }
}

TEST(Program, ConcatRejectsMismatchedMemory) {
  EXPECT_THROW(concat_programs(algos::prefix_sums_program(4),
                               algos::prefix_sums_program(8)),
               std::logic_error);
}

}  // namespace

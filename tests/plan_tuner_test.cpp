// The Planner's arrangement search and measuring auto-tuner.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "umm/machine_config.hpp"

namespace {

using namespace obx;
using namespace obx::plan;

const ArrangementCandidate& chosen_of(const ExecutionPlan& plan) {
  const auto& cs = plan.provenance().candidates;
  const auto it =
      std::find_if(cs.begin(), cs.end(), [](const auto& c) { return c.chosen; });
  EXPECT_NE(it, cs.end());
  return *it;
}

TEST(PlanTuner, SearchesAllFourArrangements) {
  PlanOptions options;
  options.reference_lanes = 128;
  const auto plan =
      Planner(options).build(algos::find("prefix-sums").make_program(32));
  const auto& cs = plan->provenance().candidates;
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0].arrangement, bulk::Arrangement::kColumnWise);
  EXPECT_EQ(cs[1].arrangement, bulk::Arrangement::kRowWise);
  EXPECT_EQ(cs[2].arrangement, bulk::Arrangement::kBlocked);
  EXPECT_EQ(cs[3].arrangement, bulk::Arrangement::kConflictFree);
  EXPECT_EQ(1, std::count_if(cs.begin(), cs.end(),
                             [](const auto& c) { return c.chosen; }));
  for (const auto& c : cs) {
    EXPECT_GT(c.sim_units, 0u) << c.name();
    EXPECT_EQ(c.measured_ns, 0u) << "tuner off: no measurements";
  }
  EXPECT_FALSE(plan->provenance().tuned);
  // Flat row/col mirror fields stay populated.
  EXPECT_EQ(plan->provenance().col_units, cs[0].sim_units);
  EXPECT_EQ(plan->provenance().row_units, cs[1].sim_units);
  // Default machine at a width-multiple occupancy: ties keep column-wise
  // (the Theorem 3 time-optimal layout).
  EXPECT_EQ(plan->arrangement(), bulk::Arrangement::kColumnWise);
}

TEST(PlanTuner, SortsFlipToConflictFreeUnderConflictHeavyMachine) {
  // Under a machine whose shared tier serializes stride-1 warp accesses
  // (bank rows wider than one word) and whose transaction group is wider
  // than a warp, the padded conflict-free arrangement wins outright for the
  // sorting networks.
  PlanOptions options;
  options.machine = umm::conflict_heavy_example();
  options.reference_lanes = 256;
  for (const char* name : {"bitonic-sort", "odd-even-sort"}) {
    const auto plan = Planner(options).build(algos::find(name).make_program(64));
    EXPECT_EQ(plan->arrangement(), bulk::Arrangement::kConflictFree) << name;
    EXPECT_EQ(plan->arrangement_param(),
              umm::conflict_free_stride(options.machine.shared))
        << name;
    EXPECT_GT(plan->provenance().margin_units, 0u) << name;
    const auto& best = chosen_of(*plan);
    for (const auto& c : plan->provenance().candidates) {
      if (!c.chosen) EXPECT_LT(best.sim_units, c.sim_units) << name << " vs " << c.name();
    }
  }
}

TEST(PlanTuner, ForcedArrangementRecordsSingleCandidate) {
  PlanOptions options;
  options.reference_lanes = 64;
  options.arrangement = bulk::Arrangement::kConflictFree;
  options.arrangement_param = 4;
  const auto plan = Planner(options).build(algos::find("horner").make_program(16));
  EXPECT_TRUE(plan->provenance().arrangement_forced);
  ASSERT_EQ(plan->provenance().candidates.size(), 1u);
  EXPECT_TRUE(plan->provenance().candidates[0].chosen);
  EXPECT_EQ(plan->arrangement(), bulk::Arrangement::kConflictFree);
  EXPECT_EQ(plan->arrangement_param(), 4u);
  EXPECT_EQ(plan->provenance().margin_units, 0u);
}

TEST(PlanTuner, InjectedClockPostsMeasurementsAndOverridesThePrior) {
  // A deterministic injected clock makes the tuner's posterior fully
  // scripted: give every candidate 100ns except row-wise (10ns) and the
  // tuner must pick row-wise even though its simulated prior is the worst.
  PlanOptions options;
  options.reference_lanes = 64;
  options.tune.measure = true;
  options.tune.trials = 2;
  std::size_t calls = 0;
  options.tune.clock = [&calls]() -> std::uint64_t {
    // Candidate order is column, row, blocked, conflict-free; each candidate
    // makes trials*2 = 4 calls.  Calls 4..7 belong to row-wise.
    const std::size_t i = calls++;
    const std::uint64_t width = (i >= 4 && i < 8) ? 10 : 100;
    return (i / 2) * 1000 + (i % 2) * width;
  };
  const auto plan = Planner(options).build(algos::find("horner").make_program(16));
  EXPECT_EQ(calls, 16u);
  EXPECT_TRUE(plan->provenance().tuned);
  EXPECT_EQ(plan->arrangement(), bulk::Arrangement::kRowWise);
  for (const auto& c : plan->provenance().candidates) {
    EXPECT_EQ(c.measured_ns,
              c.arrangement == bulk::Arrangement::kRowWise ? 10u : 100u)
        << c.name();
  }
  // Margin is in measured nanoseconds when the tuner decided.
  EXPECT_EQ(plan->provenance().margin_units, 90u);
}

TEST(PlanTuner, MeasuredRunsProduceAPlanThatStillExecutes) {
  // Real-clock tuning end to end: whatever wins must run bit-identically.
  const algos::Algorithm& algo = algos::find("bitonic-sort");
  const std::size_t n = 16;
  const std::size_t p = 48;
  const trace::Program program = algo.make_program(n);

  PlanOptions options;
  options.reference_lanes = p;
  options.tune.measure = true;
  options.tune.trials = 1;
  const auto plan = Planner(options).build(program);
  EXPECT_TRUE(plan->provenance().tuned);
  for (const auto& c : plan->provenance().candidates) {
    EXPECT_GT(c.measured_ns, 0u) << c.name();
  }

  Rng rng(7);
  std::vector<Word> inputs;
  std::vector<Word> expected;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
    const auto ref = algo.reference(n, one);
    expected.insert(expected.end(), ref.begin(), ref.end());
  }
  std::vector<Word> outputs;
  plan::run(*plan, inputs, p, &outputs);
  EXPECT_EQ(outputs, expected);
}

TEST(PlanTuner, ConflictFreePlanRunsBitIdentically) {
  const algos::Algorithm& algo = algos::find("odd-even-sort");
  const std::size_t n = 32;
  const std::size_t p = 40;
  PlanOptions options;
  options.machine = umm::conflict_heavy_example();
  options.reference_lanes = p;
  const auto plan = Planner(options).build(algo.make_program(n));
  ASSERT_EQ(plan->arrangement(), bulk::Arrangement::kConflictFree);

  Rng rng(3);
  std::vector<Word> inputs;
  std::vector<Word> expected;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
    const auto ref = algo.reference(n, one);
    expected.insert(expected.end(), ref.begin(), ref.end());
  }
  std::vector<Word> outputs;
  plan::run(*plan, inputs, p, &outputs);
  EXPECT_EQ(outputs, expected);
}

TEST(PlanTuner, PlanCacheMemoisesPerSharedTierAndTuneKnobs) {
  const trace::Program program = algos::find("prefix-sums").make_program(16);
  PlanCache cache;

  PlanOptions base;
  base.reference_lanes = 64;
  const auto a = cache.get_or_build("ps/16", program, base);
  EXPECT_EQ(cache.get_or_build("ps/16", program, base).get(), a.get());

  // A different shared tier is a different cache entry and fingerprint.
  PlanOptions shared = base;
  shared.machine = umm::conflict_heavy_example();
  const auto b = cache.get_or_build("ps/16", program, shared);
  EXPECT_NE(b.get(), a.get());
  EXPECT_NE(b->fingerprint(), a->fingerprint());
  EXPECT_NE(shared.fingerprint(), base.fingerprint());

  // So are the tuner knobs — but not the injected clock, which is an
  // observation channel rather than a decision.
  PlanOptions tuned = base;
  tuned.tune.measure = true;
  tuned.tune.trials = 1;
  EXPECT_NE(tuned.fingerprint(), base.fingerprint());
  PlanOptions clocked = tuned;
  std::uint64_t t = 0;
  clocked.tune.clock = [&t]() { return t += 5; };
  EXPECT_EQ(clocked.fingerprint(), tuned.fingerprint());

  PlanOptions param = base;
  param.arrangement = bulk::Arrangement::kBlocked;
  param.arrangement_param = 8;
  PlanOptions param2 = param;
  param2.arrangement_param = 16;
  EXPECT_NE(param.fingerprint(), param2.fingerprint());

  const auto c = cache.get_or_build("ps/16", program, tuned);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(cache.get_or_build("ps/16", program, tuned).get(), c.get());
}

TEST(PlanTuner, Validation) {
  PlanOptions options;
  options.tune.trials = 0;
  EXPECT_THROW(Planner{options}, std::logic_error);
}

}  // namespace

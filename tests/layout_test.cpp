// Data arrangements: the address maps of the paper's Figures 5 and 10.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/layout.hpp"
#include "umm/dmm.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

TEST(Layout, PaperFigure5RowWise) {
  // p = 4 arrays of n = 6 words: b_j[i] at j*6 + i.
  const Layout layout = Layout::row_wise(4, 6);
  EXPECT_EQ(layout.global(0, 0), 0u);
  EXPECT_EQ(layout.global(5, 0), 5u);
  EXPECT_EQ(layout.global(0, 1), 6u);
  EXPECT_EQ(layout.global(3, 2), 15u);
  EXPECT_EQ(layout.global(5, 3), 23u);
  EXPECT_EQ(layout.total_words(), 24u);
}

TEST(Layout, PaperFigure5ColumnWise) {
  // b_j[i] at i*4 + j.
  const Layout layout = Layout::column_wise(4, 6);
  EXPECT_EQ(layout.global(0, 0), 0u);
  EXPECT_EQ(layout.global(0, 3), 3u);
  EXPECT_EQ(layout.global(1, 0), 4u);
  EXPECT_EQ(layout.global(5, 3), 23u);
}

TEST(Layout, GlobalIsABijection) {
  for (const Layout& layout :
       {Layout::row_wise(8, 5), Layout::column_wise(8, 5), Layout::blocked(8, 5, 4)}) {
    std::set<Addr> seen;
    for (Lane j = 0; j < 8; ++j) {
      for (Addr a = 0; a < 5; ++a) {
        const Addr g = layout.global(a, j);
        EXPECT_LT(g, layout.total_words()) << layout.name();
        EXPECT_TRUE(seen.insert(g).second)
            << layout.name() << " duplicates address " << g;
      }
    }
    EXPECT_EQ(seen.size(), layout.total_words());
  }
}

TEST(Layout, ConflictFreeAddressMap) {
  // Column-wise with every word padded to stride s: b_j[a] at (a*p + j)*s.
  const Layout layout = Layout::conflict_free(4, 6, 3);
  EXPECT_EQ(layout.global(0, 0), 0u);
  EXPECT_EQ(layout.global(0, 3), 9u);
  EXPECT_EQ(layout.global(1, 0), 12u);
  EXPECT_EQ(layout.global(5, 3), 69u);
  EXPECT_EQ(layout.total_words(), 4u * 6 * 3);
  EXPECT_EQ(layout.lane_stride(), 3u);
  EXPECT_EQ(layout.stride_base(2), 2u * 4 * 3);
  EXPECT_TRUE(layout.uniform_residue(32));

  // Injective (not a bijection: the pad words are holes).
  std::set<Addr> seen;
  for (Lane j = 0; j < 4; ++j) {
    for (Addr a = 0; a < 6; ++a) {
      const Addr g = layout.global(a, j);
      EXPECT_LT(g, layout.total_words());
      EXPECT_TRUE(seen.insert(g).second);
    }
  }

  // s = 1 degenerates to column-wise.
  const Layout col = Layout::column_wise(4, 6);
  const Layout cf1 = Layout::conflict_free(4, 6, 1);
  for (Lane j = 0; j < 4; ++j) {
    for (Addr a = 0; a < 6; ++a) EXPECT_EQ(cf1.global(a, j), col.global(a, j));
  }
}

TEST(Layout, BlockedDegeneratesToNeighbours) {
  // block = 1: every lane is its own contiguous block ≡ row-wise;
  // block = p: one block interleaving all lanes ≡ column-wise.
  const Layout row = Layout::row_wise(8, 5);
  const Layout blocked1 = Layout::blocked(8, 5, 1);
  const Layout col = Layout::column_wise(8, 5);
  const Layout blockedp = Layout::blocked(8, 5, 8);
  for (Lane j = 0; j < 8; ++j) {
    for (Addr a = 0; a < 5; ++a) {
      EXPECT_EQ(blocked1.global(a, j), row.global(a, j));
      EXPECT_EQ(blockedp.global(a, j), col.global(a, j));
    }
  }
}

TEST(Layout, StrideProperties) {
  EXPECT_EQ(Layout::row_wise(8, 5).lane_stride(), 5u);
  EXPECT_EQ(Layout::column_wise(8, 5).lane_stride(), 1u);
  EXPECT_EQ(Layout::blocked(8, 5, 4).lane_stride(), 1u);

  EXPECT_EQ(Layout::row_wise(8, 5).stride_base(3), 3u);
  EXPECT_EQ(Layout::column_wise(8, 5).stride_base(3), 24u);
  EXPECT_EQ(Layout::blocked(8, 5, 4).stride_base(3), 12u);
}

TEST(Layout, UniformResidue) {
  EXPECT_TRUE(Layout::row_wise(64, 5).uniform_residue(32));
  EXPECT_TRUE(Layout::column_wise(64, 5).uniform_residue(32));
  EXPECT_TRUE(Layout::blocked(64, 5, 32).uniform_residue(32));
  EXPECT_FALSE(Layout::blocked(64, 5, 16).uniform_residue(32));
}

TEST(Layout, ScatterGatherRoundTrip) {
  for (const Layout& layout :
       {Layout::row_wise(4, 6), Layout::column_wise(4, 6), Layout::blocked(4, 6, 2),
        Layout::conflict_free(4, 6, 4), Layout::blocked(4, 6, 3)}) {
    std::vector<Word> memory(layout.total_words(), 0);
    for (Lane j = 0; j < 4; ++j) {
      std::vector<Word> input(6);
      for (std::size_t i = 0; i < 6; ++i) input[i] = 100 * j + i;
      layout.scatter(input, j, memory);
    }
    for (Lane j = 0; j < 4; ++j) {
      std::vector<Word> out(6);
      layout.gather(memory, j, 0, out);
      for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i], 100 * j + i);
    }
  }
}

TEST(Layout, GatherSubRange) {
  const Layout layout = Layout::column_wise(2, 8);
  std::vector<Word> memory(layout.total_words(), 0);
  std::vector<Word> input{0, 1, 2, 3, 4, 5, 6, 7};
  layout.scatter(input, 1, memory);
  std::vector<Word> out(3);
  layout.gather(memory, 1, 4, out);
  EXPECT_EQ(out, (std::vector<Word>{4, 5, 6}));
}

TEST(Layout, Validation) {
  EXPECT_THROW(Layout::row_wise(0, 5), std::logic_error);
  EXPECT_THROW(Layout::column_wise(4, 0), std::logic_error);
  EXPECT_THROW(Layout::blocked(8, 5, 0), std::logic_error);
  EXPECT_THROW(Layout::conflict_free(8, 5, 0), std::logic_error);
  // Blocked no longer requires block | lanes: the last block is padded.
  const Layout ragged = Layout::blocked(8, 5, 3);
  EXPECT_EQ(ragged.total_words(), 3u * 5 * 3);  // ceil(8/3) = 3 blocks
  std::vector<bool> seen(ragged.total_words(), false);
  for (Lane j = 0; j < 8; ++j) {
    for (Addr a = 0; a < 5; ++a) {
      const std::size_t g = ragged.global(a, j);
      ASSERT_LT(g, ragged.total_words());
      EXPECT_FALSE(seen[g]);  // injective despite the padding
      seen[g] = true;
    }
  }
}

TEST(Layout, ConflictFreeWithoutASharedTierDegeneratesToColumnWise) {
  // Regression (PR 11 edge-case sweep): kConflictFree with no shared tier
  // configured must resolve to stride 1 — i.e. exactly the column-wise map —
  // never a zero stride that would collapse the scatter.
  EXPECT_EQ(umm::conflict_free_stride(umm::SharedTier{}), 1u);
  // An enabled-but-degenerate tier (bank_words == 0 never passed validate())
  // also falls back to 1 rather than handing the planner a zero pad stride.
  EXPECT_EQ(umm::conflict_free_stride(
                umm::SharedTier{.banks = 8, .bank_words = 0, .latency = 1}),
            1u);

  const trace::Program program = algos::find("prefix-sums").make_program(6);
  // make_layout maps the unset (0) parameter to stride 1.
  const Layout layout = make_layout(program, 4, Arrangement::kConflictFree, 0);
  const Layout column = Layout::column_wise(4, program.memory_words);
  EXPECT_EQ(layout.lane_stride(), column.lane_stride());
  EXPECT_EQ(layout.total_words(), column.total_words());
  std::set<Addr> seen;
  for (Lane j = 0; j < 4; ++j) {
    for (Addr a = 0; a < program.memory_words; ++a) {
      EXPECT_EQ(layout.global(a, j), column.global(a, j));
      EXPECT_TRUE(seen.insert(layout.global(a, j)).second);
    }
  }
  EXPECT_EQ(seen.size(), layout.total_words());  // the scatter stays a bijection
}

TEST(Layout, Names) {
  EXPECT_EQ(Layout::row_wise(4, 4).name(), "row-wise");
  EXPECT_EQ(Layout::column_wise(4, 4).name(), "column-wise");
  EXPECT_EQ(Layout::blocked(4, 4, 2).name(), "blocked(2)");
  EXPECT_EQ(Layout::conflict_free(4, 4, 3).name(), "conflict-free(3)");
}

}  // namespace

// Workload characterisation and execution advice.
#include <gtest/gtest.h>

#include "advisor/characterize.hpp"
#include "algos/horner.hpp"
#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "algos/tea_cipher.hpp"

namespace {

using namespace obx;
using namespace obx::advisor;

const umm::MachineConfig kCfg{.width = 32, .latency = 200};

TEST(Advisor, ProfileNumbers) {
  const Characterization c = characterize(algos::prefix_sums_program(32), 1024, kCfg);
  EXPECT_EQ(c.memory_steps, 64u);
  EXPECT_EQ(c.compute_steps, 33u);  // 32 adds + 1 imm
  EXPECT_NEAR(c.reuse_ratio, 2.0, 1e-12);
  EXPECT_EQ(c.lanes, 1024u);
}

TEST(Advisor, RecommendsColumnWise) {
  const Characterization c =
      characterize(algos::prefix_sums_program(64), 1 << 16, kCfg);
  EXPECT_EQ(c.recommended_arrangement, bulk::Arrangement::kColumnWise);
  EXPECT_GT(c.coalescing_gain, 16.0);
  EXPECT_LT(c.lower_bound_ratio, 3.0);
  EXPECT_GE(c.lower_bound_ratio, 1.0);
}

TEST(Advisor, DetectsLatencyBoundRegime) {
  // Few lanes: the l*t floor dominates.
  const Characterization small = characterize(algos::prefix_sums_program(64), 64, kCfg);
  EXPECT_TRUE(small.latency_bound);
  // Many lanes: bandwidth takes over.
  const Characterization big =
      characterize(algos::prefix_sums_program(64), 1 << 20, kCfg);
  EXPECT_FALSE(big.latency_bound);
}

TEST(Advisor, ComputeBoundProgramHasHighIntensity) {
  const Characterization tea = characterize(algos::tea_program(8), 1024, kCfg);
  EXPECT_GT(tea.arithmetic_intensity, 50.0);
  const Characterization prefix =
      characterize(algos::prefix_sums_program(64), 1024, kCfg);
  EXPECT_LT(prefix.arithmetic_intensity, 2.0);
}

TEST(Advisor, HmmAdviceFollowsReuse) {
  const hmm::HmmConfig hier = hmm::gtx_titan_hmm();
  const Characterization opt =
      characterize(algos::opt_program(32), 1 << 14, kCfg, &hier);
  EXPECT_TRUE(opt.hmm_staging_fits);
  EXPECT_GT(opt.hmm_staging_gain, 1.5);

  const Characterization horner =
      characterize(algos::horner_program(64), 1 << 14, kCfg, &hier);
  EXPECT_TRUE(horner.hmm_staging_fits);
  EXPECT_LT(horner.hmm_staging_gain, opt.hmm_staging_gain);
}

TEST(Advisor, OversizedProgramDoesNotFitHmm) {
  hmm::HmmConfig hier = hmm::gtx_titan_hmm();
  hier.shared_capacity_words = 16;
  const Characterization c =
      characterize(algos::prefix_sums_program(64), 1024, kCfg, &hier);
  EXPECT_FALSE(c.hmm_staging_fits);
  EXPECT_EQ(c.hmm_staging_gain, 0.0);
}

TEST(Advisor, SummaryMentionsTheEssentials) {
  const hmm::HmmConfig hier = hmm::gtx_titan_hmm();
  const Characterization c =
      characterize(algos::opt_program(16), 1 << 14, kCfg, &hier);
  const std::string s = c.summary();
  EXPECT_NE(s.find("memory steps"), std::string::npos);
  EXPECT_NE(s.find("coalescing gain"), std::string::npos);
  EXPECT_NE(s.find("recommended arrangement: column-wise"), std::string::npos);
  EXPECT_NE(s.find("Theorem 3"), std::string::npos);
  EXPECT_NE(s.find("HMM"), std::string::npos);
}

TEST(Advisor, Validation) {
  EXPECT_THROW(characterize(trace::Program{}, 4, kCfg), std::logic_error);
  EXPECT_THROW(characterize(algos::prefix_sums_program(4), 0, kCfg), std::logic_error);
}

}  // namespace

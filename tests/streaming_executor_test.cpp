// Memory-bounded streaming bulk execution.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/streaming_executor.hpp"
#include "common/rng.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

struct Fixture {
  trace::Program program;
  std::vector<Word> inputs;   // lane-major
  std::vector<Word> expected; // lane-major outputs from the monolithic path
  std::size_t p;

  explicit Fixture(const std::string& name, std::size_t n, std::size_t lanes) : p(lanes) {
    const algos::Algorithm& algo = algos::find(name);
    program = algo.make_program(n);
    Rng rng(55);
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algo.make_input(n, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
    }
    expected = run_bulk(program, inputs, p, Arrangement::kColumnWise).flat;
  }

  void fill(Lane j, std::span<Word> dst) const {
    const Word* src = inputs.data() + j * program.input_words;
    std::copy(src, src + program.input_words, dst.begin());
  }
};

TEST(Streaming, MatchesMonolithicRunAcrossBatchSizes) {
  const Fixture fx("prefix-sums", 16, 37);  // deliberately awkward p
  for (const std::size_t batch : {1u, 2u, 7u, 16u, 37u, 100u}) {
    StreamingExecutor exec(StreamingExecutor::Options{.max_resident_lanes = batch});
    std::vector<Word> got(fx.expected.size(), Word{0});
    std::vector<bool> seen(fx.p, false);
    const auto stats = exec.run(
        fx.program, fx.p, [&](Lane j, std::span<Word> dst) { fx.fill(j, dst); },
        [&](Lane j, std::span<const Word> out) {
          seen[j] = true;
          std::copy(out.begin(), out.end(),
                    got.begin() + static_cast<std::ptrdiff_t>(j * fx.program.output_words));
        });
    EXPECT_EQ(stats.batches, (fx.p + batch - 1) / batch) << "batch=" << batch;
    EXPECT_EQ(stats.lanes, fx.p);
    for (bool s : seen) EXPECT_TRUE(s);
    EXPECT_EQ(got, fx.expected) << "batch=" << batch;
  }
}

TEST(Streaming, RowWiseArrangementAgrees) {
  const Fixture fx("bitonic-sort", 32, 11);
  StreamingExecutor exec(StreamingExecutor::Options{
      .max_resident_lanes = 4, .arrangement = Arrangement::kRowWise});
  std::vector<Word> got(fx.expected.size(), Word{0});
  exec.run(
      fx.program, fx.p, [&](Lane j, std::span<Word> dst) { fx.fill(j, dst); },
      [&](Lane j, std::span<const Word> out) {
        std::copy(out.begin(), out.end(),
                  got.begin() + static_cast<std::ptrdiff_t>(j * fx.program.output_words));
      });
  EXPECT_EQ(got, fx.expected);
}

TEST(Streaming, LanesVisitedInOrder) {
  const Fixture fx("horner", 8, 9);
  StreamingExecutor exec(StreamingExecutor::Options{.max_resident_lanes = 4});
  Lane next_fill = 0, next_consume = 0;
  exec.run(
      fx.program, fx.p,
      [&](Lane j, std::span<Word> dst) {
        EXPECT_EQ(j, next_fill++);
        fx.fill(j, dst);
      },
      [&](Lane j, std::span<const Word>) { EXPECT_EQ(j, next_consume++); });
  EXPECT_EQ(next_fill, fx.p);
  EXPECT_EQ(next_consume, fx.p);
}

TEST(Streaming, AttributesCallbackTimeSeparatelyFromExecution) {
  const Fixture fx("prefix-sums", 16, 8);
  StreamingExecutor exec(StreamingExecutor::Options{.max_resident_lanes = 4});
  const auto stats = exec.run(
      fx.program, fx.p,
      [&](Lane j, std::span<Word> dst) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        fx.fill(j, dst);
      },
      [&](Lane, std::span<const Word>) {});
  // 8 fill callbacks sleeping 1ms each: the slack must be attributed to
  // callback_seconds, not folded into the engine's execute_seconds.
  EXPECT_GE(stats.callback_seconds, 0.008);
  EXPECT_GE(stats.execute_seconds, 0.0);
  EXPECT_LT(stats.execute_seconds, stats.callback_seconds);
  EXPECT_DOUBLE_EQ(stats.seconds(), stats.execute_seconds + stats.callback_seconds);
}

TEST(Streaming, Validation) {
  EXPECT_THROW(StreamingExecutor(StreamingExecutor::Options{.max_resident_lanes = 0}),
               std::logic_error);
  const Fixture fx("horner", 4, 2);
  StreamingExecutor exec;
  EXPECT_THROW(exec.run(fx.program, 2, nullptr, [](Lane, std::span<const Word>) {}),
               std::logic_error);
}

}  // namespace

// Compile cache, budget fallback, segmenting, and fusion-pass unit tests.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "common/rng.hpp"
#include "exec/backend.hpp"
#include "exec/compiled_program.hpp"
#include "exec/jit/jit_program.hpp"
#include "opt/fusion.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace obx;
using opt::FusedKind;
using trace::Op;
using trace::Step;

constexpr std::size_t kCountingWords = 8;

Generator<Step> counting_steps() {
  for (std::size_t i = 0; i < kCountingWords; ++i) {
    co_yield Step::load(1, static_cast<Addr>(i));
    co_yield Step::alu(Op::kAddI, 0, 0, 1);
    co_yield Step::store(static_cast<Addr>(i), 0);
  }
}

/// A program whose stream factory counts its invocations.
trace::Program counting_program(std::shared_ptr<std::atomic<int>> invocations) {
  trace::Program p;
  p.name = "counting";
  p.memory_words = kCountingWords;
  p.input_words = kCountingWords;
  p.output_offset = 0;
  p.output_words = kCountingWords;
  p.register_count = 2;
  p.stream = [invocations]() {
    ++*invocations;
    return counting_steps();
  };
  return p;
}

std::vector<Word> iota_inputs(std::size_t p, std::size_t n) {
  std::vector<Word> inputs(p * n);
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i * 3 + 1;
  return inputs;
}

TEST(CompileCache, StreamDrainedAtMostOncePerProcess) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  const trace::Program program = counting_program(invocations);
  const std::size_t p = 96;
  const std::vector<Word> inputs = iota_inputs(p, kCountingWords);

  // Many runs, several executors, multiple workers (= multiple chunks), a
  // copy of the program: the stream factory must still fire exactly once.
  const trace::Program copy = program;
  for (unsigned workers : {1u, 4u}) {
    const bulk::HostBulkExecutor exec(
        bulk::Layout::column_wise(p, program.memory_words),
        bulk::HostBulkExecutor::Options{.workers = workers, .tile_lanes = 16});
    const auto run1 = exec.run(program, inputs);
    const auto run2 = exec.run(copy, inputs);
    // kAuto runs the JIT where emission is available and the compiled
    // switch everywhere else — either way the program compiled.
    EXPECT_EQ(run1.backend, exec::jit_available() ? exec::Backend::kJit
                                                  : exec::Backend::kCompiled);
    EXPECT_EQ(run1.memory, run2.memory);
  }
  EXPECT_EQ(invocations->load(), 1);
}

TEST(CompileCache, OverBudgetFallsBackAndRemembersFailure) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  const trace::Program program = counting_program(invocations);
  const std::size_t p = 8;
  const std::vector<Word> inputs = iota_inputs(p, kCountingWords);

  const bulk::HostBulkExecutor exec(
      bulk::Layout::column_wise(p, program.memory_words),
      bulk::HostBulkExecutor::Options{.backend = exec::Backend::kCompiled,
                                      .compile_budget_steps = 4});
  const auto run1 = exec.run(program, inputs);
  EXPECT_EQ(run1.backend, exec::Backend::kInterpreted);  // automatic fallback
  // One aborted compile drain + one interpreted chunk.
  EXPECT_EQ(invocations->load(), 2);

  const auto run2 = exec.run(program, inputs);
  EXPECT_EQ(run2.backend, exec::Backend::kInterpreted);
  // The failed budget is remembered: only the interpreted chunk drains.
  EXPECT_EQ(invocations->load(), 3);
  EXPECT_EQ(run1.memory, run2.memory);

  // Interpreted fallback is still correct.
  const trace::InterpreterResult ref = trace::interpret(
      program, std::span<const Word>(inputs.data(), kCountingWords));
  for (std::size_t i = 0; i < kCountingWords; ++i) {
    EXPECT_EQ(run2.memory[i * p], ref.memory[i]);
  }
}

TEST(CompileCache, RaisedBudgetRetriesAfterFailure) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  const trace::Program program = counting_program(invocations);
  EXPECT_EQ(exec::CompiledProgram::get_or_compile(program, {.max_steps = 4}), nullptr);
  EXPECT_EQ(invocations->load(), 1);
  // Same budget again: no re-drain.
  EXPECT_EQ(exec::CompiledProgram::get_or_compile(program, {.max_steps = 4}), nullptr);
  EXPECT_EQ(invocations->load(), 1);
  // Larger budget: retried, succeeds, then cached.
  const auto compiled = exec::CompiledProgram::get_or_compile(program, {.max_steps = 1000});
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(invocations->load(), 2);
  EXPECT_EQ(exec::CompiledProgram::get_or_compile(program, {.max_steps = 1000}), compiled);
  EXPECT_EQ(invocations->load(), 2);
  EXPECT_EQ(compiled->total_steps(), kCountingWords * 3);
  EXPECT_EQ(compiled->counts().loads, kCountingWords);
  EXPECT_EQ(compiled->counts().stores, kCountingWords);
  EXPECT_EQ(compiled->counts().alu, kCountingWords);
}

TEST(CompiledProgramTest, SegmentBoundariesPreserveSemantics) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 64;
  const std::size_t p = 7;
  const trace::Program program = algo.make_program(n);
  Rng rng(3);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }

  // Tiny segments (and a segment size that is not a multiple of 3, so fused
  // triples are split across boundaries) must not change results.
  const auto compiled = exec::CompiledProgram::compile(
      program, {.max_steps = 1u << 20, .segment_steps = 17});
  ASSERT_NE(compiled, nullptr);
  ASSERT_GT(compiled->segments().size(), 1u);

  const bulk::Layout layout = bulk::Layout::column_wise(p, program.memory_words);
  std::vector<Word> memory(layout.total_words(), Word{0});
  exec::run_compiled_chunk(*compiled, layout, inputs, program.input_words, memory, 0, p,
                           /*tile_lanes=*/4);

  for (std::size_t j = 0; j < p; ++j) {
    const trace::InterpreterResult ref = trace::interpret(
        program,
        std::span<const Word>(inputs.data() + j * program.input_words,
                              program.input_words));
    for (std::size_t a = 0; a < program.memory_words; ++a) {
      ASSERT_EQ(memory[layout.global(static_cast<Addr>(a), j)], ref.memory[a])
          << "lane " << j << " word " << a;
    }
  }
}

TEST(CompiledProgramTest, WidensUnderDeclaredRegisterCount) {
  trace::Program p;
  p.name = "wide";
  p.memory_words = 1;
  p.register_count = 1;  // lies: steps use r9
  p.stream = [] {
    return []() -> Generator<Step> {
      co_yield Step::immediate(9, 42);
      co_yield Step::store(0, 9);
    }();
  };
  const auto compiled = exec::CompiledProgram::compile(p);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->register_count(), 10u);
}

// ---------------------------------------------------------------------------
// Fusion pass unit tests.

TEST(FusionTest, RecognisesTripleRunWithLoadOperandFlag) {
  std::vector<Step> steps;
  steps.push_back(Step::immediate(0, 0));
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i) {
    steps.push_back(Step::load(1, static_cast<Addr>(i)));
    steps.push_back(Step::alu(Op::kAddF, 0, 0, 1));
    steps.push_back(Step::store(static_cast<Addr>(i), 0));
  }
  const opt::FusionResult r = opt::fuse(steps);
  ASSERT_EQ(r.ops.size(), 2u);
  EXPECT_EQ(r.ops[0].kind, FusedKind::kImm);
  EXPECT_EQ(r.ops[1].kind, FusedKind::kTripleRun);
  EXPECT_EQ(r.ops[1].run_len, n);
  EXPECT_EQ(r.ops[1].dst, 0);   // accumulator
  EXPECT_EQ(r.ops[1].aux, 1);   // loaded register
  EXPECT_NE(r.ops[1].flags & opt::kTripleS1Loaded, 0);
  EXPECT_EQ(r.ops[1].flags & opt::kTripleS0Loaded, 0);
  EXPECT_EQ(r.counts.loads, n);
  EXPECT_EQ(r.counts.stores, n);
  EXPECT_EQ(r.counts.alu, n);
  EXPECT_EQ(r.counts.imm, 1u);
  EXPECT_EQ(r.run_steps.size(), 3 * n);
}

TEST(FusionTest, CmovNeverJoinsTripleRuns) {
  std::vector<Step> steps;
  for (std::size_t i = 0; i < 4; ++i) {
    steps.push_back(Step::load(1, static_cast<Addr>(i)));
    steps.push_back(Step::alu(Op::kCmovLtI, 0, 0, 1, 1));
    steps.push_back(Step::store(static_cast<Addr>(i), 0));
  }
  const opt::FusionResult r = opt::fuse(steps);
  for (const opt::FusedOp& op : r.ops) {
    EXPECT_NE(op.kind, FusedKind::kTripleRun);
  }
}

TEST(FusionTest, ElidesDeadLoadCommit) {
  // r1 is overwritten by the next load before being read again: the first
  // group's commit of r1 is dead.
  std::vector<Step> steps = {
      Step::load(1, 0),
      Step::alu(Op::kAddI, 2, 1, 1),
      Step::load(1, 1),
      Step::store(2, 2),
  };
  const opt::FusionResult r = opt::fuse(steps);
  ASSERT_EQ(r.ops.size(), 3u);
  EXPECT_EQ(r.ops[0].kind, FusedKind::kLoadAlu);
  EXPECT_NE(r.ops[0].flags & opt::kElideAuxCommit, 0);
  EXPECT_EQ(r.ops[1].kind, FusedKind::kLoad);
  // The second load's value is never overwritten afterwards: stays live.
  EXPECT_EQ(r.ops[1].flags & opt::kElideAuxCommit, 0);
  EXPECT_EQ(r.ops[2].kind, FusedKind::kStore);
}

TEST(FusionTest, GroupsRegisterOnlyRunsAndPairs) {
  std::vector<Step> steps = {
      Step::immediate(0, 7),
      Step::alu(Op::kAddI, 1, 0, 0),
      Step::store(0, 1),
      Step::alu(Op::kMulI, 2, 1, 1),
      Step::alu(Op::kAddI, 3, 2, 2),
      Step::alu(Op::kXor, 4, 3, 3),
      Step::store(1, 4),
  };
  const opt::FusionResult r = opt::fuse(steps);
  ASSERT_EQ(r.ops.size(), 4u);
  EXPECT_EQ(r.ops[0].kind, FusedKind::kImmAlu);
  EXPECT_EQ(r.ops[1].kind, FusedKind::kStore);
  EXPECT_EQ(r.ops[2].kind, FusedKind::kRegRun);
  EXPECT_EQ(r.ops[2].run_len, 3u);
  EXPECT_EQ(r.ops[3].kind, FusedKind::kStore);
}

TEST(FusionTest, FusesAluStoreAndLoadAluStore) {
  std::vector<Step> steps = {
      Step::load(0, 0),
      Step::load(1, 1),
      Step::alu(Op::kMaxI, 2, 0, 1),
      Step::store(2, 2),
  };
  const opt::FusionResult r = opt::fuse(steps);
  ASSERT_EQ(r.ops.size(), 2u);
  EXPECT_EQ(r.ops[0].kind, FusedKind::kLoad);
  EXPECT_EQ(r.ops[1].kind, FusedKind::kLoadAluStore);
  EXPECT_EQ(r.ops[1].aux, 1);
  EXPECT_EQ(r.ops[1].aux2, 2);
  EXPECT_EQ(r.ops[1].addr, 1u);
  EXPECT_EQ(r.ops[1].addr2, 2u);
}

// serve::ProgramCache compiles at registration (the serving layer's
// "compile each id exactly once") — verified through the shared slot.
TEST(CompileCache, PreparedProgramCompilesEagerly) {
  const trace::Program program = algos::find("prefix-sums").make_program(16);
  // Compile via the slot the serving layer will use.
  const auto first = exec::CompiledProgram::get_or_compile(program);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(exec::CompiledProgram::get_or_compile(program), first);
}

}  // namespace

// Stress suite for the thread-per-core work-stealing scheduler
// (bulk::CorePool): concurrent submitters, steal-heavy skewed tile costs,
// nested submission from inside a task, clean shutdown with tasks queued,
// exception semantics through both the pool and the parallel_for_chunks
// shim, and bit-identical executor output across worker counts for the
// whole algorithm registry × arrangements × SIMD tiers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/core_pool.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/thread_pool.hpp"
#include "common/rng.hpp"
#include "common/simd_isa.hpp"
#include "exec/backend.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

/// Burns roughly `iters` of CPU without sleeping (sleeps would let every
/// thread interleave trivially and hide scheduling bugs).
void busy_work(std::size_t iters) {
  volatile std::uint64_t sink = 0;
  for (std::size_t i = 0; i < iters; ++i) sink = sink + i;
}

TEST(CorePool, CoversRangeExactlyOnce) {
  CorePool pool(CorePool::Config{.workers = 4});
  constexpr std::size_t kCount = 10007;
  std::vector<std::atomic<int>> hits(kCount);
  const SchedulerStats stats =
      pool.parallel_for(kCount, 1, 16, 4, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "lane " << i;
  }
  EXPECT_EQ(stats.tasks, (kCount + 15) / 16);
}

TEST(CorePool, RespectsAlignmentAndGrainRounding) {
  CorePool pool(CorePool::Config{.workers = 4});
  constexpr std::size_t kAlign = 7;
  constexpr std::size_t kCount = 7 * 123;
  std::atomic<std::size_t> covered{0};
  // Grain 10 is not an align multiple: the pool must round it up to 14.
  pool.parallel_for(kCount, kAlign, 10, 4, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin % kAlign, 0u);
    EXPECT_TRUE(end % kAlign == 0 || end == kCount);
    covered.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), kCount);
}

TEST(CorePool, ConcurrentSubmittersEachCoverTheirOwnRange) {
  CorePool pool(CorePool::Config{.workers = 4});
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kCount = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kCount);
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 8; ++round) {
        pool.parallel_for(kCount, 1, 64, 4, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[s][i].fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[s][i].load(), 8) << "submitter " << s << " lane " << i;
    }
  }
}

TEST(CorePool, StealsUnderSkewedTileCosts) {
  CorePool pool(CorePool::Config{.workers = 4});
  // 512 one-lane tiles with wildly skewed costs: a static partition would
  // leave the expensive tail on one thread; the steal loop must spread it.
  constexpr std::size_t kTiles = 512;
  std::vector<std::atomic<int>> hits(kTiles);
  SchedulerStats total;
  // With 4 workers woken against a deque of 512 slow tiles, tiles must get
  // stolen off the submitter's deque.  Retry bounded rounds rather than
  // asserting on one: on a heavily loaded (or single-CPU) host the OS may
  // give the submitter a long uninterrupted slice.
  int rounds = 0;
  while (total.steals == 0 && rounds < 20) {
    ++rounds;
    total += pool.parallel_for(kTiles, 1, 1, 4, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        busy_work((i % 64) * 300);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t i = 0; i < kTiles; ++i) ASSERT_EQ(hits[i].load(), rounds);
  EXPECT_EQ(total.tasks, static_cast<std::uint64_t>(rounds) * kTiles);
  EXPECT_GT(total.steals, 0u);
  EXPECT_GT(pool.counters().steals, 0u);
}

TEST(CorePool, NestedSubmissionFromInsideATask) {
  CorePool pool(CorePool::Config{.workers = 3});
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 256;
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(kOuter, 1, 1, 3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t o = begin; o < end; ++o) {
      // A worker (or the caller) submitting from inside a task must drain
      // its own deque rather than deadlock waiting on itself.
      pool.parallel_for(kInner, 1, 32, 3, [&](std::size_t b2, std::size_t e2) {
        sum.fetch_add(e2 - b2, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(sum.load(), kOuter * kInner);
}

TEST(CorePool, CleanShutdownWaitsForQueuedTasks) {
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> region_started{false};
  std::atomic<bool> submitted{false};
  auto* pool = new CorePool(CorePool::Config{.workers = 2});
  std::thread submitter([&] {
    pool->parallel_for(hits.size(), 1, 1, 3, [&](std::size_t begin, std::size_t end) {
      region_started.store(true, std::memory_order_release);
      for (std::size_t i = begin; i < end; ++i) {
        busy_work(20000);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    submitted.store(true, std::memory_order_release);
  });
  // Destroy the pool while the region is in flight (first tile has started,
  // the rest are still queued): the destructor must wait for every queued
  // tile, not abandon them.
  while (!region_started.load(std::memory_order_acquire)) std::this_thread::yield();
  delete pool;
  submitter.join();
  EXPECT_TRUE(submitted.load(std::memory_order_acquire));
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(CorePool, FirstErrorRethrownAndRemainingTilesSkipped) {
  CorePool pool(CorePool::Config{.workers = 4});
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(256, 1, 1, 4, [&](std::size_t begin, std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (begin % 3 == 0) throw std::runtime_error("tile failed");
    });
    FAIL() << "expected the tile exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tile failed");
  }
  // At least the throwing tile ran; tiles observed after the failure flag
  // was set are skipped, so a failed region finishes quickly.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), 256);
}

TEST(CorePool, ShimPropagatesWorkerExceptionsAcrossManyChunks) {
  // Regression for the thread_pool -> CorePool migration: the shim must
  // keep first-error-rethrown-on-caller semantics for multi-chunk regions.
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for_chunks(1024, 8, 1,
                          [&](std::size_t begin, std::size_t end) {
                            executed.fetch_add(1, std::memory_order_relaxed);
                            if (begin >= 512) throw std::invalid_argument("late chunk");
                            (void)end;
                          }),
      std::invalid_argument);
  EXPECT_GE(executed.load(), 1);
}

TEST(CorePool, NestedErrorDoesNotPoisonOuterRegion) {
  CorePool pool(CorePool::Config{.workers = 3});
  std::atomic<int> outer_done{0};
  std::atomic<int> inner_throws{0};
  pool.parallel_for(8, 1, 1, 3, [&](std::size_t, std::size_t) {
    try {
      pool.parallel_for(8, 1, 1, 3, [&](std::size_t b, std::size_t) {
        if (b == 0) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      inner_throws.fetch_add(1, std::memory_order_relaxed);
    }
    outer_done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(outer_done.load(), 8);
  EXPECT_EQ(inner_throws.load(), 8);
}

TEST(CorePool, SingleWorkerRunsInlineWithoutTouchingThePool) {
  CorePool pool(CorePool::Config{.workers = 4});
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  const SchedulerStats stats =
      pool.parallel_for(1000, 1, 10, 1, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 1000u);
        ++calls;
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(stats.tasks, 1u);
  EXPECT_EQ(stats.steals, 0u);
  // Inline regions never start the workers, so the pool stays cold.
  EXPECT_EQ(pool.counters().tasks, 0u);
}

TEST(CorePool, CountersTrackWorkAndTopology) {
  CorePool pool(CorePool::Config{.workers = 2});
  EXPECT_EQ(pool.worker_count(), 2u);
  EXPECT_EQ(pool.counters().worker_busy_ns.size(), 2u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1024, 1, 8, 2, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1024u);
  const CorePool::CountersSnapshot c = pool.counters();
  EXPECT_EQ(c.tasks, 1024u / 8);
  EXPECT_EQ(c.worker_busy_ns.size(), 2u);
}

TEST(CorePool, MoreWorkersRequestedThanTilesIsFine) {
  CorePool pool(CorePool::Config{.workers = 2});
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, 1, 1, 64, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(CorePool, ManyShortLivedExternalSubmitters) {
  // Slot-registry churn: every submission from a fresh thread registers and
  // unregisters a stack deque; pins must never dangle.
  CorePool pool(CorePool::Config{.workers = 2});
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        pool.parallel_for(64, 1, 4, 3, [&](std::size_t begin, std::size_t end) {
          sum.fetch_add(end - begin, std::memory_order_relaxed);
        });
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(sum.load(), 10u * 8u * 64u);
}

/// Bit-identical output across worker counts: the scheduler may reorder and
/// steal tiles, but every lane's result (and the arranged memory image as a
/// whole) must match the workers = 1 inline run exactly — for every registry
/// algorithm, both plannable arrangements, and the scalar + widest SIMD
/// tiers, through the shared process-wide pool.
TEST(CorePoolEquivalence, BitIdenticalAcrossWorkerCountsEverywhere) {
  const std::size_t p = 65;  // ragged against every tile and vector width
  std::vector<SimdIsa> tiers{SimdIsa::kScalar};
  if (detect_simd_isa() != SimdIsa::kScalar) tiers.push_back(detect_simd_isa());

  for (const algos::Algorithm& algo : algos::registry()) {
    const std::size_t n = algo.test_sizes.front();
    const trace::Program program = algo.make_program(n);
    Rng rng(0xC0DEu ^ n);
    std::vector<Word> inputs;
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algo.make_input(n, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
    }
    for (const Arrangement arr : {Arrangement::kRowWise, Arrangement::kColumnWise}) {
      const Layout layout = make_layout(program, p, arr);
      for (const SimdIsa isa : tiers) {
        const HostBulkExecutor serial(
            layout, HostBulkExecutor::Options{
                        .workers = 1, .backend = exec::Backend::kAuto, .simd = isa});
        const HostBulkExecutor pooled(
            layout, HostBulkExecutor::Options{
                        .workers = 4, .backend = exec::Backend::kAuto, .simd = isa});
        const HostRunResult a = serial.run(program, inputs);
        const HostRunResult b = pooled.run(program, inputs);
        ASSERT_EQ(a.backend, b.backend);
        ASSERT_EQ(a.memory, b.memory)
            << algo.name << " " << layout.name() << " tier " << to_string(isa);
        EXPECT_EQ(a.counts.total(), b.counts.total()) << algo.name;
        EXPECT_EQ(serial.gather_outputs(program, a.memory),
                  pooled.gather_outputs(program, b.memory))
            << algo.name;
      }
    }
  }
}

TEST(CorePoolDefaults, DefaultWorkerCountIsPositiveAndAffinityBounded) {
  const unsigned n = default_worker_count();
  EXPECT_GE(n, 1u);
  // Latched: repeated calls agree (the pool sizes itself from this).
  EXPECT_EQ(default_worker_count(), n);
  EXPECT_LE(n, 1024u);
}

}  // namespace

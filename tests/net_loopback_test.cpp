// End-to-end loopback: net::Client ↔ net::Server ↔ serve::BulkService.
// Multi-tenant, mixed priorities, outputs bit-identical to direct run_bulk,
// exactly-once resolution even when the server closes mid-stream.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace obx;
using namespace std::chrono_literals;

struct LoopbackProgram {
  std::string id;
  const algos::Algorithm* algo;
  std::size_t n;
  trace::Program program;
};

std::vector<LoopbackProgram> loopback_programs() {
  std::vector<LoopbackProgram> programs;
  for (const auto& [name, n] :
       std::initializer_list<std::pair<const char*, std::size_t>>{
           {"prefix-sums", 16}, {"horner", 12}}) {
    const algos::Algorithm& algo = algos::find(name);
    programs.push_back(LoopbackProgram{
        .id = name, .algo = &algo, .n = n, .program = algo.make_program(n)});
  }
  return programs;
}

serve::ServiceOptions loopback_service_options() {
  serve::ServiceOptions options;
  options.queue_capacity = 256;
  options.batcher.max_batch_lanes = 32;
  options.batcher.max_batch_delay = 300us;
  options.executors = 2;
  return options;
}

TEST(NetLoopback, MultiTenantMixedPrioritiesBitIdentical) {
  const std::vector<LoopbackProgram> programs = loopback_programs();
  serve::BulkService service(loopback_service_options());
  for (const auto& p : programs) {
    service.register_program(p.id, p.algo->make_program(p.n));
  }
  net::Server server(service, net::ServerOptions{});

  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kJobsPerTenant = 40;
  static const serve::Priority kPriorities[] = {
      serve::Priority::kHigh, serve::Priority::kNormal, serve::Priority::kLow,
      serve::Priority::kNormal};

  std::vector<std::thread> threads;
  std::vector<std::size_t> completed(kTenants, 0);
  std::vector<std::size_t> mismatches(kTenants, 0);
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      net::Client client(server.host(), server.port());
      ASSERT_TRUE(client.connected()) << client.error();
      for (std::size_t i = 0; i < kJobsPerTenant; ++i) {
        const LoopbackProgram& p = programs[rng.next_below(programs.size())];
        std::vector<Word> input = p.algo->make_input(p.n, rng);
        const net::Client::Result r =
            client.submit(p.id, input, "tenant-" + std::to_string(t),
                          kPriorities[t]);
        ASSERT_TRUE(r.ok()) << r.transport_error << " " << r.error;
        const bulk::BulkOutputs direct = bulk::run_bulk(p.program, input, 1);
        if (r.output != direct.flat) {
          ++mismatches[t];
        } else {
          ++completed[t];
        }
        EXPECT_GE(r.batch_lanes, 1u);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::size_t total_completed = 0;
  for (std::size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "tenant " << t << " outputs diverged";
    total_completed += completed[t];
  }
  EXPECT_EQ(total_completed, kTenants * kJobsPerTenant);

  // Every tenant shows up in the scraped metrics with its own counters.
  const std::string scrape = server.scrape_metrics();
  for (std::size_t t = 0; t < kTenants; ++t) {
    const std::string label = "tenant=\"tenant-" + std::to_string(t) + "\"";
    EXPECT_NE(scrape.find(label), std::string::npos)
        << "tenant " << t << " missing from scrape";
  }
  EXPECT_NE(scrape.find("obx_net_responses_sent_total"), std::string::npos);

  const net::ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.submits_admitted, kTenants * kJobsPerTenant);
  EXPECT_TRUE(stats.exactly_once());

  server.stop();
  service.stop();
}

TEST(NetLoopback, PipelinedOutOfOrderResponses) {
  const std::vector<LoopbackProgram> programs = loopback_programs();
  serve::BulkService service(loopback_service_options());
  for (const auto& p : programs) {
    service.register_program(p.id, p.algo->make_program(p.n));
  }
  net::Server server(service, net::ServerOptions{});

  Rng rng(7);
  net::Client client(server.host(), server.port());
  ASSERT_TRUE(client.connected());

  // Pipeline a window of requests alternating across programs (different
  // programs batch separately, so responses interleave), then wait for them
  // in reverse submission order.
  struct Pending {
    std::uint32_t id;
    std::vector<Word> expect;
  };
  std::vector<Pending> window;
  for (std::size_t i = 0; i < 24; ++i) {
    const LoopbackProgram& p = programs[i % programs.size()];
    std::vector<Word> input = p.algo->make_input(p.n, rng);
    const bulk::BulkOutputs direct = bulk::run_bulk(p.program, input, 1);
    const auto id = client.submit_async(p.id, std::move(input));
    ASSERT_TRUE(id.has_value());
    window.push_back(Pending{*id, direct.flat});
  }
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    const net::Client::Result r = client.wait(it->id);
    ASSERT_TRUE(r.ok()) << r.transport_error << " " << r.error;
    EXPECT_EQ(r.output, it->expect);
  }
  EXPECT_EQ(client.outstanding(), 0u);

  server.stop();
  service.stop();
}

TEST(NetLoopback, UnknownProgramAndBadInputGetErrorFrames) {
  serve::BulkService service(loopback_service_options());
  const std::vector<LoopbackProgram> programs = loopback_programs();
  service.register_program(programs[0].id,
                           programs[0].algo->make_program(programs[0].n));
  net::Server server(service, net::ServerOptions{});

  net::Client client(server.host(), server.port());
  const net::Client::Result unknown = client.submit("no-such-program", {1});
  ASSERT_TRUE(unknown.error_code.has_value());
  EXPECT_EQ(*unknown.error_code, net::ErrorCode::kUnknownProgram);

  const net::Client::Result bad = client.submit(programs[0].id, {1, 2, 3});
  ASSERT_TRUE(bad.error_code.has_value());
  EXPECT_EQ(*bad.error_code, net::ErrorCode::kBadInput);

  // The connection survives both errors.
  Rng rng(3);
  std::vector<Word> input = programs[0].algo->make_input(programs[0].n, rng);
  EXPECT_TRUE(client.submit(programs[0].id, input).ok());

  server.stop();
  service.stop();
}

TEST(NetLoopback, ServerCloseMidStreamResolvesEveryRequest) {
  const std::vector<LoopbackProgram> programs = loopback_programs();
  serve::BulkService service(loopback_service_options());
  for (const auto& p : programs) {
    service.register_program(p.id, p.algo->make_program(p.n));
  }
  auto server = std::make_unique<net::Server>(service, net::ServerOptions{});
  const std::string host = server->host();
  const std::uint16_t port = server->port();

  constexpr std::size_t kClients = 3;
  std::vector<std::thread> threads;
  std::vector<std::size_t> resolved(kClients, 0);
  std::vector<std::size_t> submitted(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(40 + c);
      net::Client client(host, port);
      for (std::size_t i = 0; i < 200; ++i) {
        const LoopbackProgram& p = programs[rng.next_below(programs.size())];
        std::vector<Word> input = p.algo->make_input(p.n, rng);
        ++submitted[c];
        const net::Client::Result r =
            client.submit(p.id, std::move(input), "tenant-" + std::to_string(c));
        // Any terminal outcome counts: completed, an explicit shutdown
        // error frame, or a transport error once the server is gone.
        ++resolved[c];
        if (!r.transport_error.empty()) break;
      }
    });
  }
  std::this_thread::sleep_for(30ms);
  server->stop();  // mid-stream
  for (auto& t : threads) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(resolved[c], submitted[c])
        << "client " << c << " lost a request";
  }
  const net::ServerStatsSnapshot stats = server->stats();
  EXPECT_TRUE(stats.exactly_once())
      << "admitted=" << stats.submits_admitted
      << " sent=" << stats.responses_sent
      << " dropped=" << stats.responses_dropped;
  service.stop();
}

TEST(NetLoopback, ObliviousFamilyVariableLengthSessions) {
  // The serving scenario matrix over the wire: the three multicore-oblivious
  // workloads registered at several sizes each ("algo/n=N" session ids, what
  // `obx_cli serve --sizes` stands up), driven concurrently so batches with
  // mixed program ids and mixed input lengths are both in flight.  Every
  // output must be bit-identical to a direct run_bulk of that session's
  // program — a batch that ever mixed lengths would corrupt the scatter.
  struct Session {
    std::string id;
    const algos::Algorithm* algo;
    std::size_t n;
    trace::Program program;
  };
  std::vector<Session> sessions;
  for (const char* name :
       {"oblivious-merge", "oblivious-partition", "oblivious-aggregate"}) {
    const algos::Algorithm& algo = algos::find(name);
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{12}}) {
      sessions.push_back(Session{
          .id = std::string(name) + "/n=" + std::to_string(n),
          .algo = &algo,
          .n = n,
          .program = algo.make_program(n)});
    }
  }

  serve::BulkService service(loopback_service_options());
  for (const auto& s : sessions) {
    service.register_program(s.id, s.algo->make_program(s.n));
  }
  net::Server server(service, net::ServerOptions{});

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kJobsPerClient = 60;
  std::vector<std::thread> threads;
  std::vector<std::size_t> matched(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(700 + c);
      net::Client client(server.host(), server.port());
      ASSERT_TRUE(client.connected()) << client.error();
      for (std::size_t i = 0; i < kJobsPerClient; ++i) {
        const Session& s = sessions[rng.next_below(sessions.size())];
        std::vector<Word> input = s.algo->make_input(s.n, rng);
        const bulk::BulkOutputs direct = bulk::run_bulk(s.program, input, 1);
        const net::Client::Result r =
            client.submit(s.id, input, "tenant-" + std::to_string(c));
        ASSERT_TRUE(r.ok()) << s.id << ": " << r.transport_error << " "
                            << r.error;
        ASSERT_EQ(r.output, direct.flat) << s.id;
        ++matched[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(matched[c], kJobsPerClient);
  }

  const net::ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.submits_admitted, kClients * kJobsPerClient);
  EXPECT_TRUE(stats.exactly_once());
  server.stop();
  service.stop();
}

TEST(NetLoopback, LoadGeneratorExactlyOnceAcrossTenants) {
  const std::vector<LoopbackProgram> programs = loopback_programs();
  serve::ServiceOptions service_options = loopback_service_options();
  // Give one tenant a tight quota so throttling shows up in the report.
  service_options.tenant_quotas["bulk-low"] = serve::TenantQuota{200.0, 20};
  serve::BulkService service(service_options);
  for (const auto& p : programs) {
    service.register_program(p.id, p.algo->make_program(p.n));
  }
  net::Server server(service, net::ServerOptions{});

  std::vector<serve::WorkloadItem> workload;
  for (const auto& p : programs) {
    workload.push_back(serve::WorkloadItem{
        p.id, [algo = p.algo, n = p.n](Rng& rng) {
          return algo->make_input(n, rng);
        }});
  }
  std::vector<net::NetTenantSpec> tenants = {
      {.name = "interactive", .priority = serve::Priority::kHigh,
       .weight = 1.0, .connections = 2},
      {.name = "batchy", .priority = serve::Priority::kNormal,
       .weight = 2.0, .connections = 2},
      {.name = "bulk-low", .priority = serve::Priority::kLow,
       .weight = 1.0, .connections = 1},
  };
  net::NetLoadOptions load;
  load.jobs = 600;
  load.arrival_rate_hz = 6000;  // open-loop, deliberately hot
  load.bursty = true;
  load.pipeline_depth = 8;
  load.seed = 11;
  const net::NetLoadReport report =
      net::run_net_load(server.host(), server.port(), workload, tenants, load);

  EXPECT_TRUE(report.exactly_once())
      << "submitted=" << report.submitted << " completed=" << report.completed
      << " rejected=" << report.rejected << " shed=" << report.shed
      << " failed=" << report.failed
      << " transport=" << report.transport_errors;
  EXPECT_EQ(report.submitted, 600u);
  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_GT(report.completed, 0u);
  ASSERT_EQ(report.tenants.size(), 3u);
  for (const net::NetTenantReport& t : report.tenants) {
    EXPECT_GT(t.submitted, 0u) << t.tenant;
  }

  server.stop();
  service.stop();
}

TEST(NetLoopback, ParkedSubmitterDisconnectDoesNotLeakConnectionSlot) {
  // Attack from the review: fill the queue so a submit parks, then hang up.
  // A parked connection is not read and retry skips closing ones, so without
  // parked-frame discard each such peer would permanently squat one of the
  // max_connections slots (and stop() would burn the whole drain timeout).
  serve::ServiceOptions service_options;
  service_options.queue_capacity = 1;           // backpressure binds instantly
  service_options.policy = serve::OverflowPolicy::kBlock;
  service_options.batcher.max_batch_lanes = 1;  // one job per batch
  service_options.batcher.max_batch_delay = 100us;
  service_options.executors = 1;
  serve::BulkService service(service_options);
  const algos::Algorithm& algo = algos::find("prefix-sums");
  constexpr std::size_t kN = 1024;  // slow enough that the executor lags
  service.register_program("slow", algo.make_program(kN));
  net::ServerOptions server_options;
  server_options.max_connections = 4;
  net::Server server(service, server_options);

  Rng rng(77);
  // More abusive rounds than slots: any leak fills the table.
  for (int round = 0; round < 6; ++round) {
    net::Client client(server.host(), server.port());
    ASSERT_TRUE(client.connected()) << client.error();
    for (int i = 0; i < 16; ++i) {
      client.submit_async("slow", algo.make_input(kN, rng));
    }
    client.close();  // burst + EOF arrive in one readable pass
  }
  // Every abusive connection must be reaped once its writes fail or its
  // hangup is observed; a zombie keeps connections_active pinned above 0.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.stats().connections_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.stats().connections_active, 0u)
      << "closing parked connections were never reaped";
  EXPECT_GT(server.stats().would_block, 0u)
      << "no submit ever parked; the scenario under test did not fire";

  // The server still has all its slots: a fresh client is served normally.
  net::Client fresh(server.host(), server.port());
  ASSERT_TRUE(fresh.connected()) << fresh.error();
  std::vector<Word> input = algo.make_input(kN, rng);
  const bulk::BulkOutputs direct =
      bulk::run_bulk(algo.make_program(kN), input, 1);
  const net::Client::Result r = fresh.submit("slow", input);
  ASSERT_TRUE(r.ok()) << r.transport_error << " " << r.error;
  EXPECT_EQ(r.output, direct.flat);

  // No parked zombie left behind: drain is immediate, not drain_timeout.
  const auto stop_start = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - stop_start, 3s)
      << "stop() burned the drain timeout on a parked zombie";
  service.stop();
}

TEST(NetClient, ResponseForUnknownRequestIdBreaksTransport) {
  // A buggy or malicious server must not be able to grow the client's parked
  // map with made-up request ids, nor overwrite a parked result with a
  // duplicate: both are protocol violations that kill the transport.
  std::string error;
  net::ListenSocket listener =
      net::ListenSocket::listen("127.0.0.1", 0, /*backlog=*/8, &error);
  ASSERT_TRUE(listener.valid()) << error;

  net::Client client(listener.host(), listener.port());
  ASSERT_TRUE(client.connected()) << client.error();
  net::Socket peer = listener.accept();
  ASSERT_TRUE(peer.valid());

  const auto id = client.submit_async("prefix-sums", {1, 2, 3});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(client.outstanding(), 1u);

  net::ResponseFrame bogus;
  bogus.request_id = *id + 1000;  // never submitted
  const std::vector<std::uint8_t> bytes = net::encode(net::Frame{bogus});
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const net::IoResult w =
        peer.write_some(bytes.data() + sent, bytes.size() - sent);
    ASSERT_EQ(w.kind, net::IoResult::Kind::kOk);
    sent += w.bytes;
  }

  const net::Client::Result r = client.wait(*id);
  EXPECT_FALSE(r.transport_error.empty());
  EXPECT_NE(r.transport_error.find("not outstanding"), std::string::npos)
      << r.transport_error;
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.outstanding(), 0u) << "bogus id leaked into parked state";
}

}  // namespace

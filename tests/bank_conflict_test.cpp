// The shared-memory (DMM) tier: bank-conflict counting, the conflict-free
// arrangement's zero-conflict guarantee, and the closed-form BankedStepCost
// against the brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "algos/prefix_sums.hpp"
#include "bulk/layout.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "umm/dmm.hpp"
#include "umm/machine_config.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

// Brute-force conflict profile of one bulk access step: splits the p lanes
// into width-sized warps, maps lane j to layout.global(a, j), and counts
// each warp's bank-conflict rounds directly.
struct StepProfile {
  std::uint64_t rounds = 0;     // Σ per-warp rounds
  std::uint64_t warps = 0;      // warps dispatched
  std::uint64_t max_rounds = 0; // worst single warp
};

StepProfile profile_step(const Layout& layout, Addr a, std::uint32_t width,
                         const umm::SharedTier& tier) {
  StepProfile out;
  const std::size_t p = layout.lanes();
  for (std::size_t warp = 0; warp * width < p; ++warp) {
    std::vector<Addr> addrs;
    for (std::size_t k = 0; k < width && warp * width + k < p; ++k) {
      addrs.push_back(layout.global(a, warp * width + k));
    }
    const std::uint64_t r = umm::shared_warp_rounds(addrs, tier);
    out.rounds += r;
    out.max_rounds = std::max(out.max_rounds, r);
    ++out.warps;
  }
  return out;
}

// Worst per-warp rounds over every address of the program memory.
std::uint64_t worst_rounds(const Layout& layout, std::size_t n, std::uint32_t width,
                           const umm::SharedTier& tier) {
  std::uint64_t worst = 0;
  for (Addr a = 0; a < n; ++a) {
    worst = std::max(worst, profile_step(layout, a, width, tier).max_rounds);
  }
  return worst;
}

TEST(BankConflict, ConflictFreeArrangementHasZeroConflicts) {
  // At every bank-row width, the padded stride keeps consecutive lanes on
  // consecutive banks: one round per warp, always.
  const std::size_t n = 24;
  const std::uint32_t width = 32;
  for (const std::uint32_t bank_words : {1u, 2u, 4u, 8u}) {
    const umm::SharedTier tier{.banks = 32, .bank_words = bank_words, .latency = 2};
    const std::size_t stride = umm::conflict_free_stride(tier);
    EXPECT_EQ(stride, bank_words);
    for (const std::size_t p : {32u, 64u, 96u, 256u}) {
      const Layout cf = Layout::conflict_free(p, n, stride);
      EXPECT_EQ(worst_rounds(cf, n, width, tier), 1u)
          << "bank_words=" << bank_words << " p=" << p;
    }
  }
}

TEST(BankConflict, QuantifiesNaiveArrangements) {
  // With bank rows wider than one word, the stride-1 (column-wise) layout
  // lands bank_words consecutive lanes on each bank: exactly bank_words
  // rounds per warp.  Row-wise at an even lane stride folds whole warps onto
  // few banks.  The conflict-free stride removes all of it.
  const std::size_t n = 16;
  const std::size_t p = 64;
  const std::uint32_t width = 32;
  for (const std::uint32_t bank_words : {2u, 4u, 8u}) {
    const umm::SharedTier tier{.banks = 32, .bank_words = bank_words, .latency = 2};
    const Layout col = Layout::column_wise(p, n);
    EXPECT_EQ(worst_rounds(col, n, width, tier), bank_words);

    // Row-wise: lane stride n = 16 words jumps 16/bank_words banks per lane,
    // so a warp revisits each bank width / (banks*bank_words/16) times.
    const Layout row = Layout::row_wise(p, n);
    const std::uint64_t distinct = tier.modulus() / std::gcd<std::uint64_t>(n, tier.modulus());
    EXPECT_EQ(worst_rounds(row, n, width, tier),
              (width + distinct - 1) / distinct);

    const Layout cf = Layout::conflict_free(p, n, umm::conflict_free_stride(tier));
    EXPECT_EQ(worst_rounds(cf, n, width, tier), 1u);
  }
}

TEST(BankConflict, BlockedArrangementProfiles) {
  // Blocked layouts are column-wise inside each block; the brute-force
  // counter quantifies them too (they are not arithmetic progressions, so
  // BankedStepCost refuses them — see TimingEstimator::supports).
  const std::size_t n = 16;
  const std::size_t p = 64;
  const std::uint32_t width = 32;
  const umm::SharedTier tier{.banks = 32, .bank_words = 4, .latency = 2};
  const Layout blocked = Layout::blocked(p, n, 32);
  const std::uint64_t w = worst_rounds(blocked, n, width, tier);
  EXPECT_GE(w, 1u);
  EXPECT_LE(w, width);
}

TEST(BankConflict, BankedStepCostMatchesBruteForce) {
  // The closed-form per-step cost must agree with shared_warp_rounds for
  // every arithmetic-progression layout: strides, ragged tails, odd bases.
  for (const std::uint32_t banks : {8u, 32u}) {
    for (const std::uint32_t bank_words : {1u, 2u, 4u}) {
      const umm::SharedTier tier{.banks = banks, .bank_words = bank_words, .latency = 2};
      for (const std::uint64_t stride : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
        for (const std::uint64_t p : {8u, 31u, 32u, 64u, 70u}) {
          const umm::BankedStepCost cost(tier, 16, p, stride);
          for (Addr base = 0; base < 2 * tier.modulus(); base += 3) {
            std::uint64_t rounds = 0;
            std::uint64_t warps = 0;
            for (std::uint64_t warp = 0; warp * 16 < p; ++warp) {
              std::vector<Addr> addrs;
              for (std::uint64_t k = 0; k < 16 && warp * 16 + k < p; ++k) {
                addrs.push_back(base + (warp * 16 + k) * stride);
              }
              rounds += umm::shared_warp_rounds(addrs, tier);
              ++warps;
            }
            const umm::SharedStepRounds got = cost.rounds(base);
            ASSERT_EQ(got.rounds, rounds)
                << "banks=" << banks << " bw=" << bank_words << " stride=" << stride
                << " p=" << p << " base=" << base;
            ASSERT_EQ(got.warps, warps);
          }
        }
      }
    }
  }
}

TEST(BankConflict, EstimatorMatchesExactExecutorWithTierOn) {
  // The TimingEstimator fast path and the exact lane-level executor must
  // charge identical units when the shared tier is enabled.
  const std::size_t n = 32;
  const std::size_t p = 96;
  const umm::MachineConfig cfg = umm::conflict_heavy_example();
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> zeros(p * program.input_words, Word{0});

  const std::size_t cf = umm::conflict_free_stride(cfg.shared);
  for (const Layout& layout :
       {Layout::row_wise(p, n), Layout::column_wise(p, n),
        Layout::conflict_free(p, n, cf)}) {
    ASSERT_TRUE(TimingEstimator::supports(cfg, layout)) << layout.name();
    const TimeUnits fast =
        TimingEstimator(umm::Model::kUmm, cfg, layout).run(program).time_units;
    const TimeUnits exact =
        UmmBulkExecutor(umm::Model::kUmm, cfg, layout).run(program, zeros).time_units;
    EXPECT_EQ(fast, exact) << layout.name();
  }

  // Blocked is outside the fast path with the tier on; simulate_units must
  // route it through the exact executor and agree with a direct run.
  const Layout blocked = Layout::blocked(p, n, 32);
  EXPECT_FALSE(TimingEstimator::supports(cfg, blocked));
  EXPECT_EQ(simulate_units(program, blocked, umm::Model::kUmm, cfg),
            UmmBulkExecutor(umm::Model::kUmm, cfg, blocked).run(program, zeros).time_units);
}

TEST(BankConflict, SharedTierValidation) {
  umm::SharedTier bad{.banks = 32, .bank_words = 0, .latency = 1};
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = umm::SharedTier{.banks = 32, .bank_words = 1, .latency = 0};
  EXPECT_THROW(bad.validate(), std::logic_error);
  const umm::SharedTier off{};
  off.validate();  // disabled tier is always valid
  EXPECT_EQ(umm::conflict_free_stride(off), 1u);
}

}  // namespace

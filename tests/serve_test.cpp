// The batching bulk-execution service: deterministic unit tests for the
// batcher's flush triggers, each backpressure policy, metrics, and a small
// end-to-end correctness pass.  (The multi-producer torture run lives in
// serve_stress_test.cpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "serve/admission_queue.hpp"
#include "serve/batcher.hpp"
#include "serve/load_gen.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "serve/service.hpp"
#include "umm/machine_config.hpp"

namespace {

using namespace obx;
using namespace obx::serve;
using namespace std::chrono_literals;

Job make_job(const std::string& program, Clock::time_point enqueue,
             std::optional<Clock::time_point> deadline = std::nullopt) {
  Job job;
  job.program_id = program;
  job.enqueue_time = enqueue;
  job.deadline = deadline;
  return job;
}

// ---------------------------------------------------------------------------
// Batcher: pure state machine, driven with an explicit clock.

TEST(Batcher, FlushesWhenBatchReachesMaxLanes) {
  Batcher batcher(BatcherOptions{.max_batch_lanes = 3, .max_batch_delay = 1h});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  batcher.add(make_job("a", t0), t0);
  EXPECT_TRUE(batcher.take_ready(t0).empty());  // 2 < 3, delay far away
  batcher.add(make_job("a", t0), t0);
  const auto batches = batcher.take_ready(t0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 3u);
  EXPECT_EQ(batches[0].reason, FlushReason::kSize);
  EXPECT_EQ(batcher.pending_jobs(), 0u);
}

TEST(Batcher, FlushesWhenDelayExpires) {
  Batcher batcher(BatcherOptions{.max_batch_lanes = 100, .max_batch_delay = 10ms});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  batcher.add(make_job("a", t0), t0 + 2ms);

  const auto due = batcher.next_due();
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(*due, t0 + 10ms);  // delay runs from the group opening, not add

  EXPECT_TRUE(batcher.take_ready(t0 + 9ms).empty());
  const auto batches = batcher.take_ready(t0 + 10ms);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  EXPECT_EQ(batches[0].reason, FlushReason::kDelay);
}

TEST(Batcher, FlushesEarlyForTightDeadline) {
  Batcher batcher(BatcherOptions{
      .max_batch_lanes = 100, .max_batch_delay = 50ms, .deadline_slack = 1ms});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  batcher.add(make_job("a", t0, t0 + 5ms), t0);  // tight deadline joins the group

  const auto due = batcher.next_due();
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(*due, t0 + 4ms);  // deadline - slack, well before the 50ms delay

  EXPECT_TRUE(batcher.take_ready(t0 + 3ms).empty());
  const auto batches = batcher.take_ready(t0 + 4ms);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  EXPECT_EQ(batches[0].reason, FlushReason::kDeadline);
}

TEST(Batcher, GroupsByProgramId) {
  Batcher batcher(BatcherOptions{.max_batch_lanes = 2, .max_batch_delay = 1h});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  batcher.add(make_job("b", t0), t0);
  EXPECT_TRUE(batcher.take_ready(t0).empty());  // neither group is full
  batcher.add(make_job("a", t0), t0);
  auto batches = batcher.take_ready(t0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].program_id, "a");

  batches = batcher.drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].program_id, "b");
  EXPECT_EQ(batches[0].reason, FlushReason::kDrain);
}

TEST(Batcher, NeverMixesInputLengthsInOneGroup) {
  // Regression (PR 11): the group key is (program id, input length).  With
  // variable-length sessions registered under one family, two jobs whose
  // inputs differ in length must never coalesce — a batch scatters every
  // lane with a single program's input_words, so a mixed batch would
  // over- or under-fill lanes.
  Batcher batcher(BatcherOptions{.max_batch_lanes = 2, .max_batch_delay = 1h});
  const auto t0 = Clock::time_point{};
  auto sized_job = [&](std::size_t words) {
    Job job = make_job("merge", t0);
    job.input.assign(words, Word{0});
    return job;
  };
  batcher.add(sized_job(6), t0);
  batcher.add(sized_job(10), t0);
  EXPECT_TRUE(batcher.take_ready(t0).empty());  // distinct groups, neither full
  EXPECT_EQ(batcher.pending_jobs(), 2u);
  batcher.add(sized_job(6), t0);  // completes the 6-word group only
  auto batches = batcher.take_ready(t0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  for (const Job& job : batches[0].jobs) EXPECT_EQ(job.input.size(), 6u);

  batches = batcher.drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 1u);
  EXPECT_EQ(batches[0].jobs[0].input.size(), 10u);
}

TEST(Batcher, DelayWindowReopensPerGroup) {
  Batcher batcher(BatcherOptions{.max_batch_lanes = 100, .max_batch_delay = 10ms});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  ASSERT_EQ(batcher.take_ready(t0 + 10ms).size(), 1u);
  EXPECT_FALSE(batcher.next_due().has_value());  // nothing pending

  // A later job opens a fresh window measured from its own arrival.
  batcher.add(make_job("a", t0 + 30ms), t0 + 30ms);
  const auto due = batcher.next_due();
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(*due, t0 + 40ms);
}

TEST(Batcher, ZeroDelayIsDueImmediately) {
  Batcher batcher(BatcherOptions{.max_batch_lanes = 100,
                                 .max_batch_delay = Clock::duration::zero()});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0), t0);
  const auto batches = batcher.take_ready(t0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 1u);
}

TEST(Batcher, Validation) {
  EXPECT_THROW(Batcher(BatcherOptions{.max_batch_lanes = 0}), std::logic_error);
  EXPECT_THROW(Batcher(BatcherOptions{.max_batch_delay = -1ms}), std::logic_error);
  EXPECT_THROW(Batcher(BatcherOptions{.deadline_slack = -1ms}), std::logic_error);
}

TEST(Batcher, DeadlineNearTimePointMinSaturatesInsteadOfWrapping) {
  // deadline - deadline_slack on a deadline near Clock::time_point::min()
  // would underflow the signed tick count (UB, and a due time in the far
  // future); the saturating rule clamps to min(), i.e. "already due".
  Batcher batcher(BatcherOptions{.max_batch_lanes = 100,
                                 .max_batch_delay = 1h,
                                 .deadline_slack = 10min});
  const auto t0 = Clock::time_point{};
  batcher.add(make_job("a", t0, Clock::time_point::min() + 1ms), t0);

  const auto due = batcher.next_due();
  ASSERT_TRUE(due.has_value());
  EXPECT_LE(*due, t0);  // not 292 years from now

  const auto batches = batcher.take_ready(t0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].reason, FlushReason::kDeadline);
}

// ---------------------------------------------------------------------------
// Admission queue: one deterministic test per backpressure policy.

TEST(AdmissionQueue, RejectPolicyFailsFastWhenFull) {
  AdmissionQueue queue(2, OverflowPolicy::kReject);
  EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kRejected);
  EXPECT_EQ(queue.depth(), 2u);

  Job out;
  EXPECT_EQ(queue.pop(out), AdmissionQueue::PopResult::kJob);
  EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);
}

TEST(AdmissionQueue, ShedOldestEvictsTheOldestJob) {
  AdmissionQueue queue(2, OverflowPolicy::kShedOldest);
  Job first = make_job("a", {});
  first.id = 1;
  Job second = make_job("a", {});
  second.id = 2;
  Job third = make_job("a", {});
  third.id = 3;
  ASSERT_EQ(queue.push(std::move(first)), AdmissionQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(std::move(second)), AdmissionQueue::PushResult::kAccepted);

  std::optional<Job> shed;
  EXPECT_EQ(queue.push(std::move(third), &shed), AdmissionQueue::PushResult::kAccepted);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 1u);  // oldest evicted
  EXPECT_EQ(queue.depth(), 2u);

  Job out;
  ASSERT_EQ(queue.pop(out), AdmissionQueue::PopResult::kJob);
  EXPECT_EQ(out.id, 2u);
  ASSERT_EQ(queue.pop(out), AdmissionQueue::PopResult::kJob);
  EXPECT_EQ(out.id, 3u);
}

TEST(AdmissionQueue, ShedWithoutOutParamResolvesTheEvictedFuture) {
  // Callers that don't collect the victim (shed == nullptr) must still leave
  // the evicted job's future resolved — a silently destroyed promise shows
  // up at the submitter as broken_promise.
  AdmissionQueue queue(1, OverflowPolicy::kShedOldest);
  Job first = make_job("a", Clock::now());
  std::future<JobResult> evicted = first.promise.get_future();
  ASSERT_EQ(queue.push(std::move(first)), AdmissionQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(make_job("a", Clock::now())),
            AdmissionQueue::PushResult::kAccepted);  // default shed = nullptr

  ASSERT_EQ(evicted.wait_for(0s), std::future_status::ready);
  const JobResult result = evicted.get();
  EXPECT_EQ(result.status, JobStatus::kShed);
  EXPECT_GE(result.latency.count(), 0);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionQueue, BlockPolicyWaitsForRoom) {
  AdmissionQueue queue(1, OverflowPolicy::kBlock);
  ASSERT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);
    pushed.store(true);
  });
  // The producer must be blocked until we make room.
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());
  Job out;
  ASSERT_EQ(queue.pop(out), AdmissionQueue::PopResult::kJob);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionQueue, PopUntilTimesOutAndCloseDrains) {
  AdmissionQueue queue(4, OverflowPolicy::kBlock);
  Job out;
  EXPECT_EQ(queue.pop_until(out, Clock::now() + 5ms),
            AdmissionQueue::PopResult::kTimeout);

  ASSERT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kAccepted);
  queue.close();
  EXPECT_EQ(queue.push(make_job("a", {})), AdmissionQueue::PushResult::kRejected);
  EXPECT_EQ(queue.pop(out), AdmissionQueue::PopResult::kJob);  // drains first
  EXPECT_EQ(queue.pop(out), AdmissionQueue::PopResult::kClosed);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(Metrics, HistogramTracksMomentsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // Log2 buckets: quantiles land on a power-of-two upper bound >= the exact
  // value and never exceed the max.
  EXPECT_GE(h.quantile(0.5), 50u);
  EXPECT_LE(h.quantile(0.5), 100u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramEdgeCases) {
  Histogram h;
  // Empty: any q — including out-of-range and NaN — reads 0, not a crash.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  EXPECT_EQ(h.quantile(-3.0), 0u);
  EXPECT_EQ(h.quantile(7.0), 0u);
  EXPECT_EQ(h.quantile(nan), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);

  // A zero sample is a real sample, not "empty".
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);

  // The extreme value lands in the last bucket and survives min/max.
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
  EXPECT_EQ(h.min(), 0u);

  // NaN / out-of-range q clamp to the [0, 1] endpoints.
  EXPECT_EQ(h.quantile(nan), h.quantile(0.0));
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));

  // A lone UINT64_MAX sample after reset: min_'s empty sentinel equals the
  // sample, which must read as the sample, with min() == max().
  h.reset();
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.min(), ~std::uint64_t{0});
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_LE(h.min(), h.max());
}

TEST(Metrics, HistogramSurvivesAResetRecordRace) {
  // reset() racing record() can tear the (min_, max_) pair; min() clamps the
  // torn window so a single read never observes min > max.  This exercises
  // the race under TSan/ASan; the invariant is asserted on the quiesced
  // histogram (two separate loads can legitimately straddle a reset).
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) h.reset();
  });
  for (std::uint64_t i = 0; i < 20000; ++i) {
    h.record(i % 1000 + 1);
    (void)h.min();
    (void)h.max();
  }
  stop.store(true);
  resetter.join();
  h.record(5);
  EXPECT_LE(h.min(), h.max());
  EXPECT_GE(h.count(), 1u);
}

TEST(Metrics, SnapshotRendersAllSections) {
  Metrics metrics;
  metrics.submitted.store(7);
  metrics.completed.store(5);
  metrics.shed.store(2);
  metrics.batch_occupancy.record(5);
  const std::string text = metrics.snapshot().to_string();
  EXPECT_NE(text.find("submitted=7"), std::string::npos);
  EXPECT_NE(text.find("shed=2"), std::string::npos);
  EXPECT_NE(text.find("occupancy mean=5"), std::string::npos);
  EXPECT_NE(text.find("flushes"), std::string::npos);
  EXPECT_NE(text.find("simulated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service end-to-end (small, single-threaded producers).

TEST(BulkService, ExecutesJobsBitIdenticalToDirectBulkRun) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 32;
  const trace::Program program = algo.make_program(n);

  ServiceOptions options;
  options.batcher.max_batch_lanes = 4;
  options.batcher.max_batch_delay = 1ms;
  BulkService service(options);
  service.register_program("ps", algo.make_program(n));

  Rng rng(7);
  std::vector<std::vector<Word>> inputs;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 10; ++i) {
    inputs.push_back(algo.make_input(n, rng));
    futures.push_back(service.submit("ps", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kCompleted);
    const bulk::BulkOutputs direct = bulk::run_bulk(program, inputs[i], 1);
    EXPECT_EQ(r.output, direct.flat) << "job " << i;
    EXPECT_GE(r.batch_lanes, 1u);
    EXPECT_GE(r.latency.count(), 0);
  }
  service.stop();
  const MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.submitted, 10u);
  EXPECT_EQ(snap.completed, 10u);
  EXPECT_EQ(snap.rejected + snap.shed, 0u);
  EXPECT_GE(snap.batches, 3u);  // 10 jobs, <= 4 lanes per batch
  EXPECT_GT(snap.mean_batch_sim_units, 0.0);
}

TEST(BulkService, ExpiredDeadlineIsDeliveredButFlagged) {
  const algos::Algorithm& algo = algos::find("horner");
  ServiceOptions options;
  options.batcher.max_batch_delay = Clock::duration::zero();
  BulkService service(options);
  service.register_program("h", algo.make_program(8));
  Rng rng(3);
  // A deadline of -1ms is already missed at submit; the job still executes.
  auto future = service.submit("h", algo.make_input(8, rng), -1ms);
  const JobResult r = future.get();
  EXPECT_EQ(r.status, JobStatus::kCompleted);
  EXPECT_TRUE(r.deadline_missed);
  service.stop();
  EXPECT_EQ(service.snapshot().deadline_missed, 1u);
}

TEST(BulkService, MixedProgramsBatchSeparately) {
  ServiceOptions options;
  options.batcher.max_batch_lanes = 8;
  options.batcher.max_batch_delay = 2ms;
  BulkService service(options);
  const algos::Algorithm& ps = algos::find("prefix-sums");
  const algos::Algorithm& hr = algos::find("horner");
  service.register_program("ps", ps.make_program(16));
  service.register_program("hr", hr.make_program(8));

  Rng rng(11);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit("ps", ps.make_input(16, rng)));
    futures.push_back(service.submit("hr", hr.make_input(8, rng)));
  }
  const std::size_t ps_out = ps.make_program(16).output_words;
  const std::size_t hr_out = hr.make_program(8).output_words;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kCompleted);
    EXPECT_EQ(r.output.size(), i % 2 == 0 ? ps_out : hr_out);
  }
  service.stop();
}

// Scenario: one service hosting the whole multicore-oblivious family plus a
// classic workload, driven with interleaved traffic.  Every result must be
// bit-identical to the algorithm's native reference.
TEST(BulkService, MixedObliviousFamilyBatches) {
  ServiceOptions options;
  options.batcher.max_batch_lanes = 8;
  options.batcher.max_batch_delay = 2ms;
  BulkService service(options);

  struct Entry {
    std::string id;
    std::string algo;
    std::size_t n;
  };
  const std::vector<Entry> entries = {
      {"merge", "oblivious-merge", 5},
      {"partition", "oblivious-partition", 12},
      {"aggregate", "oblivious-aggregate", 5},
      {"ps", "prefix-sums", 16},
  };
  for (const Entry& e : entries) {
    service.register_program(e.id, algos::find(e.algo).make_program(e.n));
  }

  Rng rng(23);
  std::vector<std::future<JobResult>> futures;
  std::vector<std::vector<Word>> expected;
  for (int round = 0; round < 6; ++round) {
    for (const Entry& e : entries) {
      const algos::Algorithm& algo = algos::find(e.algo);
      const std::vector<Word> input = algo.make_input(e.n, rng);
      expected.push_back(algo.reference(e.n, input));
      futures.push_back(service.submit(e.id, input));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kCompleted) << "job " << i;
    EXPECT_EQ(r.output, expected[i]) << "job " << i;
  }
  service.stop();
  EXPECT_EQ(service.snapshot().completed, futures.size());
}

// Scenario: variable-length sessions — one family served at several input
// lengths under distinct program ids.  Jobs of different lengths must land
// in different batches (the batcher's group key) and every output must stay
// bit-identical to the reference.
TEST(BulkService, VariableLengthSessionsNeverShareABatch) {
  const algos::Algorithm& algo = algos::find("oblivious-merge");
  const std::vector<std::size_t> sizes = {1, 3, 5, 12};

  ServiceOptions options;
  options.batcher.max_batch_lanes = 16;
  options.batcher.max_batch_delay = 2ms;
  std::atomic<bool> saw_mixed{false};
  options.before_execute = [&](const Batch& batch) {
    for (const Job& job : batch.jobs) {
      if (job.input.size() != batch.jobs.front().input.size()) saw_mixed = true;
    }
  };
  BulkService service(options);
  for (const std::size_t n : sizes) {
    service.register_program("merge/n=" + std::to_string(n), algo.make_program(n));
  }

  Rng rng(29);
  std::vector<std::future<JobResult>> futures;
  std::vector<std::vector<Word>> expected;
  for (int round = 0; round < 5; ++round) {
    for (const std::size_t n : sizes) {
      const std::vector<Word> input = algo.make_input(n, rng);
      expected.push_back(algo.reference(n, input));
      futures.push_back(service.submit("merge/n=" + std::to_string(n), input));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kCompleted) << "job " << i;
    EXPECT_EQ(r.output, expected[i]) << "job " << i;
  }
  service.stop();
  EXPECT_FALSE(saw_mixed.load()) << "a batch mixed input lengths";
}

TEST(BulkService, SubmitValidatesProgramAndInput) {
  BulkService service((ServiceOptions()));
  const algos::Algorithm& algo = algos::find("horner");
  service.register_program("h", algo.make_program(8));
  EXPECT_THROW(service.submit("nope", {}), std::logic_error);
  EXPECT_THROW(service.submit("h", std::vector<Word>(3)), std::logic_error);
  EXPECT_THROW(service.register_program("h", algo.make_program(8)), std::logic_error);
  service.stop();
}

TEST(BulkService, StopDrainsAcceptedJobs) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  ServiceOptions options;
  options.batcher.max_batch_lanes = 64;
  options.batcher.max_batch_delay = 1h;  // only drain can flush
  BulkService service(options);
  service.register_program("ps", algo.make_program(16));
  Rng rng(1);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.submit("ps", algo.make_input(16, rng)));
  }
  service.stop();  // must flush the pending group and execute it
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  }
  EXPECT_EQ(service.snapshot().flush_drain, 1u);
}

// Closed-loop smoke of the load generator (also exercises WorkloadItem).
TEST(LoadGen, ClosedLoopCompletesEveryJob) {
  const algos::Algorithm& algo = algos::find("horner");
  BulkService service((ServiceOptions()));
  service.register_program("h", algo.make_program(8));
  const std::vector<WorkloadItem> workload{WorkloadItem{
      .program_id = "h",
      .make_input = [&](Rng& rng) { return algo.make_input(8, rng); }}};
  LoadGenOptions load;
  load.jobs = 40;
  load.producers = 2;
  const LoadGenReport report = run_load(service, workload, load);
  EXPECT_EQ(report.completed, 40u);
  EXPECT_EQ(report.rejected + report.shed, 0u);
  EXPECT_GT(report.jobs_per_sec, 0.0);
  service.stop();
}

// PrepareOptions carries the planner's measuring auto-tuner: with tune off,
// registration under the conflict-heavy machine picks the conflict-free
// arrangement on the simulated prior; a tuned prepare with a scripted clock
// that makes row-wise fastest must change the chosen arrangement.
TEST(ProgramCacheTest, TunedPrepareChangesChosenArrangement) {
  const algos::Algorithm& algo = algos::find("bitonic-sort");
  const std::size_t n = 64;

  PrepareOptions untuned;
  untuned.machine = umm::conflict_heavy_example();
  untuned.reference_lanes = 64;
  ProgramCache cache(untuned);
  cache.add("sort", algo.make_program(n));
  EXPECT_EQ(cache.get("sort").arrangement(), bulk::Arrangement::kConflictFree);
  EXPECT_FALSE(cache.get("sort").plan().provenance().tuned);

  PrepareOptions tuned = untuned;
  tuned.tune.measure = true;
  tuned.tune.trials = 2;
  // Candidate order is column, row, blocked, conflict-free; each candidate
  // makes trials*2 clock calls.  Calls 4..7 belong to row-wise: give it a
  // 10ns trial against everyone else's 100ns.
  auto calls = std::make_shared<std::size_t>(0);
  tuned.tune.clock = [calls]() -> std::uint64_t {
    const std::size_t i = (*calls)++;
    const std::uint64_t width = (i >= 4 && i < 8) ? 10 : 100;
    return (i / 2) * 1000 + (i % 2) * width;
  };
  ProgramCache tuned_cache(tuned);
  tuned_cache.add("sort", algo.make_program(n));
  const PreparedProgram& prepared = tuned_cache.get("sort");
  EXPECT_TRUE(prepared.plan().provenance().tuned);
  EXPECT_EQ(prepared.arrangement(), bulk::Arrangement::kRowWise);
  EXPECT_NE(prepared.arrangement(), cache.get("sort").arrangement());
  EXPECT_EQ(*calls, 16u);
}

}  // namespace

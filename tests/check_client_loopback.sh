#!/usr/bin/env bash
# obx_client loopback smoke: stand up `obx_cli serve` on an ephemeral port,
# then drive it with the standalone client — one ping round-trip, a small
# multi-tenant load with a metrics scrape, and a second server exercising
# variable-length sessions (--sizes) over the oblivious workload family.
# Every client invocation must exit 0 (completed ping; balanced load ledger,
# zero transport errors).
#
#   check_client_loopback.sh <obx_cli> <obx_client>
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <obx_cli> <obx_client>" >&2
  exit 2
fi

cli="$1"
client="$2"

log="$(mktemp)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  [[ -n "$server_pid" ]] && wait "$server_pid" 2>/dev/null || true
  rm -f "$log"
}
trap cleanup EXIT

"$cli" serve --listen 127.0.0.1:0 --algos prefix-sums,horner --n 64 \
  --duration-s 60 > "$log" &
server_pid=$!

# Ephemeral port: the server prints the bound port on its first line.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "server never reported its port; log:" >&2
  cat "$log" >&2
  exit 1
fi

"$client" --connect "127.0.0.1:$port" --ping --algos prefix-sums --n 64
"$client" --connect "127.0.0.1:$port" --algos prefix-sums,horner --n 64 \
  --jobs 300 --tenants 2 --connections 2 --scrape

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Round 2: the oblivious workload family under variable-length sessions —
# mixed program ids AND mixed input lengths in flight at once, the two axes
# the batcher's (program id, input length) group key must keep apart.
: > "$log"
"$cli" serve --listen 127.0.0.1:0 \
  --algos oblivious-merge,oblivious-partition,oblivious-aggregate \
  --sizes 3,12 --duration-s 60 > "$log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "variable-length server never reported its port; log:" >&2
  cat "$log" >&2
  exit 1
fi

"$client" --connect "127.0.0.1:$port" \
  --algos oblivious-merge,oblivious-partition,oblivious-aggregate \
  --sizes 3,12 --jobs 300 --tenants 2 --connections 2 --scrape

echo "client loopback smoke OK"

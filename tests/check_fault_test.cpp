// Fault-injection campaigns against the serving layer: every forced failure
// mode — executor throws, allocation failure, shed storms, reject storms,
// mid-stream close, compile-budget exhaustion — must preserve the lifecycle
// guarantee: every submitted job's future resolves exactly once.
#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>

#include "check/fault.hpp"
#include "serve/service.hpp"

namespace {

using namespace obx;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// The plan itself: a deterministic counter-driven schedule.

TEST(FaultPlan, EmptyPlanYieldsEmptyHook) {
  EXPECT_FALSE(static_cast<bool>(check::FaultPlan{}.hook()));
}

TEST(FaultPlan, HookThrowsOnItsSchedule) {
  check::FaultPlan plan;
  plan.fail_every_batches = 2;
  const auto hook = plan.hook();
  ASSERT_TRUE(static_cast<bool>(hook));
  serve::Batch batch;
  batch.program_id = "probe";
  EXPECT_NO_THROW(hook(batch));                   // batch 1
  EXPECT_THROW(hook(batch), std::runtime_error);  // batch 2
  EXPECT_NO_THROW(hook(batch));                   // batch 3
  EXPECT_THROW(hook(batch), std::runtime_error);  // batch 4
}

TEST(FaultPlan, AllocFaultTakesPrecedence) {
  check::FaultPlan plan;
  plan.fail_every_batches = 1;        // would fire on every batch...
  plan.alloc_fail_every_batches = 2;  // ...but even batches bad_alloc instead
  const auto hook = plan.hook();
  serve::Batch batch;
  EXPECT_THROW(hook(batch), std::runtime_error);
  EXPECT_THROW(hook(batch), std::bad_alloc);
}

TEST(FaultPlan, EachHookOwnsAFreshCounter) {
  check::FaultPlan plan;
  plan.fail_every_batches = 2;
  const auto first = plan.hook();
  serve::Batch batch;
  EXPECT_NO_THROW(first(batch));
  EXPECT_THROW(first(batch), std::runtime_error);
  const auto second = plan.hook();  // restarts at batch 1
  EXPECT_NO_THROW(second(batch));
}

// ---------------------------------------------------------------------------
// Campaigns.  Every one of these asserts the same invariant from the
// caller's side of the futures: submitted == completed + rejected + shed +
// failed with zero unresolved.

TEST(FaultCampaign, ExactlyOnceWhenEveryBatchFails) {
  check::CampaignOptions options;
  options.plan.fail_every_batches = 1;  // no batch ever executes
  options.producers = 2;
  options.jobs_per_producer = 24;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_EQ(report.submitted, 48u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.failed, 48u);
  // The service's own failed counter must agree with the caller-side audit.
  EXPECT_EQ(report.metrics.failed, report.failed);
  EXPECT_EQ(report.metrics.completed, 0u);
}

TEST(FaultCampaign, ExactlyOnceUnderAllocationFailures) {
  check::CampaignOptions options;
  options.plan.alloc_fail_every_batches = 2;
  options.producers = 2;
  options.jobs_per_producer = 32;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_GT(report.failed, 0u);
  EXPECT_GT(report.completed, 0u);  // odd batches still run
  EXPECT_EQ(report.metrics.failed, report.failed);
}

TEST(FaultCampaign, ExactlyOnceUnderAShedStorm) {
  check::CampaignOptions options;
  options.service.queue_capacity = 2;
  options.service.policy = serve::OverflowPolicy::kShedOldest;
  options.service.executors = 1;
  options.plan.fail_every_batches = 3;
  options.producers = 4;
  options.jobs_per_producer = 64;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_GT(report.shed, 0u) << report.summary();
}

TEST(FaultCampaign, ExactlyOnceUnderARejectStorm) {
  check::CampaignOptions options;
  options.service.queue_capacity = 2;
  options.service.policy = serve::OverflowPolicy::kReject;
  options.service.executors = 1;
  options.producers = 4;
  options.jobs_per_producer = 64;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_GT(report.rejected, 0u) << report.summary();
}

TEST(FaultCampaign, ExactlyOnceThroughAMidStreamClose) {
  check::CampaignOptions options;
  options.plan.fail_every_batches = 3;
  options.close_mid_stream = true;
  options.producers = 4;
  options.jobs_per_producer = 48;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_LE(report.submitted, 4u * 48u);
}

TEST(FaultCampaign, CompileBudgetExhaustionFallsBackAndCompletes) {
  // A budget no program fits in: registration's compile fails, serving falls
  // back to the interpreted engine, and every job still completes.
  check::CampaignOptions options;
  options.service.prepare.compile_budget_steps = 1;
  options.producers = 2;
  options.jobs_per_producer = 16;
  const check::CampaignReport report = check::run_fault_campaign(options);
  EXPECT_TRUE(report.exactly_once()) << report.summary();
  EXPECT_EQ(report.completed, report.submitted);
  EXPECT_EQ(report.failed, 0u);
}

}  // namespace

// Scalar interpreter: the sequential RAM semantics.
#include <gtest/gtest.h>

#include <vector>

#include "trace/interpreter.hpp"
#include "trace/program.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

Program tiny_program(std::vector<Step> steps, std::size_t memory_words,
                     std::size_t input_words) {
  return make_replay_program("tiny", memory_words, input_words, 0, memory_words, 16,
                             std::move(steps));
}

TEST(Interpreter, LoadAluStore) {
  // mem[1] = mem[0] + 1.0
  const Program p = tiny_program(
      {
          Step::load(0, 0),
          Step::imm_f64(1, 1.0),
          Step::alu(Op::kAddF, 2, 0, 1),
          Step::store(1, 2),
      },
      2, 1);
  const std::vector<Word> input{from_f64(41.0)};
  const InterpreterResult r = interpret(p, input);
  EXPECT_EQ(as_f64(r.memory[1]), 42.0);
  EXPECT_EQ(r.counts.loads, 1u);
  EXPECT_EQ(r.counts.stores, 1u);
  EXPECT_EQ(r.counts.alu, 1u);
  EXPECT_EQ(r.counts.imm, 1u);
  EXPECT_EQ(r.ram_time(), 2u);
}

TEST(Interpreter, UninitialisedMemoryIsZero) {
  const Program p = tiny_program({Step::load(0, 3), Step::store(0, 0)}, 4, 1);
  const std::vector<Word> input{from_f64(5.0)};
  const InterpreterResult r = interpret(p, input);
  EXPECT_EQ(r.memory[0], 0u);  // overwritten by the zero at mem[3]
}

TEST(Interpreter, OutputSpanReflectsDeclaredRegion) {
  Program p = tiny_program({Step::imm_f64(0, 9.0), Step::store(2, 0)}, 4, 0);
  p.output_offset = 2;
  p.output_words = 1;
  const InterpreterResult r = interpret(p, {});
  const auto out = r.output(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(as_f64(out[0]), 9.0);
}

TEST(Interpreter, RejectsWrongInputSize) {
  const Program p = tiny_program({Step::load(0, 0)}, 2, 1);
  const std::vector<Word> wrong{1, 2};
  EXPECT_THROW(interpret(p, wrong), std::logic_error);
}

TEST(Interpreter, RejectsOutOfBoundsAccess) {
  const Program bad_load = tiny_program({Step::load(0, 10)}, 2, 0);
  EXPECT_THROW(interpret(bad_load, {}), std::logic_error);
  const Program bad_store = tiny_program({Step::store(10, 0)}, 2, 0);
  EXPECT_THROW(interpret(bad_store, {}), std::logic_error);
}

TEST(Interpreter, RejectsRegisterOutOfRange) {
  Program p = tiny_program({Step::load(20, 0)}, 2, 0);
  p.register_count = 4;
  EXPECT_THROW(interpret(p, {}), std::logic_error);
}

TEST(Interpreter, CmovKeepsOldDestination) {
  // dst starts 0; cmov with a >= b must leave it.
  const Program p = tiny_program(
      {
          Step::imm_f64(0, 2.0),
          Step::imm_f64(1, 1.0),
          Step::imm_f64(2, 99.0),
          Step::imm_f64(3, 7.0),
          Step::alu(Op::kCmovLtF, 3, 0, 1, 2),  // 2.0 < 1.0 ? no → keep 7.0
          Step::store(0, 3),
      },
      1, 0);
  const InterpreterResult r = interpret(p, {});
  EXPECT_EQ(as_f64(r.memory[0]), 7.0);
}

}  // namespace

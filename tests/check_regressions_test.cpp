// Replays every committed reproducer under tests/regressions/ through the
// full execution matrix.  Each file is a shrunken fuzz find (or hand-written
// sentinel) for a bug that has since been fixed; a divergence here means a
// fixed bug came back.  Add new files with:
//   obx_cli fuzz --seed S          # prints the shrunken reproducer text
//   obx_cli fuzz --replay FILE     # verifies a saved one
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"

namespace {

namespace fs = std::filesystem;
using namespace obx;

std::vector<fs::path> reproducer_files() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(OBX_REGRESSIONS_DIR)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzRegressions, DirectoryHoldsTheCommittedSentinels) {
  // The NaN-canonicalization finds must stay committed: they are the guard
  // against reintroducing payload-dependent float results.
  EXPECT_GE(reproducer_files().size(), 3u);
}

TEST(FuzzRegressions, EveryCommittedReproducerReplaysClean) {
  const std::vector<fs::path> files = reproducer_files();
  ASSERT_FALSE(files.empty()) << "no .repro files in " << OBX_REGRESSIONS_DIR;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream text;
    text << in.rdbuf();
    const check::Reproducer repro = check::parse_reproducer(text.str());
    const auto divergence = check::replay_reproducer(repro);
    EXPECT_FALSE(divergence.has_value())
        << file.filename() << ": " << divergence->to_string()
        << (repro.note.empty() ? "" : "\n  note: " + repro.note);
  }
}

}  // namespace

// The sequential-to-bulk conversion front end (Recorder).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "algos/prefix_sums.hpp"
#include "trace/interpreter.hpp"
#include "trace/recorder.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

TEST(Recorder, RecordsPrefixSums) {
  // The README example: write the sequential loop, get the oblivious program.
  const std::size_t n = 16;
  Recorder rec(n);
  {
    auto r = rec.fimm(0.0);
    for (Addr i = 0; i < n; ++i) {
      r = r + rec.fload(i);
      rec.fstore(i, r);
    }
  }
  const Program program = std::move(rec).finish("recorded-prefix", n, 0, n);

  Rng rng(3);
  const std::vector<Word> input = algos::prefix_sums_random_input(n, rng);
  const InterpreterResult got = interpret(program, input);
  const std::vector<Word> expected = algos::prefix_sums_reference(n, input);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got.memory[i], expected[i]);
}

TEST(Recorder, RegisterRecyclingKeepsFileBounded) {
  // A long loop of temporaries must reuse registers, not exhaust 256.
  const std::size_t n = 4;
  Recorder rec(n);
  for (int iter = 0; iter < 10000; ++iter) {
    auto t = rec.fload(0) + rec.fload(1);
    rec.fstore(2, t);
  }
  EXPECT_LE(rec.registers_used(), 8u);
}

TEST(Recorder, IntegerAndBitwiseOps) {
  Recorder rec(4);
  {
    auto a = rec.iload(0);
    auto b = rec.iload(1);
    rec.istore(2, a * b - a);
    auto x = rec.uload(0);
    auto y = rec.uimm(0xff);
    rec.ustore(3, (x << rec.uimm(4)) ^ y);
  }
  const Program p = std::move(rec).finish("mixed", 2, 2, 2);

  std::vector<Word> input{from_i64(6), from_i64(7)};
  const InterpreterResult r = interpret(p, input);
  EXPECT_EQ(as_i64(r.memory[2]), 6 * 7 - 6);
  EXPECT_EQ(r.memory[3], (Word{6} << 4) ^ 0xffu);
}

TEST(Recorder, CmovLtImplementsObliviousMin) {
  Recorder rec(3);
  {
    auto a = rec.fload(0);
    auto b = rec.fload(1);
    auto s = a;                  // copy: shares a register
    rec.cmov_lt(s, b, a, b);     // if b < a then s ← b
    rec.fstore(2, s);
  }
  const Program p = std::move(rec).finish("cmin", 2, 2, 1);

  {
    std::vector<Word> input{from_f64(5.0), from_f64(3.0)};
    EXPECT_EQ(as_f64(interpret(p, input).memory[2]), 3.0);
  }
  {
    std::vector<Word> input{from_f64(2.0), from_f64(9.0)};
    EXPECT_EQ(as_f64(interpret(p, input).memory[2]), 2.0);
  }
}

TEST(Recorder, CmovCopyOnWriteProtectsAliases) {
  // s aliases a; cmov on s must not clobber the value still visible via a.
  Recorder rec(4);
  {
    auto a = rec.fload(0);
    auto b = rec.fload(1);
    auto s = a;
    rec.cmov_lt(s, b, a, b);  // may modify s in place — a must survive
    rec.fstore(2, s);
    rec.fstore(3, a);
  }
  const Program p = std::move(rec).finish("cow", 2, 2, 2);
  std::vector<Word> input{from_f64(5.0), from_f64(3.0)};
  const InterpreterResult r = interpret(p, input);
  EXPECT_EQ(as_f64(r.memory[2]), 3.0);  // min
  EXPECT_EQ(as_f64(r.memory[3]), 5.0);  // original a intact
}

TEST(Recorder, MinMaxHelpers) {
  Recorder rec(4);
  {
    rec.fstore(2, rec.fmin(rec.fload(0), rec.fload(1)));
    rec.istore(3, rec.imax(rec.iload(0), rec.iload(1)));
  }
  const Program p = std::move(rec).finish("minmax", 2, 2, 2);
  std::vector<Word> input{from_f64(4.0), from_f64(-1.0)};
  const InterpreterResult r = interpret(p, input);
  EXPECT_EQ(as_f64(r.memory[2]), -1.0);
  // imax compares the raw bit patterns as i64 here (doubles reinterpreted) —
  // use integer inputs for a meaningful check.
  std::vector<Word> ints{from_i64(10), from_i64(20)};
  EXPECT_EQ(as_i64(interpret(p, ints).memory[3]), 20);
}

TEST(Recorder, RejectsOutOfBoundsAddresses) {
  Recorder rec(4);
  EXPECT_THROW(rec.fload(10), std::logic_error);
  auto v = rec.fimm(1.0);
  EXPECT_THROW(rec.fstore(10, v), std::logic_error);
}

TEST(Recorder, RejectsCrossRecorderOperands) {
  Recorder rec1(4);
  Recorder rec2(4);
  auto a = rec1.fimm(1.0);
  auto b = rec2.fimm(2.0);
  EXPECT_THROW({ auto c = a + b; (void)c; }, std::logic_error);
}

TEST(Recorder, UnboundHandleRejected) {
  Recorder::FVal unbound;
  Recorder rec(4);
  EXPECT_THROW(rec.fstore(0, unbound), std::logic_error);
}

TEST(Recorder, RecordedProgramIsOblivious) {
  // Address fields are literals: a recorded program cannot branch on data.
  const std::size_t n = 8;
  Recorder rec(n);
  {
    auto acc = rec.fimm(0.0);
    for (Addr i = 0; i < n; ++i) acc = acc + rec.fload(i) * rec.fload(i);
    rec.fstore(0, acc);
  }
  const Program p = std::move(rec).finish("sumsq", n, 0, 1);
  auto gen1 = p.stream();
  auto gen2 = p.stream();
  Step s1, s2;
  while (gen1.next(s1)) {
    ASSERT_TRUE(gen2.next(s2));
    EXPECT_EQ(s1, s2);
  }
  EXPECT_FALSE(gen2.next(s2));
}

}  // namespace

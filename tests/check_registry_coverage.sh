#!/usr/bin/env bash
# Registry-coverage gate: every algorithm `obx_cli list --names` reports must
# have (a) a checked-in golden plan record and (b) cases in the registry-
# driven exec_equivalence_test sweep.  This is what makes "add an algorithm"
# a closed loop — registering a program without goldens or equivalence
# coverage fails CI instead of silently shipping an untested workload.
#
#   check_registry_coverage.sh <obx_cli> <golden_dir> <exec_equivalence_test>
set -euo pipefail

if [[ $# -ne 3 ]]; then
  echo "usage: $0 <obx_cli> <golden_dir> <exec_equivalence_test>" >&2
  exit 2
fi

cli="$1"
golden_dir="$2"
equivalence="$3"

# gtest parameter names flatten '-' to '_' (see exec_equivalence_test.cpp).
tests="$("$equivalence" --gtest_list_tests)"

failures=0
count=0
while IFS= read -r algo; do
  count=$((count + 1))
  if [[ ! -f "$golden_dir/$algo.txt" ]]; then
    echo "NO GOLDEN PLAN for '$algo': run tests/check_plan_golden.sh --update" >&2
    failures=$((failures + 1))
  fi
  flat="${algo//-/_}"
  # One case per arrangement: all four must appear in the sweep.
  for arrangement in row_wise column_wise blocked conflict_free; do
    if ! grep -q "${flat}_${arrangement}_p" <<< "$tests"; then
      echo "NO EQUIVALENCE COVERAGE for '$algo' (${arrangement}):" \
           "is it missing test_sizes?" >&2
      failures=$((failures + 1))
    fi
  done
done < <("$cli" list --names)

if [[ "$count" -eq 0 ]]; then
  echo "no algorithms listed by '$cli list --names'" >&2
  exit 1
fi
if [[ "$failures" -ne 0 ]]; then
  echo "$failures coverage gaps across $count registered algorithms" >&2
  exit 1
fi
echo "all $count registered algorithms have golden plans and equivalence coverage"

// Address arithmetic: banks, address groups, spans (paper Fig. 2).
#include <gtest/gtest.h>

#include "umm/address.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

TEST(Address, BankInterleaving) {
  // w = 4: bank B[j] = {j, j+4, j+8, ...}.
  EXPECT_EQ(bank_of(0, 4), 0u);
  EXPECT_EQ(bank_of(5, 4), 1u);
  EXPECT_EQ(bank_of(10, 4), 2u);
  EXPECT_EQ(bank_of(15, 4), 3u);
}

TEST(Address, AddressGroups) {
  // w = 4: group A[j] = {4j, 4j+1, 4j+2, 4j+3}.
  EXPECT_EQ(address_group_of(0, 4), 0u);
  EXPECT_EQ(address_group_of(3, 4), 0u);
  EXPECT_EQ(address_group_of(4, 4), 1u);
  EXPECT_EQ(address_group_of(15, 4), 3u);
}

TEST(Address, GroupAlignment) {
  EXPECT_TRUE(is_group_aligned(0, 4));
  EXPECT_TRUE(is_group_aligned(8, 4));
  EXPECT_FALSE(is_group_aligned(9, 4));
  EXPECT_TRUE(is_group_aligned(32, 32));
  EXPECT_FALSE(is_group_aligned(33, 32));
}

TEST(Address, GroupsSpannedEmpty) { EXPECT_EQ(groups_spanned(5, 0, 4), 0u); }

TEST(Address, GroupsSpannedAligned) {
  EXPECT_EQ(groups_spanned(0, 4, 4), 1u);
  EXPECT_EQ(groups_spanned(0, 8, 4), 2u);
  EXPECT_EQ(groups_spanned(4, 4, 4), 1u);
}

TEST(Address, GroupsSpannedMisaligned) {
  EXPECT_EQ(groups_spanned(1, 4, 4), 2u);
  EXPECT_EQ(groups_spanned(3, 2, 4), 2u);
  EXPECT_EQ(groups_spanned(3, 1, 4), 1u);
}

TEST(Address, GroupsSpannedRejectsZeroWidth) {
  EXPECT_THROW(groups_spanned(0, 1, 0), std::logic_error);
}

class GroupsSpannedProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GroupsSpannedProperty, MatchesDirectEnumeration) {
  const std::uint32_t w = GetParam();
  for (Addr first = 0; first < 3 * w; ++first) {
    for (std::uint64_t count = 1; count <= 2 * w; ++count) {
      // Count distinct groups by enumeration.
      std::uint64_t expected = address_group_of(first + count - 1, w) -
                               address_group_of(first, w) + 1;
      EXPECT_EQ(groups_spanned(first, count, w), expected)
          << "first=" << first << " count=" << count << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GroupsSpannedProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 32u));

}  // namespace

// plan::ExecutionPlan / Planner / PlanCache tests: fingerprint determinism,
// provenance, cache sharing of the compiled artifact, thread-safety, and
// bit-identical equivalence of plan-driven and direct execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/layout.hpp"
#include "bulk/streaming_executor.hpp"
#include "common/rng.hpp"
#include "exec/backend.hpp"
#include "exec/jit/jit_program.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "serve/program_cache.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace obx;
using trace::Op;
using trace::Step;

constexpr std::size_t kCountingWords = 8;

Generator<Step> counting_steps() {
  for (std::size_t i = 0; i < kCountingWords; ++i) {
    co_yield Step::load(1, static_cast<Addr>(i));
    co_yield Step::alu(Op::kAddI, 0, 0, 1);
    co_yield Step::store(static_cast<Addr>(i), 0);
  }
}

/// A program whose stream factory counts its invocations, so tests can see
/// exactly how many times any layer drained the stream.
trace::Program counting_program(std::shared_ptr<std::atomic<int>> invocations) {
  trace::Program p;
  p.name = "counting";
  p.memory_words = kCountingWords;
  p.input_words = kCountingWords;
  p.output_offset = 0;
  p.output_words = kCountingWords;
  p.register_count = 2;
  p.stream = [invocations]() {
    ++*invocations;
    return counting_steps();
  };
  return p;
}

/// A program the peephole optimiser wins on: the load is forwarded from the
/// preceding store, after which the scratch store is dead.
trace::Program optimisable_program() {
  trace::Program p;
  p.name = "optimisable";
  p.memory_words = 3;
  p.input_words = 1;
  p.output_offset = 2;
  p.output_words = 1;
  p.register_count = 3;
  p.stream = [] {
    return []() -> Generator<Step> {
      co_yield Step::load(0, 0);
      co_yield Step::store(1, 0);     // scratch: dead once the load forwards
      co_yield Step::load(1, 1);      // forwarded from the store above
      co_yield Step::alu(Op::kAddI, 2, 0, 1);
      co_yield Step::store(2, 2);
    }();
  };
  return p;
}

std::vector<Word> lane_inputs(const algos::Algorithm& algo, std::size_t n,
                              std::size_t p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

// ---------------------------------------------------------------------------
// Fingerprints.

TEST(PlanOptionsTest, FingerprintIsDeterministicAndKnobSensitive) {
  const plan::PlanOptions base;
  EXPECT_EQ(base.fingerprint(), plan::PlanOptions{}.fingerprint());

  plan::PlanOptions o = base;
  o.machine.width = 64;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.machine.latency = 100;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.reference_lanes = 512;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.optimise = false;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.compile = false;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.tile_lanes = 32;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.workers = 4;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o = base;
  o.arrangement = bulk::Arrangement::kRowWise;
  EXPECT_NE(o.fingerprint(), base.fingerprint());
  o.arrangement = bulk::Arrangement::kColumnWise;
  const auto col = o.fingerprint();
  o.arrangement = bulk::Arrangement::kRowWise;
  EXPECT_NE(o.fingerprint(), col);
}

TEST(PlannerTest, SameInputsProduceIdenticalPlans) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const plan::PlanOptions options;
  const auto a = plan::build_plan(algo.make_program(64), options);
  const auto b = plan::build_plan(algo.make_program(64), options);
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  EXPECT_EQ(a->arrangement(), b->arrangement());
  EXPECT_EQ(a->backend(), b->backend());
  EXPECT_EQ(a->provenance().resolved_tile_lanes, b->provenance().resolved_tile_lanes);
  EXPECT_EQ(a->describe(), b->describe());
  // Distinct plan objects, but the same decisions.
  EXPECT_NE(a.get(), b.get());
}

// ---------------------------------------------------------------------------
// Provenance and decisions.

TEST(PlannerTest, ProvenanceRecordsAdoptedOptimisation) {
  const auto plan = plan::build_plan(optimisable_program(), plan::PlanOptions{});
  const plan::PlanProvenance& prov = plan->provenance();
  EXPECT_TRUE(prov.optimise_attempted);
  EXPECT_TRUE(prov.optimised);
  EXPECT_LT(prov.after.total(), prov.before.total());
  EXPECT_FALSE(prov.passes.empty());
  EXPECT_EQ(plan->program().profile().total(), prov.after.total());

  // The optimised program still computes input + input.
  std::vector<Word> out;
  const std::vector<Word> inputs = {21};
  plan::run(*plan, inputs, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

TEST(PlannerTest, DisabledOptimiserIsRecorded) {
  plan::PlanOptions options;
  options.optimise = false;
  const auto plan = plan::build_plan(optimisable_program(), options);
  EXPECT_FALSE(plan->provenance().optimise_attempted);
  EXPECT_FALSE(plan->provenance().optimised);
  EXPECT_EQ(plan->provenance().after.total(), plan->provenance().before.total());
}

TEST(PlannerTest, ForcedArrangementSkipsSimulationChoice) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  plan::PlanOptions options;
  options.arrangement = bulk::Arrangement::kRowWise;
  const auto plan = plan::build_plan(algo.make_program(64), options);
  EXPECT_EQ(plan->arrangement(), bulk::Arrangement::kRowWise);
  EXPECT_TRUE(plan->provenance().arrangement_forced);
}

TEST(PlannerTest, ResolvedBackendIsNeverAuto) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const auto compiled = plan::build_plan(algo.make_program(64), plan::PlanOptions{});
  // kAuto resolves to the JIT rung where emission is available, else the
  // compiled switch — never to kAuto itself.
  EXPECT_EQ(compiled->backend(), exec::jit_available() ? exec::Backend::kJit
                                                       : exec::Backend::kCompiled);
  EXPECT_EQ(compiled->jitted() != nullptr, exec::jit_available());
  ASSERT_NE(compiled->compiled(), nullptr);
  EXPECT_GT(compiled->provenance().compiled_segments, 0u);
  EXPECT_GT(compiled->provenance().compiled_fused_ops, 0u);

  plan::PlanOptions interp;
  interp.backend = exec::Backend::kInterpreted;
  const auto plan = plan::build_plan(algo.make_program(64), interp);
  EXPECT_EQ(plan->backend(), exec::Backend::kInterpreted);
  EXPECT_EQ(plan->compiled(), nullptr);
}

TEST(PlannerTest, OverBudgetCompileFallsBackToInterpreterAndStaysCorrect) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  plan::PlanOptions options;
  options.optimise = false;
  options.compile_budget_steps = 4;  // 24-step stream: compile must abort
  const auto plan = plan::build_plan(counting_program(invocations), options);
  EXPECT_TRUE(plan->provenance().compile_attempted);
  EXPECT_FALSE(plan->provenance().compiled);
  EXPECT_EQ(plan->backend(), exec::Backend::kInterpreted);
  EXPECT_EQ(plan->compiled(), nullptr);

  const std::size_t p = 5;
  std::vector<Word> inputs(p * kCountingWords);
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i * 7 + 3;
  std::vector<Word> out;
  const auto result = plan::run(*plan, inputs, p, &out);
  EXPECT_EQ(result.backend, exec::Backend::kInterpreted);
  for (std::size_t j = 0; j < p; ++j) {
    const trace::InterpreterResult ref = trace::interpret(
        plan->program(), std::span<const Word>(inputs.data() + j * kCountingWords,
                                               kCountingWords));
    for (std::size_t i = 0; i < kCountingWords; ++i) {
      ASSERT_EQ(out[j * kCountingWords + i], ref.memory[i]) << "lane " << j;
    }
  }
}

TEST(PlannerTest, UnitsMemoMatchesFreshSimulation) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const plan::PlanOptions options;
  const auto plan = plan::build_plan(algo.make_program(64), options);
  // The reference-occupancy estimate is pre-seeded; asking again (any number
  // of times, any occupancy) must be consistent.
  const TimeUnits at_ref = plan->units_for_lanes(options.reference_lanes);
  EXPECT_EQ(at_ref, plan->units_for_lanes(options.reference_lanes));
  EXPECT_GT(plan->units_for_lanes(1024), 0u);
  const TimeUnits chosen = std::min(plan->provenance().row_units,
                                    plan->provenance().col_units);
  EXPECT_EQ(at_ref, chosen);
}

TEST(PlannerTest, ResidentLanesForBudgetClampsToLanes) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const auto plan = plan::build_plan(algo.make_program(64), plan::PlanOptions{});
  EXPECT_EQ(plan->resident_lanes_for_budget(1, 100), 1u);  // floor: one lane
  EXPECT_EQ(plan->resident_lanes_for_budget(std::size_t{1} << 40, 100), 100u);
  const std::size_t mid = plan->resident_lanes_for_budget(1u << 16, 1u << 20);
  EXPECT_GE(mid, 1u);
  EXPECT_LE(mid, 1u << 20);
}

// ---------------------------------------------------------------------------
// PlanCache.

TEST(PlanCacheTest, HitReturnsIdenticalPlanAndCompiledArtifactWithoutRedrain) {
  auto invocations = std::make_shared<std::atomic<int>>(0);
  const trace::Program program = counting_program(invocations);
  plan::PlanOptions options;
  options.optimise = false;  // keep the drain accounting minimal
  plan::PlanCache cache(options);

  const auto first = cache.get_or_build("counting", program);
  ASSERT_NE(first, nullptr);
  const exec::Backend expect_backend =
      exec::jit_available() ? exec::Backend::kJit : exec::Backend::kCompiled;
  EXPECT_EQ(first->backend(), expect_backend);
  const int drains_after_build = invocations->load();
  EXPECT_GT(drains_after_build, 0);

  // Hit: identical plan, identical shared compiled artifact, zero drains.
  const auto second = cache.get_or_build("counting", program);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(second->compiled().get(), first->compiled().get());
  EXPECT_EQ(invocations->load(), drains_after_build);

  // Executors running the plan's program share the same artifact through the
  // exec_cache slot — still no re-drain.
  const bulk::HostBulkExecutor exec(*first, 4);
  std::vector<Word> inputs(4 * kCountingWords, Word{2});
  const auto result = exec.run(first->program(), inputs);
  EXPECT_EQ(result.backend, expect_backend);
  EXPECT_EQ(invocations->load(), drains_after_build);
}

TEST(PlanCacheTest, DistinctOptionsGetDistinctEntriesUnderOneId) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const trace::Program program = algo.make_program(32);
  plan::PlanCache cache;
  const auto col = cache.get_or_build("ps", program);
  plan::PlanOptions row;
  row.arrangement = bulk::Arrangement::kRowWise;
  const auto forced = cache.get_or_build("ps", program, row);
  EXPECT_NE(col.get(), forced.get());
  EXPECT_EQ(forced->arrangement(), bulk::Arrangement::kRowWise);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.ids(), std::vector<std::string>{"ps"});
  EXPECT_TRUE(cache.contains("ps"));
  EXPECT_TRUE(cache.contains("ps", row));
  EXPECT_EQ(cache.lookup("ps").get(), col.get());
  EXPECT_EQ(cache.lookup("absent"), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, IdReuseForADifferentProgramThrows) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  plan::PlanCache cache;
  cache.get_or_build("id", algo.make_program(32));
  EXPECT_THROW(cache.get_or_build("id", algo.make_program(64)), std::logic_error);
}

TEST(PlanCacheTest, ConcurrentBuildsOfOneKeyCollapseToASingleBuild) {
  // Baseline: how many stream drains one solo build costs.
  auto solo_count = std::make_shared<std::atomic<int>>(0);
  plan::PlanCache solo;
  solo.get_or_build("counting", counting_program(solo_count));
  const int drains_per_build = solo_count->load();

  auto invocations = std::make_shared<std::atomic<int>>(0);
  const trace::Program program = counting_program(invocations);
  plan::PlanCache cache;
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const plan::ExecutionPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { plans[i] = cache.get_or_build("counting", program); });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kThreads; ++i) {
    ASSERT_NE(plans[i], nullptr) << "thread " << i;
    EXPECT_EQ(plans[i].get(), plans[0].get()) << "thread " << i;
  }
  EXPECT_EQ(invocations->load(), drains_per_build);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Equivalence: plan-driven execution is bit-identical to the direct executor.

TEST(PlanEquivalenceTest, PlanDrivenRunMatchesDirectExecutorAcrossRegistry) {
  const std::size_t p = 5;
  for (const auto& algo : algos::registry()) {
    const std::size_t n = algo.test_sizes.front();
    const trace::Program program = algo.make_program(n);
    const std::vector<Word> inputs = lane_inputs(algo, n, p, /*seed=*/7);
    for (const auto arr :
         {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
      // Direct: the pre-plan executor surface on the unoptimised program.
      const bulk::HostBulkExecutor direct(bulk::make_layout(program, p, arr));
      const auto direct_run = direct.run(program, inputs);
      const std::vector<Word> expected =
          direct.gather_outputs(program, direct_run.memory);

      // Plan-driven: same arrangement forced so the comparison is exact.
      plan::PlanOptions options;
      options.arrangement = arr;
      const auto plan = plan::build_plan(program, options);
      std::vector<Word> out;
      plan::run(*plan, inputs, p, &out);
      ASSERT_EQ(out, expected) << algo.name << " " << to_string(arr);
    }
  }
}

TEST(PlanEquivalenceTest, StreamingRunMatchesMonolithicRun) {
  const algos::Algorithm& algo = algos::find("bitonic-sort");
  const std::size_t n = algo.test_sizes.front();
  const std::size_t p = 11;
  const trace::Program program = algo.make_program(n);
  const std::vector<Word> inputs = lane_inputs(algo, n, p, /*seed=*/11);
  const auto plan = plan::build_plan(program, plan::PlanOptions{});

  std::vector<Word> monolithic;
  plan::run(*plan, inputs, p, &monolithic);

  std::vector<Word> streamed(monolithic.size(), Word{0});
  const auto stats = plan::run_streaming(
      *plan, p, /*max_resident_lanes=*/3,
      [&](Lane j, std::span<Word> dst) {
        const std::size_t w = plan->input_words();
        std::copy_n(inputs.begin() + static_cast<std::ptrdiff_t>(j * w), w, dst.begin());
      },
      [&](Lane j, std::span<const Word> out) {
        std::copy(out.begin(), out.end(),
                  streamed.begin() + static_cast<std::ptrdiff_t>(j * plan->output_words()));
      });
  EXPECT_EQ(stats.batches, 4u);  // ceil(11 / 3)
  EXPECT_EQ(stats.lanes, p);
  EXPECT_EQ(streamed, monolithic);
}

TEST(PlanEquivalenceTest, PlanConstructedExecutorsMatchPlanRun) {
  const algos::Algorithm& algo = algos::find("horner");
  const std::size_t n = algo.test_sizes.front();
  const std::size_t p = 6;
  const trace::Program program = algo.make_program(n);
  const std::vector<Word> inputs = lane_inputs(algo, n, p, /*seed=*/23);
  const auto plan = plan::build_plan(program, plan::PlanOptions{});

  std::vector<Word> expected;
  plan::run(*plan, inputs, p, &expected);

  const bulk::HostBulkExecutor host(*plan, p);
  EXPECT_EQ(host.layout().lanes(), p);
  const auto run = host.run(plan->program(), inputs);
  EXPECT_EQ(run.backend, plan->backend());
  EXPECT_EQ(host.gather_outputs(plan->program(), run.memory), expected);

  const bulk::StreamingExecutor streaming(*plan, /*max_resident_lanes=*/4);
  EXPECT_EQ(streaming.options().arrangement, plan->arrangement());
  EXPECT_EQ(streaming.options().max_resident_lanes, 4u);
  std::vector<Word> streamed(expected.size(), Word{0});
  streaming.run(
      plan->program(), p,
      [&](Lane j, std::span<Word> dst) {
        const std::size_t w = plan->input_words();
        std::copy_n(inputs.begin() + static_cast<std::ptrdiff_t>(j * w), w, dst.begin());
      },
      [&](Lane j, std::span<const Word> out) {
        std::copy(out.begin(), out.end(),
                  streamed.begin() + static_cast<std::ptrdiff_t>(j * plan->output_words()));
      });
  EXPECT_EQ(streamed, expected);
}

// ---------------------------------------------------------------------------
// serve::PrepareOptions compatibility shim.

TEST(PrepareOptionsTest, EnSpellingIsCanonicalAndAliasStillWorks) {
  serve::PrepareOptions po;
  EXPECT_TRUE(po.optimise);
  EXPECT_FALSE(po.optimize.has_value());
  EXPECT_TRUE(po.plan_options().optimise);

  po.optimise = false;
  EXPECT_FALSE(po.plan_options().optimise);

  // The deprecated mixed-spelling alias overrides when set.
  po.optimise = true;
  po.optimize = false;
  EXPECT_FALSE(po.plan_options().optimise);
  po.optimize = true;
  po.optimise = false;
  EXPECT_TRUE(po.plan_options().optimise);
}

TEST(PrepareOptionsTest, MapsOntoPlanOptions) {
  serve::PrepareOptions po;
  po.machine.width = 64;
  po.reference_lanes = 1024;
  po.optimise_step_limit = 99;
  po.compile = false;
  po.workers = 3;
  const plan::PlanOptions mapped = po.plan_options();
  EXPECT_EQ(mapped.machine.width, 64u);
  EXPECT_EQ(mapped.reference_lanes, 1024u);
  EXPECT_EQ(mapped.optimise_step_limit, 99u);
  EXPECT_FALSE(mapped.compile);
  EXPECT_EQ(mapped.workers, 3u);
}

}  // namespace

// Closed-form cost model vs brute-force warp enumeration, plus the paper's
// Lemma 1 / Theorem 2 / Theorem 3 formulas.
#include <gtest/gtest.h>

#include <vector>

#include "umm/cost_model.hpp"
#include "umm/warp.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

/// Brute-force oracle: materialise every lane's address, chunk into warps,
/// sum warp stage counts with the generic routines.
StepStages brute_force_stages(Model model, std::uint32_t w, std::uint64_t p,
                              std::uint64_t stride, Addr base) {
  std::vector<Addr> addrs(p);
  for (std::uint64_t j = 0; j < p; ++j) addrs[j] = base + j * stride;
  StepStages out;
  for (std::uint64_t begin = 0; begin < p; begin += w) {
    const std::uint64_t count = std::min<std::uint64_t>(w, p - begin);
    const std::uint64_t k =
        warp_stages(model, std::span<const Addr>(addrs).subspan(begin, count), w);
    if (k > 0) {
      out.stages += k;
      ++out.warps;
    }
  }
  return out;
}

struct CostCase {
  std::uint32_t width;
  std::uint32_t latency;
  std::uint64_t p;
  std::uint64_t stride;
};

class StridedCostProperty : public ::testing::TestWithParam<CostCase> {};

TEST_P(StridedCostProperty, UmmMatchesBruteForce) {
  const auto [w, l, p, stride] = GetParam();
  const MachineConfig cfg{.width = w, .latency = l};
  const StridedStepCost cost(Model::kUmm, cfg, p, stride);
  for (Addr base = 0; base < 3 * w + 5; ++base) {
    const StepStages expected = brute_force_stages(Model::kUmm, w, p, stride, base);
    const StepStages got = cost.stages(base);
    EXPECT_EQ(got.stages, expected.stages) << "base=" << base;
    EXPECT_EQ(got.warps, expected.warps) << "base=" << base;
    EXPECT_EQ(cost.step_time(base), expected.stages + l - 1) << "base=" << base;
  }
}

TEST_P(StridedCostProperty, DmmMatchesBruteForce) {
  const auto [w, l, p, stride] = GetParam();
  const MachineConfig cfg{.width = w, .latency = l};
  const StridedStepCost cost(Model::kDmm, cfg, p, stride);
  for (Addr base = 0; base < 2 * w + 3; ++base) {
    const StepStages expected = brute_force_stages(Model::kDmm, w, p, stride, base);
    const StepStages got = cost.stages(base);
    EXPECT_EQ(got.stages, expected.stages) << "base=" << base;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, StridedCostProperty,
    ::testing::Values(CostCase{4, 5, 16, 1}, CostCase{4, 5, 16, 6},
                      CostCase{4, 5, 16, 4}, CostCase{4, 5, 18, 3},   // tail warp
                      CostCase{8, 2, 64, 1}, CostCase{8, 2, 64, 5},
                      CostCase{32, 100, 128, 1}, CostCase{32, 100, 128, 32},
                      CostCase{32, 100, 128, 33}, CostCase{32, 100, 100, 7},
                      CostCase{3, 4, 10, 2},      // non-power-of-two width
                      CostCase{1, 1, 5, 9}));     // degenerate width 1

TEST(CostModel, RowWiseStepIsPStagesWhenStrideAtLeastW) {
  // Lemma 1 row-wise: stride n >= w puts every lane in its own group.
  const MachineConfig cfg{.width = 32, .latency = 100};
  const StridedStepCost cost(Model::kUmm, cfg, 256, 64);
  EXPECT_EQ(cost.stages(0).stages, 256u);
  EXPECT_EQ(cost.step_time(0), 256u + 100 - 1);
}

TEST(CostModel, ColumnWiseStepIsPOverWStagesWhenAligned) {
  const MachineConfig cfg{.width = 32, .latency = 100};
  const StridedStepCost cost(Model::kUmm, cfg, 256, 1);
  EXPECT_EQ(cost.stages(0).stages, 8u);  // p/w aligned
  EXPECT_EQ(cost.stages(1).stages, 16u); // misaligned: 2 groups per warp
}

TEST(CostModel, Lemma1Formulas) {
  const MachineConfig cfg{.width = 32, .latency = 100};
  // n >= w: row-wise 2n(p + l - 1), column-wise 2n(p/w + l - 1).
  EXPECT_EQ(lemma1_row_wise(64, 256, cfg), 2 * 64 * (256 + 99));
  EXPECT_EQ(lemma1_column_wise(64, 256, cfg), 2 * 64 * (8 + 99));
  // n < w: row-wise coalesces partially: ceil(p*n/w) stages.
  EXPECT_EQ(lemma1_row_wise(4, 64, cfg), 2 * 4 * (8 + 99));
}

TEST(CostModel, Theorem2Formulas) {
  const MachineConfig cfg{.width = 32, .latency = 100};
  EXPECT_EQ(theorem2_row_wise(10, 256, cfg), 10 * (256 + 99));
  EXPECT_EQ(theorem2_column_wise(10, 256, cfg), 10 * (8 + 99));
  EXPECT_EQ(theorem2_column_wise(10, 100, cfg), 10 * (4 + 99));  // ceil(100/32)=4
}

TEST(CostModel, Theorem3LowerBoundIsMaxOfTerms) {
  const MachineConfig cfg{.width = 32, .latency = 100};
  // Bandwidth-bound regime: pt/w dominates.
  EXPECT_EQ(theorem3_lower_bound(10, 1 << 20, cfg), (10ull << 20) / 32);
  // Latency-bound regime: lt dominates.
  EXPECT_EQ(theorem3_lower_bound(10, 32, cfg), 1000u);
}

TEST(CostModel, DmmStridedClosedFormMatchesSimulation) {
  // gcd(s, w) = max bank multiplicity of a full strided warp, for every
  // stride and base (exhaustive at small widths).
  for (const std::uint32_t w : {1u, 2u, 3u, 4u, 8u, 12u, 32u}) {
    for (std::uint64_t stride = 0; stride <= 3 * w; ++stride) {
      for (Addr base : {Addr{0}, Addr{1}, Addr{w - 1}, Addr{5 * w + 3}}) {
        std::vector<Addr> addrs(w);
        for (std::uint64_t j = 0; j < w; ++j) addrs[j] = base + j * stride;
        EXPECT_EQ(dmm_strided_warp_stages(stride, w), dmm_warp_stages(addrs, w))
            << "w=" << w << " stride=" << stride << " base=" << base;
      }
    }
  }
}

TEST(CostModel, DmmStridedKnownValues) {
  EXPECT_EQ(dmm_strided_warp_stages(1, 32), 1u);    // conflict-free
  EXPECT_EQ(dmm_strided_warp_stages(2, 32), 2u);    // 2-way
  EXPECT_EQ(dmm_strided_warp_stages(32, 32), 32u);  // full conflict
  EXPECT_EQ(dmm_strided_warp_stages(0, 32), 32u);   // broadcast
  EXPECT_EQ(dmm_strided_warp_stages(33, 32), 1u);   // odd stride: free
  EXPECT_EQ(dmm_strided_warp_stages(12, 32), 4u);   // gcd(12,32)
}

class OptimalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityProperty, ColumnWiseIsWithinConstantOfLowerBound) {
  // Theorem 2 + Theorem 3: the coalesced arrangement is time-optimal, i.e.
  // theorem2_column_wise <= c * theorem3_lower_bound for a small constant c.
  const std::uint64_t p = GetParam();
  const MachineConfig cfg{.width = 32, .latency = 100};
  for (std::uint64_t t : {1ull, 10ull, 1000ull}) {
    const auto upper = theorem2_column_wise(t, p, cfg);
    const auto lower = theorem3_lower_bound(t, p, cfg);
    EXPECT_LE(upper, 3 * lower) << "p=" << p << " t=" << t;
    EXPECT_GE(upper, lower) << "p=" << p << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, OptimalityProperty,
                         ::testing::Values(32u, 64u, 1024u, 1u << 16, 1u << 22));

}  // namespace

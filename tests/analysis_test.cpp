// analysis/: linear fits, speedups, crossovers, tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/linear_fit.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"

namespace {

using namespace obx::analysis;

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(37.0 + 8.09 * v);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 37.0, 1e-9);
  EXPECT_NEAR(fit.slope, 8.09, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 37.0 + 80.9, 1e-9);
}

TEST(LinearFit, HandlesNoise) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5.0 + 2.0 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_NEAR(fit.intercept, 5.0, 0.2);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(LinearFit, ConstantSeries) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 4, 4};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LinearFit, TailIgnoresSmallXRegime) {
  // The floor-then-linear curve the paper's figures show: constant for
  // small p, linear after.  The tail fit must recover the asymptotic slope.
  std::vector<double> x, y;
  for (double p = 64; p <= 65536; p *= 2) {
    x.push_back(p);
    y.push_back(std::max(1000.0, 2.0 * p));
  }
  const LinearFit tail = fit_linear_tail(x, y);
  EXPECT_NEAR(tail.slope, 2.0, 0.05);
}

TEST(LinearFit, RejectsBadInput) {
  const std::vector<double> one{1};
  EXPECT_THROW(fit_linear(one, one), std::logic_error);
  const std::vector<double> two{1, 2};
  const std::vector<double> three{1, 2, 3};
  EXPECT_THROW(fit_linear(two, three), std::logic_error);
}

TEST(LinearFit, Describe) {
  LinearFit fit;
  fit.intercept = 37e-6;
  fit.slope = 8.09e-9;
  const std::string s = describe_fit_seconds(fit);
  EXPECT_NE(s.find("us"), std::string::npos);
  EXPECT_NE(s.find("ns * p"), std::string::npos);
}

TEST(Series, Speedup) {
  const std::vector<double> cpu{100, 200, 400};
  const std::vector<double> gpu{10, 10, 10};
  const auto s = speedup(cpu, gpu);
  EXPECT_EQ(s, (std::vector<double>{10, 20, 40}));
  const std::vector<double> zero{0, 0, 0};
  EXPECT_EQ(speedup(cpu, zero), (std::vector<double>{0, 0, 0}));
}

TEST(Series, CrossoverFindsStablePoint) {
  const std::vector<double> a{10, 9, 5, 3, 1};
  const std::vector<double> b{5, 5, 5, 5, 5};
  // a dips below b at index 3 and stays below.
  const auto idx = crossover_index(a, b);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 3u);
}

TEST(Series, CrossoverRejectsTransientDips) {
  const std::vector<double> a{1, 9, 1, 9};
  const std::vector<double> b{5, 5, 5, 5};
  EXPECT_FALSE(crossover_index(a, b).has_value());
}

TEST(Series, MaxAndRelativeError) {
  const std::vector<double> v{1.0, 7.0, 3.0};
  EXPECT_EQ(max_value(v), 7.0);
  EXPECT_EQ(max_value({}), 0.0);
  EXPECT_NEAR(relative_error(101.0, 100.0), 0.01, 1e-12);
}

TEST(Table, PrintsAligned) {
  Table t({"p", "time"});
  t.add_row({"64", "1.5 ms"});
  t.add_row({"4M", "10.0 ms"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("p"), std::string::npos);
  EXPECT_NE(out.find("4M"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"a,b", "quote\"inside"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, SaveCsvWritesFile) {
  const std::string path = "/tmp/obx_table_test.csv";
  Table t({"x"});
  t.add_row({"1"});
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::filesystem::remove(path);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

}  // namespace
